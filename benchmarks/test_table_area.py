"""Benchmark for the Section 5.4 routing-table area analysis."""

from conftest import run_once

from repro.experiments import table_area


def test_table_area(benchmark, save_output):
    result = run_once(benchmark, table_area.run)
    save_output("table_area", table_area.render(result))
    g = result.geometries

    # deterministic routing: one option per entry (narrow tables)
    assert g[("DOR", "paper", "full")].options_per_entry == 1
    # non-deterministic algorithms require wider tables (Section 5.4)
    assert (
        g[("OmniWAR", "paper", "full")].width_bits
        > g[("DimWAR", "paper", "full")].width_bits
        > g[("DOR", "paper", "full")].width_bits
    )
    # size-optimized (Aries/Gen-Z style) tables: depth greatly reduced
    for name in ("DOR", "DimWAR", "OmniWAR"):
        full = g[(name, "paper", "full")]
        opt = g[(name, "paper", "size-optimized")]
        assert opt.depth * 10 <= full.depth
        assert opt.total_bits * 5 <= full.total_bits
    # even the widest size-optimized table is tiny (~1 KiB): "the area and
    # power overhead of the tables is negligible"
    assert g[("OmniWAR", "paper", "size-optimized")].total_bits < 16 * 1024
