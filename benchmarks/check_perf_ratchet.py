"""CI perf ratchet: fail when any microbenchmark regresses >20% vs recorded.

Usage::

    python benchmarks/check_perf_ratchet.py FRESH.json [RECORDED.json]

``FRESH`` is either a raw pytest-benchmark ``--benchmark-json`` file or a
``repro-perf-summary/1`` file from ``python -m repro bench``; ``RECORDED``
defaults to the repo's ``BENCH_sim.json``.  For every benchmark present in
both files the fresh *min* must stay within ``TOLERANCE`` of the recorded
min — the min (not mean) because interference can only slow a round down,
so minima are the most machine-stable statistic available to a ratchet.

The 20% tolerance absorbs runner-to-runner jitter, not architecture
regressions: the hot-path changes this guards (scoring kernel, event-driven
stage scheduling, active sets) each moved their benchmark by well over 20%.
When a regression is real, fix it or — if the slowdown is an accepted
trade — regenerate the recorded file with ``python -m repro bench`` in the
same PR and say why in the commit.
"""

from __future__ import annotations

import json
import sys

TOLERANCE = 1.20  # fresh min may be at most 20% above the recorded min


def extract_mins(data: dict) -> dict[str, float]:
    """name -> min seconds, from either supported schema."""
    out = {}
    for b in data.get("benchmarks", []):
        if "min_s" in b:  # repro-perf-summary/1
            out[b["name"]] = float(b["min_s"])
        elif "stats" in b:  # pytest-benchmark --benchmark-json
            out[b["name"]] = float(b["stats"]["min"])
    return out


def main(argv: list[str]) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__, file=sys.stderr)
        return 2
    fresh_path = argv[0]
    recorded_path = argv[1] if len(argv) == 2 else "BENCH_sim.json"
    with open(fresh_path) as f:
        fresh = extract_mins(json.load(f))
    with open(recorded_path) as f:
        recorded = extract_mins(json.load(f))
    if not fresh:
        print(f"no benchmarks found in {fresh_path}", file=sys.stderr)
        return 2

    failures = []
    for name in sorted(recorded):
        if name not in fresh:
            print(f"SKIP  {name}: not in {fresh_path}")
            continue
        ratio = fresh[name] / recorded[name]
        verdict = "FAIL" if ratio > TOLERANCE else "ok"
        print(
            f"{verdict:>4}  {name}: recorded {recorded[name]:.3e}s, "
            f"fresh {fresh[name]:.3e}s ({ratio:.2f}x)"
        )
        if ratio > TOLERANCE:
            failures.append(name)

    if failures:
        print(
            f"\nperf ratchet: {len(failures)} benchmark(s) regressed more "
            f"than {(TOLERANCE - 1):.0%} vs {recorded_path}: "
            + ", ".join(failures)
        )
        return 1
    print(f"\nperf ratchet: all benchmarks within {(TOLERANCE - 1):.0%} of "
          f"{recorded_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
