"""Benchmarks for the analytical artifacts: Table 1, Figure 2, Figure 3.

These are exact regenerations (no simulation), so they run at the paper's
full scale and are checked against the paper's quoted numbers.
"""

from conftest import run_once

from repro.experiments import fig2_scalability, fig3_cost, table1_comparison
from repro.topology.scalability import hyperx_max_nodes


def test_table1_comparison(benchmark, save_output):
    rows = run_once(benchmark, table1_comparison.run, 3)
    save_output("table1_comparison", table1_comparison.render(rows))
    by_name = {r["name"]: r for r in rows}
    # the paper's practicality claims
    assert by_name["DimWAR"]["vcs_required"] == 2
    assert by_name["DimWAR"]["packet_contents"] == "none"
    assert by_name["OmniWAR"]["packet_contents"] == "none"
    assert by_name["UGAL"]["packet_contents"] == "int. addr."
    assert by_name["DAL"]["architecture_requirements"] == "escape paths"


def test_fig2_scalability(benchmark, save_output):
    points = run_once(benchmark, fig2_scalability.run, [16, 24, 32, 48, 64, 96, 128])
    save_output("fig2_scalability", fig2_scalability.render(points))
    # paper-quoted 64-port HyperX data points, exactly
    assert hyperx_max_nodes(64, 2)[0] == 10_648
    assert hyperx_max_nodes(64, 3)[0] == 78_608
    assert hyperx_max_nodes(64, 4)[0] == 463_736
    at64 = {p.topology: p.nodes for p in points if p.radix == 64}
    assert at64["HyperX-2"] == 10_648
    assert at64["HyperX-3"] == 78_608
    assert at64["HyperX-4"] == 463_736
    # shape: higher dimension scales further at fixed radix
    assert at64["HyperX-2"] < at64["HyperX-3"] < at64["HyperX-4"]


def test_fig3_cost(benchmark, save_output):
    points = run_once(
        benchmark, fig3_cost.run, [1024, 4096, 16384, 65536, 262144]
    )
    save_output("fig3_cost", fig3_cost.render(points))
    large = [p for p in points if p.target_nodes >= 65536]
    for p in large:
        if p.technology in ("DAC/AOC@25GHz", "DAC/AOC@50GHz", "DAC/AOC@100GHz"):
            # Section 3.1: Dragonfly ~10% cheaper with modern copper+AOC
            assert p.relative_cost < 1.0
        if p.technology == "passive-optical":
            # "the HyperX is always lower or equal in cost" (2% tolerance
            # for the discrete size steps of the two families)
            assert p.relative_cost >= 0.98
