"""CI guard: a detached tracer must not slow the simulator down.

The repro.obs hook seams are designed to cost nothing when no observer is
attached (a ``None`` field check on the router fast path, an empty listener
list on the terminals, unwrapped channel sinks).  This script measures the
loaded microbenchmark configuration from ``test_perf_simulator.py`` two
ways — tracing never attached vs attached once and detached again — with
interleaved best-of-N rounds, and **fails (exit 1) if the detached-tracer
run is more than 3% slower**.  A regression here means detach left residue
on a hook seam or the fast path grew a real branch.

It also prints an advisory comparison against the pinned seed numbers in
``BENCH_sim.json`` (different machines differ, so that check never fails
the job).

Run:  PYTHONPATH=src python benchmarks/check_trace_overhead.py
"""

import json
import os
import sys
import time

from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.obs import TraceOptions, Tracer
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom

THRESHOLD = 0.03  # acceptance criterion: <3% overhead, tracing detached
ROUNDS = 8
CYCLES = 2000


def _loaded_sim(widths=(4, 4), tpr=2, algo="DimWAR", rate=0.4, warm=300):
    """The loaded benchmark scenario from test_perf_simulator.py."""
    topo = HyperX(widths, tpr)
    net = Network(topo, make_algorithm(algo, topo), default_config())
    sim = Simulator(net)
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), rate, seed=1)
    sim.processes.append(traffic)
    sim.run(warm)
    return sim


def _timed_run(attach_then_detach: bool) -> float:
    sim = _loaded_sim()
    if attach_then_detach:
        tracer = Tracer(sim, TraceOptions()).attach()
        sim.run(50)  # exercise the hooks so detach has real state to undo
        tracer.detach()
    t0 = time.perf_counter()
    sim.run(CYCLES)
    return time.perf_counter() - t0


def main() -> int:
    # Interleave the two configurations so machine noise (thermal, cache)
    # hits both alike; compare the minima.
    best = {"baseline": float("inf"), "detached": float("inf")}
    for _ in range(ROUNDS):
        best["baseline"] = min(best["baseline"], _timed_run(False))
        best["detached"] = min(best["detached"], _timed_run(True))

    overhead = best["detached"] / best["baseline"] - 1.0
    cps = CYCLES / best["baseline"]
    print(f"loaded benchmark, tracing never attached : {best['baseline'] * 1e3:8.1f} ms")
    print(f"loaded benchmark, tracer attach+detach   : {best['detached'] * 1e3:8.1f} ms")
    print(f"detached-tracer overhead                 : {overhead:+8.2%} "
          f"(limit {THRESHOLD:.0%})")
    print(f"cycles/second (baseline)                 : {cps:8.0f}")

    bench_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_sim.json")
    if os.path.exists(bench_path):
        with open(bench_path) as f:
            data = json.load(f)
        pinned = {b["name"]: b for b in data.get("benchmarks", [])}
        loaded = pinned.get("test_perf_simulation_cycles_loaded")
        if loaded:
            # The pinned run times 100-cycle chunks; normalize to cycles/s.
            pinned_cps = loaded.get("cycles_per_chunk", 100) / loaded["min_s"]
            print(f"cycles/second (BENCH_sim.json pin)       : {pinned_cps:8.0f} "
                  "(advisory: machines differ)")

    if overhead >= THRESHOLD:
        print(f"FAIL: detached tracing costs {overhead:.2%} >= {THRESHOLD:.0%} "
              "on the loaded benchmark — a hook seam is no longer free")
        return 1
    print("OK: detached tracing is within the overhead budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
