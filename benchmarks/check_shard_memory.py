"""CI guard: sharding must divide simulation state, not copy it.

Each shard worker owns a contiguous slice of routers and builds *only*
that partition (``repro.network.shard``), so its peak RSS must shrink
roughly 1/N as the shard count grows.  This script runs a loaded
16x16x16 (4096-router) scenario at shards=1 and shards=4, each in a
*fresh subprocess* (``RUSAGE_CHILDREN.ru_maxrss`` is a high-water mark
over all reaped children, so configurations must not share a parent),
and **fails (exit 1) if the largest shards=4 worker's peak RSS exceeds
half of the shards=1 worker's**.  A worker that holds the whole network
— a partition filter regression — shows up as a ratio near 1.0.

Wall-clock is printed for information only and never asserted: on a
single-core host the lock-stepped workers serialize, and on shared CI
runners timing is noise.  The RSS ratio is stable on both.

Run:   PYTHONPATH=src python benchmarks/check_shard_memory.py
Table: PYTHONPATH=src python benchmarks/check_shard_memory.py --table
       (shards 1/2/4 build/run/throughput/CPU/RSS — the source of the
       sharding table in docs/PERFORMANCE.md)
"""

import json
import subprocess
import sys

#: The largest shards=4 worker may hold at most this fraction of the
#: shards=1 worker's peak RSS.  Perfect division would be ~0.25 plus the
#: fixed interpreter baseline; 0.5 leaves room for boundary structures
#: and allocator jitter while still catching any whole-network copy.
RATIO_LIMIT = 0.5

CHILD = r"""
import json
import resource
import sys
import time

from repro.analysis.parallel import PointSpec
from repro.network.shard import ShardEngine

shards, cycles = int(sys.argv[1]), int(sys.argv[2])
spec = PointSpec(
    widths=(16, 16, 16), terminals_per_router=2, algorithm="DimWAR",
    pattern="UR", rate=0.1, total_cycles=0, seed=1,
)
t0 = time.perf_counter()
engine = ShardEngine(spec, shards)
engine.total_ejected()  # barrier: workers reply only once built
build_s = time.perf_counter() - t0
engine.run(128)  # warm-up to steady state (packet latency ~100 cycles)
before = engine.total_ejected()
t0 = time.perf_counter()
engine.run(cycles)
run_s = time.perf_counter() - t0
flits = engine.total_ejected() - before
assert flits > 0
engine.finish()
engine.close()  # joins the workers; RUSAGE_CHILDREN is complete after this
kids = resource.getrusage(resource.RUSAGE_CHILDREN)
print(json.dumps({
    "shards": shards,
    "build_s": round(build_s, 2),
    "run_s": round(run_s, 2),
    "cycles_per_sec": round(cycles / run_s, 1),
    "flits_per_sec": int(flits / run_s),
    # ru_maxrss is KiB on Linux, bytes on macOS; every configuration is
    # measured in the same interpreter, so the ratio is unit-free.
    "worker_rss_max": kids.ru_maxrss,
    "worker_cpu_total_s": round(kids.ru_utime + kids.ru_stime, 2),
}))
"""


def measure(shards: int, cycles: int = 32) -> dict:
    out = subprocess.run(
        [sys.executable, "-c", CHILD, str(shards), str(cycles)],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def fmt(m: dict) -> str:
    return (
        f"shards={m['shards']}: build {m['build_s']:>6.1f}s  "
        f"run {m['run_s']:>5.1f}s  {m['cycles_per_sec']:>5.1f} cyc/s  "
        f"{m['flits_per_sec']:>6d} flits/s  "
        f"worker CPU {m['worker_cpu_total_s']:>6.1f}s  "
        f"max worker RSS {m['worker_rss_max']}"
    )


def main(argv: list[str]) -> int:
    if "--table" in argv:
        for shards in (1, 2, 4):
            print(fmt(measure(shards)))
        return 0
    one = measure(1)
    four = measure(4)
    print(fmt(one))
    print(fmt(four))
    ratio = four["worker_rss_max"] / one["worker_rss_max"]
    print(f"max-worker RSS ratio (4 shards / 1): {ratio:.3f}  "
          f"(limit {RATIO_LIMIT:.2f})")
    if ratio > RATIO_LIMIT:
        print(
            "\nFAIL: a 4-shard worker holds more than half the 1-shard "
            "worker's memory — each worker is supposed to build only its "
            "own router slice.  Look for partition leaks in "
            "src/repro/network/shard.py (_build_partial / owned filters)."
        )
        return 1
    print("\nok: shard workers hold ~1/N of the network each")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
