"""Ablation benchmarks for the design choices called out in DESIGN.md.

These have no paper ground truth; they quantify the sensitivity of the
reproduction to its own knobs and assert only directional sanity:

* OmniWAR deroute budget M (VCs spent vs throughput gained on DCR),
* the back-to-back same-dimension deroute restriction (Section 5.2's
  optimization),
* the congestion estimator (credit / queue / credit+queue),
* age-based vs round-robin arbitration,
* UGAL's Valiant candidate count.
"""

from dataclasses import replace

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.sweep import measure_point, saturation_throughput
from repro.config import default_config
from repro.core.omniwar import OmniWAR
from repro.core.registry import make_algorithm
from repro.core.ugal import Ugal
from repro.topology.hyperx import HyperX
from repro.traffic.patterns import BitComplement, DimensionComplementReverse

TOPO3D = HyperX((3, 3, 3), 2)
CYCLES = 2500


def test_ablation_omniwar_deroute_budget(benchmark, save_output):
    """More deroute budget -> more DCR throughput (VCs buy path diversity)."""
    pattern = DimensionComplementReverse(TOPO3D)

    def experiment():
        out = {}
        for m in (0, 1, 3):
            algo = OmniWAR(TOPO3D, deroutes=m)
            sweep = saturation_throughput(
                TOPO3D, algo, pattern, granularity=0.2,
                total_cycles=CYCLES, cfg=default_config(), seed=3,
            )
            out[m] = sweep.saturation_rate
        return out

    sat = run_once(benchmark, experiment)
    save_output(
        "ablation_omniwar_deroutes",
        format_table(
            ["deroute budget M", "VCs (N+M)", "DCR saturation throughput"],
            [[m, 3 + m, f"{s:.2f}"] for m, s in sorted(sat.items())],
            title="Ablation: OmniWAR deroute budget on DCR",
        ),
    )
    assert sat[0] < sat[3], "deroutes must buy throughput on DCR"
    assert sat[1] <= sat[3] + 0.2


def test_ablation_back_to_back_restriction(benchmark, save_output):
    """Section 5.2's optimization: restricting back-to-back same-dimension
    deroutes must not cost meaningful throughput."""
    pattern = BitComplement(TOPO3D.num_terminals)

    def experiment():
        out = {}
        for name in ("OmniWAR", "OmniWAR-b2b"):
            algo = make_algorithm(name, TOPO3D)
            out[name] = measure_point(
                TOPO3D, algo, pattern, 0.3, total_cycles=CYCLES, seed=3
            )
        return out

    res = run_once(benchmark, experiment)
    save_output(
        "ablation_b2b",
        format_table(
            ["variant", "accepted", "mean latency", "mean deroutes"],
            [
                [k, f"{v.accepted_rate:.3f}", f"{v.mean_latency:.1f}",
                 f"{v.mean_deroutes:.2f}"]
                for k, v in res.items()
            ],
            title="Ablation: back-to-back deroute restriction (BC @ 0.3)",
        ),
    )
    a, b = res["OmniWAR"], res["OmniWAR-b2b"]
    assert a.stable and b.stable
    assert abs(a.accepted_rate - b.accepted_rate) < 0.05


def test_ablation_congestion_estimator(benchmark, save_output):
    """DimWAR under each congestion-estimation mode on adversarial traffic."""
    pattern = BitComplement(TOPO3D.num_terminals)

    def experiment():
        out = {}
        for mode in ("credit", "queue", "credit_queue"):
            cfg = default_config()
            cfg = replace(cfg, router=replace(cfg.router, congestion_mode=mode))
            algo = make_algorithm("DimWAR", TOPO3D)
            out[mode] = measure_point(
                TOPO3D, algo, pattern, 0.3, total_cycles=CYCLES, cfg=cfg, seed=3
            )
        return out

    res = run_once(benchmark, experiment)
    save_output(
        "ablation_congestion",
        format_table(
            ["estimator", "accepted", "mean latency", "stable"],
            [
                [k, f"{v.accepted_rate:.3f}", f"{v.mean_latency:.1f}", v.stable]
                for k, v in res.items()
            ],
            title="Ablation: congestion estimator (DimWAR, BC @ 0.3)",
        ),
    )
    # downstream-credit knowledge is essential; with it, BC at 0.3 is stable
    assert res["credit"].stable and res["credit_queue"].stable
    for v in res.values():
        assert v.accepted_rate > 0.2


def test_ablation_arbiter(benchmark, save_output):
    """Age-based (the paper's choice) vs round-robin arbitration near
    saturation: age-based must not lose throughput and keeps the latency
    tail in check."""
    pattern = BitComplement(TOPO3D.num_terminals)

    def experiment():
        out = {}
        for arb in ("age", "round_robin"):
            cfg = default_config()
            cfg = replace(cfg, router=replace(cfg.router, arbiter=arb))
            algo = make_algorithm("OmniWAR", TOPO3D)
            out[arb] = measure_point(
                TOPO3D, algo, pattern, 0.28, total_cycles=CYCLES, cfg=cfg, seed=3
            )
        return out

    res = run_once(benchmark, experiment)
    save_output(
        "ablation_arbiter",
        format_table(
            ["arbiter", "accepted", "mean latency", "p99 latency"],
            [
                [k, f"{v.accepted_rate:.3f}", f"{v.mean_latency:.1f}",
                 f"{v.p99_latency:.0f}"]
                for k, v in res.items()
            ],
            title="Ablation: output arbitration (OmniWAR, BC @ 0.28)",
        ),
    )
    assert res["age"].stable
    assert res["age"].accepted_rate >= res["round_robin"].accepted_rate - 0.05


def test_ablation_ugal_candidates(benchmark, save_output):
    """More Valiant candidates give UGAL's source decision more options."""
    pattern = BitComplement(TOPO3D.num_terminals)

    def experiment():
        out = {}
        for k in (1, 4):
            algo = Ugal(TOPO3D, val_candidates=k)
            out[k] = measure_point(
                TOPO3D, algo, pattern, 0.3, total_cycles=CYCLES, seed=3
            )
        return out

    res = run_once(benchmark, experiment)
    save_output(
        "ablation_ugal_candidates",
        format_table(
            ["val candidates", "accepted", "mean latency", "stable"],
            [
                [k, f"{v.accepted_rate:.3f}", f"{v.mean_latency:.1f}", v.stable]
                for k, v in res.items()
            ],
            title="Ablation: UGAL Valiant-candidate count (BC @ 0.3)",
        ),
    )
    for v in res.values():
        assert v.accepted_rate > 0.25
    assert res[4].mean_latency <= res[1].mean_latency * 1.3


def test_ablation_sequential_allocation(benchmark, save_output):
    """Footnote 5: a sequential allocator can sharpen any adaptive
    algorithm's decisions but is architecturally infeasible; enabling our
    model of it must not change steady-state results materially (it was
    omitted from the paper's evaluation for exactly that reason)."""

    def experiment():
        out = {}
        for seq in (False, True):
            cfg = default_config()
            cfg = replace(
                cfg, router=replace(cfg.router, sequential_allocation=seq)
            )
            algo = make_algorithm("OmniWAR", TOPO3D)
            out[seq] = measure_point(
                TOPO3D, algo, BitComplement(TOPO3D.num_terminals), 0.3,
                total_cycles=CYCLES, cfg=cfg, seed=3,
            )
        return out

    res = run_once(benchmark, experiment)
    save_output(
        "ablation_seq_alloc",
        format_table(
            ["sequential allocation", "accepted", "mean latency", "p99"],
            [
                [k, f"{v.accepted_rate:.3f}", f"{v.mean_latency:.1f}",
                 f"{v.p99_latency:.0f}"]
                for k, v in res.items()
            ],
            title="Ablation: sequential allocation (OmniWAR, BC @ 0.3)",
        ),
    )
    assert res[False].stable and res[True].stable
    assert abs(res[False].accepted_rate - res[True].accepted_rate) < 0.03
