"""Benchmarks for Figure 6: one test per synthetic-traffic sub-figure plus
the 6g throughput chart.

Each test sweeps offered load for every Table 2 algorithm at smoke scale
(granularity/cycles reduced from the paper's 2%/steady-state; see
EXPERIMENTS.md for the methodology mapping), saves the measured rows, and
asserts the paper's qualitative result for that pattern on the measured
saturation throughputs.

S2 runs on a (4,4) x T4 network: swap2 stresses the per-dimension pair
links only when several terminals share them (T/2 > 1), which the paper's
8x8x8xT8 has and a T=2 smoke network does not.
"""

import pytest
from conftest import run_once

from repro.analysis.sweep import saturation_throughput
from repro.core.registry import PAPER_ALGORITHMS, make_algorithm
from repro.experiments import fig6_synthetic
from repro.experiments.common import get_scale
from repro.topology.hyperx import HyperX
from repro.traffic.patterns import Swap2

GRANULARITY = 0.2
CYCLES = 2000


def _sweep_pattern(pattern_name):
    sc = get_scale("smoke")
    topo = sc.topology()
    from repro.traffic.patterns import paper_patterns

    pattern = paper_patterns(topo)[pattern_name]
    out = {}
    for name in PAPER_ALGORITHMS:
        algo = make_algorithm(name, topo)
        out[name] = saturation_throughput(
            topo, algo, pattern, granularity=GRANULARITY,
            total_cycles=CYCLES, cfg=sc.sim_config(), seed=1,
        )
    return out


def _save_sweeps(save_output, name, sweeps, title):
    from repro.analysis.ascii_plot import plot_sweeps
    from repro.analysis.report import format_table

    rows = []
    for algo, sweep in sweeps.items():
        for p in sweep.points:
            rows.append([
                algo, f"{p.offered_rate:.2f}", f"{p.accepted_rate:.3f}",
                f"{p.mean_latency:.1f}" if p.stable else "saturated",
            ])
        rows.append([algo, "max stable", f"{sweep.saturation_rate:.3f}", ""])
    table = format_table(
        ["algorithm", "offered", "accepted", "mean latency"], rows, title=title
    )
    try:
        plot = plot_sweeps(sweeps)
    except ValueError:
        plot = "(no stable points to plot)"
    save_output(name, table + "\n\n" + plot)


def _sat(sweeps):
    return {name: s.saturation_rate for name, s in sweeps.items()}


def test_fig6a_uniform_random(benchmark, save_output):
    sweeps = run_once(benchmark, _sweep_pattern, "UR")
    _save_sweeps(save_output, "fig6a_ur", sweeps, "Figure 6a: UR load-latency")
    sat = _sat(sweeps)
    # benign traffic: every algorithm but VAL reaches high throughput;
    # VAL wastes half the bandwidth on its random intermediate.
    for name in ("DOR", "UGAL", "UGAL+", "DimWAR", "OmniWAR"):
        assert sat[name] >= 0.75, f"{name} too low on UR: {sat[name]}"
    assert sat["VAL"] < sat["DOR"] - 0.1
    # adaptive algorithms choose minimal paths when uncongested
    low = sweeps["OmniWAR"].points[0]
    assert low.mean_deroutes < 0.3


def test_fig6b_bit_complement(benchmark, save_output):
    sweeps = run_once(benchmark, _sweep_pattern, "BC")
    _save_sweeps(save_output, "fig6b_bc", sweeps, "Figure 6b: BC load-latency")
    sat = _sat(sweeps)
    # DOR is capped by the pair-link bottleneck (1/T = 0.5 at smoke scale)
    assert sat["DOR"] <= 0.55
    # all adaptive algorithms beat it; the incremental pair beats the
    # source-adaptive pair (the paper's 6b observation)
    for name in ("UGAL", "UGAL+", "DimWAR", "OmniWAR"):
        assert sat[name] > sat["DOR"] + 0.05
    assert min(sat["DimWAR"], sat["OmniWAR"]) >= max(sat["UGAL"], sat["UGAL+"]) - 0.02


def test_fig6c_urbx(benchmark, save_output):
    sweeps = run_once(benchmark, _sweep_pattern, "URBx")
    _save_sweeps(save_output, "fig6c_urbx", sweeps, "Figure 6c: URBx load-latency")
    sat = _sat(sweeps)
    # first-dimension congestion is visible at the source router: every
    # adaptive algorithm clears the DOR cap
    assert sat["DOR"] <= 0.55
    for name in ("UGAL", "UGAL+", "DimWAR", "OmniWAR"):
        assert sat[name] > sat["DOR"] + 0.1


def test_fig6d_urby(benchmark, save_output):
    sweeps = run_once(benchmark, _sweep_pattern, "URBy")
    _save_sweeps(save_output, "fig6d_urby", sweeps, "Figure 6d: URBy load-latency")
    sat = _sat(sweeps)
    # the paper's source-blindness experiment: second-dimension congestion
    # is invisible at the source; the incremental algorithms clearly beat
    # both source-adaptive algorithms (which collapse to DOR at paper scale;
    # at smoke scale back-pressure reaches the source in 1-2 hops, so they
    # recover part of the gap but stay strictly below)
    assert sat["DOR"] <= 0.55
    assert min(sat["DimWAR"], sat["OmniWAR"]) > max(sat["UGAL"], sat["UGAL+"])
    assert min(sat["DimWAR"], sat["OmniWAR"]) > sat["DOR"] + 0.2


def test_fig6e_swap2(benchmark, save_output):
    """S2 on (4,4) x T4: UGAL's topology-agnostic Valiant collapses while
    UGAL+/DimWAR/OmniWAR exploit the idle in-dimension bandwidth."""
    topo = HyperX((4, 4), 4)
    pattern = Swap2(topo)

    def experiment():
        out = {}
        for name in PAPER_ALGORITHMS:
            algo = make_algorithm(name, topo)
            out[name] = saturation_throughput(
                topo, algo, pattern, granularity=GRANULARITY,
                total_cycles=CYCLES, seed=1,
            )
        return out

    sweeps = run_once(benchmark, experiment)
    _save_sweeps(save_output, "fig6e_s2", sweeps, "Figure 6e: S2 load-latency")
    sat = _sat(sweeps)
    # the HyperX-tailored algorithms use the unused in-dimension links
    for name in ("UGAL+", "DimWAR", "OmniWAR"):
        assert sat[name] >= sat["UGAL"], f"{name} should beat plain UGAL"
    assert min(sat["DimWAR"], sat["OmniWAR"]) >= 0.75
    # plain UGAL sees a little congestion and behaves like VAL (paper: ~50%)
    assert sat["UGAL"] <= min(sat["DimWAR"], sat["OmniWAR"])


def test_fig6f_dcr(benchmark, save_output):
    sweeps = run_once(benchmark, _sweep_pattern, "DCR")
    _save_sweeps(save_output, "fig6f_dcr", sweeps, "Figure 6f: DCR load-latency")
    sat = _sat(sweeps)
    # worst-case admissible traffic for 3-D HyperX:
    # DOR collapses to ~1/(w*T);
    assert sat["DOR"] <= 0.25
    # DimWAR does poorly (forced dimension order) ...
    assert sat["DimWAR"] < sat["UGAL"]
    # ... and OmniWAR, exploiting all path diversity, is the top performer
    assert sat["OmniWAR"] == max(sat.values())
    assert sat["OmniWAR"] > sat["UGAL"] + 0.05
    assert sat["OmniWAR"] > sat["DimWAR"] + 0.3


def test_fig6g_throughput_chart(benchmark, save_output):
    """The aggregate Figure 6g bar chart at coarse granularity."""

    def experiment():
        return fig6_synthetic.run_throughput_chart(scale="smoke")

    # coarser/faster pass than the per-pattern tests: one shot, all patterns
    sc = get_scale("smoke")
    orig = (sc.granularity, sc.total_cycles)

    def coarse():
        from dataclasses import replace

        coarse_scale = replace(sc, granularity=0.25, total_cycles=1500)
        return fig6_synthetic.run_throughput_chart(scale=coarse_scale)

    result = run_once(benchmark, coarse)
    save_output(
        "fig6g_throughput", fig6_synthetic.render_throughput_chart(result)
    )
    # the paper's headline: OmniWAR is always the top performer, and DimWAR
    # is a close second everywhere except DCR
    for pat in ("UR", "BC", "URBx", "URBy", "S2"):
        sats = {a: result.saturation(pat, a) for a in PAPER_ALGORITHMS}
        assert sats["OmniWAR"] >= max(sats.values()) - 0.15, (pat, sats)
        assert sats["DimWAR"] >= max(sats.values()) - 0.20, (pat, sats)
    dcr = {a: result.saturation("DCR", a) for a in PAPER_ALGORITHMS}
    assert dcr["OmniWAR"] == max(dcr.values())
    assert dcr["DimWAR"] < dcr["OmniWAR"]
