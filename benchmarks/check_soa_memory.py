"""CI guard: the SoA datapath must not cost memory.

The compiled kernels (``repro.network.soa``) share every mutable structure
with the object facade — nothing is mirrored — so their footprint is one
closure per router/terminal plus one tuple per channel, which is noise next
to the flit/credit state itself.  This script runs the 16x16 loaded
scenario from ``test_perf_simulator.py`` twice in *fresh subprocesses*
(peak RSS is a high-water mark, so the two engines must not share a
process) — SoA on vs ``RouterConfig.soa_core=False`` — and **fails
(exit 1) if the SoA run's peak RSS exceeds the object run's by more than
5%** (allocator jitter allowance; the expected delta is ~0).

Run:  PYTHONPATH=src python benchmarks/check_soa_memory.py
"""

import subprocess
import sys

TOLERANCE = 1.05  # SoA peak RSS may exceed the object path's by at most 5%

CHILD = r"""
import resource
import sys

from repro.config import RouterConfig, SimConfig, default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom

soa = sys.argv[1] == "on"
cfg = default_config() if soa else SimConfig(
    router=RouterConfig(soa_core=False)).validated()
topo = HyperX((16, 16), 1)
net = Network(topo, make_algorithm("DimWAR", topo), cfg)
sim = Simulator(net)
sim.processes.append(
    SyntheticTraffic(net, UniformRandom(topo.num_terminals), 0.3, seed=1))
sim.run(500)
assert sim.soa_active == soa, sim.soa_fallback_reason
assert net.total_ejected_flits() > 0
# ru_maxrss is KiB on Linux, bytes on macOS; both engines read the same
# unit in the same interpreter, so the ratio is unit-free.
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def peak_rss(engine: str) -> int:
    out = subprocess.run(
        [sys.executable, "-c", CHILD, engine],
        capture_output=True,
        text=True,
        check=True,
    )
    return int(out.stdout.strip().splitlines()[-1])


def main() -> int:
    rss_obj = peak_rss("off")
    rss_soa = peak_rss("on")
    ratio = rss_soa / rss_obj
    print(f"object path peak RSS: {rss_obj}")
    print(f"SoA core    peak RSS: {rss_soa}")
    print(f"ratio (SoA / object): {ratio:.3f}  (limit {TOLERANCE:.2f})")
    if ratio > TOLERANCE:
        print(
            f"\nFAIL: the SoA datapath's peak RSS is {(ratio - 1):.1%} above "
            "the object path's — the kernels are supposed to share state, "
            "not copy it.  Look for accidental mirroring in "
            "src/repro/network/soa.py."
        )
        return 1
    print("\nok: the SoA datapath is memory-neutral")
    return 0


if __name__ == "__main__":
    sys.exit(main())
