"""Benchmark for the Section 3.2 irregular-workload scenario.

A small job saturates one router column; a large job's minimal paths cross
it mid-route.  The paper's motivation claims source-adaptive routing either
rams into the localized congestion or over-reacts globally, while routing
that can exploit HyperX's full path diversity slips around it.
"""

from conftest import run_once

from repro.experiments import irregular

ALGOS = ("DOR", "UGAL", "UGAL+", "DimWAR", "OmniWAR")


def test_irregular_workload(benchmark, save_output):
    result = run_once(
        benchmark, irregular.run, ALGOS, "smoke",
    )
    save_output("irregular_workload", irregular.render(result))
    lat = {n: r.large_job_latency for n, r in result.results.items()}
    p99 = {n: r.large_job_p99 for n, r in result.results.items()}

    # OmniWAR — free to traverse dimensions in any order — avoids the hot
    # column entirely and gives the large job the best latency.
    assert lat["OmniWAR"] == min(lat.values())
    # DOR rams straight into the localized congestion.
    assert lat["OmniWAR"] < 0.75 * lat["DOR"]
    assert p99["OmniWAR"] < 0.5 * p99["DOR"]
    # Source-adaptive UGAL recovers some of the gap (global Valiant) but the
    # HyperX-aware algorithms with in-dimension freedom do better.
    assert lat["UGAL+"] < lat["UGAL"] + 5
    # DimWAR's forced dimension order cannot dodge a hot *dimension plane*:
    # this is the DCR weakness appearing in a multi-tenant guise.
    assert lat["DimWAR"] > lat["OmniWAR"]
