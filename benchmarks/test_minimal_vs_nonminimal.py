"""Benchmark for Section 2.2's claim about minimal routing.

"On the topology evaluated in this paper all minimal algorithms achieve 4x
less worst case throughput compared to non-minimal algorithms."

We measure every minimal algorithm (DOR, MIN-AD, ROMM, O1Turn) against the
non-minimal OmniWAR on the worst-case admissible pattern (DCR) and check
the gap.  (At the smoke network's width the structural ratio is smaller
than at 8x8x8, but the deficiency must be large and universal across the
minimal family.)
"""

from conftest import run_once

from repro.analysis.sweep import saturation_throughput
from repro.analysis.report import format_table
from repro.core.registry import make_algorithm
from repro.topology.hyperx import HyperX
from repro.traffic.patterns import DimensionComplementReverse

MINIMAL = ("DOR", "MIN-AD", "ROMM", "O1Turn")


def test_minimal_worst_case_deficiency(benchmark, save_output):
    topo = HyperX((3, 3, 3), 2)
    pattern = DimensionComplementReverse(topo)

    def experiment():
        out = {}
        for name in MINIMAL + ("OmniWAR",):
            algo = make_algorithm(name, topo)
            sweep = saturation_throughput(
                topo, algo, pattern, granularity=0.15,
                total_cycles=2200, seed=2,
            )
            out[name] = sweep.saturation_rate
        return out

    sat = run_once(benchmark, experiment)
    save_output(
        "minimal_vs_nonminimal",
        format_table(
            ["algorithm", "family", "DCR saturation throughput"],
            [
                [n, "minimal" if n in MINIMAL else "non-minimal", f"{s:.2f}"]
                for n, s in sat.items()
            ],
            title="Section 2.2: minimal vs non-minimal worst-case throughput",
        ),
    )
    best_minimal = max(sat[n] for n in MINIMAL)
    # every minimal algorithm is far below the non-minimal adaptive one
    assert sat["OmniWAR"] >= 1.5 * best_minimal
    # ... and the deterministic one collapses hardest
    assert sat["DOR"] <= sat["MIN-AD"] + 0.05
