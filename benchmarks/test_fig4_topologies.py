"""Benchmark for Figure 4: the stencil application on Fat Tree vs Dragonfly
vs HyperX, each with its natural adaptive routing.

The paper reports the HyperX yielding a 25-38% reduction in communication
time; at smoke scale we assert the direction (HyperX fastest) rather than
the exact margin.
"""

from conftest import run_once

from repro.experiments import fig4_topologies


def test_fig4_topologies(benchmark, save_output):
    result = run_once(benchmark, fig4_topologies.run, "smoke", (1,), 5)
    save_output("fig4_topologies", fig4_topologies.render(result))
    times = {name: t for (name, _), t in result.times.items()}
    assert set(times) == {"FatTree", "Dragonfly", "HyperX"}
    # the paper's headline: HyperX wins the stencil head-to-head
    assert times["HyperX"] < times["Dragonfly"]
    assert times["HyperX"] < times["FatTree"]
    # and the reduction is meaningful (paper: 25-38% at full scale)
    assert result.hyperx_speedup("Dragonfly", 1) > 0.05
