"""Benchmark for Figure 8: 27-point stencil execution time per algorithm.

Runs the three phase variants (collectives only / halo only / full app) at
smoke scale for 1 iteration, plus the full app at 4 iterations (the paper
uses 16; 4 shows the same phase-blending at smoke scale), and asserts the
paper's qualitative rankings on the measured times.
"""

from conftest import run_once

from repro.experiments import fig8_stencil

ALGOS = ("DOR", "VAL", "UGAL", "UGAL+", "DimWAR", "OmniWAR")


def test_fig8_stencil(benchmark, save_output):
    def experiment():
        r = fig8_stencil.run(
            algorithms=ALGOS,
            modes=("collective", "halo", "full"),
            iteration_counts=(1,),
            scale="smoke",
            repeats=3,  # average over placements: smoke-scale noise control
        )
        r2 = fig8_stencil.run(
            algorithms=("DOR", "DimWAR", "OmniWAR"),
            modes=("full",),
            iteration_counts=(4,),
            scale="smoke",
        )
        r.times.update(r2.times)
        return r

    result = run_once(benchmark, experiment)
    save_output("fig8_stencil", fig8_stencil.render(result))
    t = result.times

    # Figure 8a: collectives are latency bound — every algorithm except VAL
    # is close to the best; VAL pays the random-intermediate latency.
    coll = {a: t[("collective", 1, a)] for a in ALGOS}
    best = min(coll.values())
    for a in ALGOS:
        if a != "VAL":
            assert coll[a] <= 1.35 * best, f"{a} collective too slow"
    assert coll["VAL"] > 1.2 * best

    # Figure 8b: halo exchanges are bandwidth bound — the oblivious
    # algorithms (DOR, VAL) are the two worst; OmniWAR beats both clearly
    # and the incremental pair is competitive with the best.
    halo = {a: t[("halo", 1, a)] for a in ALGOS}
    worst_two = sorted(halo, key=halo.get)[-2:]
    assert set(worst_two) <= {"DOR", "VAL"}
    assert halo["OmniWAR"] < 0.95 * halo["DOR"]
    assert halo["OmniWAR"] < halo["VAL"]
    assert halo["DimWAR"] < max(halo["DOR"], halo["VAL"])

    # Figure 8c: the full app follows the halo ranking; OmniWAR near-top.
    full = {a: t[("full", 1, a)] for a in ALGOS}
    assert full["OmniWAR"] < full["DOR"]
    assert full["OmniWAR"] < full["VAL"]
    assert full["OmniWAR"] <= 1.08 * min(full.values())

    # 4 blended iterations keep the incremental advantage.
    full4 = {a: t[("full", 4, a)] for a in ("DOR", "DimWAR", "OmniWAR")}
    assert full4["OmniWAR"] < full4["DOR"]
