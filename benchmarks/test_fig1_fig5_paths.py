"""Benchmarks for the illustrative figures: path examples (Fig 1) and VC
usage (Fig 5), regenerated from live traced simulations."""

from conftest import run_once

from repro.experiments import fig1_paths, fig5_vcusage


def test_fig1_paths(benchmark, save_output):
    result = run_once(benchmark, fig1_paths.run, ("UGAL", "DimWAR", "OmniWAR"), 12)
    save_output("fig1_paths", fig1_paths.render(result))
    ugal = result.traces["UGAL"]
    dimwar = result.traces["DimWAR"]
    omniwar = result.traces["OmniWAR"]
    assert ugal and dimwar and omniwar

    def mean_hops(traces):
        return sum(t.hops for t in traces) / len(traces)

    # The figure's point: when the minimal channel at the source is
    # congested, incremental algorithms divert with at most +1 hop, while
    # UGAL's only escape is a full Valiant detour (~2x minimal) — so UGAL's
    # diverted paths are strictly longer.
    for t in dimwar:
        assert t.hops <= t.min_hops + 1  # fine-grained: one deroute
    ugal_diverted = [t for t in ugal if t.hops > t.min_hops]
    if ugal_diverted:
        assert max(t.hops for t in ugal_diverted) > t.min_hops + 1
        assert mean_hops(ugal) > mean_hops(dimwar)
    # incremental algorithms did divert around the congestion
    assert any(t.deroutes > 0 for t in dimwar + omniwar)


def test_fig5_vc_usage(benchmark, save_output):
    result = run_once(benchmark, fig5_vcusage.run, ("DimWAR", "OmniWAR"))
    save_output("fig5_vcusage", fig5_vcusage.render(result))

    dim = result.examples["DimWAR"]
    omni = result.examples["OmniWAR"]
    # DimWAR: 2 resource classes, deroute on class 1 followed by the
    # aligning class-0 hop in the same dimension; dimensions in order.
    assert {r.vc_class for r in dim} <= {0, 1}
    assert any(r.move == "deroute" for r in dim)
    for a, b in zip(dim, dim[1:]):
        assert b.dim >= a.dim  # dimension order
        if a.move == "deroute":
            assert a.vc_class == 1 and b.vc_class == 0 and b.dim == a.dim
    # OmniWAR: distance classes — the class strictly increments every hop.
    assert [r.vc_class for r in omni] == list(range(len(omni)))
    assert any(r.move == "deroute" for r in omni)
