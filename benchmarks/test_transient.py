"""Benchmark: transient response to a traffic-pattern change (extension).

Section 6.2's requirement — adaptive algorithms must "react quickly to
change" — measured directly: benign UR switches to adversarial BC mid-run;
we record windowed latency and deroute rate per algorithm.
"""

from conftest import run_once

from repro.experiments import transient


def test_transient_response(benchmark, save_output):
    def experiment():
        return transient.run(
            algorithms=("UGAL", "UGAL+", "DimWAR", "OmniWAR"),
            scale="smoke",
            rate=0.4,
            window=250,
            pre_windows=5,
            post_windows=8,
        )

    results = run_once(benchmark, experiment)
    save_output("transient_response", transient.render(results))
    for name, series in results.items():
        # before the switch the adaptive algorithms route ~minimally
        assert series.pre_switch_deroutes() < 0.25, name
        # after it they load-balance: deroute rate ramps up
        assert series.post_switch_deroutes() > series.pre_switch_deroutes(), name
    # the incremental algorithms settle (stable post-switch latency)
    for name in ("DimWAR", "OmniWAR"):
        st = results[name].settling_time()
        assert st is not None, f"{name} never settled after the switch"
        assert st <= 5 * 250, f"{name} took {st} cycles to settle"
