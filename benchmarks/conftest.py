"""Shared benchmark scaffolding.

Every benchmark regenerates one paper table/figure at ``smoke`` scale (see
``repro.experiments.common.SCALES``), asserts the paper's *qualitative*
shape on the measured data, and writes the rendered rows/series to
``benchmarks/output/<name>.txt`` so the artifacts survive the run.

Paper-scale reproduction (8x8x8, 4,096 nodes) uses the same drivers with
``scale="paper"`` — see EXPERIMENTS.md.
"""

import os

import pytest

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


@pytest.fixture(scope="session")
def output_dir():
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_output(output_dir):
    def _save(name: str, text: str) -> None:
        path = os.path.join(output_dir, f"{name}.txt")
        with open(path, "w") as f:
            f.write(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
