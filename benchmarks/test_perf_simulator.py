"""Simulator performance microbenchmarks.

Not paper results — these track the speed of the reproduction itself
(cycles/second of simulation, network construction, traffic generation), so
performance regressions in the hot paths show up in benchmark history.
Unlike the figure benchmarks these run multiple rounds.
"""

from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom


def _loaded_sim(widths=(4, 4), tpr=2, algo="DimWAR", rate=0.4, warm=300):
    topo = HyperX(widths, tpr)
    net = Network(topo, make_algorithm(algo, topo), default_config())
    sim = Simulator(net)
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), rate, seed=1)
    sim.processes.append(traffic)
    sim.run(warm)
    return sim


def test_perf_network_construction(benchmark):
    topo = HyperX((4, 4, 4), 4)  # 256 terminals, 64 radix-13 routers

    def build():
        return Network(topo, make_algorithm("OmniWAR", topo), default_config())

    net = benchmark(build)
    assert net.topology.num_terminals == 256


def test_perf_simulation_cycles_loaded(benchmark):
    """Steady-state simulation speed of a loaded 32-node network."""
    sim = _loaded_sim()

    def run_chunk():
        sim.run(100)

    benchmark.pedantic(run_chunk, rounds=10, iterations=1, warmup_rounds=1)
    assert sim.network.total_ejected_flits() > 0


def test_perf_simulation_cycles_loaded_16x16(benchmark):
    """Loaded throughput at the ROADMAP's target scale (256 routers)."""
    sim = _loaded_sim(widths=(16, 16), tpr=1, algo="DimWAR", rate=0.3, warm=200)

    def run_chunk():
        sim.run(100)

    benchmark.pedantic(run_chunk, rounds=5, iterations=1, warmup_rounds=1)
    assert sim.network.total_ejected_flits() > 0


def test_perf_simulation_cycles_idle(benchmark):
    """Idle network cycles must be near-free (activity tracking works)."""
    topo = HyperX((4, 4), 2)
    net = Network(topo, make_algorithm("DOR", topo), default_config())
    sim = Simulator(net)

    def run_chunk():
        sim.run(1000)

    # iterations=10: with cycle skip-ahead an idle chunk is only a few
    # microseconds, so single-call rounds are all timer jitter.
    benchmark.pedantic(run_chunk, rounds=10, iterations=10)
    assert net.total_injected_flits() == 0


def test_perf_simulation_cycles_idle_16x16(benchmark):
    """Idle cycles at target scale: the headline for cycle skip-ahead.

    With nothing in flight the engine (repro.network.skip) jumps the clock
    straight to the end of each chunk; the warm-up round keeps the one-time
    lazy SoA compile out of the timings.
    """
    topo = HyperX((16, 16), 1)
    net = Network(topo, make_algorithm("DOR", topo), default_config())
    sim = Simulator(net)

    def run_chunk():
        sim.run(1000)

    benchmark.pedantic(run_chunk, rounds=10, iterations=10, warmup_rounds=1)
    assert net.total_injected_flits() == 0


def test_perf_simulation_fault_settling(benchmark):
    """Fault-injection settling transient: burst, degrade, long quiet drain.

    Each chunk is self-contained (fresh traffic + injector; the degrade is
    restored before the chunk ends) so rounds are statistically identical.
    The quiet tail dominates, tracking how well the engine compresses the
    mostly-idle regime of incremental-fault sweeps.
    """
    from repro.faults import DegradedTopology, FaultSchedule, FaultSet
    from repro.faults.inject import FaultInjector

    topo = DegradedTopology(HyperX((8, 8), 1))
    net = Network(topo, make_algorithm("DimWAR", topo), default_config())
    sim = Simulator(net)

    def run_chunk():
        base = sim.cycle
        traffic = SyntheticTraffic(
            net, UniformRandom(topo.num_terminals), rate=0.02, seed=7
        )
        sim.add_process(traffic)
        schedule = FaultSchedule(
            FaultSchedule.from_faultset(
                FaultSet().degrade_link(9, 3, 4), cycle=base + 40
            ).sorted_events()
            + FaultSchedule.from_faultset(
                FaultSet().degrade_link(9, 3, 1), cycle=base + 400
            ).sorted_events()
        )
        injector = FaultInjector(net, schedule)
        sim.add_process(injector)
        sim.run(60)
        traffic.stop()
        sim.remove_process(traffic)
        sim.run(5940)
        sim.remove_process(injector)

    benchmark.pedantic(run_chunk, rounds=10, iterations=1, warmup_rounds=1)
    assert sim.network.total_ejected_flits() > 0


def test_perf_traffic_generation(benchmark):
    """Vectorized Bernoulli injection across 256 terminals."""
    topo = HyperX((4, 4, 4), 4)
    net = Network(topo, make_algorithm("DOR", topo), default_config())
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), 0.3, seed=2)

    cycle = [0]

    def generate():
        traffic(cycle[0])
        cycle[0] += 1

    benchmark.pedantic(generate, rounds=50, iterations=10)
    # drop the queued packets; this benchmark never runs the network
    for t in net.terminals:
        t.source_queue.clear()


def test_perf_routing_decision(benchmark):
    """A single adaptive routing decision in a loaded router."""
    sim = _loaded_sim(algo="OmniWAR", rate=0.5, warm=500)
    net = sim.network
    topo = net.topology
    from repro.network.types import Packet

    r0 = net.routers[0]
    pkt = Packet(0, topo.num_terminals - 1, 4, create_cycle=sim.cycle)
    from repro.core.base import RouteContext

    ctx = RouteContext(
        router=r0,
        packet=pkt,
        input_port=topo.terminal_port(0),
        input_vc_class=0,
        from_terminal=True,
    )

    def decide():
        return net.algorithm.candidates(ctx)

    cands = benchmark(decide)
    assert cands
