"""Multiprocessing stress test for SweepMemo's first-writer-wins publish.

Eight worker processes hammer one memo key with interleaved ``put``/``get``
cycles.  The publication protocol (private temp file + atomic hardlink)
must let exactly one writer land the entry; every loser degrades to a
collision, every reader sees either nothing or a complete valid file, and
no temp litter survives.  This is the contention pattern of the sweep-farm
service, where pool workers and overlapping jobs share one memo root.
"""

import json
import os
from concurrent.futures import ProcessPoolExecutor

from repro.analysis import SweepMemo, point_key
from repro.analysis.memo import MEMO_SCHEMA
from repro.analysis.parallel import PointSpec
from repro.analysis.sweep import PointResult

WORKERS = 8
ROUNDS = 25


def _spec() -> PointSpec:
    return PointSpec(
        widths=(3, 3),
        terminals_per_router=2,
        algorithm="OmniWAR",
        pattern="UR",
        rate=0.2,
        total_cycles=1000,
        seed=1,
    )


def _result() -> PointResult:
    return PointResult(
        offered_rate=0.2,
        stable=True,
        reason="",
        mean_latency=20.0,
        p99_latency=40.0,
        accepted_rate=0.2,
        mean_hops=2.0,
        mean_deroutes=0.1,
        packets_delivered=500,
        cycles=1000,
        routes_computed=900,
        route_stalls=3,
    )


def _hammer(root: str) -> tuple[int, int, int]:
    """Worker entry: put+get one key ROUNDS times, count what happened."""
    memo = SweepMemo(root=root)
    spec, result = _spec(), _result()
    reads_ok = 0
    for _ in range(ROUNDS):
        path = memo.put(spec, result)
        assert path is not None
        got = memo.get(spec)
        assert got is not None, "published entry must be readable"
        assert got.packets_delivered == result.packets_delivered
        reads_ok += 1
    return memo.writes, memo.collisions, reads_ok


def test_eight_processes_hammer_one_key(tmp_path):
    root = str(tmp_path)
    with ProcessPoolExecutor(max_workers=WORKERS) as pool:
        outcomes = list(pool.map(_hammer, [root] * WORKERS))

    writes = sum(o[0] for o in outcomes)
    collisions = sum(o[1] for o in outcomes)
    reads_ok = sum(o[2] for o in outcomes)
    # Exactly one writer ever lands the entry; every other attempt is a
    # counted collision that still behaves like a successful put.
    assert writes == 1
    assert collisions == WORKERS * ROUNDS - 1
    assert reads_ok == WORKERS * ROUNDS

    # No temp litter, no shadow files: the single published entry remains,
    # valid and keyed correctly.
    entries = sorted(os.listdir(root))
    key = point_key(_spec())
    assert entries == [f"{key}.json"]
    with open(tmp_path / entries[0]) as f:
        data = json.load(f)
    assert data["schema"] == MEMO_SCHEMA and data["key"] == key


def test_collision_degrades_to_hit_in_process(tmp_path):
    """Two memo instances racing on one key: second put is a collision,
    both read back the same entry."""
    a, b = SweepMemo(root=str(tmp_path)), SweepMemo(root=str(tmp_path))
    spec, result = _spec(), _result()
    assert a.put(spec, result) is not None
    assert b.put(spec, result) is not None  # loses, degrades silently
    assert (a.writes, a.collisions) == (1, 0)
    assert (b.writes, b.collisions) == (0, 1)
    assert b.get(spec) is not None and a.get(spec) is not None


def test_corrupt_entry_is_evicted_and_repaired(tmp_path):
    """A torn/corrupt file must not shadow its key forever: get() evicts
    it (counted as a miss) and the next put republishes."""
    memo = SweepMemo(root=str(tmp_path))
    spec, result = _spec(), _result()
    memo.put(spec, result)
    path = memo._path(point_key(spec, memo.salt))
    with open(path, "w") as f:
        f.write("{ torn")
    assert memo.get(spec) is None
    assert not os.path.exists(path)  # evicted, not left to shadow the key
    assert memo.put(spec, result) is not None
    assert memo.writes == 2 and memo.collisions == 0
    assert memo.get(spec) is not None
