"""Property tests for the service job state machine and JSONL journal.

The Hypothesis suite drives :class:`repro.service.jobs.JobStore` through
arbitrary *legal* operation sequences and pins the contract down:

* every reachable state is legal and every illegal edge raises
  :class:`~repro.service.jobs.TransitionError`;
* resubmission is idempotent — the content hash is the job id, so a
  reordered spelling of the same request lands on the same job;
* cancel-after-done (or any terminal state) is a no-op;
* replaying the persisted JSONL log through the same transition rules
  reconstructs the same states, and a torn log tail degrades to the last
  consistent prefix instead of raising.
"""

import itertools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    LEGAL_TRANSITIONS,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL,
    JobQueue,
    JobStore,
    QueueFull,
    TransitionError,
)
from repro.service.spec import build_request, request_key

KEYS = ("job-a", "job-b", "job-c")
RESULT = '{"algorithm": "DimWAR", "pattern": "UR", "points": []}'


def _attach(store, jid):
    store.attach_result(jid, RESULT, points_total=0, points_simulated=0,
                        memo_hits=0)


def _legal_actions(store):
    """Every operation that is legal *now*, as (opcode, job_id) pairs."""
    actions = [("submit", k) for k in KEYS if k not in store.jobs]
    for jid, job in store.jobs.items():
        actions.append(("cancel", jid))  # legal in every state (may no-op)
        if job.state == QUEUED:
            actions.append(("run", jid))
        elif job.state == RUNNING:
            actions.extend([("done", jid), ("fail", jid),
                            ("cancel_running", jid)])
        elif job.state in (FAILED, CANCELLED):
            actions.append(("resubmit", jid))
        elif job.state == DONE:
            actions.append(("resubmit_done", jid))
    return actions


def _apply(store, op, jid):
    if op == "submit":
        job, created = store.submit(jid, {"widths": [2, 2], "id": jid})
        assert created and job.state == QUEUED
    elif op == "run":
        store.transition(jid, RUNNING)
    elif op == "done":
        _attach(store, jid)
    elif op == "fail":
        store.transition(jid, FAILED, "boom")
    elif op == "cancel":
        before = store.jobs[jid].state if jid in store.jobs else None
        job = store.request_cancel(jid)
        if before in TERMINAL:
            assert job.state == before  # cancel past terminal is a no-op
    elif op == "cancel_running":
        store.transition(jid, CANCELLED)  # the runner honouring the flag
    elif op == "resubmit":
        job, created = store.submit(jid, store.jobs[jid].request)
        assert created and job.state == QUEUED
        assert job.result_json is None and not job.cancel_requested
    elif op == "resubmit_done":
        job, created = store.submit(jid, store.jobs[jid].request)
        assert not created and job.state == DONE
        assert job.result_json == RESULT  # the cached curve survives


@given(st.data())
@settings(max_examples=120)
def test_legal_sequences_and_log_replay(data):
    store = JobStore()
    steps = data.draw(st.integers(min_value=1, max_value=40))
    for _ in range(steps):
        op, jid = data.draw(st.sampled_from(_legal_actions(store)))
        _apply(store, op, jid)
        for job in store.jobs.values():
            assert job.state in STATES
            if job.state == DONE:
                assert job.result_json is not None
            if job.state == QUEUED:
                assert job.result_json is None

    # The journal replays to the same states, seqs, and results.
    replayed = JobStore.replay(store.log_lines())
    assert {j.job_id: j.state for j in store.ordered()} == \
        {j.job_id: j.state for j in replayed.ordered()}
    assert {j.job_id: j.seq for j in store.ordered()} == \
        {j.job_id: j.seq for j in replayed.ordered()}
    assert {j.job_id: j.result_json for j in store.ordered()} == \
        {j.job_id: j.result_json for j in replayed.ordered()}


def _store_in_state(state):
    store = JobStore()
    store.submit("j", {"widths": [2, 2]})
    if state == RUNNING:
        store.transition("j", RUNNING)
    elif state == DONE:
        store.transition("j", RUNNING)
        _attach(store, "j")
    elif state == FAILED:
        store.transition("j", RUNNING)
        store.transition("j", FAILED, "boom")
    elif state == CANCELLED:
        store.transition("j", CANCELLED)
    return store


@pytest.mark.parametrize(
    "src,dst",
    [p for p in itertools.product(STATES, STATES)
     if p not in LEGAL_TRANSITIONS],
)
def test_every_illegal_edge_raises(src, dst):
    store = _store_in_state(src)
    with pytest.raises(TransitionError):
        store.transition("j", dst)
    assert store.jobs["j"].state == src  # failed transition mutates nothing


def test_unknown_state_and_unknown_job_raise():
    store = _store_in_state(QUEUED)
    with pytest.raises(TransitionError):
        store.transition("j", "exploded")
    with pytest.raises(KeyError):
        store.transition("ghost", RUNNING)
    with pytest.raises(KeyError):
        store.request_cancel("ghost")


def test_cancel_semantics_per_state():
    # queued -> cancelled immediately
    store = _store_in_state(QUEUED)
    assert store.request_cancel("j").state == CANCELLED
    # running -> flagged only; the runner flips it at a point boundary
    store = _store_in_state(RUNNING)
    job = store.request_cancel("j")
    assert job.state == RUNNING and job.cancel_requested
    # terminal -> untouched
    for state in TERMINAL:
        store = _store_in_state(state)
        assert store.request_cancel("j").state == state


# ---------------------------------------------------------------------------
# Content-addressed idempotent resubmission (through the real request hash)
# ---------------------------------------------------------------------------


@given(rates=st.lists(
    st.floats(min_value=0.01, max_value=0.9,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=5, unique=True,
), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_request_key_ignores_rate_order(rates, seed):
    fwd = build_request({"widths": [2, 2], "rates": rates, "seed": seed})
    rev = build_request(
        {"widths": [2, 2], "rates": list(reversed(rates)), "seed": seed}
    )
    assert request_key(fwd) == request_key(rev)
    other = build_request(
        {"widths": [2, 2], "rates": rates, "seed": seed + 1}
    )
    assert request_key(other) != request_key(fwd)


def _memo(tmp_path):
    from repro.analysis.memo import SweepMemo

    return SweepMemo(root=str(tmp_path / "memo"))


def test_queue_resubmission_is_idempotent(tmp_path):
    queue = JobQueue(JobStore(), _memo(tmp_path))
    req_a = build_request({"widths": [2, 2], "rates": [0.2, 0.1]})
    req_b = build_request({"rates": [0.1, 0.2], "widths": [2, 2]})
    job1, created1 = queue.submit(req_a)
    job2, created2 = queue.submit(req_b)
    assert created1 and not created2
    assert job1.job_id == job2.job_id and job1 is job2
    assert queue.jobs_deduped == 1 and queue.depth() == 1


def test_queue_bounded_depth_raises_queue_full(tmp_path):
    queue = JobQueue(JobStore(), _memo(tmp_path), max_depth=2)
    for seed in (1, 2):
        queue.submit(build_request({"widths": [2, 2], "seed": seed}))
    with pytest.raises(QueueFull):
        queue.submit(build_request({"widths": [2, 2], "seed": 3}))
    # Resubmission of a known job is a dedup, never a capacity question.
    job, created = queue.submit(build_request({"widths": [2, 2], "seed": 1}))
    assert not created and job.state == QUEUED


# ---------------------------------------------------------------------------
# Persistence: the on-disk journal and restart recovery
# ---------------------------------------------------------------------------


def test_log_file_round_trip_and_recovery(tmp_path):
    path = str(tmp_path / "jobs.jsonl")
    store = JobStore(log_path=path)
    store.submit("a", {"widths": [2, 2]})
    store.transition("a", RUNNING)
    _attach(store, "a")
    store.submit("b", {"widths": [3, 3]})
    store.transition("b", RUNNING)  # interrupted mid-run
    store.submit("c", {"widths": [2, 2], "seed": 9})  # still queued

    reloaded = JobStore.load(path)
    assert {j.job_id: j.state for j in reloaded.ordered()} == {
        "a": DONE, "b": RUNNING, "c": QUEUED,
    }
    assert reloaded.jobs["a"].result_json == RESULT

    revived = reloaded.recover()
    assert [j.job_id for j in revived] == ["b", "c"]
    assert reloaded.jobs["b"].state == QUEUED
    assert "interrupted" in json.dumps(reloaded.log_lines())
    # Recovery events were journaled too: a second replay agrees.
    again = JobStore.load(path)
    assert again.jobs["b"].state == QUEUED and again.jobs["a"].state == DONE


def test_torn_log_tail_degrades_to_prefix(tmp_path):
    store = JobStore()
    store.submit("a", {"widths": [2, 2]})
    store.transition("a", RUNNING)
    lines = store.log_lines()
    torn = lines + ['{"event": "state", "job_id": "a", "st']  # crash mid-write
    replayed = JobStore.replay(torn)
    assert replayed.jobs["a"].state == RUNNING  # prefix, no exception

    illegal = lines + [json.dumps(
        {"event": "state", "job_id": "a", "state": "queued"}
    )]
    assert JobStore.replay(illegal).jobs["a"].state == RUNNING


def test_missing_log_file_is_empty_store(tmp_path):
    store = JobStore.load(str(tmp_path / "absent.jsonl"))
    assert store.ordered() == [] and store.recover() == []
