"""Property-based tests for the random fault samplers (Hypothesis).

The samplers back every faulted experiment, so their contract is
load-bearing: the draw must be deterministic per seed (replayable
transients), exact in size (a "fail 3 links" run fails exactly 3), and —
by default — connectivity-preserving, which is the precondition under
which the adaptive algorithms must still deliver 100% of traffic.

The second half hardens the *fault-routing algorithms* themselves over
Hypothesis-drawn degraded topologies: the successor-paper schemes (FTHX,
VCFree) must either deliver every packet and drain, or report a
:class:`~repro.core.base.NoRouteError` — a sanitized run that ends with
traffic stuck and no error is a silent deadlock, the one outcome the
deadlock-freedom proofs forbid.  Their rank certificates and
dependency-graph acyclicity are re-proven per drawn fault sample, since
masking changes the reachable dependency edges.

The Hypothesis profile is pinned in ``conftest.py`` (derandomized under
``ci``, the default), so these generate the same examples on every run.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.deadlock import assert_deadlock_free, verify_rank_certificate
from repro.core.registry import make_algorithm
from repro.experiments.faults import run_fault_transient
from repro.faults.degraded import DegradedTopology
from repro.faults.model import (
    LinkFault,
    RouterFault,
    _router_links,
    _surviving_connected,
    random_faults,
    random_link_faults,
)
from repro.topology.hyperx import HyperX

TOPO = HyperX((3, 3), 1)
NUM_LINKS = len(_router_links(TOPO))  # 18 on a 3x3 HyperX

seeds = st.integers(min_value=0, max_value=2**32 - 1)

#: the successor-paper fault-routing schemes under property test
NEW_ALGORITHMS = ("FTHX", "VCFree")


@given(seed=seeds, k=st.integers(min_value=1, max_value=4))
@settings(max_examples=40)
def test_link_faults_preserve_connectivity(seed, k):
    fset = random_link_faults(TOPO, k, seed=seed)
    assert _surviving_connected(TOPO, fset.resolve(TOPO))


@given(seed=seeds, r=st.integers(min_value=1, max_value=3))
@settings(max_examples=25)
def test_router_faults_preserve_connectivity(seed, r):
    fset = random_faults(TOPO, routers=r, seed=seed)
    state = fset.resolve(TOPO)
    assert _surviving_connected(TOPO, state)
    assert len(state.failed_routers) == r


@given(seed=seeds, k=st.integers(min_value=0, max_value=NUM_LINKS),
       r=st.integers(min_value=0, max_value=8))
@settings(max_examples=40)
def test_sampler_is_deterministic_per_seed(seed, k, r):
    a = random_faults(TOPO, links=k, routers=r, seed=seed,
                      require_connected=False)
    b = random_faults(TOPO, links=k, routers=r, seed=seed,
                      require_connected=False)
    assert a.faults == b.faults


@given(seed=seeds, k=st.integers(min_value=0, max_value=NUM_LINKS),
       r=st.integers(min_value=0, max_value=8))
@settings(max_examples=40)
def test_sampler_draws_exactly_the_requested_faults(seed, k, r):
    fset = random_faults(TOPO, links=k, routers=r, seed=seed,
                         require_connected=False)
    link_faults = [f for f in fset if isinstance(f, LinkFault)]
    router_faults = [f for f in fset if isinstance(f, RouterFault)]
    assert len(link_faults) == k
    assert len(router_faults) == r
    # distinct draws: no link or router named twice
    assert len({(f.router, f.port) for f in link_faults}) == k
    assert len({f.router for f in router_faults}) == r


@given(seed=seeds)
@settings(max_examples=10)
def test_sampler_rejects_impossible_requests(seed):
    with pytest.raises(ValueError, match="links"):
        random_link_faults(TOPO, NUM_LINKS + 1, seed=seed)
    with pytest.raises(ValueError, match="router"):
        random_faults(TOPO, routers=TOPO.num_routers, seed=seed)


# ----------------------------------------------------------------------
# Successor-paper algorithms on drawn degraded topologies
# ----------------------------------------------------------------------

@pytest.mark.parametrize("algorithm", NEW_ALGORITHMS)
@given(fault_seed=seeds, k=st.integers(min_value=0, max_value=3))
@settings(max_examples=12)
def test_new_algorithms_deliver_or_report_never_hang(algorithm, fault_seed, k):
    """Delivery + the silent-deadlock check, sanitizer attached throughout.

    On a connectivity-preserving sample either the run delivers every
    packet and drains, or the algorithm reports NoRouteError (VCFree's
    narrower escape envelope does this legitimately).  A run that neither
    drains nor reports is a silent deadlock; a SanitizerError (invariant
    violation, stall) propagates and fails the test on its own.
    """
    res = run_fault_transient(
        algorithm,
        topology=HyperX((3, 3), 1),
        rate=0.2,
        window=100,
        pre_windows=1,
        post_windows=3,
        fail_links=k,
        fault_seed=fault_seed,
        seed=3,
        check=True,
    )
    if res.routing_error is None:
        assert res.drained, (
            f"{algorithm} neither drained nor reported under {k} faults "
            f"(fault seed {fault_seed}): silent deadlock"
        )
        assert res.delivered_fraction == 1.0
    else:
        assert "no candidates" in res.routing_error


@pytest.mark.parametrize("algorithm", NEW_ALGORITHMS)
@given(fault_seed=seeds, k=st.integers(min_value=0, max_value=3))
@settings(max_examples=10)
def test_new_algorithms_stay_acyclic_under_drawn_faults(
    algorithm, fault_seed, k
):
    """Cycle search and the rank certificate, re-proven per fault sample.

    Fault masking rewrites each algorithm's reachable candidate sets, so
    acyclicity is re-checked on the degraded dependency graph — by
    exhaustive cycle search and by the algorithm's own channel-rank
    certificate, which must strictly increase along every surviving edge.
    """
    fset = random_link_faults(TOPO, k, seed=fault_seed) if k else None
    topo = DegradedTopology(TOPO, fset) if fset is not None else TOPO
    algo = make_algorithm(algorithm, topo)
    assert_deadlock_free(topo, algo)
    assert verify_rank_certificate(topo, algo) > 0
