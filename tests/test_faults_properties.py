"""Property-based tests for the random fault samplers (Hypothesis).

The samplers back every faulted experiment, so their contract is
load-bearing: the draw must be deterministic per seed (replayable
transients), exact in size (a "fail 3 links" run fails exactly 3), and —
by default — connectivity-preserving, which is the precondition under
which the adaptive algorithms must still deliver 100% of traffic.

The Hypothesis profile is pinned in ``conftest.py`` (derandomized under
``ci``, the default), so these generate the same examples on every run.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.model import (
    LinkFault,
    RouterFault,
    _router_links,
    _surviving_connected,
    random_faults,
    random_link_faults,
)
from repro.topology.hyperx import HyperX

TOPO = HyperX((3, 3), 1)
NUM_LINKS = len(_router_links(TOPO))  # 18 on a 3x3 HyperX

seeds = st.integers(min_value=0, max_value=2**32 - 1)


@given(seed=seeds, k=st.integers(min_value=1, max_value=4))
@settings(max_examples=40)
def test_link_faults_preserve_connectivity(seed, k):
    fset = random_link_faults(TOPO, k, seed=seed)
    assert _surviving_connected(TOPO, fset.resolve(TOPO))


@given(seed=seeds, r=st.integers(min_value=1, max_value=3))
@settings(max_examples=25)
def test_router_faults_preserve_connectivity(seed, r):
    fset = random_faults(TOPO, routers=r, seed=seed)
    state = fset.resolve(TOPO)
    assert _surviving_connected(TOPO, state)
    assert len(state.failed_routers) == r


@given(seed=seeds, k=st.integers(min_value=0, max_value=NUM_LINKS),
       r=st.integers(min_value=0, max_value=8))
@settings(max_examples=40)
def test_sampler_is_deterministic_per_seed(seed, k, r):
    a = random_faults(TOPO, links=k, routers=r, seed=seed,
                      require_connected=False)
    b = random_faults(TOPO, links=k, routers=r, seed=seed,
                      require_connected=False)
    assert a.faults == b.faults


@given(seed=seeds, k=st.integers(min_value=0, max_value=NUM_LINKS),
       r=st.integers(min_value=0, max_value=8))
@settings(max_examples=40)
def test_sampler_draws_exactly_the_requested_faults(seed, k, r):
    fset = random_faults(TOPO, links=k, routers=r, seed=seed,
                         require_connected=False)
    link_faults = [f for f in fset if isinstance(f, LinkFault)]
    router_faults = [f for f in fset if isinstance(f, RouterFault)]
    assert len(link_faults) == k
    assert len(router_faults) == r
    # distinct draws: no link or router named twice
    assert len({(f.router, f.port) for f in link_faults}) == k
    assert len({f.router for f in router_faults}) == r


@given(seed=seeds)
@settings(max_examples=10)
def test_sampler_rejects_impossible_requests(seed):
    with pytest.raises(ValueError, match="links"):
        random_link_faults(TOPO, NUM_LINKS + 1, seed=seed)
    with pytest.raises(ValueError, match="router"):
        random_faults(TOPO, routers=TOPO.num_routers, seed=seed)
