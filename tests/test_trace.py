"""Tests for message-trace record and replay."""

import pytest

from repro.application.engine import StencilApplication
from repro.application.placement import RandomPlacement
from repro.application.stencil import StencilDecomposition
from repro.application.trace import (
    MessageTrace,
    TracedMessage,
    TraceReplay,
    record_stencil_trace,
)
from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.topology.hyperx import HyperX


def _record(algo="DimWAR", seed=1):
    topo = HyperX((3, 3), 2)
    net = Network(topo, make_algorithm(algo, topo), default_config())
    sim = Simulator(net)
    decomp = StencilDecomposition((2, 2, 2), aggregate_flits=52)
    pl = RandomPlacement(decomp.num_ranks, topo.num_terminals, seed=seed)
    app = StencilApplication(net, decomp, pl, iterations=1, mode="full")
    trace = record_stencil_trace(app, sim)
    return topo, app, trace


def test_record_counts_every_message():
    topo, app, trace = _record()
    assert len(trace) == app.messages_sent
    assert trace.num_terminals == topo.num_terminals
    trace.validate()
    assert trace.total_flits > 0
    assert trace.span_cycles > 0


def test_roundtrip_serialization(tmp_path):
    _, _, trace = _record()
    path = tmp_path / "trace.jsonl"
    trace.save(str(path))
    loaded = MessageTrace.load(str(path))
    assert loaded.num_terminals == trace.num_terminals
    assert loaded.messages == trace.messages


def test_loads_rejects_garbage():
    with pytest.raises(ValueError):
        MessageTrace.loads("")
    bad = MessageTrace(
        [TracedMessage(0, 0, 999, 4, "halo")], num_terminals=8
    )
    with pytest.raises(ValueError):
        bad.validate()


def test_replay_delivers_everything():
    topo, _, trace = _record()
    net = Network(topo, make_algorithm("OmniWAR", topo), default_config())
    sim = Simulator(net)
    replay = TraceReplay(net, trace)
    t = replay.run(sim, max_cycles=500_000)
    assert t > 0
    assert replay.posted == len(trace)
    assert net.total_ejected_flits() == trace.total_flits


def test_replay_comparable_across_algorithms():
    """The same captured workload replayed under two algorithms: both
    complete; completion times are comparable numbers."""
    topo, _, trace = _record()
    times = {}
    for algo in ("DOR", "OmniWAR"):
        net = Network(topo, make_algorithm(algo, topo), default_config())
        sim = Simulator(net)
        times[algo] = TraceReplay(net, trace).run(sim, max_cycles=500_000)
    assert times["DOR"] >= trace.span_cycles - 1
    assert times["OmniWAR"] >= trace.span_cycles - 1


def test_replay_requires_matching_size():
    _, _, trace = _record()
    small = HyperX((2, 2), 1)
    net = Network(small, make_algorithm("DOR", small), default_config())
    with pytest.raises(ValueError):
        TraceReplay(net, trace)
