"""Tests for channels, buffers, credit trackers, arbiters, and core types."""

import pytest

from repro.network.arbiter import AgeBasedArbiter, RoundRobinArbiter, make_arbiter
from repro.network.buffers import CreditTracker, InputUnit
from repro.network.channel import Channel
from repro.network.types import Credit, Flit, Message, Packet


# ---------------------------------------------------------------------------
# Channel
# ---------------------------------------------------------------------------


def test_channel_latency_exact():
    out = []
    ch = Channel(3, out.append)
    ch.push(10, "a")
    ch.deliver(11)
    ch.deliver(12)
    assert out == []
    ch.deliver(13)
    assert out == ["a"]
    assert not ch.busy


def test_channel_orders_items():
    out = []
    ch = Channel(2, out.append)
    ch.push(0, "a")
    ch.push(1, "b")
    ch.deliver(2)
    assert out == ["a"]
    ch.deliver(3)
    assert out == ["a", "b"]


def test_channel_rate_limit():
    ch = Channel(1, lambda item: None)
    ch.push(5, "a")
    with pytest.raises(RuntimeError):
        ch.push(5, "b")
    # past cycles also rejected (simulation time is monotonic)
    with pytest.raises(RuntimeError):
        ch.push(4, "c")


def test_credit_channel_allows_bursts():
    out = []
    ch = Channel(1, out.append, limit_rate=False)
    ch.push(5, Credit(0))
    ch.push(5, Credit(1))
    ch.deliver(6)
    assert out == [Credit(0), Credit(1)]


def test_channel_rejects_zero_latency():
    with pytest.raises(ValueError):
        Channel(0, lambda item: None)


def test_channel_utilization_count():
    ch = Channel(1, lambda item: None)
    for c in range(4):
        ch.push(c, c)
    assert ch.utilization_count == 4
    assert ch.in_flight == 4


# ---------------------------------------------------------------------------
# Buffers and credits
# ---------------------------------------------------------------------------


def _flit(size=1, idx=0):
    return Flit(Packet(0, 1, size, create_cycle=0), idx)


def test_input_unit_receive_and_overflow():
    iu = InputUnit(num_vcs=2, depth=2)
    iu.receive(0, _flit())
    iu.receive(0, _flit())
    assert iu.occupancy(0) == 2
    assert iu.occupancy() == 2
    with pytest.raises(RuntimeError):
        iu.receive(0, _flit())
    iu.receive(1, _flit())
    assert iu.occupancy() == 3
    assert not iu.empty


def test_input_unit_validation():
    with pytest.raises(ValueError):
        InputUnit(0, 4)
    with pytest.raises(ValueError):
        InputUnit(2, 0)


def test_credit_tracker_protocol():
    ct = CreditTracker(num_vcs=2, depth=3)
    assert ct.available(0) == 3
    ct.consume(0)
    ct.consume(0)
    assert ct.available(0) == 1
    assert ct.occupied(0) == 2
    assert ct.total_occupied() == 2
    ct.restore(0)
    assert ct.available(0) == 2


def test_credit_tracker_underflow_overflow():
    ct = CreditTracker(1, 1)
    ct.consume(0)
    with pytest.raises(RuntimeError):
        ct.consume(0)
    ct.restore(0)
    with pytest.raises(RuntimeError):
        ct.restore(0)


# ---------------------------------------------------------------------------
# Arbiters
# ---------------------------------------------------------------------------


def test_age_arbiter_picks_oldest():
    arb = AgeBasedArbiter()
    reqs = [(5, 1), (3, 2), (7, 0)]
    assert arb.pick(reqs, key=lambda r: r) == (3, 2)
    assert arb.pick([], key=lambda r: r) is None


def test_round_robin_rotates():
    arb = RoundRobinArbiter(4)
    reqs = [(0,), (2,)]
    first = arb.pick(reqs, key=lambda r: r)
    assert first == (0,)
    # priority moved past 0 -> 2 wins next
    assert arb.pick(reqs, key=lambda r: r) == (2,)
    assert arb.pick(reqs, key=lambda r: r) == (0,)


def test_round_robin_no_starvation():
    arb = RoundRobinArbiter(3)
    reqs = [(0,), (1,), (2,)]
    grants = [arb.pick(reqs, key=lambda r: r)[0] for _ in range(9)]
    assert sorted(set(grants)) == [0, 1, 2]
    for g in (0, 1, 2):
        assert grants.count(g) == 3


def test_make_arbiter():
    assert isinstance(make_arbiter("age", 4), AgeBasedArbiter)
    assert isinstance(make_arbiter("round_robin", 4), RoundRobinArbiter)
    with pytest.raises(ValueError):
        make_arbiter("priority", 4)


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


def test_packet_flits_head_tail():
    p = Packet(0, 1, 3, create_cycle=5)
    flits = p.flits()
    assert len(flits) == 3
    assert flits[0].is_head and not flits[0].is_tail
    assert flits[2].is_tail and not flits[2].is_head
    assert not flits[1].is_head and not flits[1].is_tail


def test_single_flit_packet_is_head_and_tail():
    f = Packet(0, 1, 1, create_cycle=0).flits()[0]
    assert f.is_head and f.is_tail


def test_packet_latency_and_age_key():
    p = Packet(0, 1, 2, create_cycle=10)
    assert p.latency is None
    p.eject_cycle = 35
    assert p.latency == 25
    q = Packet(0, 1, 2, create_cycle=9)
    assert q.age_key < p.age_key  # older first


def test_packet_ids_unique():
    ids = {Packet(0, 1, 1, create_cycle=0).pid for _ in range(100)}
    assert len(ids) == 100


def test_packet_rejects_empty():
    with pytest.raises(ValueError):
        Packet(0, 1, 0, create_cycle=0)


def test_message_completion():
    m = Message(0, 1, size_flits=20)
    m.packets_total = 2
    assert not m.complete
    m.packets_delivered = 2
    assert m.complete
