"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "DimWAR" in out and "OmniWAR" in out
    assert "fig6g" in out and "smoke" in out


def test_sweep_command(capsys):
    rc = main([
        "sweep", "--algorithm", "OmniWAR", "--pattern", "BC",
        "--widths", "3", "3", "--terminals", "2",
        "--rates", "0.15", "--cycles", "1200",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "OmniWAR on BC" in out
    assert "0.15" in out


def test_sweep_dcr_requires_3d(capsys):
    """Domain errors route through the argparse error path: usage + message
    on stderr, exit code 2 — never a raw traceback."""
    with pytest.raises(SystemExit) as exc:
        main([
            "sweep", "--pattern", "DCR", "--widths", "3", "3",
            "--rates", "0.1", "--cycles", "500",
        ])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "usage:" in err and "sweep:" in err and "3-D" in err


def test_sweep_check_flag(capsys):
    rc = main([
        "sweep", "--algorithm", "DimWAR", "--widths", "2", "2",
        "--rates", "0.1", "--cycles", "400", "--check",
    ])
    assert rc == 0
    assert "DimWAR on UR" in capsys.readouterr().out


def test_stencil_command(capsys):
    rc = main([
        "stencil", "--algorithms", "DOR", "--mode", "collective",
        "--iterations", "1",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "collective" in out and "DOR" in out


def test_figure_table1(capsys):
    assert main(["figure", "table1"]) == 0
    out = capsys.readouterr().out
    assert "DimWAR" in out and "Clos-AD" in out


def test_figure_fig2(capsys):
    assert main(["figure", "fig2"]) == 0
    assert "78608" in capsys.readouterr().out


def test_bad_command_rejected():
    with pytest.raises(SystemExit):
        main(["explode"])
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])
    with pytest.raises(SystemExit):
        main(["sweep", "--algorithm", "NOPE"])


# ---------------------------------------------------------------------------
# trace subcommand
# ---------------------------------------------------------------------------


def test_trace_command_live_with_timeseries(capsys):
    rc = main([
        "trace", "--algorithm", "OmniWAR", "--widths", "2", "2",
        "--rate", "0.25", "--cycles", "300", "--window", "100",
        "--heatmap", "vc",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "trace: OmniWAR on UR" in out
    assert "inject=" in out and "eject=" in out
    assert "window" in out  # time-series table header
    assert "vc0" in out  # heatmap rows


def test_trace_command_golden_reproduces_pinned_bytes(tmp_path, capsys):
    import os

    out_path = str(tmp_path / "g.jsonl")
    rc = main(["trace", "--golden", "DimWAR", "--jsonl", out_path])
    assert rc == 0
    assert "golden scenario DimWAR" in capsys.readouterr().out
    pinned = os.path.join(
        os.path.dirname(__file__), "golden", "trace_DimWAR.jsonl"
    )
    with open(out_path) as f, open(pinned) as g:
        assert f.read() == g.read()


def test_trace_command_profile_report(capsys):
    rc = main([
        "trace", "--widths", "2", "2", "--rate", "0.2",
        "--cycles", "200", "--profile",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "phase" in out and "route" in out and "total" in out


def test_trace_command_chrome_export(tmp_path, capsys):
    import json

    path = str(tmp_path / "t.chrome.json")
    rc = main([
        "trace", "--widths", "2", "2", "--rate", "0.2",
        "--cycles", "200", "--chrome", path,
    ])
    assert rc == 0
    assert "perfetto" in capsys.readouterr().out
    with open(path) as f:
        assert "traceEvents" in json.load(f)


@pytest.mark.parametrize(
    "argv,needle",
    [
        (["trace", "--golden", "DimWAR", "--profile"], "--profile"),
        (["trace", "--golden", "DimWAR", "--window", "100"], "--window"),
        (["trace", "--golden", "Valiant"], "Valiant"),
        (["trace", "--heatmap", "vc"], "--window"),
        (["trace", "--sample-every", "0"], "sample_every"),
    ],
)
def test_trace_bad_flags_exit_2(argv, needle, capsys):
    with pytest.raises(SystemExit) as exc:
        main(argv)
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "usage:" in err and "trace:" in err and needle in err


def test_faults_bad_schedule_exits_2(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["faults", "--schedule", "/nonexistent/schedule.json"])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "usage:" in err and "faults:" in err


def test_faults_rejects_non_fault_capable_algorithm(capsys):
    """A registered-but-not-fault-capable name fails up front with exit 2
    and the capable list — never a mid-run NoRouteError traceback."""
    with pytest.raises(SystemExit) as exc:
        main(["faults", "--algorithms", "VAL", "DimWAR"])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "usage:" in err and "faults:" in err
    assert "VAL is not fault-capable" in err
    assert "FTHX" in err and "VCFree" in err  # the capable list is named


@pytest.mark.parametrize(
    "argv,needle",
    [
        (["faults", "--compare", "--schedule", "s.json"], "--schedule"),
        (["faults", "--terminals", "2"], "--widths"),
        (["faults", "--compare", "--fault-counts", "-1"], "--fault-counts"),
    ],
)
def test_faults_bad_flag_combos_exit_2(argv, needle, capsys):
    with pytest.raises(SystemExit) as exc:
        main(argv)
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "usage:" in err and "faults:" in err and needle in err


def test_faults_compare_smoke(capsys):
    rc = main([
        "faults", "--compare", "--algorithms", "DimWAR", "FTHX",
        "--fault-counts", "0", "1", "--no-saturation", "--rate", "0.1",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Fault head-to-head" in out
    assert "Delivered fraction" in out and "Settling time" in out
    assert "DimWAR" in out and "FTHX" in out
    assert "aturation" not in out  # table suppressed by --no-saturation


def _fake_recorded(path, name="test_perf_simulation_cycles_idle", min_s=1.0):
    import json

    summary = {
        "schema": "repro-perf-summary/1",
        "benchmarks": [{
            "name": name, "min_s": min_s, "median_s": min_s, "mean_s": min_s,
            "rounds": 5, "seed_min_s": min_s,
        }],
    }
    with open(path, "w") as f:
        json.dump(summary, f)
    return path


def test_bench_compare_only_prints_speedup_table(tmp_path, capsys):
    recorded = _fake_recorded(str(tmp_path / "rec.json"))
    rc = main([
        "bench", "--out", recorded, "--compare",
        "--only", "test_perf_simulation_cycles_idle",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "test_perf_simulation_cycles_idle" in out
    assert "recorded" in out and "fresh" in out and "x" in out
    # --compare must never rewrite the recorded file.
    with open(recorded) as f:
        assert "rounds" in f.read()


def test_bench_regenerates_summary(tmp_path, capsys):
    import json

    out = str(tmp_path / "BENCH.json")
    rc = main(["bench", "--out", out])
    assert rc == 0
    assert f"wrote {out}" in capsys.readouterr().out
    with open(out) as f:
        summary = json.load(f)
    assert summary["schema"] == "repro-perf-summary/1"
    names = [b["name"] for b in summary["benchmarks"]]
    assert names == sorted(names) and len(names) == 8
    assert all(b["min_s"] > 0 for b in summary["benchmarks"])


def test_bench_default_regen_carries_recorded_xl_entries():
    """A default-tier regeneration must not drop the recorded 16x16x16
    numbers: they only refresh under ``--xl`` (or an explicit ``--only``),
    and the CI ratchet SKIPs names absent from a fresh run."""
    from repro.analysis.bench import SCENARIOS_XL, merge_seed_baselines

    xl_name = next(iter(SCENARIOS_XL))
    recorded = {
        "benchmarks": [
            {"name": xl_name, "min_s": 9.0, "median_s": 9.0, "mean_s": 9.0,
             "rounds": 1},
            {"name": "zz_gone_scenario", "min_s": 1.0},
        ],
    }
    fresh = {"benchmarks": [
        {"name": "test_perf_network_construction", "min_s": 0.5},
    ]}
    merged = merge_seed_baselines(fresh, recorded)
    names = [b["name"] for b in merged["benchmarks"]]
    assert names == sorted(names)
    assert xl_name in names  # carried over verbatim
    assert "zz_gone_scenario" not in names  # only XL entries are carried


def test_bench_unknown_xl_name_still_rejected():
    from repro.analysis.bench import run_benchmarks

    with pytest.raises(ValueError, match="unknown benchmark"):
        run_benchmarks(["test_perf_network_construction_32x32x32"])


def test_bench_only_without_compare_exits_2(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["bench", "--only", "test_perf_simulation_cycles_idle"])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "usage:" in err and "bench:" in err and "--compare" in err


def test_bench_compare_without_recorded_exits_2(tmp_path, capsys):
    with pytest.raises(SystemExit) as exc:
        main([
            "bench", "--compare", "--out", str(tmp_path / "missing.json"),
            "--only", "test_perf_simulation_cycles_idle",
        ])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "bench:" in err and "recorded summary" in err


def test_bench_unknown_name_exits_2(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["bench", "--compare", "--only", "no_such_benchmark"])
    assert exc.value.code == 2
    assert "unknown benchmark" in capsys.readouterr().err


@pytest.mark.parametrize(
    "argv,needle",
    [
        (["serve", "--port", "-1"], "port"),
        (["serve", "--port", "70000"], "port"),
        (["serve", "--queue-depth", "0"], "queue-depth"),
        (["serve", "--rate-limit", "-2"], "rate-limit"),
        (["serve", "--rate-limit", "5", "--burst", "0"], "burst"),
    ],
)
def test_serve_bad_flags_exit_2(argv, needle, capsys):
    with pytest.raises(SystemExit) as exc:
        main(argv)
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "usage:" in err and "serve:" in err and needle in err
