"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "DimWAR" in out and "OmniWAR" in out
    assert "fig6g" in out and "smoke" in out


def test_sweep_command(capsys):
    rc = main([
        "sweep", "--algorithm", "OmniWAR", "--pattern", "BC",
        "--widths", "3", "3", "--terminals", "2",
        "--rates", "0.15", "--cycles", "1200",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "OmniWAR on BC" in out
    assert "0.15" in out


def test_sweep_dcr_requires_3d():
    with pytest.raises(ValueError):
        main([
            "sweep", "--pattern", "DCR", "--widths", "3", "3",
            "--rates", "0.1", "--cycles", "500",
        ])


def test_stencil_command(capsys):
    rc = main([
        "stencil", "--algorithms", "DOR", "--mode", "collective",
        "--iterations", "1",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "collective" in out and "DOR" in out


def test_figure_table1(capsys):
    assert main(["figure", "table1"]) == 0
    out = capsys.readouterr().out
    assert "DimWAR" in out and "Clos-AD" in out


def test_figure_fig2(capsys):
    assert main(["figure", "fig2"]) == 0
    assert "78608" in capsys.readouterr().out


def test_bad_command_rejected():
    with pytest.raises(SystemExit):
        main(["explode"])
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])
    with pytest.raises(SystemExit):
        main(["sweep", "--algorithm", "NOPE"])
