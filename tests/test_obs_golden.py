"""Golden-trace corpus: pinned event streams, byte-for-byte.

Each file under ``tests/golden/`` is the complete canonical-JSONL event
stream of one tiny pinned run (4x4 HyperX, 1 terminal/router, UR at rate
0.25, seed 7, 160 inject + 80 drain cycles, every 4th packet sampled) for
one routing algorithm.  The fault-capable successor algorithms (FTHX,
VCFree) pin the same run on a statically degraded topology — two pinned
link faults — as ``trace_fault_<name>.jsonl``, covering the fault-masking
candidate paths the pristine corpus never takes.  The tests regenerate the same run from the current
code and compare **bytes** — any change to routing order, rng consumption,
event schema, or JSON canonicalization shows up as a diff against the
pinned stream, which is exactly the point: the trace pins the simulator's
observable behaviour.

When a behaviour change is *intended*, regenerate the corpus with::

    PYTHONPATH=src python -m pytest tests/test_obs_golden.py --update-golden

and review the diff like any other source change.
"""

import json
import os

import pytest

from repro.obs.golden import (
    GOLDEN_ALGORITHMS,
    GOLDEN_FAULT_ALGORITHMS,
    GOLDEN_OPTIONS,
    golden_filename,
    golden_jsonl,
)

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: every pinned stream: pristine baselines + faulted successor schemes
ALL_GOLDEN = GOLDEN_ALGORITHMS + GOLDEN_FAULT_ALGORITHMS


def _pinned_path(algorithm):
    return os.path.join(GOLDEN_DIR, golden_filename(algorithm))


@pytest.mark.parametrize("algorithm", ALL_GOLDEN)
def test_golden_trace_matches_pinned_bytes(algorithm, request):
    """The pinned run reproduces its trace stream byte-for-byte."""
    current = golden_jsonl(algorithm)
    path = _pinned_path(algorithm)
    if request.config.getoption("--update-golden"):
        with open(path, "w") as f:
            f.write(current)
        pytest.skip(f"regenerated {os.path.relpath(path, GOLDEN_DIR)}")
    assert os.path.exists(path), (
        f"missing golden file {path}; regenerate with --update-golden"
    )
    with open(path) as f:
        pinned = f.read()
    if current != pinned:
        cur_lines, pin_lines = current.splitlines(), pinned.splitlines()
        for i, (a, b) in enumerate(zip(cur_lines, pin_lines)):
            if a != b:
                raise AssertionError(
                    f"{algorithm} golden trace diverges at line {i + 1}:\n"
                    f"  pinned:  {b}\n  current: {a}\n"
                    "(intended change? regenerate with --update-golden)"
                )
        raise AssertionError(
            f"{algorithm} golden trace length changed: "
            f"{len(pin_lines)} pinned vs {len(cur_lines)} current lines"
        )


@pytest.mark.parametrize("algorithm", ALL_GOLDEN)
def test_golden_stream_is_canonical_jsonl(algorithm):
    """Every pinned line round-trips through the canonical encoder."""
    with open(_pinned_path(algorithm)) as f:
        lines = f.read().splitlines()
    assert lines, "golden stream must not be empty"
    for line in lines:
        obj = json.loads(line)
        assert json.dumps(
            obj, sort_keys=True, separators=(",", ":"), allow_nan=False
        ) == line
        assert set(obj) == {"cycle", "data", "pkt", "type", "where"}


def test_golden_runs_fit_the_ring():
    """The pinned config must never overflow the ring (drops would make
    the 'complete stream' framing a lie)."""
    for algorithm in ALL_GOLDEN:
        tracer = _tracer(algorithm)
        assert tracer.ring.dropped == 0
        assert 0 < len(tracer.ring) <= GOLDEN_OPTIONS.capacity


def _tracer(algorithm):
    from repro.obs.golden import golden_tracer

    return golden_tracer(algorithm)


def test_golden_rejects_unknown_algorithm():
    from repro.obs.golden import golden_tracer

    with pytest.raises(ValueError):
        golden_tracer("Valiant")
