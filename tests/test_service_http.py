"""End-to-end differential tests for the HTTP experiment service.

The headline contract: a curve fetched through the API is byte-identical
to a direct :func:`~repro.analysis.sweep.sweep_load` call — for any worker
count, faulted specs included — and a second identical submission is a
pure cache hit that simulates nothing.  The rest pins down the HTTP error
contract (400/404/409/413/429/503), per-client rate limiting, the bounded
queue, cancellation, and the memo-warm restart path.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis.sweep import sweep_load
from repro.service import ExperimentService, RateLimiter, TokenBucket
from repro.service.spec import build_request, build_scenario, request_key

BASE_REQ = {"widths": [2, 2], "rates": [0.1, 0.2], "total_cycles": 400,
            "seed": 3}
FAULT = ["LinkFault", {"router": 0, "port": 0}]


def _service(tmp_path, **kw):
    kw.setdefault("memo_root", str(tmp_path / "memo"))
    kw.setdefault("job_log", str(tmp_path / "jobs.jsonl"))
    kw.setdefault("rate_limit", 0.0)
    return ExperimentService(port=0, **kw)


def _call(svc, method, path, payload=None, headers=None):
    """One HTTP round trip -> (status, headers, body bytes)."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(svc.url + path, data=data, method=method,
                                 headers=headers or {})
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read()


def _wait_done(svc, job_id, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, _, body = _call(svc, "GET", f"/jobs/{job_id}")
        assert status == 200
        snap = json.loads(body)
        if snap["state"] in ("done", "failed", "cancelled"):
            return snap
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish in {timeout_s}s")


def _direct_curve(raw, workers):
    """What a caller bypassing the service entirely would archive."""
    req = build_request(raw)
    topo, algo, patt = build_scenario(req)
    return sweep_load(
        topo, algo, patt, rates=list(req.rates),
        stop_after_unstable=req.stop_after_unstable, workers=workers,
        total_cycles=req.total_cycles, seed=req.seed,
    ).to_json()


# ---------------------------------------------------------------------------
# The differential contract: served bytes == direct sweep_load bytes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("workers", [1, 4])
def test_served_curves_match_direct_sweep_byte_for_byte(tmp_path, workers):
    svc = _service(tmp_path, workers=workers).start()
    try:
        # The fault needs a 3x3: on a 2x2 losing a link strands DimWAR.
        for raw in (BASE_REQ, {**BASE_REQ, "widths": [3, 3],
                               "faults": [FAULT]}):
            status, _, body = _call(svc, "POST", "/jobs", raw)
            assert status == 202
            snap = json.loads(body)
            assert snap["created"] and snap["state"] == "queued"
            assert snap["job_id"] == request_key(build_request(raw))

            done = _wait_done(svc, snap["job_id"])
            assert done["state"] == "done", done.get("error")
            assert done["has_result"]
            # Speculative dispatch may simulate points a truncated sweep
            # drops, so >= rather than == here.
            assert done["points_simulated"] + done["memo_hits"] >= \
                done["points_total"] >= 1

            status, _, served = _call(
                svc, "GET", f"/jobs/{snap['job_id']}/result"
            )
            assert status == 200
            assert served == _direct_curve(raw, workers).encode("utf-8")
    finally:
        svc.shutdown()


def test_resubmission_is_a_pure_cache_hit(tmp_path):
    svc = _service(tmp_path, workers=1).start()
    try:
        status, _, body = _call(svc, "POST", "/jobs", BASE_REQ)
        assert status == 202
        job_id = json.loads(body)["job_id"]
        first = _wait_done(svc, job_id)
        assert first["state"] == "done" and first["points_simulated"] > 0

        # Same request, reordered spelling: answered by the existing job,
        # zero additional simulation.
        reordered = {k: BASE_REQ[k] for k in reversed(list(BASE_REQ))}
        reordered["rates"] = list(reversed(BASE_REQ["rates"]))
        status, _, body = _call(svc, "POST", "/jobs", reordered)
        snap = json.loads(body)
        assert status == 200 and not snap["created"]
        assert snap["job_id"] == job_id and snap["state"] == "done"
        assert snap["points_simulated"] == first["points_simulated"]
        assert snap["runs"] == 1  # the simulator never ran again

        _, _, stats = _call(svc, "GET", "/stats")
        assert json.loads(stats)["jobs_deduped"] == 1
    finally:
        svc.shutdown()


def test_restarted_service_warm_starts_from_shared_memo(tmp_path):
    svc = _service(tmp_path, workers=1).start()
    try:
        _, _, body = _call(svc, "POST", "/jobs", BASE_REQ)
        first = _wait_done(svc, json.loads(body)["job_id"])
        assert first["points_simulated"] > 0
    finally:
        svc.shutdown()

    # Fresh process state, fresh job log — only the memo directory shared.
    svc2 = _service(tmp_path, workers=1,
                    job_log=str(tmp_path / "jobs2.jsonl")).start()
    try:
        _, _, body = _call(svc2, "POST", "/jobs", BASE_REQ)
        snap = json.loads(body)
        assert snap["created"]  # new job log: a brand-new job...
        done = _wait_done(svc2, snap["job_id"])
        assert done["state"] == "done"
        assert done["points_simulated"] == 0  # ...but zero simulated points
        assert done["memo_hits"] >= done["points_total"] >= 1
        status, _, served = _call(svc2, "GET",
                                  f"/jobs/{snap['job_id']}/result")
        assert status == 200
        assert served == _direct_curve(BASE_REQ, 1).encode("utf-8")
    finally:
        svc2.shutdown()


# ---------------------------------------------------------------------------
# HTTP error contract
# ---------------------------------------------------------------------------


def test_bad_requests_are_400_with_an_error_body(tmp_path):
    svc = _service(tmp_path).start(runner=False)
    try:
        for raw in (
            {"widths": [2, 2], "warp": 9},          # unknown key
            {"widths": [2, 2], "rates": []},        # empty sweep
            {"widths": [2, 2], "algorithm": "??"},  # unknown algorithm
            {"widths": [2, 2], "total_cycles": 1},  # below the floor
        ):
            status, _, body = _call(svc, "POST", "/jobs", raw)
            assert status == 400, raw
            assert "error" in json.loads(body)
    finally:
        svc.shutdown()


def test_unknown_jobs_and_endpoints_are_404(tmp_path):
    svc = _service(tmp_path).start(runner=False)
    try:
        for method, path in (
            ("GET", "/jobs/nope"), ("GET", "/jobs/nope/result"),
            ("POST", "/jobs/nope/cancel"), ("GET", "/nope"),
            ("POST", "/nope"),
        ):
            status, _, _ = _call(svc, method, path,
                                 {} if method == "POST" else None)
            assert status == 404, (method, path)
    finally:
        svc.shutdown()


def test_result_before_done_is_409(tmp_path):
    svc = _service(tmp_path).start(runner=False)  # accepted, never run
    try:
        _, _, body = _call(svc, "POST", "/jobs", BASE_REQ)
        job_id = json.loads(body)["job_id"]
        status, _, body = _call(svc, "GET", f"/jobs/{job_id}/result")
        assert status == 409
        assert "queued" in json.loads(body)["error"]
    finally:
        svc.shutdown()


def test_full_queue_is_503_with_retry_after(tmp_path):
    svc = _service(tmp_path, max_depth=1).start(runner=False)
    try:
        status, _, _ = _call(svc, "POST", "/jobs", BASE_REQ)
        assert status == 202
        status, headers, body = _call(svc, "POST", "/jobs",
                                      {**BASE_REQ, "seed": 99})
        assert status == 503
        assert "Retry-After" in headers
        assert "capacity" in json.loads(body)["error"]
        # A known job id still answers even when the queue is full.
        status, _, body = _call(svc, "POST", "/jobs", BASE_REQ)
        assert status == 200 and not json.loads(body)["created"]
    finally:
        svc.shutdown()


def test_cancel_over_http(tmp_path):
    svc = _service(tmp_path).start(runner=False)
    try:
        _, _, body = _call(svc, "POST", "/jobs", BASE_REQ)
        job_id = json.loads(body)["job_id"]
        status, _, body = _call(svc, "POST", f"/jobs/{job_id}/cancel", {})
        assert status == 200
        assert json.loads(body)["state"] == "cancelled"
        _, _, listing = _call(svc, "GET", "/jobs")
        states = {j["job_id"]: j["state"]
                  for j in json.loads(listing)["jobs"]}
        assert states == {job_id: "cancelled"}
    finally:
        svc.shutdown()


# ---------------------------------------------------------------------------
# Rate limiting: the HTTP 429 path and the token-bucket units
# ---------------------------------------------------------------------------


def test_throttled_client_gets_429_but_healthz_stays_up(tmp_path):
    svc = _service(tmp_path, rate_limit=0.001, burst=2).start(runner=False)
    try:
        me = {"X-Repro-Client": "hammering-client"}
        codes = [_call(svc, "GET", "/stats", headers=me)[0]
                 for _ in range(4)]
        assert codes[:2] == [200, 200] and codes[2:] == [429, 429]
        status, headers, _ = _call(svc, "GET", "/stats", headers=me)
        assert status == 429 and float(headers["Retry-After"]) > 0
        # Another client has an independent bucket; liveness is exempt.
        other = {"X-Repro-Client": "patient-client"}
        assert _call(svc, "GET", "/stats", headers=other)[0] == 200
        assert _call(svc, "GET", "/healthz", headers=me)[0] == 200
        _, _, stats = _call(svc, "GET", "/stats", headers=other)
        assert json.loads(stats)["throttled"] >= 3
    finally:
        svc.shutdown()


def test_token_bucket_refills_on_a_fake_clock():
    t = [0.0]
    bucket = TokenBucket(rate=1.0, burst=2, clock=lambda: t[0])
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    wait = bucket.try_acquire()
    assert wait > 0.0
    t[0] += wait  # wait exactly as told -> next acquire succeeds
    assert bucket.try_acquire() == 0.0
    t[0] += 3600.0  # a bucket never overfills past its burst
    for _ in range(2):
        assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() > 0.0


def test_rate_limiter_is_per_client_and_zero_disables():
    t = [0.0]
    limiter = RateLimiter(rate=1.0, burst=1, clock=lambda: t[0])
    assert limiter.check("a") == 0.0
    assert limiter.check("a") > 0.0
    assert limiter.check("b") == 0.0  # an independent bucket
    assert limiter.throttled == 1

    unlimited = RateLimiter(rate=0.0, clock=lambda: t[0])
    assert all(unlimited.check("x") == 0.0 for _ in range(100))
    assert unlimited.throttled == 0
