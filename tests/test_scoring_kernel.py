"""Tests for the router's scoring fast path and the route-cache eviction.

The scoring kernel (``RouterConfig.scoring_kernel``) re-implements the
reference ``_allocate_vc`` / ``port_congestion`` / ``route_weight`` chain as
one batched pass over the cached candidate skeleton.  It is only allowed to
exist because it is *provably* identical: the property test here replays
loaded simulations kernel-on vs kernel-off across the HyperX algorithms and
random router states, and demands the full per-decision record — chosen
candidate, allocated VC, and the bit-exact float weight of every candidate
scored — match between the two paths.  (The ``repro.check`` oracle then
proves the end-to-end sweep JSON identical; this test localises a future
divergence to the exact routing decision.)

The route cache's clock eviction is tested the same way: a capacity small
enough to thrash must bound the cache, count its evictions, and change
nothing about simulation results.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RouterConfig, SimConfig
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.telemetry import TelemetryProbe
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom

#: HyperX algorithms with a non-None ``cache_key`` — the ones the skeleton
#: cache (and therefore the scoring kernel) applies to.
CACHEABLE_ALGOS = ["DOR", "MIN-AD", "DimWAR", "OmniWAR"]


def _decision_stream(algo_name, widths, tpr, rate, seed, cycles, kernel):
    """Run a loaded sim and record every routing decision via the route
    hook: (cycle, router, input, packet, chosen candidate, out VC, and the
    (candidate, vc, weight) list of everything scored)."""
    cfg = SimConfig(router=RouterConfig(scoring_kernel=kernel)).validated()
    topo = HyperX(widths, tpr)
    algo = make_algorithm(algo_name, topo)
    net = Network(topo, algo, cfg)
    sim = Simulator(net)
    sim.processes.append(
        SyntheticTraffic(net, UniformRandom(topo.num_terminals), rate, seed=seed)
    )
    stream = []

    def hook(cycle, router, in_port, in_vc, ctx, cand, out_vc, scored):
        # Identify the packet by (src, dst, birth) rather than pid: pids come
        # from a process-global counter, so run #2 of a pair is offset.
        stream.append((
            cycle,
            router.router_id,
            in_port,
            in_vc,
            (ctx.packet.src_terminal, ctx.packet.dst_terminal,
             ctx.packet.create_cycle),
            (cand.out_port, cand.vc_class, cand.hops, cand.deroute),
            out_vc,
            tuple(
                ((c.out_port, c.vc_class, c.hops, c.deroute), v, w)
                for c, v, w in scored
            ),
        ))

    for r in net.routers:
        r.add_route_hook(hook)
    sim.run(cycles)
    return stream


@settings(max_examples=20)
@given(
    algo=st.sampled_from(CACHEABLE_ALGOS),
    widths=st.sampled_from([(2, 2), (3, 2), (3, 3), (2, 2, 2)]),
    tpr=st.integers(min_value=1, max_value=2),
    rate=st.sampled_from([0.15, 0.3, 0.45, 0.6]),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_kernel_weights_equal_reference(algo, widths, tpr, rate, seed):
    """Fast-path weights == reference congestion x hops weights, bit-exact,
    for random router states across the HyperX algorithms."""
    fast = _decision_stream(algo, widths, tpr, rate, seed, 250, kernel=True)
    ref = _decision_stream(algo, widths, tpr, rate, seed, 250, kernel=False)
    assert fast, "loaded run made no routing decisions — vacuous property"
    assert fast == ref


def test_kernel_weights_match_under_class_scope():
    """The kernel's class-scope branch (congestion over the candidate's own
    VC group) must match the reference too; the default config only
    exercises port scope."""
    for kernel in (True, False):
        cfg = SimConfig(
            router=RouterConfig(scoring_kernel=kernel, congestion_scope="class")
        ).validated()
        topo = HyperX((3, 3), 2)
        net = Network(topo, make_algorithm("OmniWAR", topo), cfg)
        sim = Simulator(net)
        sim.processes.append(
            SyntheticTraffic(net, UniformRandom(topo.num_terminals), 0.4, seed=7)
        )
        stream = []

        def hook(cycle, router, in_port, in_vc, ctx, cand, out_vc, scored,
                 stream=stream):
            stream.append(
                (cycle, router.router_id, ctx.packet.dst_terminal,
                 cand.out_port, out_vc, tuple(w for _, _, w in scored))
            )

        for r in net.routers:
            r.add_route_hook(hook)
        sim.run(300)
        if kernel:
            fast = stream
        else:
            assert stream == fast


# ---------------------------------------------------------------------------
# Route-cache eviction
# ---------------------------------------------------------------------------


def _loaded(cap=None, cycles=400):
    topo = HyperX((3, 3), 2)
    net = Network(topo, make_algorithm("OmniWAR", topo),
                  SimConfig().validated())
    if cap is not None:
        for r in net.routers:
            r._route_cache_cap = cap
    sim = Simulator(net)
    sim.processes.append(
        SyntheticTraffic(net, UniformRandom(topo.num_terminals), 0.4, seed=3)
    )
    sim.run(cycles)
    return net


def test_route_cache_eviction_bounds_cache_and_counts():
    net = _loaded(cap=2)
    evictions = sum(r.route_cache_evictions for r in net.routers)
    assert evictions > 0, "cap=2 under 9 destinations must thrash"
    for r in net.routers:
        assert len(r._route_cache) <= 2
        # Counter consistency: every lookup is exactly one hit or miss, and
        # the cache can only have evicted entries it first admitted.
        assert r.route_cache_hits + r.route_cache_misses > 0
        assert r.route_cache_evictions <= r.route_cache_misses


def test_route_cache_eviction_does_not_change_results():
    full = _loaded()
    tiny = _loaded(cap=2)
    assert sum(r.route_cache_evictions for r in full.routers) == 0
    assert (
        full.total_ejected_flits() == tiny.total_ejected_flits()
        and sum(r.flits_forwarded for r in full.routers)
        == sum(r.flits_forwarded for r in tiny.routers)
    )


def test_route_cache_disabled_stays_empty():
    topo = HyperX((2, 2), 1)
    cfg = SimConfig(router=RouterConfig(route_cache=False)).validated()
    net = Network(topo, make_algorithm("DimWAR", topo), cfg)
    sim = Simulator(net)
    sim.processes.append(SyntheticTraffic(net, UniformRandom(4), 0.3, seed=1))
    sim.run(300)
    for r in net.routers:
        assert len(r._route_cache) == 0
        assert r.route_cache_hits == 0
        # Misses still count lookups, so the telemetry hit-rate is honest
        # about the cache being off.
    assert sum(r.route_cache_misses for r in net.routers) > 0


def test_telemetry_aggregates_route_cache_counters():
    net = _loaded(cap=2)
    stats = TelemetryProbe(net).route_cache_stats()
    assert stats["hits"] == sum(r.route_cache_hits for r in net.routers)
    assert stats["misses"] == sum(r.route_cache_misses for r in net.routers)
    assert stats["evictions"] == sum(
        r.route_cache_evictions for r in net.routers
    )
    assert 0.0 < stats["hit_rate"] < 1.0


def test_telemetry_route_cache_stats_idle_network():
    topo = HyperX((2, 2), 1)
    net = Network(topo, make_algorithm("DOR", topo), SimConfig().validated())
    stats = TelemetryProbe(net).route_cache_stats()
    assert stats == {"hits": 0, "misses": 0, "evictions": 0, "hit_rate": 0.0}
