"""Tests for the k-ary n-tree fat tree and its routing."""

import pytest

from repro.config import default_config
from repro.core.fattree_routing import FatTreeAdaptive, FatTreeDeterministic
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.topology.fattree import FatTree
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom


def test_counts():
    ft = FatTree(4, 3)
    assert ft.num_terminals == 64
    assert ft.num_routers == 3 * 16
    assert ft.radix(0) == 8  # leaf: 4 down + 4 up
    top = ft.switch_id(2, (0, 0))
    assert ft.radix(top) == 4  # top level: down only


@pytest.mark.parametrize("k,n", [(2, 2), (2, 3), (3, 2), (4, 3), (2, 4)])
def test_validate_structure(k, n):
    FatTree(k, n).validate()


def test_rejects_bad_params():
    with pytest.raises(ValueError):
        FatTree(1, 3)
    with pytest.raises(ValueError):
        FatTree(4, 0)


def test_level_word_roundtrip():
    ft = FatTree(3, 3)
    for r in range(ft.num_routers):
        level, word = ft.level_word(r)
        assert ft.switch_id(level, word) == r


def test_up_down_edges_consistent():
    ft = FatTree(3, 3)
    for r in range(ft.num_routers):
        level, _ = ft.level_word(r)
        for port in range(ft.radix(r)):
            peer = ft.peer(r, port)
            if peer.is_terminal:
                assert level == 0
                continue
            plevel, _ = ft.level_word(peer.router_port.router)
            if port < ft.k:
                assert plevel == level - 1
            else:
                assert plevel == level + 1


def test_covers_and_down_digit():
    ft = FatTree(2, 3)  # 8 terminals
    leaf = ft.terminal_attachment(5).router
    assert ft.covers(leaf, 5)
    assert ft.covers(leaf, 4)
    assert not ft.covers(leaf, 0)
    top = ft.switch_id(2, (0, 0))
    for t in range(8):
        assert ft.covers(top, t)  # root covers everything


def test_nca_level():
    ft = FatTree(2, 3)
    assert ft.nca_level(0, 1) == 0  # same leaf
    assert ft.nca_level(0, 2) == 1
    assert ft.nca_level(0, 7) == 2


def test_min_hops_symmetric_and_even_for_leaves():
    ft = FatTree(2, 3)
    for a in range(0, ft._switches_per_level):  # leaf switches
        for b in range(0, ft._switches_per_level):
            h = ft.min_hops(a, b)
            assert h == ft.min_hops(b, a)
            assert h % 2 == 0  # up-then-down between same-level switches


@pytest.mark.parametrize("algo_cls", [FatTreeAdaptive, FatTreeDeterministic])
def test_routing_delivers_everything(algo_cls):
    ft = FatTree(4, 3)
    algo = algo_cls(ft)
    net = Network(ft, algo, default_config())
    sim = Simulator(net)
    traffic = SyntheticTraffic(net, UniformRandom(ft.num_terminals), 0.3, seed=8)
    sim.processes.append(traffic)
    sim.run(1200)
    traffic.stop()
    assert sim.drain(max_cycles=200_000)
    assert net.total_injected_flits() == net.total_ejected_flits()


def test_paths_never_bounce():
    """Up/down routing: once a packet starts descending it never goes up."""
    from dataclasses import replace

    ft = FatTree(2, 3)
    algo = FatTreeAdaptive(ft)
    cfg = default_config()
    cfg = replace(cfg, network=replace(cfg.network, track_vc_trace=True))
    net = Network(ft, algo, cfg)
    sim = Simulator(net)
    delivered = []
    for t in net.terminals:
        t.delivery_listeners.append(lambda p, c: delivered.append(p))
    traffic = SyntheticTraffic(net, UniformRandom(ft.num_terminals), 0.3, seed=2)
    sim.processes.append(traffic)
    sim.run(800)
    traffic.stop()
    sim.drain(max_cycles=100_000)
    assert delivered
    for p in delivered:
        router = ft.router_of_terminal(p.src_terminal)
        descending = False
        for port in p.port_trace or []:
            if ft.is_up_port(router, port):
                assert not descending, "packet went up after descending"
            else:
                descending = True
            router = ft.peer(router, port).router_port.router
        # and the path length matches the NCA geometry
        nca = ft.nca_level(p.src_terminal, p.dst_terminal)
        assert p.hops == 2 * nca


def test_adaptive_requires_fattree():
    from repro.topology.hyperx import HyperX

    with pytest.raises(TypeError):
        FatTreeAdaptive(HyperX((3, 3), 2))
