"""Tests for the torus/mesh topologies and dateline DOR (Section 2.1)."""

import pytest

from repro.config import default_config
from repro.core.deadlock import (
    assert_deadlock_free,
    dependency_graph_incremental,
    find_cycle,
)
from repro.core.torus_routing import MeshDOR, TorusDOR
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.topology.torus import Torus, mesh
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import BitComplement, UniformRandom


# ---------------------------------------------------------------------------
# Topology
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("widths", [(4,), (3, 3), (4, 3), (2, 3, 4)])
@pytest.mark.parametrize("wrap", [True, False])
def test_structure_valid(widths, wrap):
    Torus(widths, 2, wrap=wrap).validate()


def test_width2_ring_single_neighbor():
    t = Torus((2, 3), 1, wrap=True)
    t.validate()
    # in the width-2 dimension each router has exactly one neighbour port
    r = t.router_id((0, 0))
    dims = [t.port_info(r, p)[0] for p in range(t.num_router_ports(r))]
    assert dims.count(0) == 1
    assert dims.count(1) == 2


def test_mesh_border_has_fewer_ports():
    m = mesh((3, 3), 1)
    corner = m.router_id((0, 0))
    center = m.router_id((1, 1))
    assert m.num_router_ports(corner) == 2
    assert m.num_router_ports(center) == 4


def test_torus_distances_wrap():
    t = Torus((5,), 1)
    assert t.dim_distance(0, 0, 4) == 1  # around the ring
    assert t.dim_direction(0, 0, 4) == -1
    assert t.dim_distance(0, 0, 2) == 2
    assert t.dim_direction(0, 0, 2) == 1
    assert t.min_hops(t.router_id((0,)), t.router_id((4,))) == 1


def test_mesh_distances_no_wrap():
    m = mesh((5,), 1)
    assert m.dim_distance(0, 0, 4) == 4
    assert m.dim_direction(0, 0, 4) == 1


def test_torus_diameter():
    t = Torus((4, 4), 1)
    assert t.diameter() == 4  # 2 + 2
    m = mesh((4, 4), 1)
    assert m.diameter() == 6  # 3 + 3


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------


def test_mesh_dor_rejects_torus_and_vice_versa():
    with pytest.raises(ValueError):
        MeshDOR(Torus((3, 3), 1, wrap=True))
    with pytest.raises(ValueError):
        TorusDOR(mesh((3, 3), 1))
    from repro.topology.hyperx import HyperX

    with pytest.raises(TypeError):
        TorusDOR(HyperX((3, 3), 1))


@pytest.mark.parametrize(
    "topo_factory,algo_cls",
    [
        (lambda: mesh((3, 3), 2), MeshDOR),
        (lambda: Torus((4, 4), 2), TorusDOR),
        (lambda: Torus((2, 3), 2), TorusDOR),
        (lambda: Torus((5,), 2), TorusDOR),
    ],
)
def test_delivery_and_conservation(topo_factory, algo_cls):
    topo = topo_factory()
    net = Network(topo, algo_cls(topo), default_config())
    sim = Simulator(net)
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), 0.25, seed=4)
    sim.processes.append(traffic)
    sim.run(1200)
    traffic.stop()
    assert sim.drain(max_cycles=200_000)
    assert net.total_injected_flits() == net.total_ejected_flits()


def test_paths_are_minimal():
    from dataclasses import replace

    topo = Torus((5, 4), 2)
    cfg = default_config()
    cfg = replace(cfg, network=replace(cfg.network, track_vc_trace=True))
    net = Network(topo, TorusDOR(topo), cfg)
    sim = Simulator(net)
    delivered = []
    for t in net.terminals:
        t.delivery_listeners.append(lambda p, c: delivered.append(p))
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), 0.2, seed=1)
    sim.processes.append(traffic)
    sim.run(900)
    traffic.stop()
    sim.drain(max_cycles=100_000)
    assert delivered
    for p in delivered:
        src_r = topo.router_of_terminal(p.src_terminal)
        dst_r = topo.router_of_terminal(p.dst_terminal)
        assert p.hops == topo.min_hops(src_r, dst_r)


def test_dateline_classes_used():
    """Under BC on a torus, wrap crossings happen and class 1 gets used."""
    from dataclasses import replace

    topo = Torus((4, 4), 2)
    cfg = default_config()
    cfg = replace(cfg, network=replace(cfg.network, track_vc_trace=True))
    net = Network(topo, TorusDOR(topo), cfg)
    sim = Simulator(net)
    delivered = []
    for t in net.terminals:
        t.delivery_listeners.append(lambda p, c: delivered.append(p))
    traffic = SyntheticTraffic(net, BitComplement(topo.num_terminals), 0.2, seed=1)
    sim.processes.append(traffic)
    sim.run(900)
    traffic.stop()
    sim.drain(max_cycles=100_000)
    classes = set()
    for p in delivered:
        for vc in p.vc_trace or []:
            classes.add(net.vc_map.class_of(vc))
    assert classes == {0, 1}


# ---------------------------------------------------------------------------
# Deadlock: the Section 2.1 story, mechanically checked
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("widths", [(3, 3), (4,), (2, 4)])
def test_mesh_dor_single_class_deadlock_free(widths):
    m = mesh(widths, 1)
    assert_deadlock_free(m, MeshDOR(m))


@pytest.mark.parametrize("widths", [(4,), (3, 3), (4, 4), (2, 3)])
def test_torus_dateline_deadlock_free(widths):
    t = Torus(widths, 1)
    algo = TorusDOR(t)
    assert algo.num_classes == 2
    assert_deadlock_free(t, algo)


def test_torus_without_dateline_has_cycle():
    """DOR on a ring with a single class must show the structural cycle —
    the reason datelines exist."""

    class NaiveTorusDOR(TorusDOR):
        name = "naive"
        num_classes = 1

        def __init__(self, topology):
            RoutingAlgorithmInitBypass(self, topology)

        def candidates(self, ctx):
            cands = super().candidates(ctx)
            return [
                type(c)(out_port=c.out_port, vc_class=0, hops=c.hops)
                for c in cands
            ]

    def RoutingAlgorithmInitBypass(self_, topology):
        # call _TorusBase.__init__ without TorusDOR's wrap check inversion
        from repro.core.torus_routing import _TorusBase

        _TorusBase.__init__(self_, topology)

    t = Torus((4,), 1)
    g = dependency_graph_incremental(t, NaiveTorusDOR(t))
    assert find_cycle(g) is not None
