"""Behavioural tests of the routing algorithms, checked on real simulations
with per-hop port/VC traces enabled.

These verify the properties the paper *claims* for each algorithm:

* DOR: deterministic dimension-order minimal paths, one resource class;
* VAL/UGAL/Clos-AD: two-phase paths, class 0 before class 1;
* MIN-AD: minimal paths, any dimension order, distance classes;
* DimWAR: dimension order, at most one deroute per dimension, deroutes on
  class 1 followed immediately by the aligning class-0 hop;
* OmniWAR: VC (distance class) strictly increases every hop, at most M
  deroutes, path length <= N + M;
* OmniWAR-b2b: additionally never deroutes twice in a row in one dimension.
"""

from dataclasses import replace

import pytest

from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.types import Packet
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom
from repro.traffic.sizes import UniformSize


def _traced_run(algo_name, widths=(3, 3, 3), tpr=2, rate=0.45, cycles=1500,
                seed=3, **algo_kwargs):
    """Run traffic hot enough to trigger deroutes; return delivered packets
    with traces plus the network (for the VC map)."""
    topo = HyperX(widths, tpr)
    algo = make_algorithm(algo_name, topo, **algo_kwargs)
    cfg = default_config()
    cfg = replace(cfg, network=replace(cfg.network, track_vc_trace=True))
    net = Network(topo, algo, cfg)
    sim = Simulator(net)
    delivered = []
    for t in net.terminals:
        t.delivery_listeners.append(lambda p, c: delivered.append(p))
    traffic = SyntheticTraffic(
        net, UniformRandom(topo.num_terminals), rate, UniformSize(1, 8), seed=seed
    )
    sim.processes.append(traffic)
    sim.run(cycles)
    traffic.stop()
    sim.drain(max_cycles=200_000)
    assert delivered, "no packets delivered"
    return topo, net, delivered


def _hop_dims(topo, packet):
    """Dimension of each router-to-router hop along the packet's path."""
    dims = []
    router = topo.router_of_terminal(packet.src_terminal)
    for port in packet.port_trace or []:
        d, coord = topo.port_target(router, port)
        dims.append((d, coord))
        c = list(topo.coords(router))
        c[d] = coord
        router = topo.router_id(c)
    assert router == topo.router_of_terminal(packet.dst_terminal)
    return dims


# ---------------------------------------------------------------------------
# DOR
# ---------------------------------------------------------------------------


def test_dor_paths_minimal_and_dimension_ordered():
    topo, net, pkts = _traced_run("DOR", rate=0.15)
    for p in pkts:
        src_r = topo.router_of_terminal(p.src_terminal)
        dst_r = topo.router_of_terminal(p.dst_terminal)
        assert p.hops == topo.min_hops(src_r, dst_r)
        assert p.deroutes == 0
        dims = [d for d, _ in _hop_dims(topo, p)]
        assert dims == sorted(dims)  # strict dimension order
        # single resource class: class 0 VCs only
        for vc in p.vc_trace or []:
            assert net.vc_map.class_of(vc) == 0


# ---------------------------------------------------------------------------
# VAL
# ---------------------------------------------------------------------------


def test_val_two_phase_classes_and_bounded_hops():
    topo, net, pkts = _traced_run("VAL", rate=0.2)
    n = topo.num_dims
    saw_phase1 = False
    for p in pkts:
        assert p.hops <= 2 * n
        classes = [net.vc_map.class_of(v) for v in p.vc_trace or []]
        # class sequence is 0...0 1...1 (phase 1 then phase 2)
        assert classes == sorted(classes)
        assert set(classes) <= {0, 1}
        saw_phase1 = saw_phase1 or (0 in classes)
    assert saw_phase1  # random intermediates actually used


def test_val_longer_than_minimal_on_average():
    topo, net, pkts = _traced_run("VAL", rate=0.15)
    mean_hops = sum(p.hops for p in pkts) / len(pkts)
    mean_min = sum(
        topo.min_hops(
            topo.router_of_terminal(p.src_terminal),
            topo.router_of_terminal(p.dst_terminal),
        )
        for p in pkts
    ) / len(pkts)
    assert mean_hops > mean_min + 0.3


# ---------------------------------------------------------------------------
# UGAL / Clos-AD
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["UGAL", "UGAL+"])
def test_source_adaptive_minimal_at_low_load(name):
    """With an unloaded network the weighted decision must pick minimal."""
    topo, net, pkts = _traced_run(name, rate=0.05, cycles=1200)
    val_mode = [p for p in pkts if p.deroutes > 0]
    assert len(val_mode) <= 0.05 * len(pkts)
    for p in pkts:
        if p.deroutes == 0:
            src_r = topo.router_of_terminal(p.src_terminal)
            dst_r = topo.router_of_terminal(p.dst_terminal)
            assert p.hops == topo.min_hops(src_r, dst_r)


@pytest.mark.parametrize("name", ["UGAL", "UGAL+"])
def test_source_adaptive_two_phase_class_order(name):
    topo, net, pkts = _traced_run(name, rate=0.5, cycles=1500)
    for p in pkts:
        classes = [net.vc_map.class_of(v) for v in p.vc_trace or []]
        assert classes == sorted(classes)
        assert set(classes) <= {0, 1}


def test_closad_nonminimal_adds_exactly_one_hop():
    """Clos-AD's LCA intermediates deviate in a single dimension: val-mode
    paths are at most min+1 hops (vs UGAL's arbitrary Valiant detours)."""
    topo, net, pkts = _traced_run("UGAL+", rate=0.5, cycles=1500)
    for p in pkts:
        src_r = topo.router_of_terminal(p.src_terminal)
        dst_r = topo.router_of_terminal(p.dst_terminal)
        assert p.hops <= topo.min_hops(src_r, dst_r) + 1


# ---------------------------------------------------------------------------
# MIN-AD
# ---------------------------------------------------------------------------


def test_minad_minimal_any_order_distance_classes():
    topo, net, pkts = _traced_run("MIN-AD", rate=0.4)
    any_order = False
    for p in pkts:
        src_r = topo.router_of_terminal(p.src_terminal)
        dst_r = topo.router_of_terminal(p.dst_terminal)
        assert p.hops == topo.min_hops(src_r, dst_r)
        assert p.deroutes == 0
        classes = [net.vc_map.class_of(v) for v in p.vc_trace or []]
        assert classes == list(range(len(classes)))  # strict distance classes
        dims = [d for d, _ in _hop_dims(topo, p)]
        if dims != sorted(dims):
            any_order = True
    assert any_order  # adaptivity really uses non-DOR orders


# ---------------------------------------------------------------------------
# DimWAR
# ---------------------------------------------------------------------------


def test_dimwar_invariants():
    topo, net, pkts = _traced_run("DimWAR", rate=0.5)
    n = topo.num_dims
    saw_deroute = False
    for p in pkts:
        src_r = topo.router_of_terminal(p.src_terminal)
        dst_r = topo.router_of_terminal(p.dst_terminal)
        min_h = topo.min_hops(src_r, dst_r)
        # fine-grained: each deroute adds exactly one hop
        assert p.hops == min_h + p.deroutes
        assert p.deroutes <= n  # at most one deroute per dimension
        dims = [d for d, _ in _hop_dims(topo, p)]
        assert dims == sorted(dims)  # dimensions strictly in order
        classes = [net.vc_map.class_of(v) for v in p.vc_trace or []]
        assert set(classes) <= {0, 1}  # 2 resource classes, any dimensionality
        # a deroute (class 1) is always followed by a class-0 hop in the
        # same dimension, and never by another deroute
        for i, k in enumerate(classes):
            if k == 1:
                saw_deroute = True
                assert i + 1 < len(classes), "deroute cannot be the last hop"
                assert classes[i + 1] == 0
                assert dims[i + 1] == dims[i]
        # at most one deroute per dimension
        from collections import Counter

        per_dim = Counter(dims[i] for i, k in enumerate(classes) if k == 1)
        assert all(v <= 1 for v in per_dim.values())
    assert saw_deroute  # the load level exercised the deroute path


def test_dimwar_packet_carries_no_routing_state():
    """Table 1: DimWAR stores nothing in the packet."""
    topo, net, pkts = _traced_run("DimWAR", rate=0.4, cycles=800)
    assert all(p.routing_state == {} for p in pkts)


# ---------------------------------------------------------------------------
# OmniWAR
# ---------------------------------------------------------------------------


def test_omniwar_invariants():
    topo, net, pkts = _traced_run("OmniWAR", rate=0.5)
    n = topo.num_dims
    algo_m = n  # default deroute budget
    saw_deroute = saw_any_order = False
    for p in pkts:
        src_r = topo.router_of_terminal(p.src_terminal)
        dst_r = topo.router_of_terminal(p.dst_terminal)
        min_h = topo.min_hops(src_r, dst_r)
        assert p.hops == min_h + p.deroutes
        assert p.deroutes <= algo_m
        assert p.hops <= n + algo_m
        classes = [net.vc_map.class_of(v) for v in p.vc_trace or []]
        assert classes == list(range(len(classes)))  # VC_out = VC_in + 1
        dims = [d for d, _ in _hop_dims(topo, p)]
        if dims != sorted(dims):
            saw_any_order = True
        saw_deroute = saw_deroute or p.deroutes > 0
    assert saw_deroute and saw_any_order


def test_omniwar_packet_carries_no_routing_state():
    topo, net, pkts = _traced_run("OmniWAR", rate=0.4, cycles=800)
    assert all(p.routing_state == {} for p in pkts)


def test_omniwar_deroute_budget_zero_is_minimal():
    topo, net, pkts = _traced_run("OmniWAR", rate=0.4, deroutes=0)
    for p in pkts:
        assert p.deroutes == 0
        src_r = topo.router_of_terminal(p.src_terminal)
        dst_r = topo.router_of_terminal(p.dst_terminal)
        assert p.hops == topo.min_hops(src_r, dst_r)


def test_omniwar_b2b_restriction():
    """The Section 5.2 optimization: never two consecutive deroutes in the
    same dimension (but consecutive deroutes in different dimensions are ok)."""
    topo, net, pkts = _traced_run("OmniWAR-b2b", rate=0.55, cycles=2000)
    for p in pkts:
        dims = [d for d, _ in _hop_dims(topo, p)]
        dest = topo.coords(topo.router_of_terminal(p.dst_terminal))
        router = topo.router_of_terminal(p.src_terminal)
        prev_deroute_dim = None
        for port in p.port_trace or []:
            d, coord = topo.port_target(router, port)
            was_deroute = coord != dest[d]
            if was_deroute:
                assert d != prev_deroute_dim, "back-to-back deroute in one dim"
                prev_deroute_dim = d
            else:
                prev_deroute_dim = None
            c = list(topo.coords(router))
            c[d] = coord
            router = topo.router_id(c)


def test_omniwar_configurable_budget_reflected_in_classes():
    topo = HyperX((3, 3), 1)
    assert make_algorithm("OmniWAR", topo).num_classes == 4  # N + M = 2 + 2
    assert make_algorithm("OmniWAR", topo, deroutes=1).num_classes == 3
    assert make_algorithm("OmniWAR", topo, deroutes=5).num_classes == 7
    with pytest.raises(ValueError):
        make_algorithm("OmniWAR", topo, deroutes=-1)
