"""Tests for the fault-injection subsystem (repro.faults).

Covers the fault model (FaultSet resolution, schedules, random sampling),
the DegradedTopology invariants (peer symmetry, min_hops on the surviving
graph, validate()), deadlock freedom of the fault-aware algorithms with
masked ports, mid-run injection mechanics (route revocation, degraded
bandwidth), and the acceptance scenario of docs/FAULTS.md: an 8x8 HyperX
with three failed links still delivers 100% of its traffic.
"""

import json
import math

import pytest

from repro.config import SimConfig
from repro.core.base import NoRouteError
from repro.core.deadlock import assert_deadlock_free
from repro.core.registry import make_algorithm
from repro.experiments.faults import run_fault_transient
from repro.faults import (
    DegradedTopology,
    FaultInjector,
    FaultSchedule,
    FaultSet,
    random_faults,
    random_link_faults,
)
from repro.faults.model import FaultEvent
from repro.network.buffers import VcRoute
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.stats import PacketStats
from repro.network.types import Flit, Packet
from repro.topology.dragonfly import Dragonfly
from repro.topology.fattree import FatTree
from repro.topology.hyperx import HyperX
from repro.topology.torus import Torus
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom


# ---------------------------------------------------------------------------
# Fault model
# ---------------------------------------------------------------------------


def test_fail_link_is_symmetric():
    topo = HyperX((3, 3), 1)
    state = FaultSet().fail_link(0, 0).resolve(topo)
    assert (0, 0) in state.failed_ports
    peer = topo.peer(0, 0).router_port
    assert (peer.router, peer.port) in state.failed_ports
    assert len(state.failed_ports) == 2
    assert state.num_failed_links == 1
    assert state.active


def test_fail_router_expands_every_port():
    topo = HyperX((3, 3), 1)
    state = FaultSet().fail_router(4).resolve(topo)
    assert state.failed_routers == {4}
    # Every router-facing port of 4 is dead in both directions.
    for port, peer in topo.router_ports(4):
        assert (4, port) in state.failed_ports
        if peer.is_router:
            rp = peer.router_port
            assert (rp.router, rp.port) in state.failed_ports


def test_faultset_is_chainable_and_iterable():
    fset = FaultSet().fail_link(0, 0).fail_router(3).degrade_link(1, 0, 4)
    assert len(fset) == 3
    kinds = {type(f).__name__ for f in fset}
    assert kinds == {"LinkFault", "RouterFault", "DegradedLink"}


def test_degrade_does_not_bump_epoch():
    topo = HyperX((3, 3), 1)
    state = FaultSet().resolve(topo)
    e0 = state.epoch
    state.degrade_link(0, 0, 4)
    assert state.epoch == e0  # connectivity unchanged
    state.fail_link(0, 0)
    assert state.epoch > e0


# ---------------------------------------------------------------------------
# DegradedTopology invariants
# ---------------------------------------------------------------------------


def test_degraded_peer_missing_but_base_untouched():
    base = HyperX((3, 3), 1)
    topo = DegradedTopology(base, FaultSet().fail_link(0, 0))
    assert topo.peer(0, 0).is_missing
    peer = base.peer(0, 0).router_port
    assert topo.peer(peer.router, peer.port).is_missing
    assert not base.peer(0, 0).is_missing  # the base topology is pristine
    topo.validate()


def test_degraded_rejects_nesting():
    base = HyperX((2, 2), 1)
    with pytest.raises(TypeError):
        DegradedTopology(DegradedTopology(base))


def test_min_hops_reflects_surviving_graph():
    base = HyperX((3, 3), 1)
    # Fail the direct 0<->1 link: minimal distance grows from 1 to 2.
    topo = DegradedTopology(base, FaultSet().fail_link(0, 0))
    assert base.min_hops(0, 1) == 1
    assert topo.min_hops(0, 1) == 2
    assert topo.min_hops(0, 0) == 0


def test_min_hops_inf_for_partitioned_pairs():
    base = HyperX((2, 2), 1)
    # Router 0 has exactly two lateral links (one per dimension); failing
    # both isolates it from the rest of the network.
    topo = DegradedTopology(base, FaultSet().fail_link(0, 0).fail_link(0, 1))
    for other in (1, 2, 3):
        assert math.isinf(topo.min_hops(0, other))
        assert math.isinf(topo.min_hops(other, 0))
    assert topo.min_hops(1, 3) < math.inf
    topo.validate()  # symmetric even when partitioned


def test_validate_catches_hand_broken_asymmetry():
    base = HyperX((3, 3), 1)
    topo = DegradedTopology(base)
    # Break the invariant by failing only one direction of a link.
    topo.faults.failed_ports.add((0, 0))
    with pytest.raises(AssertionError):
        topo.validate()


def test_min_hops_cache_invalidated_on_new_faults():
    base = HyperX((3, 3), 1)
    topo = DegradedTopology(base)
    assert topo.min_hops(0, 1) == 1  # populates the BFS cache
    topo.faults.fail_link(0, 0)  # bumps the epoch
    assert topo.min_hops(0, 1) == 2


def test_random_link_faults_preserve_connectivity():
    base = HyperX((4, 4), 2)
    fset = random_link_faults(base, 5, seed=3)
    topo = DegradedTopology(base, fset)
    assert topo.faults.num_failed_links == 5
    for dst in range(base.num_routers):
        assert topo.min_hops(0, dst) < math.inf
    topo.validate()


def test_random_faults_deterministic_per_seed():
    base = HyperX((4, 4), 1)
    a = random_link_faults(base, 3, seed=11).resolve(base)
    b = random_link_faults(base, 3, seed=11).resolve(base)
    assert a.failed_ports == b.failed_ports


# ---------------------------------------------------------------------------
# Topology.validate() peer symmetry — all five topologies
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "topo",
    [
        HyperX((3, 3), 2),
        Torus((3, 3), 1, wrap=True),
        Torus((3, 3), 1, wrap=False),  # mesh
        FatTree(4, 2),
        Dragonfly(p=1, a=3, h=2),
    ],
    ids=["hyperx", "torus", "mesh", "fattree", "dragonfly"],
)
def test_validate_bidirectional_peer_symmetry(topo):
    topo.validate()


# ---------------------------------------------------------------------------
# Deadlock freedom with masked ports
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name", ["DOR", "DimWAR", "OmniWAR", "FTHX", "VCFree"]
)
def test_fault_aware_routing_deadlock_free(name):
    base = HyperX((3, 3), 1)
    topo = DegradedTopology(base, random_link_faults(base, 2, seed=5))
    assert_deadlock_free(topo, make_algorithm(name, topo))


def test_fthx_keeps_class_budget_under_faults():
    """FTHX never grows VCs on failure — the escape subnetwork is always
    provisioned, unlike DOR's fault-triggered fallback class."""
    base = HyperX((3, 3), 1)
    pristine = make_algorithm("FTHX", base)
    degraded = make_algorithm("FTHX", DegradedTopology(base))
    assert pristine.num_classes == degraded.num_classes == 6


def test_dor_gains_fallback_class_under_faults():
    base = HyperX((3, 3), 1)
    pristine = make_algorithm("DOR", base)
    degraded = make_algorithm("DOR", DegradedTopology(base))
    assert pristine.num_classes == 1
    assert degraded.num_classes == 2


# ---------------------------------------------------------------------------
# Static faults end-to-end (the acceptance scenario)
# ---------------------------------------------------------------------------


def _run_static(topo, algo_name, cycles=400, rate=0.05, seed=2):
    algo = make_algorithm(algo_name, topo)
    net = Network(topo, algo, SimConfig())
    sim = Simulator(net)
    traffic = SyntheticTraffic(
        net, UniformRandom(topo.num_terminals), rate, seed=seed
    )
    sim.processes.append(traffic)
    stats = PacketStats()
    for t in net.terminals:
        t.delivery_listeners.append(stats.on_delivery)
    sim.run(cycles)
    traffic.stop()
    drained = sim.drain(max_cycles=200_000)
    return traffic.packets_generated, stats.packets_delivered, drained


@pytest.mark.parametrize("name", ["DimWAR", "OmniWAR", "FTHX"])
def test_8x8_three_failed_links_full_delivery(name):
    base = HyperX((8, 8), 2)
    topo = DegradedTopology(base, random_link_faults(base, 3, seed=7))
    injected, delivered, drained = _run_static(topo, name)
    assert injected > 0
    assert drained
    assert delivered == injected


@pytest.mark.parametrize("name", ["DOR", "VCFree"])
def test_8x8_delivers_or_reports_unreachable(name):
    """DOR and VCFree have narrower escape envelopes than the adaptive
    schemes: a fault pattern may make some pair unroutable within their
    discipline, in which case the run must *report* NoRouteError — never
    hang."""
    base = HyperX((8, 8), 2)
    topo = DegradedTopology(base, random_link_faults(base, 3, seed=7))
    try:
        injected, delivered, drained = _run_static(topo, name)
    except NoRouteError:
        return  # explicitly reported, never hangs
    assert drained
    assert delivered == injected


def test_vcfree_small_static_faults_deliver_or_report():
    base = HyperX((3, 3), 1)
    topo = DegradedTopology(base, random_link_faults(base, 1, seed=3))
    try:
        injected, delivered, drained = _run_static(topo, "VCFree", cycles=300)
    except NoRouteError:
        return
    assert injected > 0
    assert drained
    assert delivered == injected


def test_static_router_fault_excluding_its_terminals():
    base = HyperX((3, 3), 2)
    topo = DegradedTopology(base, FaultSet().fail_router(4))
    algo = make_algorithm("OmniWAR", topo)
    net = Network(topo, algo, SimConfig())
    sim = Simulator(net)
    alive = [t for t in range(base.num_terminals) if t // 2 != 4]
    from repro.traffic.patterns import UniformRandomSubset

    traffic = SyntheticTraffic(
        net,
        UniformRandomSubset(base.num_terminals, alive),
        0.05,
        seed=2,
        sources=alive,
    )
    sim.processes.append(traffic)
    stats = PacketStats()
    for t in net.terminals:
        t.delivery_listeners.append(stats.on_delivery)
    sim.run(400)
    traffic.stop()
    assert sim.drain(max_cycles=100_000)
    assert stats.packets_delivered == traffic.packets_generated
    # A detached terminal refuses offered traffic loudly.
    with pytest.raises(RuntimeError):
        net.terminals[8].offer(Packet(8, 0, 1, create_cycle=0))


# ---------------------------------------------------------------------------
# Mid-run injection
# ---------------------------------------------------------------------------


def test_injector_requires_degraded_network():
    base = HyperX((2, 2), 1)
    net = Network(base, make_algorithm("DOR", base), SimConfig())
    sched = FaultSchedule([FaultEvent(10, "link", 0, port=0)])
    with pytest.raises(ValueError):
        FaultInjector(net, sched)


def test_mid_run_recovery_transient():
    res = run_fault_transient(
        "DimWAR",
        scale="smoke",
        rate=0.1,
        window=100,
        pre_windows=2,
        post_windows=4,
        fail_links=2,
        fault_seed=7,
        seed=4,
    )
    assert res.routing_error is None
    assert res.drained
    assert res.delivered_fraction == 1.0
    st = res.settling_time()
    assert st is not None and st >= 0  # finite recovery
    assert res.fault_counters["events_applied"] == 2
    assert res.fault_counters["failed_links"] == 2
    assert res.fault_counters["masked_candidates"] > 0


def test_mid_run_router_failure_recovery():
    res = run_fault_transient(
        "OmniWAR",
        scale="smoke",
        rate=0.1,
        window=100,
        pre_windows=2,
        post_windows=4,
        fail_links=0,
        fail_routers=1,
        fault_seed=3,
        seed=4,
    )
    assert res.routing_error is None
    assert res.drained
    assert res.delivered_fraction == 1.0
    assert res.fault_counters["failed_routers"] == 1


def test_degraded_bandwidth_schedule_sets_min_gap_and_drains():
    base = HyperX((2, 2), 1)
    topo = DegradedTopology(base)
    net = Network(topo, make_algorithm("DimWAR", topo), SimConfig())
    sim = Simulator(net)
    sched = FaultSchedule([FaultEvent(50, "degrade", 0, port=0, factor=4)])
    sim.processes.append(FaultInjector(net, sched))
    traffic = SyntheticTraffic(net, UniformRandom(4), 0.2, seed=1)
    sim.processes.append(traffic)
    stats = PacketStats()
    for t in net.terminals:
        t.delivery_listeners.append(stats.on_delivery)
    sim.run(300)
    traffic.stop()
    assert sim.drain(max_cycles=50_000)
    assert net.routers[0].out_channels[0].min_gap == 4
    assert stats.packets_delivered == traffic.packets_generated
    assert topo.faults.events_applied == 1


def test_revoke_unstarted_routes_direct():
    base = HyperX((2, 2), 1)
    topo = DegradedTopology(base)
    net = Network(topo, make_algorithm("DimWAR", topo), SimConfig())
    r = net.routers[0]
    # A committed-but-unstarted route: head flit still first in the FIFO.
    pkt = Packet(0, 3, size=2, create_cycle=0)
    pkt.hops = 1
    state = r.inputs[0].vcs[0]
    state.fifo.append(Flit(pkt, 0))
    state.fifo.append(Flit(pkt, 1))
    state.route = VcRoute(1, 0, pkt.pid)
    r.out_vc_owner[1][0] = pkt.pid

    assert r.revoke_unstarted_routes({1}) == 1
    assert state.route is None
    assert r.out_vc_owner[1][0] is None
    assert pkt.hops == 0  # telemetry un-counted
    assert (0, 0) in r.active_input_keys()  # re-woken for rerouting

    # A started wormhole (head flit already forwarded) must drain, not revoke.
    pkt2 = Packet(0, 3, size=2, create_cycle=0)
    pkt2.hops = 1
    state2 = r.inputs[0].vcs[1]
    state2.fifo.append(Flit(pkt2, 1))  # body flit at the FIFO head
    state2.route = VcRoute(1, 1, pkt2.pid)
    assert r.revoke_unstarted_routes({1}) == 0
    assert state2.route is not None
    assert pkt2.hops == 1


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------


def test_fault_schedule_json_roundtrip(tmp_path):
    sched = FaultSchedule(
        [
            FaultEvent(100, "link", 0, port=1),
            FaultEvent(50, "router", 3),
            FaultEvent(200, "degrade", 2, port=0, factor=8),
        ]
    )
    path = tmp_path / "faults.json"
    sched.save(str(path))
    loaded = FaultSchedule.load(str(path))
    assert loaded.sorted_events() == sched.sorted_events()
    assert loaded.sorted_events()[0].cycle == 50
    assert loaded.failed_router_ids() == {3}
    # The file itself is plain JSON.
    assert isinstance(json.loads(path.read_text()), (dict, list))


def test_fault_schedule_from_faultset():
    fset = FaultSet().fail_link(0, 0).fail_router(2)
    sched = FaultSchedule.from_faultset(fset, cycle=500)
    assert all(e.cycle == 500 for e in sched.sorted_events())
    assert sched.failed_router_ids() == {2}


def test_fault_schedule_roundtrip_edge_cases(tmp_path):
    """Cycle 0, factor 1 (no-op degrade), and a huge factor all round-trip."""
    sched = FaultSchedule(
        [
            FaultEvent(0, "link", 0, port=1),
            FaultEvent(0, "degrade", 2, port=0, factor=1),
            FaultEvent(10**9, "degrade", 3, port=2, factor=10**9),
        ]
    )
    path = tmp_path / "edges.json"
    sched.save(str(path))
    loaded = FaultSchedule.load(str(path))
    assert loaded.sorted_events() == sched.sorted_events()
    assert loaded.sorted_events()[0].cycle == 0
    assert loaded.sorted_events()[-1].factor == 10**9


def test_fault_schedule_empty_roundtrip(tmp_path):
    path = tmp_path / "empty.json"
    FaultSchedule().save(str(path))
    loaded = FaultSchedule.load(str(path))
    assert loaded.events == []
    assert loaded.sorted_events() == []
    assert loaded.failed_router_ids() == set()


def test_fault_schedule_load_rejects_negative_cycle(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(
        '{"events": [{"cycle": -5, "kind": "link", "router": 0, "port": 1}]}'
    )
    with pytest.raises(ValueError, match="invalid fault event #0") as exc:
        FaultSchedule.load(str(path))
    # The error names the file and repeats the underlying constraint.
    assert str(path) in str(exc.value)
    assert ">= 0" in str(exc.value)


def test_fault_schedule_load_rejects_malformed_event(tmp_path):
    path = tmp_path / "bad2.json"
    path.write_text(
        '{"events": [{"cycle": 10, "kind": "link", "router": 0, "port": 1},'
        ' {"cycle": 20, "kind": "degrade", "router": 1}]}'
    )
    with pytest.raises(ValueError, match="invalid fault event #1"):
        FaultSchedule.load(str(path))


def test_fault_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(10, "link", 0)  # link event needs a port
    with pytest.raises(ValueError):
        FaultEvent(10, "degrade", 0, port=1)  # degrade needs a factor
    with pytest.raises(ValueError):
        FaultEvent(10, "eclipse", 0)  # unknown kind


def test_noroute_error_is_runtime_error():
    assert issubclass(NoRouteError, RuntimeError)
