"""Tests for the sharded multi-process engine (repro.network.shard).

Sharding is a pure execution optimisation: the same simulation split over
N worker processes must produce the *same bytes* as one process.  These
tests pin that contract:

* partitioning — :class:`ShardPlan` slices the widest dimension into
  contiguous blocks that cover every router exactly once;
* equivalence — fixed scenarios (pristine, statically faulted, a mid-run
  fault schedule) and Hypothesis-drawn loads/seeds/shard counts all
  produce results identical to the single-process path;
* tracing — per-shard lifecycle streams, merged and canonicalized,
  byte-match a canonicalized unsharded trace of the same run;
* memoisation — ``shards`` is an execution detail: specs differing only
  in shard count share one memo key, so a point memoised unsharded
  replays for a sharded request (and vice versa);
* plumbing — ``run_point`` dispatch, fallback reasons, and the CLI
  ``--shards`` flag.
"""

import dataclasses
import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.memo import SweepMemo, point_key
from repro.analysis.parallel import PointSpec, run_point
from repro.cli import main
from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.faults.degraded import DegradedTopology
from repro.faults.inject import FaultInjector
from repro.faults.model import FaultEvent, FaultSchedule, FaultSet, LinkFault
from repro.network.network import Network
from repro.network.shard import (
    ShardEngine,
    ShardPlan,
    merged_trace,
    run_point_sharded,
    shard_fallback_reason,
)
from repro.network.simulator import Simulator
from repro.network.stats import PacketStats
from repro.obs import TraceOptions, Tracer, canonical_jsonl
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import pattern_by_name
from repro.traffic.sizes import UniformSize

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the shard engine forks its workers",
)

SPEC = PointSpec(
    widths=(4, 4), terminals_per_router=1, algorithm="OmniWAR",
    pattern="UR", rate=0.3, total_cycles=800, seed=2,
)


def _no_clock(result):
    """Host timing is the one legitimately nondeterministic field."""
    return dataclasses.replace(result, wall_clock_s=0.0)


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------


def test_plan_blocks_cover_widest_dimension():
    topo = HyperX((3, 5), 1)
    plan = ShardPlan(topo, 2)
    assert plan.dim == 1  # the widest dimension
    assert plan.blocks == ((0, 3), (3, 5))
    owned = [plan.owned_routers(s) for s in range(2)]
    assert owned[0] | owned[1] == frozenset(range(topo.num_routers))
    assert not owned[0] & owned[1]
    for s in range(2):
        for r in owned[s]:
            assert plan.shard_of_router(r) == s


def test_plan_rejects_unplaceable_shard_counts():
    topo = HyperX((2, 3), 1)
    with pytest.raises(ValueError):
        ShardPlan(topo, 4)  # widest dimension has only 3 coordinates
    with pytest.raises(ValueError):
        ShardPlan(topo, 0)


# ----------------------------------------------------------------------
# Equivalence: sharded == unsharded, byte for byte
# ----------------------------------------------------------------------


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_run_point_dispatch_matches_unsharded(shards):
    base = _no_clock(run_point(SPEC))
    via_dispatch = run_point(dataclasses.replace(SPEC, shards=shards))
    assert _no_clock(via_dispatch) == base


def test_sharded_matches_unsharded_with_static_faults():
    spec = dataclasses.replace(
        SPEC, algorithm="FTHX", rate=0.2, seed=3, faults=(LinkFault(0, 0),)
    )
    base = _no_clock(run_point(spec))
    for shards in (2, 4):
        got = run_point_sharded(dataclasses.replace(spec, shards=shards))
        assert _no_clock(got) == base


def _unsharded_report(spec, schedule, cycles):
    """The single-process twin of a shard worker's finish report.

    Registers the fault injector *before* the traffic process, matching
    the worker's order, so fault flips land before the cycle's injections
    in both runs.
    """
    topo = HyperX(spec.widths, spec.terminals_per_router)
    if spec.faults or schedule is not None:
        topo = DegradedTopology(topo, FaultSet(list(spec.faults)))
    net = Network(topo, make_algorithm(spec.algorithm, topo), default_config())
    sim = Simulator(net)
    if schedule is not None:
        sim.processes.append(FaultInjector(net, schedule))
    sim.processes.append(SyntheticTraffic(
        net, pattern_by_name(spec.pattern, topo), spec.rate,
        spec.size_dist or UniformSize(1, 16), seed=spec.seed,
    ))
    stats = PacketStats()
    for t in net.terminals:
        t.delivery_listeners.append(stats.on_delivery)
    sim.run(cycles)
    return {
        "samples": sorted(
            (s.create_cycle, s.latency, s.hops, s.deroutes)
            for s in stats.samples
        ),
        "packets_delivered": stats.packets_delivered,
        "flits_delivered": stats.flits_delivered,
        "ejected": net.total_ejected_flits(),
        "backlog": net.total_backlog_flits(),
    }


def _merged_report(spec, schedule, cycles, shards):
    with ShardEngine(spec, shards, schedule=schedule) as engine:
        engine.run(cycles)
        reports = engine.finish()
    return {
        "samples": sorted(t for rep in reports for t in rep["samples"]),
        "packets_delivered": sum(r["packets_delivered"] for r in reports),
        "flits_delivered": sum(r["flits_delivered"] for r in reports),
        "ejected": sum(r["ejected"] for r in reports),
        "backlog": sum(r["backlog"] for r in reports),
    }


def test_sharded_matches_unsharded_mid_run_fault_schedule():
    schedule = FaultSchedule([FaultEvent(200, "link", 1, 0)])
    spec = dataclasses.replace(SPEC, algorithm="FTHX", rate=0.2, seed=5)
    base = _unsharded_report(spec, schedule, spec.total_cycles)
    assert base["packets_delivered"] > 0
    for shards in (2, 4):
        got = _merged_report(spec, schedule, spec.total_cycles, shards)
        assert got == base


@settings(max_examples=6, deadline=None)
@given(
    rate=st.sampled_from([0.1, 0.25, 0.45]),
    seed=st.integers(min_value=0, max_value=50),
    shards=st.sampled_from([2, 3, 4]),
    algorithm=st.sampled_from(["DOR", "OmniWAR"]),
)
def test_shard_count_invariance_property(rate, seed, shards, algorithm):
    spec = dataclasses.replace(
        SPEC, algorithm=algorithm, rate=rate, seed=seed, total_cycles=400
    )
    base = _unsharded_report(spec, None, spec.total_cycles)
    assert _merged_report(spec, None, spec.total_cycles, shards) == base


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=50),
    flip_cycle=st.sampled_from([64, 150, 333]),
    shards=st.sampled_from([2, 4]),
)
def test_shard_count_invariance_with_mid_run_fault(seed, flip_cycle, shards):
    schedule = FaultSchedule([FaultEvent(flip_cycle, "link", 2, 1)])
    spec = dataclasses.replace(
        SPEC, algorithm="VCFree", rate=0.2, seed=seed, total_cycles=400
    )
    base = _unsharded_report(spec, schedule, spec.total_cycles)
    assert _merged_report(spec, schedule, spec.total_cycles, shards) == base


# ----------------------------------------------------------------------
# Sharded tracing
# ----------------------------------------------------------------------


def _canonical_unsharded_trace(spec, cycles, opts):
    topo = HyperX(spec.widths, spec.terminals_per_router)
    net = Network(topo, make_algorithm(spec.algorithm, topo), default_config())
    sim = Simulator(net)
    sim.processes.append(SyntheticTraffic(
        net, pattern_by_name(spec.pattern, topo), spec.rate,
        spec.size_dist or UniformSize(1, 16), seed=spec.seed,
    ))
    tracer = Tracer(sim, opts).attach()
    sim.run(cycles)
    tracer.detach()
    return canonical_jsonl(tracer.events(), tracer.ring.dropped)


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_trace_canonical_bytes_match(shards):
    spec = dataclasses.replace(SPEC, rate=0.25, seed=7, total_cycles=240)
    opts = TraceOptions(pid_ids=True)
    base = _canonical_unsharded_trace(spec, spec.total_cycles, opts)
    assert base.count("\n") > 1000  # a real stream, not a trivial pass
    with ShardEngine(spec, shards, trace=opts) as engine:
        engine.run(spec.total_cycles)
        reports = engine.finish()
    events, dropped = merged_trace(reports)
    assert canonical_jsonl(events, dropped) == base


def test_pid_ids_requires_full_sampling():
    with pytest.raises(ValueError, match="sample_every"):
        TraceOptions(pid_ids=True, sample_every=2)


def test_sharded_trace_rejects_trace_local_ids():
    with pytest.raises(RuntimeError, match="pid_ids"):
        ShardEngine(SPEC, 2, trace=TraceOptions())


def test_canonical_jsonl_refuses_lossy_streams():
    with pytest.raises(ValueError, match="dropped"):
        canonical_jsonl([], dropped=3)


# ----------------------------------------------------------------------
# Memoisation: shards is not a simulation parameter
# ----------------------------------------------------------------------


def test_memo_key_ignores_shard_count(tmp_path):
    specs = [dataclasses.replace(SPEC, shards=n) for n in (0, 1, 4)]
    assert len({point_key(s) for s in specs}) == 1

    memo = SweepMemo(root=str(tmp_path))
    result = run_point(SPEC)
    memo.put(SPEC, result)
    replayed = memo.get(dataclasses.replace(SPEC, shards=4))
    assert memo.hits == 1
    assert _no_clock(replayed) == _no_clock(result)


# ----------------------------------------------------------------------
# Fallbacks and CLI plumbing
# ----------------------------------------------------------------------


def test_fallback_reasons():
    ok = dataclasses.replace(SPEC, shards=2)
    assert shard_fallback_reason(ok) is None
    assert "sanitizer" in shard_fallback_reason(
        dataclasses.replace(ok, check=True)
    )
    assert "single-process" in shard_fallback_reason(
        dataclasses.replace(ok, trace=TraceOptions())
    )
    assert "wide" in shard_fallback_reason(
        dataclasses.replace(ok, shards=5)  # widest dimension is 4
    )
    # An unplaceable shard count falls back rather than raising: the
    # dispatch in run_point consults the reason before building a plan.
    fell_back = run_point(dataclasses.replace(ok, shards=5))
    assert _no_clock(fell_back) == _no_clock(run_point(SPEC))


def test_cli_sweep_shards_flag(capsys):
    rc = main([
        "sweep", "--algorithm", "OmniWAR", "--widths", "3", "3",
        "--rates", "0.1", "--cycles", "400", "--shards", "2",
    ])
    assert rc == 0
    assert "OmniWAR on UR" in capsys.readouterr().out


def test_cli_sweep_rejects_negative_shards(capsys):
    with pytest.raises(SystemExit) as exc:
        main([
            "sweep", "--algorithm", "OmniWAR", "--widths", "3", "3",
            "--rates", "0.1", "--cycles", "400", "--shards", "-1",
        ])
    assert exc.value.code == 2
    assert "--shards" in capsys.readouterr().err
