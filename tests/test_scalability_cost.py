"""Tests for the Figure 2 scalability models and the Figure 3 cost model."""

import pytest

from repro.cost.model import (
    figure3_points,
    inventory_cost,
    size_dragonfly,
    size_hyperx,
)
from repro.cost.packaging import (
    CableInventory,
    dragonfly_inventory,
    hyperx_inventory,
    rack_distance_m,
)
from repro.cost.technologies import (
    ELECTRICAL_REACH_M,
    ElectricalAoc,
    PassiveOptical,
    paper_technologies,
)
from repro.topology.scalability import (
    dragonfly_max_nodes,
    fattree_max_nodes,
    figure2_points,
    hypercube_max_nodes,
    hyperx_max_nodes,
    slimfly_max_nodes,
)


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------


def test_paper_quoted_hyperx_figures_at_radix_64():
    """Section 3.1: 'With a 64-port router, the HyperX topology is able to
    build 10,648 nodes in 2 dimensions, 78,608 nodes in 3 dimensions, and
    463,736 nodes in 4 dimensions.'"""
    assert hyperx_max_nodes(64, 2)[0] == 10_648
    assert hyperx_max_nodes(64, 3)[0] == 78_608
    assert hyperx_max_nodes(64, 4)[0] == 463_736


def test_hyperx_optimum_respects_radix():
    for radix in (16, 32, 64, 128):
        for dims in (2, 3, 4):
            nodes, widths, t = hyperx_max_nodes(radix, dims)
            assert sum(w - 1 for w in widths) + t <= radix
            assert t >= 1 and all(w >= 2 for w in widths)


def test_hyperx_4d_uses_mixed_widths_at_64():
    _, widths, _ = hyperx_max_nodes(64, 4)
    assert len(set(widths)) > 1  # the 4D optimum is not a regular HyperX


def test_dragonfly_matches_closed_form():
    nodes, h = dragonfly_max_nodes(63)  # radix 4h-1 with h=16
    assert h == 16
    assert nodes == 32 * 16 * (32 * 16 + 1)


def test_fattree_formula():
    assert fattree_max_nodes(64, 3) == 2 * 32**3
    assert fattree_max_nodes(4, 2) == 8


def test_slimfly_reasonable():
    nodes, q = slimfly_max_nodes(64)
    assert q > 0 and nodes > 10_000
    # MMS network radix fits
    delta = 1 if (q - 1) % 4 == 0 else (-1 if (q + 1) % 4 == 0 else 0)
    k_net = (3 * q - delta) // 2
    assert k_net < 64


def test_hypercube():
    nodes, dims, t = hypercube_max_nodes(8)
    assert sum((dims, t)) <= 8 and nodes == 2**dims * t


def test_figure2_monotone_in_radix():
    """More ports never means fewer max nodes, for every family."""
    prev = {}
    for radix in (24, 32, 48, 64):
        for p in figure2_points(radix):
            if p.topology in prev:
                assert p.nodes >= prev[p.topology]
            prev[p.topology] = p.nodes


def test_figure2_diameter_ordering_at_fixed_radix():
    """Higher-diameter HyperX scales further (the figure's visual point)."""
    pts = {p.topology: p.nodes for p in figure2_points(64)}
    assert pts["HyperX-2"] < pts["HyperX-3"] < pts["HyperX-4"]
    assert pts["SlimFly-2"] > pts["HyperX-2"]  # diameter-2 optimum


# ---------------------------------------------------------------------------
# Technologies
# ---------------------------------------------------------------------------


def test_reach_table_matches_paper():
    assert ELECTRICAL_REACH_M == {2.5: 8.0, 10.0: 5.0, 25.0: 3.0, 50.0: 2.0, 100.0: 1.0}


def test_dac_vs_aoc_switch_at_reach():
    tech = ElectricalAoc.at_rate(25.0)
    below = tech.cable_cost(2.9)
    above = tech.cable_cost(3.1)
    assert above > below + 20  # AOC premium kicks in past 3 m


def test_passive_optical_is_cheap_and_length_insensitive():
    po = PassiveOptical(name="po")
    aoc = ElectricalAoc.at_rate(100.0)
    assert po.cable_cost(10.0) < aoc.cable_cost(10.0) / 2
    assert po.cable_cost(20.0) - po.cable_cost(10.0) < 15


def test_technology_validation():
    with pytest.raises(ValueError):
        ElectricalAoc.at_rate(17.0)
    with pytest.raises(ValueError):
        PassiveOptical(name="po").cable_cost(0.0)


# ---------------------------------------------------------------------------
# Packaging
# ---------------------------------------------------------------------------


def test_rack_distance():
    assert rack_distance_m((0, 0), (0, 0)) == 1.0  # in-rack
    assert rack_distance_m((0, 0), (0, 3)) == pytest.approx(3 * 0.6 + 2.0)
    assert rack_distance_m((2, 0), (0, 0)) == pytest.approx(2 * 1.5 + 2.0)


def test_hyperx_inventory_counts():
    w = 4
    inv = hyperx_inventory((w, w, w), w)
    # undirected cables: 3 dims x C(w,2) per line x w^2 lines
    expected = 3 * (w * (w - 1) // 2) * w * w
    assert inv.num_cables == expected


def test_dragonfly_inventory_counts():
    p, a, h = 2, 4, 2
    g = a * h + 1
    inv = dragonfly_inventory(p, a, h)
    expected = g * (a * (a - 1) // 2) + g * (g - 1) // 2
    assert inv.num_cables == expected


def test_inventory_validation():
    inv = CableInventory()
    with pytest.raises(ValueError):
        inv.add(0.0)
    with pytest.raises(ValueError):
        inv.add(1.0, 0)
    inv.add(2.5, 3)
    assert inv.num_cables == 3
    assert inv.total_length_m == pytest.approx(7.5)


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------


def test_sizing_helpers():
    hx = size_hyperx(4096)
    assert hx.width == 8 and hx.nodes == 4096 and hx.radix == 29
    df = size_dragonfly(4096)
    assert df.nodes >= 4096


def test_figure3_paper_shape():
    """The Section 3.1 claims: DF ~10% cheaper with modern copper+AOC at
    scale; HyperX lower or equal with passive optics."""
    pts = figure3_points(target_sizes=[65536, 262144])
    for p in pts:
        if p.technology == "DAC/AOC@25GHz":
            assert 0.70 < p.relative_cost < 1.0  # Dragonfly cheaper
        if p.technology == "passive-optical":
            assert p.relative_cost >= 0.98  # HyperX lower or equal (within 2%)


def test_figure3_relative_cost_is_ratio():
    p = figure3_points(target_sizes=[4096])[0]
    assert p.relative_cost == pytest.approx(
        p.dragonfly_cost_per_node / p.hyperx_cost_per_node
    )


def test_inventory_cost_adds_up():
    inv = CableInventory()
    inv.add(1.0, 10)
    tech = PassiveOptical(name="po")
    assert inventory_cost(inv, tech) == pytest.approx(10 * tech.cable_cost(1.0))
