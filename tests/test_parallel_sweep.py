"""Tests for the parallel sweep engine: spec round-tripping, determinism
across worker counts, early-stop truncation, and telemetry plumbing."""

import json
import pickle

import pytest

from repro.analysis.parallel import (
    PointSpec,
    SweepProgress,
    point_specs,
    run_point,
    run_points,
)
from repro.analysis.sweep import measure_point, sweep_load
from repro.core.registry import make_algorithm
from repro.faults.degraded import DegradedTopology
from repro.faults.model import FaultSet, random_link_faults
from repro.topology.hyperx import HyperX
from repro.topology.torus import Torus
from repro.traffic.patterns import BitComplement, UniformRandom


def _setup():
    topo = HyperX((3, 3), 2)
    return topo, UniformRandom(topo.num_terminals)


# ---------------------------------------------------------------------------
# Spec construction and validation
# ---------------------------------------------------------------------------


def test_point_specs_round_trip_fields():
    topo, pat = _setup()
    algo = make_algorithm("DimWAR", topo)
    specs = point_specs(topo, algo, pat, [0.1, 0.3], total_cycles=1200, seed=7)
    assert [s.rate for s in specs] == [0.1, 0.3]
    assert all(s.widths == (3, 3) and s.terminals_per_router == 2 for s in specs)
    assert all(s.algorithm == "DimWAR" and s.pattern == "UR" for s in specs)
    assert all(s.seed == 7 and s.total_cycles == 1200 for s in specs)


def test_point_specs_are_picklable():
    topo, pat = _setup()
    algo = make_algorithm("OmniWAR", topo, deroutes=1)
    (spec,) = point_specs(topo, algo, pat, [0.2])
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert dict(clone.algorithm_kwargs) == {"deroutes": 1}


def test_point_specs_rejects_non_hyperx():
    topo = Torus((3, 3), 2)
    from repro.core.torus_routing import TorusDOR

    with pytest.raises(ValueError, match="HyperX"):
        point_specs(topo, TorusDOR(topo), UniformRandom(topo.num_terminals), [0.2])


def test_run_points_rejects_bad_workers():
    with pytest.raises(ValueError):
        run_points([], workers=0)
    assert run_points([], workers=1) == []


def test_run_point_matches_measure_point():
    """A spec reconstructed in-process reproduces the live-object result."""
    topo, pat = _setup()
    algo = make_algorithm("DimWAR", topo)
    direct = measure_point(topo, algo, pat, 0.2, total_cycles=1200, seed=3)
    (spec,) = point_specs(topo, algo, pat, [0.2], total_cycles=1200, seed=3)
    via_spec = run_point(spec)
    assert via_spec.mean_latency == direct.mean_latency
    assert via_spec.packets_delivered == direct.packets_delivered
    assert via_spec.accepted_rate == direct.accepted_rate
    assert via_spec.routes_computed == direct.routes_computed


# ---------------------------------------------------------------------------
# Serial-vs-parallel determinism (the tentpole guarantee)
# ---------------------------------------------------------------------------


def _sweep(workers):
    topo = HyperX((3, 3), 2)
    algo = make_algorithm("DOR", topo)
    pattern = BitComplement(topo.num_terminals)
    return sweep_load(
        topo, algo, pattern, rates=[0.2, 0.4, 0.6, 0.8, 1.0],
        total_cycles=2000, seed=3, workers=workers,
    )


def test_workers_1_and_4_byte_identical_json():
    serial = _sweep(workers=1)
    parallel = _sweep(workers=4)
    assert serial.to_json() == parallel.to_json()
    # The sweep saturates mid-list, so this also exercises the early-stop
    # path: speculatively dispatched rates past saturation are discarded.
    assert len(serial.points) < 5
    assert not serial.points[-1].stable
    assert all(p.stable for p in serial.points[:-1])


def test_wall_clock_excluded_from_json():
    sweep = _sweep(workers=1)
    assert all(p.wall_clock_s > 0 for p in sweep.points)
    data = json.loads(sweep.to_json())
    assert all("wall_clock_s" not in p for p in data["points"])
    # Telemetry counters, by contrast, are deterministic and serialized.
    assert all(p["routes_computed"] > 0 for p in data["points"])


def test_progress_callback_ordered():
    topo, pat = _setup()
    algo = make_algorithm("DimWAR", topo)
    seen = []
    sweep_load(
        topo, algo, pat, rates=[0.3, 0.1, 0.2], total_cycles=1200, seed=3,
        workers=1, progress=lambda i, n, p: seen.append((i, n, p.offered_rate)),
    )
    assert seen == [(0, 3, 0.1), (1, 3, 0.2), (2, 3, 0.3)]


def test_sweep_progress_reporter_lines():
    lines = []
    reporter = SweepProgress(label="t", write=lines.append)
    topo, pat = _setup()
    algo = make_algorithm("DimWAR", topo)
    specs = point_specs(topo, algo, pat, [0.2], total_cycles=1200, seed=3)
    run_points(specs, workers=1, progress=reporter)
    assert len(lines) == 1
    assert "point 1/1" in lines[0] and "rate=0.200" in lines[0]


# ---------------------------------------------------------------------------
# Faulted sweeps: declarative FaultSets round-trip into worker processes
# ---------------------------------------------------------------------------


def _faulted_sweep(workers, check=False):
    base = HyperX((4, 4), 1)
    topo = DegradedTopology(base, random_link_faults(base, 3, seed=7))
    algo = make_algorithm("DimWAR", topo)
    pattern = UniformRandom(topo.num_terminals)
    return sweep_load(
        topo, algo, pattern, rates=[0.1, 0.2, 0.3],
        total_cycles=1000, seed=3, workers=workers, check=check,
    )


def test_faulted_sweep_serial_vs_workers_4_byte_identical():
    serial = _faulted_sweep(workers=None)
    parallel = _faulted_sweep(workers=4)
    assert serial.to_json() == parallel.to_json()


def test_faulted_spec_round_trip_matches_live_objects():
    base = HyperX((3, 3), 1)
    fset = FaultSet().fail_link(0, 0).fail_link(4, 1)
    topo = DegradedTopology(base, fset)
    algo = make_algorithm("OmniWAR", topo)
    pattern = UniformRandom(topo.num_terminals)
    direct = measure_point(topo, algo, pattern, 0.2, total_cycles=800, seed=3)
    (spec,) = point_specs(topo, algo, pattern, [0.2], total_cycles=800, seed=3)
    assert spec.faults == tuple(fset)
    assert spec.widths == (3, 3)  # unwrapped to the pristine base
    via_spec = run_point(spec)
    assert via_spec.mean_latency == direct.mean_latency
    assert via_spec.packets_delivered == direct.packets_delivered


def test_point_specs_rejects_faultstate_built_topology():
    base = HyperX((3, 3), 1)
    state = FaultSet().fail_link(0, 0).resolve(base)
    topo = DegradedTopology(base, state)
    algo = make_algorithm("DimWAR", topo)
    with pytest.raises(ValueError, match="FaultState"):
        point_specs(topo, algo, UniformRandom(topo.num_terminals), [0.2])


def test_point_specs_rejects_epoch_drifted_topology():
    base = HyperX((3, 3), 1)
    topo = DegradedTopology(base, FaultSet().fail_link(0, 0))
    algo = make_algorithm("DimWAR", topo)
    topo.faults.fail_link(4, 1)  # mid-run injector mutation
    with pytest.raises(ValueError, match="mutated"):
        point_specs(topo, algo, UniformRandom(topo.num_terminals), [0.2])


def test_point_specs_carry_check_flag():
    topo, pat = _setup()
    algo = make_algorithm("DimWAR", topo)
    specs = point_specs(topo, algo, pat, [0.1, 0.2], check=True)
    assert all(s.check for s in specs)
    default = point_specs(topo, algo, pat, [0.1])
    assert not default[0].check


def test_sweep_rejects_custom_monitor_with_workers():
    from repro.network.stats import LatencyMonitor

    topo, pat = _setup()
    algo = make_algorithm("DimWAR", topo)
    with pytest.raises(ValueError, match="monitor"):
        sweep_load(
            topo, algo, pat, rates=[0.2], workers=2,
            monitor=LatencyMonitor(),
        )
