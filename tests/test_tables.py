"""Tests for table-based routing and the Section 5.4 area analysis."""

import pytest

from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.core.tables import (
    CompiledTables,
    TableCompilationError,
    TableRouting,
    compile_tables,
    full_table_geometry,
    optimized_table_geometry,
)
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.stats import PacketStats
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom

TOPO = HyperX((3, 3), 2)


@pytest.mark.parametrize("name", ["DOR", "MIN-AD", "DimWAR", "OmniWAR"])
def test_compile_succeeds_for_table_expressible_algorithms(name):
    algo = make_algorithm(name, TOPO)
    compiled = compile_tables(TOPO, algo)
    assert compiled.total_entries > 0
    assert compiled.max_options >= 1


@pytest.mark.parametrize("name", ["VAL", "UGAL", "UGAL+"])
def test_compile_rejects_packet_stateful_algorithms(name):
    """Table 1's point: algorithms that carry an intermediate address in
    the packet are not pure (dest, class) table lookups."""
    algo = make_algorithm(name, TOPO)
    with pytest.raises(TableCompilationError):
        compile_tables(TOPO, algo)


def test_compile_rejects_b2b_variant():
    algo = make_algorithm("OmniWAR-b2b", TOPO)
    with pytest.raises(TableCompilationError):
        compile_tables(TOPO, algo)


def test_dor_tables_have_single_option():
    compiled = compile_tables(TOPO, make_algorithm("DOR", TOPO))
    assert compiled.max_options == 1  # deterministic routing: narrow tables


def test_adaptive_tables_are_wider():
    dor = compile_tables(TOPO, make_algorithm("DOR", TOPO))
    dimwar = compile_tables(TOPO, make_algorithm("DimWAR", TOPO))
    omni = compile_tables(TOPO, make_algorithm("OmniWAR", TOPO))
    # Section 5.4: non-deterministic algorithms need wider tables
    assert dimwar.max_options > dor.max_options
    assert omni.max_options >= dimwar.max_options


def test_table_lookup_contents_match_algorithm():
    algo = make_algorithm("DimWAR", TOPO)
    compiled = compile_tables(TOPO, algo)
    # spot-check one row against the live algorithm
    entries = compiled.lookup(0, TOPO.num_routers - 1, -1)
    assert entries is not None
    ports = {e.out_port for e in entries}
    assert len(ports) == len(entries)  # distinct ports
    min_ports = [e for e in entries if not e.deroute]
    assert len(min_ports) == 1  # DimWAR: one minimal hop per row


@pytest.mark.parametrize("name", ["DOR", "DimWAR", "OmniWAR"])
def test_table_routing_is_cycle_identical_to_algorithmic(name):
    """The Section 5.4 deployment claim, verified bit-for-bit: routing from
    the compiled table reproduces the algorithmic simulation exactly."""

    def run(algorithm):
        net = Network(TOPO, algorithm, default_config())
        sim = Simulator(net)
        stats = PacketStats()
        for t in net.terminals:
            t.delivery_listeners.append(stats.on_delivery)
        traffic = SyntheticTraffic(
            net, UniformRandom(TOPO.num_terminals), 0.35, seed=9
        )
        sim.processes.append(traffic)
        sim.run(1500)
        traffic.stop()
        assert sim.drain(max_cycles=100_000)
        return [(s.create_cycle, s.latency, s.hops, s.deroutes) for s in stats.samples]

    algo = make_algorithm(name, TOPO)
    table_algo = TableRouting(compile_tables(TOPO, algo))
    assert run(algo) == run(table_algo)


def test_table_routing_metadata():
    compiled = compile_tables(TOPO, make_algorithm("DimWAR", TOPO))
    tr = TableRouting(compiled)
    assert tr.name == "DimWAR@table"
    assert tr.num_classes == 2
    assert tr.packet_contents == "none"


# ---------------------------------------------------------------------------
# Area model
# ---------------------------------------------------------------------------


def test_full_geometry_depth():
    algo = make_algorithm("DimWAR", TOPO)
    compiled = compile_tables(TOPO, algo)
    g = full_table_geometry(TOPO, algo, compiled)
    assert g.depth == (TOPO.num_routers - 1) * 2
    assert g.total_bits == g.depth * g.width_bits


def test_optimized_geometry_is_much_smaller():
    """Section 5.4: size-optimized tables make the area negligible because
    the depth is greatly reduced (sum of widths vs product of widths)."""
    topo = HyperX((8, 8, 8), 8)  # the paper's network
    algo = make_algorithm("DimWAR", topo)
    # geometry needs only max_options; avoid compiling 512-router tables
    compiled = CompiledTables(topo, algo.name, algo.num_classes)
    compiled.tables[0][(1, -1)] = tuple()
    full = full_table_geometry(topo, algo, compiled)
    opt = optimized_table_geometry(topo, algo, compiled)
    assert full.depth == 511 * 2
    assert opt.depth == 24 * 2  # sum(widths) x classes
    assert opt.depth * 10 < full.depth


def test_geometry_width_grows_with_options():
    dor = make_algorithm("DOR", TOPO)
    omni = make_algorithm("OmniWAR", TOPO)
    g_dor = full_table_geometry(TOPO, dor)
    g_omni = full_table_geometry(TOPO, omni)
    assert g_omni.width_bits > g_dor.width_bits
