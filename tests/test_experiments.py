"""Tests for the experiment drivers (cheap paths only; the full simulation
sweeps are exercised by the benchmark harness)."""

import pytest

from repro.analysis.sweep import PointResult, SweepResult
from repro.experiments import (
    SCALES,
    fig2_scalability,
    fig3_cost,
    fig4_topologies,
    fig6_synthetic,
    fig8_stencil,
    get_scale,
    table1_comparison,
)


# ---------------------------------------------------------------------------
# Scales
# ---------------------------------------------------------------------------


def test_scales_exist_and_build():
    assert set(SCALES) == {"smoke", "small", "paper"}
    for name, scale in SCALES.items():
        topo = scale.topology()
        assert topo.num_terminals > 0
        cfg = scale.sim_config()
        assert cfg.router.num_vcs == 8  # all scales use the paper's 8 VCs


def test_paper_scale_is_the_papers_network():
    sc = get_scale("paper")
    topo = sc.topology()
    assert topo.widths == (8, 8, 8)
    assert topo.num_terminals == 4096
    assert sc.granularity == 0.02  # the paper's 2% injection granularity
    cfg = sc.sim_config()
    assert cfg.network.channel_latency_rr == 50
    assert cfg.router.xbar_latency == 50


def test_get_scale_passthrough_and_errors():
    sc = get_scale("smoke")
    assert get_scale(sc) is sc
    with pytest.raises(ValueError):
        get_scale("galactic")


# ---------------------------------------------------------------------------
# Analytical drivers
# ---------------------------------------------------------------------------


def test_fig2_run_and_render():
    points = fig2_scalability.run(radices=[32, 64])
    text = fig2_scalability.render(points)
    assert "HyperX-3" in text and "Dragonfly-3" in text
    assert "78608" in text  # the paper's 3D 64-port number


def test_fig3_run_and_render():
    points = fig3_cost.run(target_sizes=[4096])
    text = fig3_cost.render(points)
    assert "passive-optical" in text and "DF/HX" in text


def test_table1_run_and_render():
    text = table1_comparison.render(table1_comparison.run())
    assert "DimWAR" in text and "escape paths" in text


# ---------------------------------------------------------------------------
# Figure 6 result containers / rendering (no simulation)
# ---------------------------------------------------------------------------


def _fake_point(rate, stable=True):
    return PointResult(
        offered_rate=rate, stable=stable, reason="stable" if stable else "sat",
        mean_latency=40.0, p99_latency=80.0, accepted_rate=rate,
        mean_hops=2.0, mean_deroutes=0.1, packets_delivered=100, cycles=1000,
    )


def test_fig6_result_and_render():
    res = fig6_synthetic.Fig6Result(scale="smoke")
    sweep = SweepResult(algorithm="DOR", pattern="UR",
                        points=[_fake_point(0.2), _fake_point(0.4, stable=False)])
    res.sweeps[("UR", "DOR")] = sweep
    assert res.saturation("UR", "DOR") == pytest.approx(0.2)
    text = fig6_synthetic.render_load_latency(res, "UR")
    assert "saturated" in text
    chart = fig6_synthetic.render_throughput_chart(
        res, algorithms=("DOR",), patterns=("UR",)
    )
    assert "0.20" in chart


def test_fig6_rejects_unknown_pattern():
    with pytest.raises(ValueError):
        fig6_synthetic.run_pattern("WAVES", scale="smoke")


# ---------------------------------------------------------------------------
# Figure 4 / Figure 8 containers
# ---------------------------------------------------------------------------


def test_fig4_cases_are_comparable():
    for scale in ("smoke", "small", "paper"):
        cases = fig4_topologies.paper_cases(scale)
        names = [c.name for c in cases]
        assert names == ["FatTree", "Dragonfly", "HyperX"]
        sizes = [c.num_terminals for c in cases]
        assert max(sizes) < 2 * min(sizes)  # endpoint counts comparable


def test_fig4_speedup_math():
    res = fig4_topologies.Fig4Result(scale="smoke")
    res.times[("HyperX", 1)] = 75
    res.times[("Dragonfly", 1)] = 100
    assert res.hyperx_speedup("Dragonfly", 1) == pytest.approx(0.25)
    assert "Dragonfly" in fig4_topologies.render(res)


def test_fig8_render():
    res = fig8_stencil.Fig8Result(scale="smoke")
    res.times[("halo", 1, "DOR")] = 1000
    res.times[("halo", 1, "OmniWAR")] = 800
    text = fig8_stencil.render(res, algorithms=("DOR", "OmniWAR"))
    assert "1000" in text and "800" in text


def test_fig8_single_run_smokes():
    t = fig8_stencil.run_stencil_once(
        "DimWAR", mode="collective", iterations=1, scale="smoke"
    )
    assert t > 0


def test_table_area_driver():
    from repro.experiments import table_area

    result = table_area.run(algorithms=("DOR", "DimWAR"))
    text = table_area.render(result)
    assert "size-optimized" in text
    assert ("DimWAR", "paper", "full") in result.geometries


def test_irregular_driver_and_render():
    from repro.experiments import irregular

    res = irregular.run(algorithms=("DOR",), scale="smoke", cycles=1200)
    text = irregular.render(res)
    assert "DOR" in text and "large-job latency" in text
    r = res.results["DOR"]
    assert r.packets > 0 and r.large_job_latency > 0


def test_irregular_requires_3d():
    import pytest as _pytest

    from repro.experiments.common import Scale
    from repro.experiments.irregular import run_one

    flat = Scale(
        name="flat2d", widths=(4, 4), terminals_per_router=2,
        total_cycles=1000, granularity=0.2, stencil_ranks=(2, 2, 2),
        stencil_aggregate_flits=52,
    )
    with _pytest.raises(ValueError):
        run_one("DOR", flat, cycles=100)


def test_fig7_model_renders():
    from repro.experiments import fig7_model

    text = fig7_model.run()
    assert "26" in text and "dissemination" in text
    # the face/edge/corner counts of the paper's Figure 7b
    dec = fig7_model.render_decomposition(grid=(3, 3, 3), aggregate_flits=260)
    assert "face" in dec and "edge" in dec and "corner" in dec
