"""Tests for the Section 2.2 minimal-oblivious baselines (ROMM, O1Turn)."""

from dataclasses import replace

import pytest

from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom


def _traced(algo_name, widths=(3, 3, 3), tpr=2, rate=0.3, cycles=1200, seed=2):
    topo = HyperX(widths, tpr)
    algo = make_algorithm(algo_name, topo)
    cfg = default_config()
    cfg = replace(cfg, network=replace(cfg.network, track_vc_trace=True))
    net = Network(topo, algo, cfg)
    sim = Simulator(net)
    delivered = []
    for t in net.terminals:
        t.delivery_listeners.append(lambda p, c: delivered.append(p))
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), rate, seed=seed)
    sim.processes.append(traffic)
    sim.run(cycles)
    traffic.stop()
    assert sim.drain(max_cycles=200_000)
    assert net.total_injected_flits() == net.total_ejected_flits()
    return topo, net, delivered


@pytest.mark.parametrize("name", ["ROMM", "O1Turn"])
def test_paths_are_minimal(name):
    topo, net, pkts = _traced(name)
    assert pkts
    for p in pkts:
        src_r = topo.router_of_terminal(p.src_terminal)
        dst_r = topo.router_of_terminal(p.dst_terminal)
        assert p.hops == topo.min_hops(src_r, dst_r)
        assert p.deroutes == 0


def test_romm_two_phase_classes():
    topo, net, pkts = _traced("ROMM")
    saw_phase1 = False
    for p in pkts:
        classes = [net.vc_map.class_of(v) for v in p.vc_trace or []]
        assert classes == sorted(classes)
        assert set(classes) <= {0, 1}
        saw_phase1 = saw_phase1 or 0 in classes
    assert saw_phase1  # random quadrant intermediates actually used


def test_o1turn_uses_distance_classes_and_mixed_orders():
    topo, net, pkts = _traced("O1Turn", rate=0.35)
    orders = set()
    for p in pkts:
        classes = [net.vc_map.class_of(v) for v in p.vc_trace or []]
        assert classes == list(range(len(classes)))  # VC = hop index
        order = p.routing_state.get("o1_order")
        if order is not None:
            orders.add(order)
    assert len(orders) > 1  # different packets use different dim orders


def test_romm_intermediate_in_minimal_quadrant():
    topo, net, pkts = _traced("ROMM", rate=0.2, cycles=800)
    checked = 0
    for p in pkts:
        inter = p.routing_state.get("romm_int")
        if inter is None:
            continue
        src = topo.coords(topo.router_of_terminal(p.src_terminal))
        dst = topo.coords(topo.router_of_terminal(p.dst_terminal))
        for i, c in enumerate(inter):
            assert c in (src[i], dst[i])
        checked += 1
    assert checked > 0


@pytest.mark.parametrize("name", ["ROMM", "O1Turn"])
def test_registered(name):
    from repro.core.registry import ALGORITHM_DESCRIPTIONS, algorithm_names

    assert name in algorithm_names()
    assert name in ALGORITHM_DESCRIPTIONS
