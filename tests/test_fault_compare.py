"""Tests for the head-to-head fault comparison driver (fault_compare).

The driver is the paper-facing deliverable of the fault round: every
algorithm pushed through the *same* fault samples at each fault count,
with NoRouteError captured as a reported verdict rather than a crash.
These tests run a tiny grid end-to-end and pin the reporting contract
(grid shape, per-cell lookup, the ``*`` footnote convention).
"""

import pytest

from repro.experiments.fault_compare import (
    COMPARE_ALGORITHMS,
    FaultCompareResult,
    render,
    run_fault_comparison,
    validate_fault_capable,
)
from repro.topology.hyperx import HyperX


def _tiny(algorithms=("DimWAR", "FTHX"), fault_counts=(0, 1), **kwargs):
    kwargs.setdefault("topology", HyperX((3, 3), 1))
    kwargs.setdefault("rate", 0.1)
    kwargs.setdefault("window", 100)
    kwargs.setdefault("pre_windows", 1)
    kwargs.setdefault("post_windows", 3)
    kwargs.setdefault("saturation", False)
    return run_fault_comparison(
        algorithms=algorithms, fault_counts=fault_counts, **kwargs
    )


def test_grid_is_complete_and_cells_resolve():
    res = _tiny()
    assert isinstance(res, FaultCompareResult)
    assert res.widths == (3, 3)
    assert len(res.points) == 4  # 2 algorithms x 2 fault counts
    for name in res.algorithms:
        for k in res.fault_counts:
            cell = res.cell(name, k)
            assert cell.algorithm == name and cell.fault_links == k
            assert 0.0 <= cell.delivered_fraction <= 1.0


def test_pristine_column_always_delivers():
    res = _tiny()
    for name in res.algorithms:
        cell = res.cell(name, 0)
        assert cell.routing_error is None
        assert cell.delivered_fraction == 1.0
        assert cell.drained


def test_fthx_delivers_under_faults_where_vcfree_may_report():
    """The head-to-head story: FTHX's escape subnetwork covers every
    connectivity-preserving sample; VCFree's unimodal discipline may
    legitimately report instead — but must never leave both fields empty
    while traffic is stuck."""
    res = _tiny(algorithms=("FTHX", "VCFree"), fault_counts=(2,))
    fthx = res.cell("FTHX", 2)
    assert fthx.routing_error is None
    assert fthx.delivered_fraction == 1.0
    vcfree = res.cell("VCFree", 2)
    if vcfree.routing_error is None:
        assert vcfree.drained and vcfree.delivered_fraction == 1.0
    else:
        assert "no candidates" in vcfree.routing_error


def test_same_fault_samples_across_algorithms():
    """Every algorithm sees the identical fault draw at each count — the
    comparison is paired, not independently sampled."""
    res = _tiny(fault_counts=(2,))
    a, b = (res.cell(name, 2) for name in res.algorithms)
    assert a.fault_links == b.fault_links == 2


def test_render_tables_and_footnotes():
    res = _tiny(algorithms=("FTHX", "VCFree"), fault_counts=(0, 2))
    text = render(res)
    assert "Fault head-to-head" in text
    assert "Delivered fraction" in text
    assert "Settling time" in text
    assert "0 faults" in text and "2 faults" in text
    # saturation=False suppresses the third table entirely
    assert "Saturation throughput" not in text
    vcfree = res.cell("VCFree", 2)
    if vcfree.routing_error is not None:
        # the * marker in the grid is explained by a footnote
        assert "*" in text
        assert "reported verdict, never a hang" in text


def test_saturation_column_present_when_enabled():
    res = _tiny(
        algorithms=("DimWAR",),
        fault_counts=(0,),
        saturation=True,
        granularity=0.2,
        max_rate=0.4,
        total_cycles=1500,
    )
    cell = res.cell("DimWAR", 0)
    assert cell.saturation_rate is not None or cell.saturation_error
    assert "Saturation throughput" in render(res)


def test_validate_fault_capable_accepts_and_rejects():
    validate_fault_capable(COMPARE_ALGORITHMS)
    with pytest.raises(ValueError, match="VAL is not fault-capable"):
        validate_fault_capable(("DimWAR", "VAL"))
    with pytest.raises(ValueError, match="not a registered algorithm"):
        validate_fault_capable(("NoSuchScheme",))
