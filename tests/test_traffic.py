"""Tests for the Table 3 traffic patterns, size distributions, and injection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.hyperx import HyperX
from repro.traffic.patterns import (
    BitComplement,
    DimensionComplementReverse,
    Hotspot,
    RandomPermutation,
    Swap2,
    Tornado,
    Transpose,
    UniformRandom,
    UniformRandomBisection,
    paper_patterns,
)
from repro.traffic.sizes import BimodalSize, FixedSize, UniformSize


RNG = np.random.default_rng(0)


def _coords_of(topo, terminal):
    return topo.coords(terminal // topo.terminals_per_router)


# ---------------------------------------------------------------------------
# UR
# ---------------------------------------------------------------------------


def test_ur_never_self_and_in_range():
    ur = UniformRandom(16)
    for src in range(16):
        for _ in range(50):
            d = ur.dest(src, RNG)
            assert 0 <= d < 16 and d != src


def test_ur_is_roughly_uniform():
    ur = UniformRandom(8)
    counts = np.zeros(8)
    for _ in range(4000):
        counts[ur.dest(3, RNG)] += 1
    assert counts[3] == 0
    others = counts[counts > 0]
    assert others.min() > 0.7 * others.max()


# ---------------------------------------------------------------------------
# BC
# ---------------------------------------------------------------------------


def test_bc_is_involution():
    bc = BitComplement(64)
    for src in range(64):
        d = bc.dest(src, RNG)
        assert bc.dest(d, RNG) == src
        assert d != src
    assert bc.is_deterministic()


def test_bc_matches_bitwise_complement_for_power_of_two():
    bc = BitComplement(16)
    for src in range(16):
        assert bc.dest(src, RNG) == (~src) & 15


# ---------------------------------------------------------------------------
# URB
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dim", [0, 1, 2])
def test_urb_complements_target_dim_only(dim):
    topo = HyperX((4, 4, 4), 2)
    urb = UniformRandomBisection(topo, dim)
    for src in range(0, topo.num_terminals, 7):
        sc = _coords_of(topo, src)
        seen_other = set()
        for _ in range(30):
            d = urb.dest(src, RNG)
            dc = _coords_of(topo, d)
            assert dc[dim] == topo.widths[dim] - 1 - sc[dim]
            seen_other.add(dc[(dim + 1) % 3])
        # other dimensions really are randomized
        assert len(seen_other) > 1


def test_urb_names():
    topo = HyperX((4, 4, 4), 1)
    assert UniformRandomBisection(topo, 0).name == "URBx"
    assert UniformRandomBisection(topo, 1).name == "URBy"
    assert UniformRandomBisection(topo, 2).name == "URBz"


def test_urb_rejects_bad_dim():
    topo = HyperX((4, 4), 1)
    with pytest.raises(ValueError):
        UniformRandomBisection(topo, 2)


# ---------------------------------------------------------------------------
# S2
# ---------------------------------------------------------------------------


def test_s2_even_swaps_x_odd_swaps_y():
    topo = HyperX((4, 4), 2)
    s2 = Swap2(topo)
    assert s2.is_deterministic()
    for src in range(topo.num_terminals):
        sc = _coords_of(topo, src)
        dc = _coords_of(topo, s2.dest(src, RNG))
        if src % 2 == 0:
            assert dc[0] == 3 - sc[0] and dc[1] == sc[1]
        else:
            assert dc[1] == 3 - sc[1] and dc[0] == sc[0]


def test_s2_preserves_local_terminal_index():
    topo = HyperX((4, 4), 4)
    s2 = Swap2(topo)
    for src in range(topo.num_terminals):
        assert s2.dest(src, RNG) % 4 == src % 4


def test_s2_needs_two_dims():
    with pytest.raises(ValueError):
        Swap2(HyperX((4,), 2))


# ---------------------------------------------------------------------------
# DCR
# ---------------------------------------------------------------------------


def test_dcr_structure():
    topo = HyperX((4, 4, 4), 2)
    dcr = DimensionComplementReverse(topo)
    for src in range(0, topo.num_terminals, 5):
        x, y, z = _coords_of(topo, src)
        zs = set()
        for _ in range(40):
            dx, dy, dz = _coords_of(topo, dcr.dest(src, RNG))
            assert dx == 3 - z  # X destination from the source's Z (reversed)
            assert dy == 3 - y  # Y complemented
            zs.add(dz)
        assert len(zs) > 1  # distributed across the Z line


def test_dcr_is_admissible():
    """No destination router is oversubscribed in expectation."""
    topo = HyperX((4, 4, 4), 2)
    dcr = DimensionComplementReverse(topo)
    rng = np.random.default_rng(1)
    recv = np.zeros(topo.num_routers)
    sends_per_src = 30
    for src in range(topo.num_terminals):
        for _ in range(sends_per_src):
            recv[dcr.dest(src, rng) // 2] += 1
    expected = sends_per_src * 2  # T terminals' worth per router
    assert recv.max() < 1.5 * expected
    assert recv.min() > 0.5 * expected


def test_dcr_oversubscription_under_dor():
    """Table 3 / Fig 6f: DOR funnels an entire X-line's traffic (w*T
    terminals) through the single Y-link at (C(z), y, z) -> (C(z), C(y), z)."""
    topo = HyperX((4, 4, 4), 4)
    dcr = DimensionComplementReverse(topo)
    rng = np.random.default_rng(2)
    # count DOR Y-hops per (router, dest-y) link
    link_load = {}
    for src in range(topo.num_terminals):
        x, y, z = topo.coords(src // 4)
        for _ in range(5):
            dst = dcr.dest(src, rng)
            dx, dy, dz = topo.coords(dst // 4)
            # DOR: X first -> (dx, y, z), then Y-link (dx,y,z)->(dx,dy,z)
            key = ((dx, y, z), dy)
            link_load[key] = link_load.get(key, 0) + 1
    # each used Y-link carries all w*T = 16 terminals of its X-line
    loads = sorted(link_load.values())
    # every source of a line sent 5 packets; the funnel link carries w*T*5
    assert max(loads) == 4 * 4 * 5


def test_dcr_needs_3d():
    with pytest.raises(ValueError):
        DimensionComplementReverse(HyperX((4, 4), 2))


# ---------------------------------------------------------------------------
# Extra patterns
# ---------------------------------------------------------------------------


def test_tornado_half_shift():
    topo = HyperX((4, 4), 1)
    tor = Tornado(topo, 0)
    for src in range(topo.num_terminals):
        sc, dc = _coords_of(topo, src), _coords_of(topo, tor.dest(src, RNG))
        assert dc[0] == (sc[0] + 2) % 4 and dc[1] == sc[1]


def test_transpose():
    tp = Transpose(16)
    assert tp.dest(0b0001, RNG) == 0b0100
    assert tp.dest(tp.dest(11, RNG), RNG) == 11
    with pytest.raises(ValueError):
        Transpose(8)  # not 4^k


def test_random_permutation_is_derangement_bijection():
    p = RandomPermutation(32, seed=5)
    dests = [p.dest(s, RNG) for s in range(32)]
    assert sorted(dests) == list(range(32))
    assert all(d != s for s, d in enumerate(dests))


def test_hotspot_targets_hot_set():
    hs = Hotspot(32, hot=[3], fraction=1.0)
    assert all(hs.dest(s, RNG) == 3 for s in range(32) if s != 3)
    assert hs.dest(3, RNG) != 3


def test_paper_patterns_lineup():
    topo = HyperX((4, 4, 4), 2)
    pats = paper_patterns(topo)
    assert set(pats) == {"UR", "BC", "URBx", "URBy", "S2", "DCR"}


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_property_all_patterns_stay_in_range(data):
    topo = HyperX((4, 4, 4), 2)
    pats = paper_patterns(topo)
    name = data.draw(st.sampled_from(sorted(pats)))
    src = data.draw(st.integers(0, topo.num_terminals - 1))
    d = pats[name].dest(src, RNG)
    assert 0 <= d < topo.num_terminals
    assert d != src  # all six paper patterns route off-node


# ---------------------------------------------------------------------------
# Size distributions
# ---------------------------------------------------------------------------


def test_fixed_size():
    fs = FixedSize(4)
    assert fs.mean == 4 and fs.max_size == 4
    assert all(fs.sample(RNG) == 4 for _ in range(10))
    with pytest.raises(ValueError):
        FixedSize(0)


def test_uniform_size_paper_range():
    us = UniformSize(1, 16)
    assert us.mean == 8.5  # the paper's random 1..16 flit packets
    samples = [us.sample(RNG) for _ in range(2000)]
    assert min(samples) == 1 and max(samples) == 16
    assert abs(np.mean(samples) - 8.5) < 0.5


def test_bimodal_size():
    bs = BimodalSize(1, 16, long_fraction=0.25)
    assert bs.mean == pytest.approx(0.25 * 16 + 0.75 * 1)
    assert set(bs.sample(RNG) for _ in range(200)) == {1, 16}


# ---------------------------------------------------------------------------
# Property tests for topology-structured patterns
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    widths=st.tuples(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5)),
    tpr=st.integers(1, 4),
    src_frac=st.floats(0, 0.999),
)
def test_property_urb_complements_exactly_one_dim(widths, tpr, src_frac):
    topo = HyperX(widths, tpr)
    src = int(src_frac * topo.num_terminals)
    for dim in range(3):
        urb = UniformRandomBisection(topo, dim)
        d = urb.dest(src, RNG)
        sc = topo.coords(src // tpr)
        dc = topo.coords(d // tpr)
        assert dc[dim] == widths[dim] - 1 - sc[dim]


@settings(max_examples=40, deadline=None)
@given(
    w=st.integers(2, 6),
    tpr=st.sampled_from([2, 4, 8]),  # even T preserves terminal parity
    src_frac=st.floats(0, 0.999),
)
def test_property_s2_is_involution_for_even_t(w, tpr, src_frac):
    """With an even terminals-per-router count (the paper's T=8 included),
    swap2 preserves terminal parity, so applying it twice is the identity.
    (Odd T flips parity across routers and breaks the involution — which is
    why the paper's pattern is stated for even-T configurations.)"""
    topo = HyperX((w, w), tpr)
    s2 = Swap2(topo)
    src = int(src_frac * topo.num_terminals)
    d = s2.dest(src, RNG)
    assert s2.dest(d, RNG) == src
