"""Documentation consistency checks — docs must not rot.

Verifies that DESIGN.md / EXPERIMENTS.md / README.md reference modules,
benchmarks, and CLI figures that actually exist, and that every public
module has a docstring.
"""

import doctest
import importlib
import os
import pkgutil
import re

import pytest

import repro

ROOT = os.path.join(os.path.dirname(__file__), "..")


def _read(name):
    with open(os.path.join(ROOT, name)) as f:
        return f.read()


def test_design_references_existing_modules():
    text = _read("DESIGN.md")
    for ref in re.findall(r"`repro\.[a-z_.]+`", text):
        mod = ref.strip("`")
        # allow references to attributes: import the longest importable prefix
        parts = mod.split(".")
        for cut in range(len(parts), 1, -1):
            try:
                importlib.import_module(".".join(parts[:cut]))
                break
            except ImportError:
                continue
        else:
            raise AssertionError(f"DESIGN.md references missing module {mod}")


def test_design_references_existing_files():
    text = _read("DESIGN.md") + _read("EXPERIMENTS.md")
    for ref in re.findall(r"`(benchmarks/[a-z0-9_]+\.py)`", text):
        assert os.path.exists(os.path.join(ROOT, ref)), f"missing {ref}"
    for ref in re.findall(r"`(tests/[a-z0-9_]+\.py)`", text):
        assert os.path.exists(os.path.join(ROOT, ref)), f"missing {ref}"


def test_experiments_cli_figures_exist():
    from repro.cli import FIGURES

    text = _read("EXPERIMENTS.md")
    for name in re.findall(r"python -m repro figure ([a-z0-9_]+)", text):
        assert name in FIGURES, f"EXPERIMENTS.md references unknown figure {name}"


def test_readme_examples_exist():
    text = _read("README.md")
    for ref in re.findall(r"examples/([a-z_]+\.py)", text):
        assert os.path.exists(os.path.join(ROOT, "examples", ref)), ref


def test_every_module_has_docstring():
    missing = []
    for m in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if m.name.endswith("__main__"):
            continue
        mod = importlib.import_module(m.name)
        if not (mod.__doc__ or "").strip():
            missing.append(m.name)
    assert not missing, f"modules without docstrings: {missing}"


def _markdown_files():
    out = []
    for d in (ROOT, os.path.join(ROOT, "docs")):
        for fn in sorted(os.listdir(d)):
            if fn.endswith(".md"):
                out.append(os.path.join(d, fn))
    return out


def test_markdown_links_resolve():
    """Every relative link in root and docs/ markdown points at a real file."""
    link = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
    bad = []
    for path in _markdown_files():
        with open(path) as f:
            text = f.read()
        for target in link.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), rel))
            if not os.path.exists(resolved):
                bad.append(f"{os.path.relpath(path, ROOT)} -> {target}")
    assert not bad, f"markdown links to missing files: {bad}"


def test_faults_doc_covers_the_cli():
    text = _read(os.path.join("docs", "FAULTS.md"))
    for flag in (
        "--fail-links", "--fail-routers", "--fault-seed", "--schedule",
        "--compare", "--fault-counts", "--widths", "--terminals",
        "--no-saturation", "--granularity", "--max-rate", "--workers",
    ):
        assert flag in text, f"docs/FAULTS.md does not document {flag}"
    assert "python -m repro faults" in text


def test_faults_doc_covers_the_successor_algorithms():
    """The fault round's algorithms and their papers must be documented in
    both the fault guide and the algorithm reference."""
    faults = _read(os.path.join("docs", "FAULTS.md"))
    algos = _read(os.path.join("docs", "ALGORITHMS.md"))
    for name in ("FTHX", "VCFree"):
        assert name in faults, f"docs/FAULTS.md does not mention {name}"
        assert name in algos, f"docs/ALGORITHMS.md does not mention {name}"
    for arxiv_id in ("2404.04315", "2510.14730"):
        assert arxiv_id in algos, (
            f"docs/ALGORITHMS.md does not cite arXiv:{arxiv_id}"
        )


def test_observability_doc_covers_the_cli():
    text = _read(os.path.join("docs", "OBSERVABILITY.md"))
    for flag in (
        "--sample-every", "--window", "--heatmap", "--golden",
        "--jsonl", "--chrome", "--profile", "--update-golden",
    ):
        assert flag in text, f"docs/OBSERVABILITY.md does not document {flag}"
    assert "python -m repro trace" in text
    # The event schema table must name every event type the tracer emits.
    from repro.obs import EVENT_TYPES

    for t in EVENT_TYPES:
        assert f"`{t}`" in text, f"docs/OBSERVABILITY.md misses event {t!r}"


def test_service_doc_covers_the_cli():
    text = _read(os.path.join("docs", "SERVICE.md"))
    for flag in (
        "--host", "--port", "--workers", "--queue-depth",
        "--rate-limit", "--burst", "--memo-root", "--job-log",
    ):
        assert flag in text, f"docs/SERVICE.md does not document {flag}"
    assert "python -m repro serve" in text
    # Every endpoint the handler routes must appear in the doc.
    for endpoint in ("/jobs", "/healthz", "/stats", "/cancel", "/result"):
        assert endpoint in text, f"docs/SERVICE.md misses endpoint {endpoint}"
    # ...and every HTTP status the error contract can produce.
    for code in ("400", "404", "409", "413", "429", "503"):
        assert code in text, f"docs/SERVICE.md misses status {code}"


#: Modules whose docstrings promise runnable examples (ISSUE: fault modules
#: plus the parallel engine, telemetry probe, and the observability layer;
#: the simulator's run_until contract rides along since the skip-ahead PR).
DOCTEST_MODULES = [
    "repro.faults",
    "repro.faults.model",
    "repro.faults.degraded",
    "repro.faults.inject",
    "repro.analysis.parallel",
    "repro.network.simulator",
    "repro.network.telemetry",
    "repro.check.sanitizer",
    "repro.check.oracle",
    "repro.obs.tracer",
    "repro.obs.timeseries",
    "repro.obs.profile",
    "repro.service.spec",
    "repro.service.jobs",
    "repro.service.ratelimit",
]


@pytest.mark.parametrize("name", DOCTEST_MODULES)
def test_module_doctests_pass(name):
    mod = importlib.import_module(name)
    result = doctest.testmod(mod, verbose=False)
    assert result.attempted > 0, f"{name} has no doctest examples"
    assert result.failed == 0, f"{name} doctests failed"


def test_performance_doc_covers_fallback_reasons():
    """docs/PERFORMANCE.md's fallback matrix must name every
    ``*_fallback_reason`` attribute the engines expose (the CI docs job
    runs the same grep as a shell guard)."""
    attrs = set()
    src = os.path.join(ROOT, "src", "repro", "network")
    for fn in sorted(os.listdir(src)):
        if not fn.endswith(".py"):
            continue
        with open(os.path.join(src, fn)) as f:
            attrs.update(re.findall(r"[a-z_]+_fallback_reason", f.read()))
    assert attrs, "no *_fallback_reason attributes found under src/repro/network/"
    text = _read(os.path.join("docs", "PERFORMANCE.md"))
    missing = sorted(a for a in attrs if a not in text)
    assert not missing, f"docs/PERFORMANCE.md does not document: {missing}"


def test_public_algorithms_documented_in_algorithms_md():
    from repro.core.registry import algorithm_names

    text = _read(os.path.join("docs", "ALGORITHMS.md"))
    for name in algorithm_names():
        base = name.replace("-b2b", "")
        assert base in text, f"docs/ALGORITHMS.md does not mention {base}"
