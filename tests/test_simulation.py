"""End-to-end simulator integration tests: delivery, conservation,
determinism, credit protocol, and wiring invariants."""

import numpy as np
import pytest

from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.stats import PacketStats
from repro.network.types import Packet
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom
from repro.traffic.sizes import FixedSize, UniformSize


def _net(widths=(3, 3), tpr=2, algo="DOR", **cfg_over):
    topo = HyperX(widths, tpr)
    algorithm = make_algorithm(algo, topo)
    cfg = default_config(**cfg_over)
    return topo, Network(topo, algorithm, cfg)


def test_single_packet_delivered_to_right_terminal():
    topo, net = _net()
    sim = Simulator(net)
    pkt = Packet(src_terminal=0, dst_terminal=topo.num_terminals - 1, size=5,
                 create_cycle=0)
    net.terminals[0].offer(pkt)
    assert sim.drain(max_cycles=5000)
    assert pkt.eject_cycle is not None
    assert net.terminals[topo.num_terminals - 1].packets_delivered == 1
    assert pkt.hops == topo.min_hops(0, topo.num_routers - 1)


def test_packet_to_local_terminal_same_router():
    topo, net = _net(tpr=2)
    sim = Simulator(net)
    pkt = Packet(src_terminal=0, dst_terminal=1, size=3, create_cycle=0)
    net.terminals[0].offer(pkt)
    assert sim.drain(max_cycles=2000)
    assert pkt.eject_cycle is not None
    assert pkt.hops == 0  # never left the source router


def test_zero_load_latency_components():
    """At zero load the latency must equal the known pipeline sum."""
    topo, net = _net(algo="DOR")
    cfg = net.cfg
    sim = Simulator(net)
    # 1-flit packet, 1 router hop (dest differs in one dimension)
    dst_router = topo.peer(0, 0).router_port.router
    pkt = Packet(0, dst_router * 2, 1, create_cycle=0)
    net.terminals[0].offer(pkt)
    assert sim.drain(max_cycles=2000)
    expected = (
        cfg.network.channel_latency_rt  # terminal -> source router
        + cfg.router.xbar_latency  # source router datapath
        + cfg.network.channel_latency_rr  # router -> router
        + cfg.router.xbar_latency  # dest router datapath
        + cfg.network.channel_latency_rt  # router -> terminal
    )
    # +small constant for queue/stage boundaries crossed per cycle steps
    assert expected <= pkt.latency <= expected + 6


@pytest.mark.parametrize("algo", ["DOR", "VAL", "UGAL", "UGAL+", "MIN-AD",
                                  "DimWAR", "OmniWAR"])
def test_flit_conservation_all_algorithms(algo):
    """Everything injected is eventually ejected, for every algorithm."""
    topo, net = _net(widths=(3, 3), tpr=2, algo=algo)
    sim = Simulator(net)
    traffic = SyntheticTraffic(
        net, UniformRandom(topo.num_terminals), rate=0.25, seed=4
    )
    sim.processes.append(traffic)
    sim.run(1500)
    traffic.stop()
    assert sim.drain(max_cycles=100_000), f"{algo} failed to drain"
    assert net.total_injected_flits() == net.total_ejected_flits()
    assert net.total_injected_flits() == traffic.flits_generated
    assert net.flits_in_flight() == 0


def test_all_packets_reach_correct_destinations():
    topo, net = _net(widths=(2, 3), tpr=2, algo="DimWAR")
    sim = Simulator(net)
    stats = PacketStats()
    delivered = []
    for t in net.terminals:
        t.delivery_listeners.append(stats.on_delivery)
        t.delivery_listeners.append(
            lambda p, c, tid=t.terminal_id: delivered.append((p.dst_terminal, tid))
        )
    traffic = SyntheticTraffic(
        net, UniformRandom(topo.num_terminals), rate=0.3, seed=9
    )
    sim.processes.append(traffic)
    sim.run(800)
    traffic.stop()
    assert sim.drain(max_cycles=50_000)
    assert delivered and all(dst == tid for dst, tid in delivered)


def test_determinism_same_seed():
    def run(seed):
        topo, net = _net(widths=(3, 3), tpr=2, algo="OmniWAR")
        sim = Simulator(net)
        traffic = SyntheticTraffic(
            net, UniformRandom(topo.num_terminals), rate=0.3, seed=seed
        )
        sim.processes.append(traffic)
        stats = PacketStats()
        for t in net.terminals:
            t.delivery_listeners.append(stats.on_delivery)
        sim.run(1200)
        return (
            net.total_injected_flits(),
            net.total_ejected_flits(),
            [s.latency for s in stats.samples],
        )

    a, b, c = run(7), run(7), run(8)
    assert a == b  # bit-identical with the same seed
    assert a != c  # and actually sensitive to the seed


def test_age_arbitration_prefers_older_packet():
    """Two packets contending for one output: the older one wins."""
    topo, net = _net(widths=(3,), tpr=2, algo="DOR")
    sim = Simulator(net)
    old = Packet(0, 5, 8, create_cycle=0)  # router 0 -> router 2
    young = Packet(1, 5, 8, create_cycle=0)
    young.create_cycle = 1  # same source router, same destination
    net.terminals[0].offer(old)
    net.terminals[1].offer(young)
    assert sim.drain(max_cycles=5000)
    assert old.eject_cycle < young.eject_cycle


def test_router_buffer_never_overflows_under_load():
    """Credit protocol holds under saturation (receive() raises on violation)."""
    topo, net = _net(widths=(3, 3), tpr=4, algo="DimWAR")
    sim = Simulator(net)
    traffic = SyntheticTraffic(
        net, UniformRandom(topo.num_terminals), rate=0.9, seed=2
    )
    sim.processes.append(traffic)
    sim.run(2000)  # drives the network well past saturation


def test_network_rejects_too_many_classes():
    topo = HyperX((3, 3, 3), 1)
    algo = make_algorithm("OmniWAR", topo, deroutes=10)  # needs 13 classes
    with pytest.raises(ValueError):
        Network(topo, algo, default_config())


def test_channel_count():
    topo, net = _net(widths=(3, 3), tpr=2)
    # per router: 4 router-facing ports (2 per dim) -> 9*4 data + 9*4 credit;
    # per terminal: 2 data + 2 credit
    expected = 9 * 4 * 2 + 18 * 4
    assert len(net.channels) == expected


def test_quiescent_initially():
    _, net = _net()
    assert net.quiescent()
    assert net.flits_in_flight() == 0


def test_simulator_run_until():
    topo, net = _net()
    sim = Simulator(net)
    hit = sim.run_until(lambda: sim.cycle >= 100, max_cycles=500, check_every=7)
    assert hit and 100 <= sim.cycle <= 107


def test_run_until_stops_at_exact_first_check_boundary():
    """The predicate is checked every ``check_every`` cycles; the run must
    return at the first boundary where it holds, not overshoot to the next."""
    topo, net = _net()
    sim = Simulator(net)
    hit = sim.run_until(lambda: sim.cycle >= 100, max_cycles=500, check_every=7)
    assert hit and sim.cycle == 105  # first multiple of 7 past 100
    # An immediately true predicate returns after one chunk, not zero.
    sim2 = Simulator(_net()[1])
    assert sim2.run_until(lambda: True, max_cycles=500, check_every=64)
    assert sim2.cycle == 64


def test_run_until_timeout_predicate_call_count():
    """On timeout the predicate runs once per check boundary — no redundant
    final re-evaluation — and the simulator lands exactly on the deadline."""
    topo, net = _net()
    sim = Simulator(net)
    calls = []

    def never():
        calls.append(sim.cycle)
        return False

    assert not sim.run_until(never, max_cycles=100, check_every=7)
    assert sim.cycle == 100  # the last chunk is clipped to the deadline
    # Boundaries: 7, 14, ..., 98, then the clipped chunk ending at 100.
    assert calls == [*range(7, 99, 7), 100]


def test_run_until_zero_budget_checks_once():
    topo, net = _net()
    sim = Simulator(net)
    calls = []
    assert not sim.run_until(lambda: calls.append(1) is not None and False,
                             max_cycles=0)
    assert sim.cycle == 0 and len(calls) == 1


def test_idle_network_wakes_for_late_offer():
    """Activity tracking must not lose wake-ups: after the network drains and
    idles for a long stretch, a newly offered packet still gets delivered."""
    topo, net = _net(widths=(3, 3), tpr=2, algo="DimWAR")
    sim = Simulator(net)
    first = Packet(0, topo.num_terminals - 1, size=4, create_cycle=0)
    net.terminals[0].offer(first)
    assert sim.drain(max_cycles=5000)
    sim.run(1000)  # a long fully idle stretch (active sets are empty)
    late = Packet(3, topo.num_terminals - 2, size=4,
                  create_cycle=sim.cycle)
    net.terminals[3].offer(late)
    assert sim.drain(max_cycles=5000)
    assert late.eject_cycle is not None
    assert net.total_injected_flits() == net.total_ejected_flits() == 8


def test_packet_size_mix_delivered():
    topo, net = _net(widths=(3, 3), tpr=2, algo="OmniWAR")
    sim = Simulator(net)
    traffic = SyntheticTraffic(
        net,
        UniformRandom(topo.num_terminals),
        rate=0.2,
        size_dist=UniformSize(1, 16),
        seed=3,
    )
    sim.processes.append(traffic)
    sim.run(1000)
    traffic.stop()
    assert sim.drain(max_cycles=50_000)
    assert net.total_ejected_flits() == traffic.flits_generated


def test_single_flit_packets():
    topo, net = _net(algo="DimWAR")
    sim = Simulator(net)
    traffic = SyntheticTraffic(
        net, UniformRandom(topo.num_terminals), rate=0.3,
        size_dist=FixedSize(1), seed=5,
    )
    sim.processes.append(traffic)
    sim.run(800)
    traffic.stop()
    assert sim.drain(max_cycles=20_000)
    assert net.total_ejected_flits() == traffic.packets_generated


def test_validate_wiring_all_topologies():
    from repro.core.dragonfly_routing import DragonflyMinimal
    from repro.core.fattree_routing import FatTreeAdaptive
    from repro.core.torus_routing import TorusDOR
    from repro.topology.dragonfly import balanced_dragonfly
    from repro.topology.fattree import FatTree
    from repro.topology.torus import Torus

    cases = [
        (HyperX((3, 3), 2), "DOR"),
        (balanced_dragonfly(2), DragonflyMinimal),
        (FatTree(3, 2, leaf_factor=2), FatTreeAdaptive),
        (Torus((3, 3), 2), TorusDOR),
    ]
    for topo, algo in cases:
        algorithm = make_algorithm(algo, topo) if isinstance(algo, str) else algo(topo)
        net = Network(topo, algorithm, default_config())
        net.validate_wiring()


def test_sweep_result_json_roundtrip(tmp_path):
    from repro.analysis.sweep import SweepResult, measure_point

    topo = HyperX((3,), 2)
    algo = make_algorithm("DOR", topo)
    sweep = SweepResult(algorithm="DOR", pattern="UR")
    sweep.points.append(
        measure_point(topo, algo, UniformRandom(topo.num_terminals), 0.2,
                      total_cycles=1200, seed=1)
    )
    path = tmp_path / "sweep.json"
    sweep.save(str(path))
    loaded = SweepResult.load(str(path))
    assert loaded.algorithm == "DOR"
    assert loaded.points[0].offered_rate == sweep.points[0].offered_rate
    assert loaded.points[0].mean_latency == sweep.points[0].mean_latency
    assert loaded.saturation_rate == sweep.saturation_rate


def test_quick_simulation_public_api():
    from repro import quick_simulation

    r = quick_simulation(algorithm="OmniWAR", pattern="BC", rate=0.2,
                         widths=(3, 3), terminals_per_router=2, cycles=1500)
    assert r.stable and r.accepted_rate > 0.15
    import pytest as _pytest

    with _pytest.raises(ValueError):
        quick_simulation(pattern="WAVES")
