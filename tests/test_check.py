"""Tests for the repro.check runtime sanitizer and differential oracles.

Three layers, mirroring the package self-test:

* negative controls — sanitized clean runs produce zero findings, and the
  hooks attach/detach without residue;
* mutation canaries — every deliberately seeded bug (credit leak, flit
  drop, cyclic wait, throttled stall, illegal VC class, tampered replay)
  must be caught by the *right* checker;
* plumbing — the ``check`` flag flows through ``measure_point``,
  ``sweep_load`` (both serial and spec paths), and the CLI.
"""

import pytest

from repro.analysis.sweep import measure_point, sweep_load
from repro.check import Sanitizer, SanitizerError
from repro.check.oracle import (
    compare_sweeps,
    diff_pristine_empty_faultset,
)
from repro.check.selftest import CANARIES, _build_sim
from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.buffers import VcRoute
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom


# ---------------------------------------------------------------------------
# Negative controls: clean runs stay clean
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("algorithm", ["DOR", "DimWAR", "OmniWAR"])
def test_sanitized_clean_run_no_findings(algorithm):
    topo = HyperX((3, 3), 1)
    algo = make_algorithm(algorithm, topo)
    point = measure_point(
        topo, algo, UniformRandom(topo.num_terminals), 0.2,
        total_cycles=600, seed=2, check=True,
    )
    assert point.packets_delivered > 0


def test_check_flag_does_not_change_results():
    """The sanitizer observes; the measured numbers must be identical."""
    def run(check):
        topo = HyperX((3, 3), 1)
        algo = make_algorithm("DimWAR", topo)
        return measure_point(
            topo, algo, UniformRandom(topo.num_terminals), 0.2,
            total_cycles=600, seed=2, check=check,
        )

    a, b = run(False), run(True)
    assert a.mean_latency == b.mean_latency
    assert a.packets_delivered == b.packets_delivered
    assert a.accepted_rate == b.accepted_rate


def test_attach_detach_leaves_no_residue():
    sim, net, _ = _build_sim("OmniWAR")
    san = Sanitizer(sim).attach()
    assert san in sim.processes
    assert all(r._route_hook == san._on_route for r in net.routers)
    with pytest.raises(RuntimeError, match="already attached"):
        san.attach()
    san.detach()
    assert san not in sim.processes
    assert all(r._route_hook is None for r in net.routers)
    san.detach()  # idempotent


def test_audit_telemetry_counts():
    sim, _, _ = _build_sim("OmniWAR", rate=0.3)
    san = Sanitizer(sim, window=32).attach()
    sim.run(320)
    assert san.audits >= 10
    assert san.routes_checked > 0


def test_final_check_quiescent_after_drain():
    sim, net, _ = _build_sim("DimWAR", rate=0.2)
    san = Sanitizer(sim).attach()
    traffic = next(p for p in sim.processes if isinstance(p, SyntheticTraffic))
    sim.run(300)
    traffic.stop()
    assert sim.drain(max_cycles=100_000)
    san.final_check(require_quiescent=True)


def test_final_check_quiescent_rejects_busy_network():
    sim, _, _ = _build_sim("DimWAR", rate=0.3)
    san = Sanitizer(sim).attach()
    sim.run(200)  # injection still on: traffic in flight
    with pytest.raises(SanitizerError):
        san.final_check(require_quiescent=True)


def test_parameter_validation():
    sim, _, _ = _build_sim("DimWAR")
    with pytest.raises(ValueError, match="window"):
        Sanitizer(sim, window=0)
    with pytest.raises(ValueError, match="horizon"):
        Sanitizer(sim, window=64, stall_horizon=32)


# ---------------------------------------------------------------------------
# Mutation canaries: every checker catches its seeded bug
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,canary", CANARIES, ids=[n.replace(" ", "-") for n, _ in CANARIES]
)
def test_canary_fires_the_right_checker(name, canary):
    ok, detail = canary()
    assert ok, f"canary {name!r}: {detail}"


def test_wait_for_graph_finds_hand_built_cycle():
    """Direct unit test of the deadlock graph, independent of the horizon."""
    sim, net, _ = _build_sim("DimWAR", rate=0.0)
    san = Sanitizer(sim)
    rec = next(r for r in net.links if r.kind == "rr")
    (r0, p0), (r1, p1) = rec.src, rec.dst
    net.routers[r0].inputs[p0].vcs[0].route = VcRoute(p0, 1, 100)
    net.routers[r1].inputs[p1].vcs[1].route = VcRoute(p1, 0, 101)
    cycle = san.find_wait_cycle()
    assert cycle is not None
    assert set(cycle) == {(r0, p0, 0), (r1, p1, 1)}


def test_wait_for_graph_clean_on_live_traffic():
    sim, _, _ = _build_sim("DimWAR", rate=0.3)
    san = Sanitizer(sim).attach()
    sim.run(400)  # routes commit and complete; the graph must stay acyclic
    assert san.find_wait_cycle() is None


# ---------------------------------------------------------------------------
# Differential oracles
# ---------------------------------------------------------------------------


def test_comparator_identity():
    topo = HyperX((2, 2), 1)
    algo = make_algorithm("DimWAR", topo)
    sweep = sweep_load(
        topo, algo, UniformRandom(4), [0.1], total_cycles=300, seed=1
    )
    report = compare_sweeps("self", sweep, sweep)
    assert report.ok and report.detail == "identical"


def test_pristine_empty_oracle_rejects_dor():
    with pytest.raises(ValueError, match="DOR"):
        diff_pristine_empty_faultset(algorithm="DOR")


def test_pristine_empty_oracle_small():
    report = diff_pristine_empty_faultset(
        widths=(2, 2), rates=(0.1,), total_cycles=300
    )
    assert report.ok, report.detail


# ---------------------------------------------------------------------------
# Plumbing: the check flag reaches every layer
# ---------------------------------------------------------------------------


def test_sweep_load_check_kwarg_serial_and_spec_paths():
    def run(workers):
        topo = HyperX((2, 2), 1)
        algo = make_algorithm("DimWAR", topo)
        return sweep_load(
            topo, algo, UniformRandom(4), [0.1], total_cycles=300, seed=1,
            workers=workers, check=True,
        )

    assert run(None).to_json() == run(1).to_json()


def test_cli_check_subcommand(monkeypatch, capsys):
    import repro.check.selftest as selftest
    from repro.cli import main

    calls = {}

    def fake(verbose=True, oracles=True):
        calls["oracles"] = oracles
        return True

    monkeypatch.setattr(selftest, "run_selftest", fake)
    assert main(["check", "--quick"]) == 0
    assert calls == {"oracles": False}

    monkeypatch.setattr(selftest, "run_selftest", lambda **kw: False)
    assert main(["check"]) == 1


def test_cli_sweep_check_flag():
    from repro.cli import main

    assert main([
        "sweep", "--algorithm", "DimWAR", "--widths", "2", "2",
        "--terminals", "1", "--rates", "0.1", "--cycles", "300", "--check",
    ]) == 0


def test_fault_transient_check_flag():
    from repro.experiments.faults import run_fault_transient

    res = run_fault_transient(
        "DimWAR", rate=0.2, window=100, pre_windows=2, post_windows=3,
        fail_links=1, check=True,
    )
    assert res.drained and res.routing_error is None


def test_sanitizer_catches_corruption_in_sanitized_sweep():
    """End to end: a bug seeded under measure_point(check=True) surfaces."""
    topo = HyperX((2, 2), 1)
    algo = make_algorithm("DimWAR", topo)
    net = Network(topo, algo, default_config())
    sim = Simulator(net)
    san = Sanitizer(sim, window=8).attach()
    sim.processes.append(SyntheticTraffic(net, UniformRandom(4), 0.3, seed=1))
    sim.run(100)
    rec = next(r for r in net.links if r.kind == "rr")
    rec.tracker.consume(0)
    with pytest.raises(SanitizerError) as exc:
        sim.run(32)
    assert exc.value.checker == "credits"
    assert "VC 0" in str(exc.value)
