"""Tests for the disk-backed sweep memo (repro.analysis.memo).

Three layers: the canonical key (stable across equivalent spec spellings,
sensitive to everything that changes a result, salted by code version), the
store itself (atomic round trips, corrupt/stale files degrade to misses),
and the warm-start behaviour of ``saturation_throughput`` (memoised rates
replay without simulating, the rate ladder truncates at the lowest cached
unstable rate, and the curve stays byte-identical to a cold run).
"""

import dataclasses
import json
import math
import os

from repro.analysis import SIM_SALT, SweepMemo, point_key
from repro.analysis.memo import memoisable
from repro.analysis.parallel import PointSpec, point_specs, run_points
from repro.analysis.sweep import (
    PointResult,
    saturation_throughput,
    sweep_load,
)
from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.topology.hyperx import HyperX
from repro.traffic.patterns import UniformRandom
from repro.traffic.sizes import UniformSize


def _spec(**overrides) -> PointSpec:
    base = dict(
        widths=(3, 3),
        terminals_per_router=2,
        algorithm="OmniWAR",
        pattern="UR",
        rate=0.2,
        total_cycles=1000,
        seed=1,
    )
    base.update(overrides)
    return PointSpec(**base)


def _result(rate: float, stable: bool = True, latency: float = 20.0):
    return PointResult(
        offered_rate=rate,
        stable=stable,
        reason="" if stable else "backlog",
        mean_latency=latency,
        p99_latency=latency * 2,
        accepted_rate=rate if stable else rate * 0.7,
        mean_hops=2.0,
        mean_deroutes=0.1,
        packets_delivered=500,
        cycles=1000,
        routes_computed=900,
        route_stalls=3,
        wall_clock_s=1.5,
    )


# ---------------------------------------------------------------------------
# Canonical key
# ---------------------------------------------------------------------------


def test_point_key_is_stable_and_hex():
    k1, k2 = point_key(_spec()), point_key(_spec())
    assert k1 == k2
    assert len(k1) == 64 and all(c in "0123456789abcdef" for c in k1)


def test_point_key_normalizes_default_spellings():
    # cfg=None means default_config(); size_dist=None means uniform1-16 —
    # both spellings must land on the same memo entry.
    assert point_key(_spec(cfg=None)) == point_key(_spec(cfg=default_config()))
    assert point_key(_spec(size_dist=None)) == point_key(
        _spec(size_dist=UniformSize(1, 16))
    )


def test_point_key_separates_what_changes_results():
    base = point_key(_spec())
    assert point_key(_spec(rate=0.25)) != base
    assert point_key(_spec(seed=2)) != base
    assert point_key(_spec(total_cycles=2000)) != base
    assert point_key(_spec(algorithm="DimWAR")) != base
    assert point_key(_spec(size_dist=UniformSize(1, 8))) != base
    assert point_key(_spec(), salt="repro-sim/999") != base


def test_check_and_trace_specs_are_unmemoisable(tmp_path):
    # Sanitized/traced runs exist for their side effects — a cache hit
    # would silently skip the audit or the trace artifact.
    plain = _spec()
    checked = dataclasses.replace(plain, check=True)
    traced = dataclasses.replace(plain, trace=object())
    assert memoisable(plain)
    assert not memoisable(checked) and not memoisable(traced)

    memo = SweepMemo(root=str(tmp_path))
    assert memo.put(checked, _result(0.2)) is None
    assert memo.get(checked) is None
    assert memo.writes == 0 and memo.hits == 0
    assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------


def test_put_get_round_trip_zeroes_wall_clock(tmp_path):
    memo = SweepMemo(root=str(tmp_path))
    spec = _spec()
    stored = _result(0.2)
    path = memo.put(spec, stored)
    assert path is not None and os.path.exists(path)
    got = memo.get(spec)
    assert got == dataclasses.replace(stored, wall_clock_s=0.0)
    assert (memo.hits, memo.misses, memo.writes) == (1, 0, 1)


def test_round_trip_preserves_nan_latency(tmp_path):
    # An unstable point measured from an empty window carries NaN latencies;
    # the store must not mangle them (JSON NaN is non-standard but allowed).
    memo = SweepMemo(root=str(tmp_path))
    spec = _spec(rate=0.9)
    memo.put(spec, _result(0.9, stable=False, latency=math.nan))
    got = memo.get(spec)
    assert got is not None
    assert math.isnan(got.mean_latency) and not got.stable


def test_absent_and_corrupt_entries_miss(tmp_path):
    memo = SweepMemo(root=str(tmp_path))
    spec = _spec()
    assert memo.get(spec) is None  # absent
    memo.put(spec, _result(0.2))
    path = memo._path(point_key(spec, memo.salt))
    with open(path, "w") as f:
        f.write("{ not json")
    assert memo.get(spec) is None  # corrupt -> miss, not an exception
    with open(path, "w") as f:
        json.dump({"schema": "repro-memo/999", "key": "x"}, f)
    assert memo.get(spec) is None  # wrong schema/key -> miss
    assert memo.misses == 3 and memo.hits == 0


def test_stale_salt_invalidates(tmp_path):
    old = SweepMemo(root=str(tmp_path), salt=SIM_SALT)
    old.put(_spec(), _result(0.2))
    bumped = SweepMemo(root=str(tmp_path), salt=SIM_SALT + "-bumped")
    assert bumped.get(_spec()) is None
    # The archived entry is untouched — rolling back the salt finds it again.
    assert SweepMemo(root=str(tmp_path), salt=SIM_SALT).get(_spec()) is not None


def test_warm_start_bounds_bracket(tmp_path):
    memo = SweepMemo(root=str(tmp_path))
    rates = [0.1, 0.2, 0.3, 0.4, 0.5]
    specs = [_spec(rate=r) for r in rates]
    memo.put(specs[0], _result(0.1, stable=True))
    memo.put(specs[1], _result(0.2, stable=True))
    memo.put(specs[3], _result(0.4, stable=False))
    hits, misses = memo.hits, memo.misses
    assert memo.warm_start_bounds(specs) == (1, 3)
    # Probing is not replaying: the hit/miss statistics are untouched.
    assert (memo.hits, memo.misses) == (hits, misses)
    assert SweepMemo(root=str(tmp_path / "empty")).warm_start_bounds(specs) \
        == (None, None)


# ---------------------------------------------------------------------------
# Warm-started saturation search (fake simulator via monkeypatched run_point)
# ---------------------------------------------------------------------------


def _fake_run_point_factory(calls, saturates_at=0.35):
    def fake_run_point(spec):
        calls.append(spec.rate)
        return _result(spec.rate, stable=spec.rate < saturates_at)

    return fake_run_point


def _strip(points):
    """Host wall-clock is excluded from result identity (never serialized)."""
    return [dataclasses.replace(p, wall_clock_s=0.0) for p in points]


def _scenario():
    topo = HyperX((3, 3), 2)
    return topo, make_algorithm("OmniWAR", topo), UniformRandom(topo.num_terminals)


def test_saturation_warm_start_replays_without_simulating(tmp_path, monkeypatch):
    topo, algo, patt = _scenario()
    calls = []
    monkeypatch.setattr(
        "repro.analysis.parallel.run_point", _fake_run_point_factory(calls)
    )
    memo = SweepMemo(root=str(tmp_path))
    cold = saturation_throughput(topo, algo, patt, granularity=0.1, memo=memo)
    # Ascending 0.1 steps, saturating at 0.35 -> 0.1..0.3 stable, stop at 0.4.
    assert calls == [0.1, 0.2, 0.3, 0.4]
    assert [p.stable for p in cold.points] == [True, True, True, False]
    assert memo.writes == 4

    calls.clear()
    warm = saturation_throughput(topo, algo, patt, granularity=0.1, memo=memo)
    assert calls == []  # every point replayed from disk
    assert _strip(warm.points) == _strip(cold.points)  # identical curve
    assert memo.hits >= 4


def test_saturation_warm_start_simulates_only_the_holes(tmp_path, monkeypatch):
    topo, algo, patt = _scenario()
    calls = []
    monkeypatch.setattr(
        "repro.analysis.parallel.run_point", _fake_run_point_factory(calls)
    )
    memo = SweepMemo(root=str(tmp_path))
    cold = saturation_throughput(topo, algo, patt, granularity=0.1, memo=memo)

    # Punch a hole at rate 0.2: only that rate should be re-simulated, and
    # the ladder still truncates at the cached-unstable 0.4.
    specs = point_specs(topo, algo, patt, [0.2])
    os.remove(memo._path(point_key(specs[0], memo.salt)))
    calls.clear()
    warm = saturation_throughput(topo, algo, patt, granularity=0.1, memo=memo)
    assert calls == [0.2]
    assert _strip(warm.points) == _strip(cold.points)


def test_run_points_parallel_consumes_memo_hits(tmp_path, monkeypatch):
    # In pool mode a hit must short-circuit the worker; with every point
    # memoised the pool does no work at all, so the (unpicklable,
    # monkeypatched-away) fake run_point is never reached.
    topo, algo, patt = _scenario()
    calls = []
    monkeypatch.setattr(
        "repro.analysis.parallel.run_point", _fake_run_point_factory(calls)
    )
    memo = SweepMemo(root=str(tmp_path))
    rates = [0.1, 0.2, 0.3]
    specs = point_specs(topo, algo, patt, rates)
    serial = run_points(specs, workers=1, memo=memo)
    calls.clear()
    pooled = run_points(specs, workers=2, memo=memo)
    assert calls == []
    assert _strip(pooled) == _strip(serial)


# ---------------------------------------------------------------------------
# End to end against the real simulator (one small grid, run twice)
# ---------------------------------------------------------------------------


def test_sweep_load_memo_end_to_end_byte_identical(tmp_path):
    topo, algo, patt = _scenario()
    rates = [0.1, 0.2]
    kwargs = dict(total_cycles=1000, seed=1)
    plain = sweep_load(topo, algo, patt, rates, **kwargs)

    memo = SweepMemo(root=str(tmp_path))
    cold = sweep_load(topo, algo, patt, rates, memo=memo, **kwargs)
    warm = sweep_load(topo, algo, patt, rates, memo=memo, **kwargs)

    assert _strip(cold.points) == _strip(plain.points)
    assert _strip(warm.points) == _strip(cold.points)
    assert memo.writes == len(rates)
    assert memo.hits == len(rates)
