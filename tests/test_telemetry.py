"""Tests for network telemetry (link utilization, congestion maps) and the
windowed time-series sampler built on top of it (repro.obs.timeseries)."""

import math

import pytest

from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.telemetry import TelemetryProbe
from repro.network.types import Packet
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import DimensionComplementReverse, UniformRandom


def _sim(widths=(3, 3), tpr=2, algo="DOR"):
    topo = HyperX(widths, tpr)
    net = Network(topo, make_algorithm(algo, topo), default_config())
    return topo, net, Simulator(net)


def test_idle_network_zero_utilization():
    topo, net, sim = _sim()
    probe = TelemetryProbe(net)
    probe.start_window(0)
    sim.run(100)
    s = probe.utilization_summary(sim.cycle)
    assert s["max"] == 0.0 and s["mean"] == 0.0
    assert probe.oversubscription_ratio(sim.cycle) == 1.0


def test_utilization_tracks_traffic():
    topo, net, sim = _sim()
    probe = TelemetryProbe(net)
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), 0.4, seed=1)
    sim.processes.append(traffic)
    sim.run(500)
    probe.start_window(sim.cycle)
    sim.run(500)
    s = probe.utilization_summary(sim.cycle)
    assert 0.0 < s["mean"] < 1.0
    assert s["max"] <= 1.0
    assert s["min"] <= s["p95"] <= s["max"]


def test_single_flow_lights_one_link():
    topo, net, sim = _sim()
    probe = TelemetryProbe(net)
    probe.start_window(0)
    # one long packet router 0 -> neighbor in dim 0
    nbr = topo.peer(0, 0).router_port.router
    net.terminals[0].offer(Packet(0, nbr * 2, 16, create_cycle=0))
    sim.drain(max_cycles=2000)
    hot = probe.hottest_links(sim.cycle, n=1)[0]
    assert hot.src_router == 0
    assert hot.flits == 16
    assert probe.oversubscription_ratio(sim.cycle) > 5


def test_dimension_utilization_reflects_dcr_funnel():
    """Under DCR with DOR, the Y dimension funnels an X-line's traffic —
    it must be the most (or equally most) utilized dimension."""
    topo, net, sim = _sim(widths=(3, 3, 3), tpr=2, algo="DOR")
    probe = TelemetryProbe(net)
    traffic = SyntheticTraffic(
        net, DimensionComplementReverse(topo), 0.15, seed=2
    )
    sim.processes.append(traffic)
    sim.run(400)
    probe.start_window(sim.cycle)
    sim.run(800)
    util = probe.dimension_utilization(sim.cycle)
    assert set(util) == {0, 1, 2}
    assert all(0.0 <= u <= 1.0 for u in util.values())
    assert max(util.values()) > 0.0


def test_dimension_utilization_requires_hyperx():
    from repro.core.fattree_routing import FatTreeAdaptive
    from repro.topology.fattree import FatTree

    ft = FatTree(2, 2)
    net = Network(ft, FatTreeAdaptive(ft), default_config())
    probe = TelemetryProbe(net)
    probe.start_window(0)
    with pytest.raises(TypeError):
        probe.dimension_utilization(0)


def test_buffer_occupancy_and_class_breakdown():
    topo, net, sim = _sim(widths=(3, 3), tpr=2, algo="DimWAR")
    probe = TelemetryProbe(net)
    occ0 = probe.buffer_occupancy()
    assert occ0 == {"mean": 0.0, "max": 0.0}
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), 0.8, seed=3)
    sim.processes.append(traffic)
    sim.run(600)
    occ = probe.buffer_occupancy()
    assert occ["max"] >= 1.0
    by_class = probe.vc_occupancy_by_class()
    assert set(by_class) == {0, 1}  # DimWAR's two resource classes
    assert sum(by_class.values()) > 0
    # minimal hops dominate: class 0 carries most of the buffered flits
    assert by_class[0] >= by_class[1]


# ---------------------------------------------------------------------------
# Windowed time series (repro.obs.timeseries) — edge cases
# ---------------------------------------------------------------------------


def test_timeseries_empty_window_reports_nan():
    from repro.obs import TimeSeriesSampler

    topo, net, sim = _sim(widths=(2, 2), tpr=1)
    sampler = TimeSeriesSampler(sim, window=40).attach()
    sim.run(80)  # idle network: nothing injected, nothing delivered
    sampler.finalize(sim.cycle)
    sampler.detach()
    assert [s.span for s in sampler.samples] == [40, 40]
    for s in sampler.samples:
        assert s.offered_flits == s.injected_flits == s.accepted_flits == 0
        assert s.packets_delivered == 0
        assert math.isnan(s.latency_mean)
        assert math.isnan(s.latency_p50) and math.isnan(s.latency_p99)
        assert s.accepted_rate == 0.0
        assert max(s.router_occupancy) == 0


def test_timeseries_attach_after_warmup_aligns_windows():
    """Windows align to the attach cycle and the warmup's flit totals are
    excluded: the first window's deltas count only in-window traffic."""
    from repro.obs import TimeSeriesSampler

    topo, net, sim = _sim(widths=(3, 3), tpr=1)
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), 0.3, seed=4)
    sim.processes.append(traffic)
    sim.run(137)  # deliberately not a multiple of the window
    warm_ejected = net.total_ejected_flits()
    assert warm_ejected > 0
    sampler = TimeSeriesSampler(sim, window=50).attach()
    sim.run(100)
    sampler.finalize(sim.cycle)
    sampler.detach()
    assert [(s.start, s.end) for s in sampler.samples] == [(137, 187), (187, 237)]
    total_accepted = sum(s.accepted_flits for s in sampler.samples)
    assert total_accepted == net.total_ejected_flits() - warm_ejected


def test_timeseries_finalize_closes_partial_window_once():
    from repro.obs import TimeSeriesSampler

    topo, net, sim = _sim(widths=(2, 2), tpr=1)
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), 0.2, seed=5)
    sim.processes.append(traffic)
    sampler = TimeSeriesSampler(sim, window=60).attach()
    sim.run(150)
    sampler.finalize(sim.cycle)
    sampler.detach()
    assert [s.span for s in sampler.samples] == [60, 60, 30]
    # Finalizing again at the same cycle must not append an empty window.
    sampler.finalize(sim.cycle)
    assert len(sampler.samples) == 3
    assert sampler.samples[-1].end == 150


def test_timeseries_finalize_at_exact_boundary_yields_full_window():
    """When the run length is a multiple of the window, finalize closes an
    exact (not partial) final window."""
    from repro.obs import TimeSeriesSampler

    topo, net, sim = _sim(widths=(2, 2), tpr=1)
    sampler = TimeSeriesSampler(sim, window=50).attach()
    sim.run(100)
    sampler.finalize(sim.cycle)
    sampler.detach()
    assert [s.span for s in sampler.samples] == [50, 50]


def test_timeseries_rejects_bad_window():
    from repro.obs import TimeSeriesSampler

    topo, net, sim = _sim(widths=(2, 2), tpr=1)
    with pytest.raises(ValueError):
        TimeSeriesSampler(sim, window=0)


def test_timeseries_dimension_utilization_on_hyperx():
    from repro.obs import TimeSeriesSampler

    topo, net, sim = _sim(widths=(3, 3), tpr=1)
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), 0.3, seed=6)
    sim.processes.append(traffic)
    sampler = TimeSeriesSampler(sim, window=100).attach()
    sim.run(200)
    sampler.detach()
    for s in sampler.samples:
        assert s.dim_utilization is not None
        assert len(s.dim_utilization) == topo.num_dims
        assert all(0.0 <= u <= 1.0 for u in s.dim_utilization)
    assert max(sampler.samples[-1].dim_utilization) > 0.0
