"""Tests for network telemetry (link utilization, congestion maps)."""

import pytest

from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.telemetry import TelemetryProbe
from repro.network.types import Packet
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import DimensionComplementReverse, UniformRandom


def _sim(widths=(3, 3), tpr=2, algo="DOR"):
    topo = HyperX(widths, tpr)
    net = Network(topo, make_algorithm(algo, topo), default_config())
    return topo, net, Simulator(net)


def test_idle_network_zero_utilization():
    topo, net, sim = _sim()
    probe = TelemetryProbe(net)
    probe.start_window(0)
    sim.run(100)
    s = probe.utilization_summary(sim.cycle)
    assert s["max"] == 0.0 and s["mean"] == 0.0
    assert probe.oversubscription_ratio(sim.cycle) == 1.0


def test_utilization_tracks_traffic():
    topo, net, sim = _sim()
    probe = TelemetryProbe(net)
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), 0.4, seed=1)
    sim.processes.append(traffic)
    sim.run(500)
    probe.start_window(sim.cycle)
    sim.run(500)
    s = probe.utilization_summary(sim.cycle)
    assert 0.0 < s["mean"] < 1.0
    assert s["max"] <= 1.0
    assert s["min"] <= s["p95"] <= s["max"]


def test_single_flow_lights_one_link():
    topo, net, sim = _sim()
    probe = TelemetryProbe(net)
    probe.start_window(0)
    # one long packet router 0 -> neighbor in dim 0
    nbr = topo.peer(0, 0).router_port.router
    net.terminals[0].offer(Packet(0, nbr * 2, 16, create_cycle=0))
    sim.drain(max_cycles=2000)
    hot = probe.hottest_links(sim.cycle, n=1)[0]
    assert hot.src_router == 0
    assert hot.flits == 16
    assert probe.oversubscription_ratio(sim.cycle) > 5


def test_dimension_utilization_reflects_dcr_funnel():
    """Under DCR with DOR, the Y dimension funnels an X-line's traffic —
    it must be the most (or equally most) utilized dimension."""
    topo, net, sim = _sim(widths=(3, 3, 3), tpr=2, algo="DOR")
    probe = TelemetryProbe(net)
    traffic = SyntheticTraffic(
        net, DimensionComplementReverse(topo), 0.15, seed=2
    )
    sim.processes.append(traffic)
    sim.run(400)
    probe.start_window(sim.cycle)
    sim.run(800)
    util = probe.dimension_utilization(sim.cycle)
    assert set(util) == {0, 1, 2}
    assert all(0.0 <= u <= 1.0 for u in util.values())
    assert max(util.values()) > 0.0


def test_dimension_utilization_requires_hyperx():
    from repro.core.fattree_routing import FatTreeAdaptive
    from repro.topology.fattree import FatTree

    ft = FatTree(2, 2)
    net = Network(ft, FatTreeAdaptive(ft), default_config())
    probe = TelemetryProbe(net)
    probe.start_window(0)
    with pytest.raises(TypeError):
        probe.dimension_utilization(0)


def test_buffer_occupancy_and_class_breakdown():
    topo, net, sim = _sim(widths=(3, 3), tpr=2, algo="DimWAR")
    probe = TelemetryProbe(net)
    occ0 = probe.buffer_occupancy()
    assert occ0 == {"mean": 0.0, "max": 0.0}
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), 0.8, seed=3)
    sim.processes.append(traffic)
    sim.run(600)
    occ = probe.buffer_occupancy()
    assert occ["max"] >= 1.0
    by_class = probe.vc_occupancy_by_class()
    assert set(by_class) == {0, 1}  # DimWAR's two resource classes
    assert sum(by_class.values()) > 0
    # minimal hops dominate: class 0 carries most of the buffered flits
    assert by_class[0] >= by_class[1]
