"""Smoke tests that the example scripts actually run.

Examples are documentation; a broken example is a broken promise.  The fast
ones run as subprocesses here (the long sweeps are exercised piecewise by
the benchmark suite).
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    ("quickstart.py", ["accepted", "verdict"]),
    ("cost_analysis.py", ["78,608", "passive-optical"]),
    ("trace_replay.py", ["recorded", "completion cycle"]),
]


@pytest.mark.parametrize("script,expected", FAST_EXAMPLES)
def test_example_runs(script, expected):
    path = os.path.join(EXAMPLES, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for token in expected:
        assert token in result.stdout, (
            f"{script} output missing {token!r}:\n{result.stdout[-1500:]}"
        )


def test_all_examples_have_docstrings_and_main_guards_not_needed():
    """Every example is a straight-line script with a module docstring."""
    for name in os.listdir(EXAMPLES):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(EXAMPLES, name)) as f:
            source = f.read()
        assert source.lstrip().startswith(('"""', '#!')), name
        assert '"""' in source, f"{name} lacks a docstring"
