"""Router-level unit tests: congestion observation, VC allocation, wormhole
holding, stalls, and ejection routing — exercised through a minimal
two-router network so that all wiring is real."""

import pytest

from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.types import Packet
from repro.topology.hyperx import HyperX


def _two_router_net(algo="DOR", **cfg_over):
    topo = HyperX((2,), 2)  # routers 0 and 1, two terminals each
    algorithm = make_algorithm(algo, topo)
    cfg = default_config(**cfg_over)
    net = Network(topo, algorithm, cfg)
    return topo, net


def test_congestion_rises_with_traffic():
    topo, net = _two_router_net()
    sim = Simulator(net)
    r0 = net.routers[0]
    port = topo.dim_port(0, 0, 1)  # channel 0 -> 1
    idle = r0.port_congestion(port)
    assert idle == 0.0
    # big packets from both router-0 terminals to router 1
    for t in (0, 1):
        net.terminals[t].offer(Packet(t, 2, 16, create_cycle=0))
        net.terminals[t].offer(Packet(t, 3, 16, create_cycle=0))
    sim.run(30)
    assert r0.port_congestion(port) > idle


def test_out_vc_held_until_tail():
    topo, net = _two_router_net()
    sim = Simulator(net)
    net.terminals[0].offer(Packet(0, 2, 12, create_cycle=0))
    port = topo.dim_port(0, 0, 1)
    r0 = net.routers[0]
    held_during = False
    for _ in range(200):
        sim.step()
        owners = [o for o in r0.out_vc_owner[port] if o is not None]
        if owners:
            held_during = True
    assert held_during
    sim.drain(max_cycles=2000)
    assert all(o is None for o in r0.out_vc_owner[port])  # released at tail


def test_vc_allocation_prefers_most_credits():
    topo, net = _two_router_net()
    r0 = net.routers[0]
    port = topo.dim_port(0, 0, 1)
    tracker = r0.credit_trackers[port]
    # consume credits on the first VCs of class 0 so VC with most remains wins
    tracker.consume(0)
    tracker.consume(0)
    tracker.consume(1)
    vc = r0._allocate_vc(port, 0, pid=1)
    group = net.vc_map.vcs_of(0)
    assert vc in group
    assert tracker.available(vc) == max(tracker.available(v) for v in group)


def test_vc_allocation_skips_busy_and_uncredited():
    topo, net = _two_router_net()
    r0 = net.routers[0]
    port = topo.dim_port(0, 0, 1)
    group = net.vc_map.vcs_of(0)
    for v in group:
        r0.out_vc_owner[port][v] = 999  # all busy
    assert r0._allocate_vc(port, 0, pid=1) is None
    r0.out_vc_owner[port][group[0]] = None
    tracker = r0.credit_trackers[port]
    for _ in range(tracker.available(group[0])):
        tracker.consume(group[0])  # free but no credits
    assert r0._allocate_vc(port, 0, pid=1) is None


def test_ejection_uses_terminal_port():
    topo, net = _two_router_net()
    sim = Simulator(net)
    # terminal 0 -> terminal 1: same router, pure ejection
    p = Packet(0, 1, 4, create_cycle=0)
    net.terminals[0].offer(p)
    assert sim.drain(max_cycles=1000)
    assert p.hops == 0 and p.eject_cycle is not None


def test_route_stall_counted_when_no_credits():
    topo, net = _two_router_net()
    sim = Simulator(net)
    r0 = net.routers[0]
    port = topo.dim_port(0, 0, 1)
    tracker = r0.credit_trackers[port]
    for v in range(net.cfg.router.num_vcs):
        for _ in range(tracker.available(v)):
            tracker.consume(v)  # simulate a fully backed-up downstream
    net.terminals[0].offer(Packet(0, 2, 1, create_cycle=0))
    sim.run(50)
    assert r0.route_stalls > 0


def test_wrong_destination_raises():
    topo, net = _two_router_net()
    r0 = net.routers[0]
    p = Packet(0, 2, 1, create_cycle=0)  # destination hosted on router 1
    with pytest.raises(RuntimeError):
        r0._route_ejection(0, 0, p)


def test_router_telemetry_counts():
    topo, net = _two_router_net()
    sim = Simulator(net)
    net.terminals[0].offer(Packet(0, 2, 5, create_cycle=0))
    sim.drain(max_cycles=2000)
    r0 = net.routers[0]
    assert r0.routes_computed >= 1
    assert r0.flits_forwarded == 5


def test_idle_router_is_idle():
    _, net = _two_router_net()
    assert all(r.idle for r in net.routers)


def test_terminal_injects_one_flit_per_cycle():
    topo, net = _two_router_net()
    sim = Simulator(net)
    t0 = net.terminals[0]
    t0.offer(Packet(0, 2, 10, create_cycle=0))
    sim.run(5)
    assert t0.flits_injected <= 5


def test_terminal_offer_wrong_terminal_rejected():
    _, net = _two_router_net()
    with pytest.raises(ValueError):
        net.terminals[1].offer(Packet(0, 2, 1, create_cycle=0))


def test_backlog_reporting():
    topo, net = _two_router_net()
    t0 = net.terminals[0]
    t0.offer(Packet(0, 2, 7, create_cycle=0))
    t0.offer(Packet(0, 3, 3, create_cycle=0))
    assert t0.backlog_flits == 10
    assert not t0.idle


def test_sequential_allocation_sees_same_cycle_commitments():
    """With the Section 4.1 sequential allocator on, a routing decision made
    this cycle raises the congestion later decisions observe."""
    from dataclasses import replace

    topo = HyperX((2,), 2)
    cfg = default_config()
    cfg = replace(cfg, router=replace(cfg.router, sequential_allocation=True))
    net = Network(topo, make_algorithm("DOR", topo), cfg)
    r0 = net.routers[0]
    port = topo.dim_port(0, 0, 1)
    base = r0.class_congestion(port, 0)
    r0._pending_commit[port] = 8  # as set by an earlier same-cycle decision
    assert r0.class_congestion(port, 0) > base
    r0._pending_commit[port] = 0
    assert r0.class_congestion(port, 0) == base


def test_round_robin_arbiter_config_actually_used():
    """The round_robin output-arbitration option changes scheduling (i.e. it
    is wired in, not a dead config knob) and still delivers everything."""
    from dataclasses import replace

    from repro.network.stats import PacketStats
    from repro.traffic.injection import SyntheticTraffic
    from repro.traffic.patterns import UniformRandom

    def run(arb):
        topo = HyperX((3, 3), 2)
        cfg = default_config()
        cfg = replace(cfg, router=replace(cfg.router, arbiter=arb))
        net = Network(topo, make_algorithm("OmniWAR", topo), cfg)
        sim = Simulator(net)
        stats = PacketStats()
        for t in net.terminals:
            t.delivery_listeners.append(stats.on_delivery)
        traffic = SyntheticTraffic(
            net, UniformRandom(topo.num_terminals), 0.5, seed=4
        )
        sim.processes.append(traffic)
        sim.run(1200)
        traffic.stop()
        assert sim.drain(max_cycles=100_000)
        assert net.total_injected_flits() == net.total_ejected_flits()
        return [s.latency for s in stats.samples]

    age = run("age")
    rr = run("round_robin")
    assert age != rr  # different arbitration, different schedules


def test_unknown_arbiter_rejected():
    from dataclasses import replace

    topo = HyperX((2,), 1)
    cfg = default_config()
    cfg = replace(cfg, router=replace(cfg.router, arbiter="coinflip"))
    with pytest.raises(ValueError):
        Network(topo, make_algorithm("DOR", topo), cfg)
