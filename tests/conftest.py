"""Shared test configuration: pinned Hypothesis profiles + golden regen.

Two registered profiles:

* ``ci`` (the default) — fully derandomized (fixed example generation, no
  wall-clock deadline), so CI and local tier-1 runs are reproducible: a
  property-test failure on one machine is a failure on every machine.
* ``dev`` — Hypothesis's random exploration with the deadline disabled;
  opt in with ``HYPOTHESIS_PROFILE=dev`` when hunting for new examples.

Per-test ``@settings(...)`` decorators still apply on top of the profile.

Also registers ``--update-golden``: rewrite the pinned trace streams under
``tests/golden/`` from the current simulator instead of comparing against
them (see tests/test_obs_golden.py and docs/OBSERVABILITY.md).
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the pinned trace streams in tests/golden/ "
        "instead of comparing against them",
    )
