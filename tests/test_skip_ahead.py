"""Tests for the event-compressing engine (repro.network.skip).

Cycle skip-ahead is a pure optimisation: the clock jumps over provably
inert cycles, and nothing measurable may move.  These tests pin that
contract:

* engine selection — compression is on by default, and every fallback
  trigger (flag off, a process without ``skip_safe``, the sanitizer)
  cleanly reverts to per-cycle stepping with a human-readable reason;
* compression — an idle simulation really does execute a handful of
  cycles per ``run()`` chunk (counted via a skip-safe probe process);
* equivalence — fixed scenarios, Hypothesis-drawn topologies/loads/fault
  schedules, drains, sampler windows, and the golden-trace scenario all
  fingerprint identically with ``cycle_skip`` on vs off;
* ``next_event_cycle()`` — idempotent, never behind the clock, and exact
  for scheduled fault events;
* ``run_until`` — the event-aware evaluation schedule is identical under
  both modes (the documented predicate contract).
"""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import RouterConfig, SimConfig, default_config
from repro.core.registry import make_algorithm
from repro.faults import DegradedTopology
from repro.faults.inject import FaultInjector
from repro.faults.model import FaultEvent, FaultSchedule
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.skip import skip_fallback_reason
from repro.topology.hyperx import HyperX
from repro.traffic.injection import BurstyTraffic, SyntheticTraffic
from repro.traffic.patterns import UniformRandom
from repro.traffic.sizes import UniformSize


def _config(skip: bool) -> SimConfig:
    cfg = default_config(seed=0)
    return replace(cfg, router=replace(cfg.router, cycle_skip=skip)).validated()


def _build(
    widths=(4, 4),
    tpr=1,
    algo="OmniWAR",
    rate=0.3,
    seed=1,
    skip=True,
    degraded=False,
    bursty=False,
):
    topo = HyperX(widths, tpr)
    if degraded:
        topo = DegradedTopology(topo)
    net = Network(topo, make_algorithm(algo, topo), _config(skip))
    sim = Simulator(net)
    cls = BurstyTraffic if bursty else SyntheticTraffic
    kwargs = {} if bursty else {"size_dist": UniformSize(1, 8)}
    sim.processes.append(
        cls(net, UniformRandom(topo.num_terminals), rate, seed=seed, **kwargs)
    )
    return sim


def _fingerprint(sim):
    """Full observable counter state — any compression bug lands here."""
    net = sim.network
    traffic = sim.processes[0] if sim.processes else None
    return {
        "cycle": sim.cycle,
        "generated": (
            (traffic.packets_generated, traffic.flits_generated)
            if traffic is not None
            else None
        ),
        "injected": net.total_injected_flits(),
        "ejected": net.total_ejected_flits(),
        "in_flight": net.flits_in_flight(),
        "backlog": net.total_backlog_flits(),
        "terminals": [
            (t.flits_injected, t.flits_ejected, t.packets_delivered)
            for t in net.terminals
        ],
        "routers": [
            (
                r.flits_forwarded,
                r.routes_computed,
                r.route_stalls,
                r.route_cache_hits,
                r._jitter_idx,
            )
            for r in net.routers
        ],
        "channels": sorted(
            (rec.label, rec.data.utilization_count, rec.credit.utilization_count)
            for rec in net.links
        ),
        "credits": [
            [tuple(tr.credits) for tr in r.credit_trackers if tr is not None]
            for r in net.routers
        ],
    }


class _CycleProbe:
    """Skip-safe probe counting executed compute phases (no wakeup of its
    own, so it never blocks a jump)."""

    skip_safe = True

    def __init__(self):
        self.calls = 0

    def __call__(self, cycle):
        self.calls += 1

    def next_wakeup(self, cycle):
        return None


# ---------------------------------------------------------------------------
# Engine selection and fallback
# ---------------------------------------------------------------------------


def test_skip_active_by_default():
    sim = _build()
    assert skip_fallback_reason(sim) is None
    sim.run(50)
    assert sim.skip_active
    assert sim.skip_fallback_reason is None


def test_flag_off_falls_back():
    sim = _build(skip=False)
    sim.run(50)
    assert not sim.skip_active
    assert "cycle_skip" in sim.skip_fallback_reason


def test_unsafe_process_falls_back():
    class Watcher:  # no skip_safe attribute -> per-cycle stepping
        def __call__(self, cycle):
            pass

    sim = _build()
    sim.add_process(Watcher())
    sim.run(50)
    assert not sim.skip_active
    assert "Watcher" in sim.skip_fallback_reason


def test_sanitizer_falls_back():
    from repro.check.sanitizer import Sanitizer

    sim = _build()
    Sanitizer(sim).attach()
    sim.run(50)
    assert not sim.skip_active
    assert "Sanitizer" in sim.skip_fallback_reason


def test_fallback_rechecked_per_run():
    """Attaching/detaching an incompatible process flips the mode between
    run() calls, exactly like the SoA dispatch."""
    sim = _build()
    sim.run(10)
    assert sim.skip_active
    watcher = sim.add_process(lambda cycle: None)  # plain function: unsafe
    sim.run(10)
    assert not sim.skip_active
    sim.remove_process(watcher)
    sim.run(10)
    assert sim.skip_active


def test_tracer_hooks_do_not_force_skip_fallback():
    """The tracer attaches router hooks (SoA falls back) but registers no
    process, so compressed runs keep ticking it — proven byte-identical by
    test_golden_trace_identical_under_skip below."""
    from repro.obs import TraceOptions
    from repro.obs.tracer import Tracer

    sim = _build()
    Tracer(sim, TraceOptions(sample_every=1)).attach()
    sim.run(50)
    assert not sim.soa_active  # hooks force the object path ...
    assert sim.skip_active  # ... but compression stays eligible


# ---------------------------------------------------------------------------
# Compression actually happens
# ---------------------------------------------------------------------------


def test_idle_network_executes_almost_no_cycles():
    topo = HyperX((4, 4), 2)
    net = Network(topo, make_algorithm("DOR", topo), _config(True))
    sim = Simulator(net)
    probe = sim.add_process(_CycleProbe())
    sim.run(10_000)
    assert sim.cycle == 10_000  # the clock still lands exactly
    assert probe.calls <= 2  # ... but almost nothing executed


def test_low_load_executes_only_event_cycles():
    sim = _build(widths=(3, 3), algo="DimWAR", rate=0.002)
    probe = sim.add_process(_CycleProbe())
    sim.run(5_000)
    assert sim.cycle == 5_000
    # Executed cycles are bounded by (events x per-event settle work), far
    # below the simulated span at this rate.
    assert probe.calls < 2_500


def test_skip_off_executes_every_cycle():
    sim = _build(skip=False)
    probe = sim.add_process(_CycleProbe())
    sim.run(500)
    assert probe.calls == 500


# ---------------------------------------------------------------------------
# Bit-exact equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("algo", ["DOR", "DimWAR", "OmniWAR", "UGAL"])
@pytest.mark.parametrize("rate", [0.01, 0.3])
def test_skip_matches_per_cycle(algo, rate):
    a = _build(algo=algo, rate=rate, skip=True)
    b = _build(algo=algo, rate=rate, skip=False)
    a.run(400)
    b.run(400)
    assert a.skip_active and not b.skip_active
    assert _fingerprint(a) == _fingerprint(b)


def test_drain_identical_under_skip():
    """stop() + drain must reach quiescence on the same cycle either way
    (the event-aware run_until schedule is mode-independent)."""
    results = []
    for skip in (True, False):
        sim = _build(widths=(3, 3), algo="DimWAR", rate=0.2, skip=skip)
        sim.run(300)
        sim.processes[0].stop()
        assert sim.drain(max_cycles=100_000)
        results.append(_fingerprint(sim))
    assert results[0] == results[1]


def test_mode_alternation_mid_stream():
    """Flipping cycle_skip between run() calls must not perturb the stream."""
    alternating = _build(rate=0.05, skip=True)
    reference = _build(rate=0.05, skip=False)
    rc = alternating.network.cfg.router
    for chunk in range(6):
        rc.cycle_skip = chunk % 2 == 0
        alternating.run(100)
        assert alternating.skip_active == (chunk % 2 == 0)
    reference.run(600)
    assert _fingerprint(alternating) == _fingerprint(reference)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    topo_spec=st.sampled_from(
        [((3,), 2), ((2, 2), 2), ((3, 3), 1), ((2, 3), 2), ((2, 2, 2), 1)]
    ),
    algo=st.sampled_from(["DOR", "VAL", "UGAL+", "DimWAR", "OmniWAR-b2b"]),
    rate=st.sampled_from([0.005, 0.1, 0.4]),
    seed=st.integers(0, 100),
    bursty=st.booleans(),
)
def test_skip_equivalence_property(topo_spec, algo, rate, seed, bursty):
    widths, tpr = topo_spec
    kw = dict(widths=widths, tpr=tpr, algo=algo, rate=rate, seed=seed, bursty=bursty)
    a = _build(skip=True, **kw)
    b = _build(skip=False, **kw)
    a.run(300)
    b.run(300)
    assert a.skip_active and not b.skip_active
    assert _fingerprint(a) == _fingerprint(b)


# ---------------------------------------------------------------------------
# Faults, sampler windows, golden traces under compression
# ---------------------------------------------------------------------------

_FAULTS = [
    FaultEvent(120, "link", 0, port=1),
    FaultEvent(180, "degrade", 2, port=0, factor=6),
    FaultEvent(250, "link", 4, port=2),
]


def _faulted(skip: bool, rate: float = 0.02):
    sim = _build(
        widths=(4, 4), algo="OmniWAR", rate=rate, skip=skip, degraded=True
    )
    sim.processes.append(FaultInjector(sim.network, FaultSchedule(list(_FAULTS))))
    return sim


@pytest.mark.parametrize("rate", [0.02, 0.35])
def test_fault_injection_identical_under_skip(rate):
    a, b = _faulted(True, rate), _faulted(False, rate)
    a.run(500)
    b.run(500)
    assert a.skip_active and not b.skip_active
    state = a.network.fault_state
    assert state.events_applied == len(_FAULTS)
    assert state.revoked_routes == b.network.fault_state.revoked_routes
    assert _fingerprint(a) == _fingerprint(b)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    fault_cycles=st.lists(st.integers(10, 400), min_size=1, max_size=3),
    rate=st.sampled_from([0.01, 0.2]),
    seed=st.integers(0, 50),
)
def test_fault_schedule_equivalence_property(fault_cycles, rate, seed):
    """Drawn fault schedules land on their exact cycles under compression."""
    events = [
        FaultEvent(c, "degrade", (i * 3) % 9, port=0, factor=4)
        for i, c in enumerate(sorted(fault_cycles))
    ]
    prints = []
    for skip in (True, False):
        sim = _build(
            widths=(3, 3), algo="DimWAR", rate=rate, seed=seed,
            skip=skip, degraded=True,
        )
        sim.processes.append(
            FaultInjector(sim.network, FaultSchedule(list(events)))
        )
        sim.run(450)
        assert sim.network.fault_state.events_applied == len(events)
        prints.append(_fingerprint(sim))
    assert prints[0] == prints[1]


def test_sampler_windows_exact_under_skip():
    """The time-series sampler is skip-safe: window boundaries are landed
    on exactly, so compressed and per-cycle series are identical."""
    from repro.obs import TimeSeriesSampler

    series = []
    for skip in (True, False):
        sim = _build(widths=(3, 3), algo="DimWAR", rate=0.01, skip=skip)
        sampler = TimeSeriesSampler(sim, window=70).attach()
        sim.run(500)
        sampler.finalize(sim.cycle)
        sampler.detach()
        series.append(sampler.samples)
        assert [s.end - s.start for s in sampler.samples[:-1]] == [70] * 7
    assert series[0] == series[1]


def test_golden_trace_identical_under_skip(monkeypatch):
    """The tracer (router hooks + listeners, no process) must observe a
    compressed run byte-identically: same events, same cycles, same bytes."""
    from repro.obs import golden

    on = golden.golden_jsonl("DimWAR")

    orig = golden.default_config
    monkeypatch.setattr(
        golden,
        "default_config",
        lambda **kw: replace(
            orig(**kw), router=replace(orig(**kw).router, cycle_skip=False)
        ).validated(),
    )
    off = golden.golden_jsonl("DimWAR")
    assert on == off


# ---------------------------------------------------------------------------
# next_event_cycle
# ---------------------------------------------------------------------------


def test_next_event_cycle_idempotent_and_ahead_of_clock():
    sim = _build(widths=(3, 3), algo="DimWAR", rate=0.05)
    for _ in range(40):
        first = sim.next_event_cycle()
        second = sim.next_event_cycle()
        assert first == second  # scanning buffers, it must not re-draw
        assert first is None or first >= sim.cycle
        sim.run(13)


def test_next_event_cycle_monotone_while_inert():
    """Between executed events the bound never moves backwards."""
    sim = _build(widths=(3, 3), algo="DimWAR", rate=0.001, seed=3)
    last = 0
    for _ in range(60):
        nxt = sim.next_event_cycle()
        if nxt is not None:
            assert nxt >= last
            last = nxt
        sim.run(7)
        last = max(last, sim.cycle)


def test_next_event_cycle_sees_scheduled_faults():
    topo = DegradedTopology(HyperX((3, 3), 1))
    net = Network(topo, make_algorithm("DimWAR", topo), _config(True))
    sim = Simulator(net)
    sim.add_process(
        FaultInjector(
            net, FaultSchedule([FaultEvent(150, "degrade", 0, port=0, factor=4)])
        )
    )
    assert sim.next_event_cycle() == 150
    sim.run(150)
    # event not yet applied (fires in cycle 150's compute phase): due now
    assert sim.next_event_cycle() == 150
    sim.run(1)
    assert sim.next_event_cycle() is None  # schedule done, network idle


def test_next_event_cycle_unknown_process_returns_none():
    sim = _build()
    sim.add_process(lambda cycle: None)  # no next_wakeup: unknowable
    assert sim.next_event_cycle() is None


def test_next_event_cycle_flag_independent():
    """The bound is computed from state + protocol, never the config flag —
    the property the mode-independent run_until schedule rests on."""
    a = _build(widths=(3, 3), rate=0.01, skip=True)
    b = _build(widths=(3, 3), rate=0.01, skip=False)
    for _ in range(20):
        assert a.next_event_cycle() == b.next_event_cycle()
        a.run(11)
        b.run(11)


# ---------------------------------------------------------------------------
# run_until under compressed time
# ---------------------------------------------------------------------------


def test_run_until_evaluates_on_advanced_boundaries():
    """With the next event beyond the check grid, the chunk stretches to
    the event; the schedule is identical in both modes."""
    cycles = []
    for skip in (True, False):
        topo = DegradedTopology(HyperX((3, 3), 1))
        net = Network(topo, make_algorithm("DimWAR", topo), _config(skip))
        sim = Simulator(net)
        inj = FaultInjector(
            net, FaultSchedule([FaultEvent(150, "degrade", 0, port=0, factor=4)])
        )
        sim.add_process(inj)
        assert sim.run_until(lambda: inj.done, max_cycles=10_000)
        cycles.append(sim.cycle)
    # One stretched chunk to the event at 150, then one 64-cycle chunk in
    # which the event fires: identical under both modes.
    assert cycles[0] == cycles[1] == 214


def test_run_until_drain_stops_on_same_cycle_both_modes():
    stops = []
    for skip in (True, False):
        sim = _build(widths=(3, 3), algo="DimWAR", rate=0.1, skip=skip, seed=9)
        sim.run(200)
        sim.processes[0].stop()
        assert sim.drain(max_cycles=100_000)
        stops.append(sim.cycle)
    assert stops[0] == stops[1]
