"""Deadlock-freedom tests.

The paper's central practicality claim is that DimWAR needs only 2 VCs and
OmniWAR N+M VCs, both provably deadlock free without escape paths.  These
tests *mechanically verify* acyclicity of the reachable channel-dependency
graph on several topologies, and also confirm that the checker itself can
detect a cycle (on an intentionally broken algorithm).
"""

import pytest

from repro.core.base import RouteCandidate, RouteContext
from repro.core.deadlock import (
    assert_deadlock_free,
    dependency_graph_incremental,
    dependency_graph_two_phase,
    find_cycle,
    verify_rank_certificate,
)
from repro.core.dimwar import DimWAR
from repro.core.dor import DimensionOrderRouting
from repro.core.fthx import FTHX
from repro.core.hyperx_base import HyperXRouting
from repro.core.minad import MinAdaptive
from repro.core.omniwar import OmniWAR
from repro.core.vcfree import VCFreeRouting
from repro.topology.hyperx import HyperX

TOPOLOGIES = [
    HyperX((3,), 1),
    HyperX((3, 3), 1),
    HyperX((2, 3), 2),
    HyperX((2, 2, 3), 1),
    HyperX((3, 3, 3), 1),
]


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: str(t.widths))
def test_dor_deadlock_free(topo):
    assert_deadlock_free(topo, DimensionOrderRouting(topo))


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: str(t.widths))
def test_minad_deadlock_free(topo):
    assert_deadlock_free(topo, MinAdaptive(topo))


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: str(t.widths))
def test_dimwar_deadlock_free_with_two_classes(topo):
    """Section 5.1: acyclic with 2 resource classes for ANY dimensionality."""
    algo = DimWAR(topo)
    assert algo.num_classes == 2
    assert_deadlock_free(topo, algo)


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: str(t.widths))
@pytest.mark.parametrize("deroutes", [0, 1, None])
def test_omniwar_deadlock_free(topo, deroutes):
    algo = OmniWAR(topo, deroutes=deroutes)
    assert_deadlock_free(topo, algo)


def test_omniwar_b2b_deadlock_free():
    topo = HyperX((3, 3), 1)
    assert_deadlock_free(topo, OmniWAR(topo, restrict_back_to_back=True))


@pytest.mark.parametrize("topo", TOPOLOGIES[:4], ids=lambda t: str(t.widths))
def test_two_phase_dor_deadlock_free(topo):
    """VAL/UGAL/Clos-AD all route as two phases of DOR; the union of every
    (src, intermediate, dst) path must be acyclic."""
    g = dependency_graph_two_phase(topo)
    assert find_cycle(g) is None


def test_checker_detects_a_real_cycle():
    """An (unsafe) adaptive-minimal algorithm on ONE class must show a cycle:
    dimension order violations on a single resource class deadlock."""

    class UnsafeMinAd(HyperXRouting):
        name = "unsafe"
        num_classes = 1

        def candidates(self, ctx: RouteContext):
            here = self.here(ctx)
            dest = self.dest_coords(ctx.packet)
            remaining = sum(1 for a, b in zip(here, dest) if a != b)
            return [
                RouteCandidate(
                    out_port=self.min_port(ctx.router.router_id, d, dest[d]),
                    vc_class=0,
                    hops=remaining,
                )
                for d in range(self.hx.num_dims)
                if here[d] != dest[d]
            ]

    topo = HyperX((2, 2), 1)
    g = dependency_graph_incremental(topo, UnsafeMinAd(topo))
    assert find_cycle(g) is not None


def test_dependency_graph_nonempty_and_class_bounded():
    topo = HyperX((3, 3), 1)
    algo = DimWAR(topo)
    g = dependency_graph_incremental(topo, algo)
    assert g.number_of_nodes() > 0
    for _, _, klass in g.nodes:
        assert 0 <= klass < algo.num_classes


def test_dimwar_uses_both_classes_in_graph():
    topo = HyperX((3, 3), 1)
    g = dependency_graph_incremental(topo, DimWAR(topo))
    classes = {k for _, _, k in g.nodes}
    assert classes == {0, 1}


# ----------------------------------------------------------------------
# Successor-paper algorithms: cycle search + rank certificates
# ----------------------------------------------------------------------


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: str(t.widths))
@pytest.mark.parametrize("cls", [FTHX, VCFreeRouting], ids=["FTHX", "VCFree"])
def test_successor_algorithms_deadlock_free(topo, cls):
    algo = cls(topo)
    assert_deadlock_free(topo, algo)


@pytest.mark.parametrize("topo", TOPOLOGIES, ids=lambda t: str(t.widths))
@pytest.mark.parametrize("cls", [FTHX, VCFreeRouting], ids=["FTHX", "VCFree"])
def test_rank_certificate_verifies_constructively(topo, cls):
    """The certificate is a constructive proof: strictly increasing rank
    along every reachable dependency edge, not just no-cycle-found."""
    assert verify_rank_certificate(topo, cls(topo)) > 0


def test_vcfree_needs_only_one_class():
    topo = HyperX((3, 3, 3), 1)
    algo = VCFreeRouting(topo)
    assert algo.num_classes == 1
    g = dependency_graph_incremental(topo, algo)
    assert {k for _, _, k in g.nodes} == {0}


def test_fthx_class_budget_matches_paper_vc_budget():
    """Default M=N: 6 classes in 2-D, exactly the 8-VC budget in 3-D."""
    assert FTHX(HyperX((4, 4), 1)).num_classes == 6
    assert FTHX(HyperX((3, 3, 3), 1)).num_classes == 8
    with pytest.raises(ValueError):
        FTHX(HyperX((3, 3), 1), deroutes=-1)


def test_rank_certificate_requires_a_certificate():
    topo = HyperX((3, 3), 1)
    with pytest.raises(ValueError, match="channel_rank"):
        verify_rank_certificate(topo, DimWAR(topo))


def test_rank_certificate_rejects_a_wrong_order():
    """A deliberately flattened rank must fail edge verification — the
    checker proves strict increase, not merely consistency."""
    topo = HyperX((3, 3), 1)
    algo = VCFreeRouting(topo)
    algo.channel_rank = lambda router, port, klass: 0
    with pytest.raises(AssertionError, match="rank certificate violated"):
        verify_rank_certificate(topo, algo)
