"""Hypothesis property tests over whole simulations.

For randomly drawn small topologies, algorithms, loads, and seeds:

* flit conservation — everything injected is ejected after drain,
* correct delivery — every packet lands at its destination terminal,
* path-length invariants — hops within [min_hops, algorithm max],
* per-packet VC-class legality under the algorithm's deadlock scheme.

These generalize the hand-picked cases in test_simulation.py to the whole
configuration space the library exposes.
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.theory import max_hops
from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom
from repro.traffic.sizes import UniformSize

topologies = st.sampled_from(
    [
        HyperX((3,), 2),
        HyperX((2, 2), 2),
        HyperX((3, 3), 1),
        HyperX((2, 3), 2),
        HyperX((2, 2, 2), 1),
        HyperX((3, 2, 2), 2),
    ]
)
algorithms = st.sampled_from(
    ["DOR", "VAL", "UGAL", "UGAL+", "MIN-AD", "DimWAR", "OmniWAR", "OmniWAR-b2b"]
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    topo=topologies,
    algo_name=algorithms,
    rate=st.sampled_from([0.1, 0.3, 0.6]),
    seed=st.integers(0, 1000),
)
def test_simulation_invariants(topo, algo_name, rate, seed):
    algo = make_algorithm(algo_name, topo)
    cfg = default_config(seed=seed)
    cfg = replace(cfg, network=replace(cfg.network, track_vc_trace=True))
    net = Network(topo, algo, cfg)
    sim = Simulator(net)
    delivered = []
    for t in net.terminals:
        t.delivery_listeners.append(
            lambda p, c, tid=t.terminal_id: delivered.append((p, tid))
        )
    traffic = SyntheticTraffic(
        net, UniformRandom(topo.num_terminals), rate, UniformSize(1, 8), seed=seed
    )
    sim.processes.append(traffic)
    sim.run(600)
    traffic.stop()
    assert sim.drain(max_cycles=300_000), (
        f"{algo_name} failed to drain on {topo!r} at rate {rate}"
    )
    # conservation
    assert net.total_injected_flits() == net.total_ejected_flits()
    assert net.total_injected_flits() == traffic.flits_generated
    assert net.flits_in_flight() == 0
    # correctness + path invariants
    bound = max_hops(topo, algo_name)
    for p, tid in delivered:
        assert p.dst_terminal == tid
        src_r = topo.router_of_terminal(p.src_terminal)
        dst_r = topo.router_of_terminal(p.dst_terminal)
        assert topo.min_hops(src_r, dst_r) <= p.hops <= bound
        assert p.eject_cycle >= p.create_cycle
        # every hop used a VC legal for its resource class count
        for vc in p.vc_trace or []:
            assert 0 <= net.vc_map.class_of(vc) < algo.num_classes
