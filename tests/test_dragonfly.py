"""Tests for the Dragonfly topology and its routing algorithms."""

import pytest

from repro.config import default_config
from repro.core.dragonfly_routing import (
    DragonflyMinimal,
    DragonflyUgal,
    DragonflyValiant,
)
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.topology.dragonfly import Dragonfly, balanced_dragonfly
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom


def test_counts_balanced():
    df = balanced_dragonfly(2)  # p=2, a=4, h=2
    assert df.g == 9
    assert df.num_routers == 36
    assert df.num_terminals == 72
    assert df.radix(0) == 3 + 2 + 2


def test_validate_structure():
    for h in (1, 2, 3):
        balanced_dragonfly(h).validate()
    Dragonfly(p=1, a=3, h=2).validate()


def test_rejects_bad_params():
    with pytest.raises(ValueError):
        Dragonfly(p=0, a=4, h=2)
    with pytest.raises(ValueError):
        Dragonfly(p=2, a=1, h=2)


def test_group_local_roundtrip():
    df = balanced_dragonfly(2)
    for r in range(df.num_routers):
        assert df.router_id(df.group_of(r), df.local_of(r)) == r


def test_local_ports_fully_connect_group():
    df = balanced_dragonfly(2)
    r = df.router_id(3, 1)
    seen = set()
    for lp in range(df.a - 1):
        peer = df.peer(r, lp).router_port
        assert df.group_of(peer.router) == 3
        seen.add(df.local_of(peer.router))
    assert seen == {0, 2, 3}  # every other router of the group


def test_global_channels_pair_bijectively():
    df = balanced_dragonfly(2)
    for r in range(df.num_routers):
        for k in range(df.h):
            port = df.global_port(r, k)
            peer = df.peer(r, port).router_port
            assert df.group_of(peer.router) != df.group_of(r)
            back = df.peer(peer.router, peer.port).router_port
            assert back.router == r and back.port == port


def test_every_group_pair_connected_once():
    df = balanced_dragonfly(2)
    pairs = set()
    for r in range(df.num_routers):
        for k in range(df.h):
            peer = df.peer(r, df.global_port(r, k)).router_port
            pair = tuple(sorted((df.group_of(r), df.group_of(peer.router))))
            pairs.add(pair)
    expected = {(a, b) for a in range(df.g) for b in range(a + 1, df.g)}
    assert pairs == expected  # canonical max-size dragonfly: one link per pair


def test_gateway_router_consistency():
    df = balanced_dragonfly(2)
    for gs in range(df.g):
        for gd in range(df.g):
            if gs == gd:
                continue
            router, k = df.gateway_router(gs, gd)
            assert df.group_of(router) == gs
            peer = df.peer(router, df.global_port(router, k)).router_port
            assert df.group_of(peer.router) == gd


def test_min_hops_diameter_3():
    df = balanced_dragonfly(2)
    assert df.diameter() <= 3
    assert df.min_hops(0, 0) == 0
    assert df.min_hops(df.router_id(0, 0), df.router_id(0, 3)) == 1


@pytest.mark.parametrize(
    "algo_cls", [DragonflyMinimal, DragonflyUgal, DragonflyValiant]
)
def test_routing_delivers_everything(algo_cls):
    df = balanced_dragonfly(2)
    algo = algo_cls(df)
    net = Network(df, algo, default_config())
    sim = Simulator(net)
    traffic = SyntheticTraffic(net, UniformRandom(df.num_terminals), 0.3, seed=6)
    sim.processes.append(traffic)
    sim.run(1200)
    traffic.stop()
    assert sim.drain(max_cycles=200_000)
    assert net.total_injected_flits() == net.total_ejected_flits()


def test_minimal_paths_are_at_most_3_hops():
    df = balanced_dragonfly(2)
    algo = DragonflyMinimal(df)
    from dataclasses import replace

    cfg = default_config()
    cfg = replace(cfg, network=replace(cfg.network, track_vc_trace=True))
    net = Network(df, algo, cfg)
    sim = Simulator(net)
    delivered = []
    for t in net.terminals:
        t.delivery_listeners.append(lambda p, c: delivered.append(p))
    traffic = SyntheticTraffic(net, UniformRandom(df.num_terminals), 0.2, seed=3)
    sim.processes.append(traffic)
    sim.run(800)
    traffic.stop()
    sim.drain(max_cycles=100_000)
    assert delivered
    for p in delivered:
        src_r = df.router_of_terminal(p.src_terminal)
        dst_r = df.router_of_terminal(p.dst_terminal)
        assert p.hops == df.min_hops(src_r, dst_r)
        assert p.hops <= 3


def test_ugal_requires_dragonfly():
    from repro.topology.hyperx import HyperX

    with pytest.raises(TypeError):
        DragonflyUgal(HyperX((3, 3), 2))


def test_par_delivers_and_bounded_hops():
    from dataclasses import replace

    from repro.core.dragonfly_routing import DragonflyPar

    df = balanced_dragonfly(2)
    algo = DragonflyPar(df)
    assert algo.num_classes == 7
    cfg = default_config()
    cfg = replace(cfg, network=replace(cfg.network, track_vc_trace=True))
    net = Network(df, algo, cfg)
    sim = Simulator(net)
    delivered = []
    for t in net.terminals:
        t.delivery_listeners.append(lambda p, c: delivered.append(p))
    traffic = SyntheticTraffic(net, UniformRandom(df.num_terminals), 0.35, seed=5)
    sim.processes.append(traffic)
    sim.run(1500)
    traffic.stop()
    assert sim.drain(max_cycles=300_000)
    assert net.total_injected_flits() == net.total_ejected_flits()
    assert delivered
    for p in delivered:
        assert p.hops <= 7
        classes = [net.vc_map.class_of(v) for v in p.vc_trace or []]
        assert classes == sorted(classes)  # distance classes never decrease


def test_par_can_revoke_inside_source_group():
    """PAR's defining property: some packets commit to Valiant only after
    their first (minimal) hop inside the source group."""
    from repro.core.dragonfly_routing import DragonflyPar

    df = balanced_dragonfly(2)
    algo = DragonflyPar(df)
    net = Network(df, algo, default_config())
    sim = Simulator(net)
    delivered = []
    for t in net.terminals:
        t.delivery_listeners.append(lambda p, c: delivered.append(p))
    # hot adversarial-ish load so revocations actually happen
    traffic = SyntheticTraffic(net, UniformRandom(df.num_terminals), 0.5, seed=9)
    sim.processes.append(traffic)
    sim.run(2500)
    traffic.stop()
    sim.drain(max_cycles=500_000)
    val_after_hop = [
        p for p in delivered
        if p.routing_state.get("df_mode") == "val" and p.hops > df.min_hops(
            df.router_of_terminal(p.src_terminal),
            df.router_of_terminal(p.dst_terminal),
        )
    ]
    assert val_after_hop  # progressive decisions occurred
