"""Tests for the SoA datapath (repro.network.soa).

The SoA core is a pure optimisation: fused per-component kernels that share
every piece of mutable state with the object facade, so a simulation must be
*bit-identical* whichever engine runs it.  These tests pin that contract:

* engine selection — SoA is on by default, and every published fallback
  trigger (flag off, unspecialised config, observer processes, hooks)
  cleanly reverts to the object path with a human-readable reason;
* equivalence — fixed scenarios and Hypothesis-drawn small topologies
  fingerprint identically under both engines, including full counter state;
* faults — mid-run link failures (``Router.revoke_unstarted_routes``) and
  degrades behave identically under SoA, and credits balance exactly after
  drain;
* engine alternation — a simulation may switch engines between ``run()``
  calls mid-stream without observable effect.
"""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import RouterConfig, SimConfig, default_config
from repro.core.registry import make_algorithm
from repro.faults import DegradedTopology
from repro.faults.inject import FaultInjector
from repro.faults.model import FaultEvent, FaultSchedule
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.soa import fallback_reason
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom
from repro.traffic.sizes import UniformSize


def _object_config(seed: int = 0) -> SimConfig:
    cfg = default_config(seed=seed)
    return replace(cfg, router=replace(cfg.router, soa_core=False)).validated()


def _build(
    widths=(4, 4),
    tpr=1,
    algo="OmniWAR",
    rate=0.3,
    seed=1,
    soa=True,
    degraded=False,
):
    topo = HyperX(widths, tpr)
    if degraded:
        topo = DegradedTopology(topo)
    cfg = default_config(seed=0) if soa else _object_config(seed=0)
    net = Network(topo, make_algorithm(algo, topo), cfg)
    sim = Simulator(net)
    sim.processes.append(
        SyntheticTraffic(
            net,
            UniformRandom(topo.num_terminals),
            rate,
            UniformSize(1, 8),
            seed=seed,
        )
    )
    return sim


def _fingerprint(sim):
    """Full observable counter state — any engine divergence lands here."""
    net = sim.network
    return {
        "cycle": sim.cycle,
        "injected": net.total_injected_flits(),
        "ejected": net.total_ejected_flits(),
        "in_flight": net.flits_in_flight(),
        "terminals": [
            (t.flits_injected, t.flits_ejected, t.packets_delivered)
            for t in net.terminals
        ],
        "routers": [
            (
                r.flits_forwarded,
                r.routes_computed,
                r.route_stalls,
                r.route_cache_hits,
                r._jitter_idx,
            )
            for r in net.routers
        ],
        "channels": sorted(
            (rec.label, rec.data.utilization_count, rec.credit.utilization_count)
            for rec in net.links
        ),
        "credits": [
            [tuple(tr.credits) for tr in r.credit_trackers if tr is not None]
            for r in net.routers
        ],
    }


# ---------------------------------------------------------------------------
# Engine selection and fallback
# ---------------------------------------------------------------------------


def test_soa_active_by_default():
    sim = _build()
    assert fallback_reason(sim) is None
    sim.run(50)
    assert sim.soa_active
    assert sim.soa_fallback_reason is None


def test_flag_off_falls_back():
    sim = _build(soa=False)
    sim.run(50)
    assert not sim.soa_active
    assert "soa_core" in sim.soa_fallback_reason


def test_unsafe_process_falls_back():
    class Watcher:  # no soa_safe attribute -> object path
        def __call__(self, cycle):
            pass

    sim = _build()
    sim.add_process(Watcher())
    sim.run(50)
    assert not sim.soa_active
    assert "Watcher" in sim.soa_fallback_reason


def test_sanitizer_falls_back():
    from repro.check.sanitizer import Sanitizer

    sim = _build()
    Sanitizer(sim).attach()
    sim.run(50)
    assert not sim.soa_active


def test_route_hook_falls_back():
    sim = _build()
    sim.network.routers[0].add_route_hook(lambda *a, **k: None)
    sim.run(50)
    assert not sim.soa_active
    assert "hook" in sim.soa_fallback_reason


def test_unspecialised_arbiter_falls_back():
    cfg = default_config(seed=0)
    cfg = replace(cfg, router=replace(cfg.router, arbiter="round_robin"))
    topo = HyperX((3, 3), 1)
    net = Network(topo, make_algorithm("DOR", topo), cfg.validated())
    sim = Simulator(net)
    sim.run(10)
    assert not sim.soa_active
    assert "round_robin" in sim.soa_fallback_reason


def test_sequential_allocation_falls_back():
    cfg = default_config(seed=0)
    cfg = replace(cfg, router=replace(cfg.router, sequential_allocation=True))
    topo = HyperX((3, 3), 1)
    net = Network(topo, make_algorithm("DOR", topo), cfg.validated())
    sim = Simulator(net)
    sim.run(10)
    assert not sim.soa_active
    assert "sequential_allocation" in sim.soa_fallback_reason


# ---------------------------------------------------------------------------
# Bit-exact equivalence
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("algo", ["DOR", "DimWAR", "OmniWAR", "UGAL"])
def test_soa_matches_object_path(algo):
    a = _build(algo=algo, soa=True)
    b = _build(algo=algo, soa=False)
    a.run(400)
    b.run(400)
    assert a.soa_active and not b.soa_active
    assert _fingerprint(a) == _fingerprint(b)
    assert a.network.total_ejected_flits() > 0


def test_engine_alternation_mid_stream():
    """Flipping soa_core between run() calls must not perturb the stream."""
    alternating = _build(soa=True)
    reference = _build(soa=False)
    rc = alternating.network.cfg.router
    for chunk in range(6):
        rc.soa_core = chunk % 2 == 0
        alternating.run(100)
        assert alternating.soa_active == (chunk % 2 == 0)
    reference.run(600)
    assert _fingerprint(alternating) == _fingerprint(reference)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    topo_spec=st.sampled_from(
        [((3,), 2), ((2, 2), 2), ((3, 3), 1), ((2, 3), 2), ((2, 2, 2), 1)]
    ),
    algo=st.sampled_from(["DOR", "VAL", "UGAL+", "DimWAR", "OmniWAR-b2b"]),
    rate=st.sampled_from([0.1, 0.4]),
    seed=st.integers(0, 100),
)
def test_soa_equivalence_property(topo_spec, algo, rate, seed):
    widths, tpr = topo_spec
    a = _build(widths=widths, tpr=tpr, algo=algo, rate=rate, seed=seed, soa=True)
    b = _build(widths=widths, tpr=tpr, algo=algo, rate=rate, seed=seed, soa=False)
    a.run(300)
    b.run(300)
    assert a.soa_active and not b.soa_active
    assert _fingerprint(a) == _fingerprint(b)


# ---------------------------------------------------------------------------
# Faults under SoA
# ---------------------------------------------------------------------------

_FAULTS = [
    FaultEvent(120, "link", 0, port=1),
    FaultEvent(180, "degrade", 2, port=0, factor=6),
    FaultEvent(250, "link", 4, port=2),
]


def _faulted(soa: bool):
    sim = _build(widths=(4, 4), algo="OmniWAR", rate=0.35, soa=soa, degraded=True)
    sim.processes.append(
        FaultInjector(sim.network, FaultSchedule(list(_FAULTS)))
    )
    return sim


def test_fault_injection_identical_under_soa():
    a, b = _faulted(True), _faulted(False)
    a.run(500)
    b.run(500)
    assert a.soa_active and not b.soa_active
    state = a.network.fault_state
    assert state.events_applied == len(_FAULTS)
    assert state.revoked_routes == b.network.fault_state.revoked_routes
    assert _fingerprint(a) == _fingerprint(b)


def test_fault_revocation_credit_exact_after_drain():
    """Revoked routes must leave no phantom credits: after traffic stops and
    the (degraded but connected) network drains, every tracker is back to
    full depth and internally consistent."""
    sim = _faulted(True)
    sim.run(500)
    traffic = sim.processes[0]
    traffic.stop()
    assert sim.drain(max_cycles=100_000)
    net = sim.network
    assert net.total_injected_flits() == net.total_ejected_flits()
    assert net.flits_in_flight() == 0
    for r in net.routers:
        for tracker in r.credit_trackers:
            if tracker is not None:
                assert tracker.consistent()
                assert tracker.occupied_total == 0
    for t in net.terminals:
        assert t.inject_credits.consistent()
        assert t.inject_credits.occupied_total == 0


def test_revoke_unstarted_routes_direct_under_soa():
    """A revoked route recovers through the compiled kernels, credit-exactly.

    Route commit requires a free output VC with at least one credit, so the
    head flit always forwards in the same pass and committed-but-unstarted
    routes never persist to a cycle boundary on their own — like the object
    path's direct test (test_faults.py) this crafts one by hand.  The
    revocation must land in the exact dicts the already-compiled SoA kernels
    captured: the re-woken input recomputes, the wormhole delivers, and every
    credit tracker returns to full depth."""
    from repro.network.buffers import VcRoute
    from repro.network.types import Flit, Packet

    sim = _build(widths=(2, 2), tpr=1, algo="DimWAR", rate=0.0, soa=True)
    sim.run(20)  # compiles and activates the SoA kernels
    assert sim.soa_active
    net = sim.network
    r = net.routers[0]
    pkt = Packet(0, 3, size=2, create_cycle=sim.cycle)
    pkt.hops = 1
    state = r.inputs[0].vcs[0]
    state.fifo.append(Flit(pkt, 0))
    state.fifo.append(Flit(pkt, 1))
    state.route = VcRoute(1, 0, pkt.pid)
    r.out_vc_owner[1][0] = pkt.pid
    # consume the upstream credits the crafted flits logically hold, so the
    # credit returns emitted during recovery balance exactly
    upstream = next(rec for rec in net.links if rec.downstream is r.inputs[0])
    upstream.tracker.consume(0)
    upstream.tracker.consume(0)

    assert r.revoke_unstarted_routes({1}) == 1
    assert state.route is None and r.out_vc_owner[1][0] is None
    assert (0, 0) in r.active_input_keys()  # re-woken in the schedule the kernels read

    dst = net.terminals[3]
    before = dst.flits_ejected
    sim.run(300)
    assert sim.soa_active
    assert dst.flits_ejected == before + 2
    assert pkt.eject_cycle is not None
    for rr in net.routers:
        for tracker in rr.credit_trackers:
            if tracker is not None:
                assert tracker.consistent() and tracker.occupied_total == 0
    assert upstream.tracker.occupied_total == 0
