"""Tests that the simulator lands where the closed-form math says it must."""

import pytest

from repro.analysis.sweep import measure_point
from repro.analysis.theory import (
    dor_cap_bit_complement,
    dor_cap_dcr,
    dor_cap_urb,
    max_hops,
    mean_min_hops_uniform,
    zero_load_latency,
)
from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.types import Packet
from repro.topology.hyperx import HyperX, paper_hyperx
from repro.traffic.patterns import BitComplement, UniformRandom
from repro.traffic.sizes import FixedSize


def test_paper_network_caps():
    """The paper's own numbers: 12.5% minimal cap on URBy/BC, 1.56% on DCR."""
    hx = paper_hyperx()
    assert dor_cap_bit_complement(hx) == pytest.approx(0.125)
    assert dor_cap_urb(hx, 1) == pytest.approx(0.125)
    assert dor_cap_dcr(hx) == pytest.approx(1 / 64)  # the quoted 1.56%


def test_mean_min_hops():
    hx = HyperX((4, 4), 1)
    assert mean_min_hops_uniform(hx) == pytest.approx(2 * 3 / 4)
    assert mean_min_hops_uniform(paper_hyperx()) == pytest.approx(3 * 7 / 8)


def test_max_hops_table():
    hx = HyperX((4, 4, 4), 2)
    assert max_hops(hx, "DOR") == 3
    assert max_hops(hx, "VAL") == 6
    assert max_hops(hx, "UGAL+") == 4
    assert max_hops(hx, "DimWAR") == 6
    assert max_hops(hx, "OmniWAR") == 6
    assert max_hops(hx, "OmniWAR", deroutes=1) == 4
    with pytest.raises(ValueError):
        max_hops(hx, "WARP")


def test_zero_load_latency_bound_matches_simulator():
    """Single packets at zero load land inside the analytic bounds."""
    topo = HyperX((3, 3), 2)
    cfg = default_config()
    for dst_router, size in [(1, 1), (4, 8), (8, 16)]:
        net = Network(topo, make_algorithm("DOR", topo), cfg)
        sim = Simulator(net)
        p = Packet(0, dst_router * 2, size, create_cycle=0)
        net.terminals[0].offer(p)
        assert sim.drain(max_cycles=5000)
        hops = topo.min_hops(0, dst_router)
        lo, hi = zero_load_latency(cfg, hops, size)
        assert lo <= p.latency <= hi, (dst_router, size, p.latency, (lo, hi))


def test_mean_hops_matches_simulated_uniform():
    topo = HyperX((3, 3), 2)
    algo = make_algorithm("DOR", topo)
    r = measure_point(
        topo, algo, UniformRandom(topo.num_terminals), 0.1,
        total_cycles=4000, seed=2, size_dist=FixedSize(2),
    )
    # UR excludes self-terminal, slightly raising hops vs the all-dest model
    assert r.mean_hops == pytest.approx(mean_min_hops_uniform(topo), abs=0.15)


def test_dor_bc_cap_observed():
    """Offered load above the 1/T cap must saturate; below must not."""
    topo = HyperX((3, 3), 2)  # cap = 0.5
    cap = dor_cap_bit_complement(topo)
    algo = make_algorithm("DOR", topo)
    bc = BitComplement(topo.num_terminals)
    below = measure_point(topo, algo, bc, 0.8 * cap, total_cycles=3000, seed=2)
    assert below.stable
    above = measure_point(topo, algo, bc, 1.3 * cap, total_cycles=3000, seed=2)
    assert not above.stable
    assert above.accepted_rate < 1.15 * cap


def test_zero_load_validation():
    with pytest.raises(ValueError):
        zero_load_latency(default_config(), -1, 1)
    with pytest.raises(ValueError):
        zero_load_latency(default_config(), 2, 0)
    with pytest.raises(ValueError):
        dor_cap_urb(HyperX((3, 3), 1), 5)
    with pytest.raises(ValueError):
        dor_cap_dcr(HyperX((3, 3), 1))
