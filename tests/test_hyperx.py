"""Tests for the HyperX topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.base import RouterPort
from repro.topology.hyperx import HyperX, paper_hyperx, regular_hyperx

SMALL = [
    (2,),
    (3,),
    (2, 2),
    (4, 3),
    (2, 3, 4),
    (3, 3, 3),
]


def test_rejects_bad_widths():
    with pytest.raises(ValueError):
        HyperX((), 1)
    with pytest.raises(ValueError):
        HyperX((1, 4), 2)
    with pytest.raises(ValueError):
        HyperX((4, 4), 0)


def test_counts_regular():
    hx = HyperX((4, 4), 2)
    assert hx.num_routers == 16
    assert hx.num_terminals == 32
    assert hx.num_dims == 2
    assert hx.router_radix == 3 + 3 + 2
    assert hx.num_router_ports == 6


def test_counts_mixed_widths():
    hx = HyperX((2, 5, 3), 4)
    assert hx.num_routers == 30
    assert hx.num_terminals == 120
    assert hx.router_radix == 1 + 4 + 2 + 4


def test_paper_network_shape():
    hx = paper_hyperx()
    assert hx.widths == (8, 8, 8)
    assert hx.num_routers == 512
    assert hx.num_terminals == 4096  # the paper's 4,096-node system
    assert hx.router_radix == 3 * 7 + 8  # 29-port routers


@pytest.mark.parametrize("widths", SMALL)
def test_coords_roundtrip(widths):
    hx = HyperX(widths, 2)
    for r in range(hx.num_routers):
        c = hx.coords(r)
        assert hx.router_id(c) == r
        assert all(0 <= x < w for x, w in zip(c, widths))


def test_all_coords_matches_ids():
    hx = HyperX((3, 2, 4), 1)
    listed = list(hx.all_coords())
    assert listed == [hx.coords(r) for r in range(hx.num_routers)]


@pytest.mark.parametrize("widths", SMALL)
def test_validate_structure(widths):
    HyperX(widths, 2).validate()


def test_dim_port_roundtrip():
    hx = HyperX((4, 3), 2)
    for r in range(hx.num_routers):
        own = hx.coords(r)
        for d in range(2):
            for c in range(hx.widths[d]):
                if c == own[d]:
                    with pytest.raises(ValueError):
                        hx.dim_port(r, d, c)
                    continue
                p = hx.dim_port(r, d, c)
                assert hx.port_target(r, p) == (d, c)
                assert hx.port_dim(r, p) == d


def test_peer_symmetry_and_single_dim_difference():
    hx = HyperX((3, 3, 2), 2)
    for r in range(hx.num_routers):
        for port in range(hx.num_router_ports):
            peer = hx.peer(r, port)
            assert peer.is_router
            rp = peer.router_port
            # single-coordinate difference: fully connected dimensions
            a, b = hx.coords(r), hx.coords(rp.router)
            assert sum(1 for x, y in zip(a, b) if x != y) == 1
            back = hx.peer(rp.router, rp.port)
            assert back.router_port == RouterPort(r, port)


def test_terminal_attachment_dense_and_consistent():
    hx = HyperX((2, 3), 3)
    for t in range(hx.num_terminals):
        att = hx.terminal_attachment(t)
        assert hx.peer(att.router, att.port).terminal == t
        assert hx.router_of_terminal(t) == t // 3


def test_min_hops_is_hamming_distance():
    hx = HyperX((4, 4, 4), 1)
    assert hx.min_hops(0, 0) == 0
    a = hx.router_id((0, 0, 0))
    b = hx.router_id((1, 0, 3))
    assert hx.min_hops(a, b) == 2
    c = hx.router_id((3, 2, 1))
    assert hx.min_hops(a, c) == 3


def test_diameter_equals_dimensions():
    for widths in [(3,), (3, 3), (2, 3, 2)]:
        hx = HyperX(widths, 1)
        assert hx.diameter() == len(widths)


def test_unaligned_dims():
    hx = HyperX((4, 4, 4), 1)
    assert hx.unaligned_dims((0, 1, 2), (0, 1, 2)) == []
    assert hx.unaligned_dims((0, 1, 2), (3, 1, 0)) == [0, 2]


def test_relative_bisection_bandwidth_paper_value():
    # The paper's 8x8x8 with 8 terminals/router: "assuming the bisection
    # capacity of the network is 50%".
    hx = paper_hyperx()
    for d in range(3):
        assert hx.relative_bisection_bandwidth(d) == pytest.approx(0.5)


def test_bisection_channels():
    hx = HyperX((4, 4), 2)
    # per dimension: halves of 2x2 routers, 2*2 = 4 crossing channels per
    # instance, times 4 instances of the dimension
    assert hx.bisection_channels(0) == 4 * 4
    assert hx.bisection_channels(1) == 4 * 4


@settings(max_examples=60, deadline=None)
@given(
    widths=st.lists(st.integers(2, 5), min_size=1, max_size=3).map(tuple),
    tpr=st.integers(1, 4),
    data=st.data(),
)
def test_property_roundtrips(widths, tpr, data):
    hx = HyperX(widths, tpr)
    r = data.draw(st.integers(0, hx.num_routers - 1))
    assert hx.router_id(hx.coords(r)) == r
    t = data.draw(st.integers(0, hx.num_terminals - 1))
    att = hx.terminal_attachment(t)
    assert hx.peer(att.router, att.port).terminal == t
    # min_hops is a metric bounded by the dimension count
    r2 = data.draw(st.integers(0, hx.num_routers - 1))
    d = hx.min_hops(r, r2)
    assert 0 <= d <= len(widths)
    assert d == hx.min_hops(r2, r)
    assert (d == 0) == (r == r2)


def test_regular_hyperx_helper():
    hx = regular_hyperx(2, 4, 3)
    assert hx.widths == (4, 4)
    assert hx.terminals_per_router == 3
