"""Each algorithm must run correctly with exactly its minimum VC count.

Table 1's "VCs Required" column is a *sufficiency* claim: DimWAR needs only
2 VCs regardless of dimensionality, OmniWAR N+M, DOR 1, and so on.  The
usual evaluation gives everyone 8 VCs (spares reduce head-of-line
blocking); here we strip the spares away and drive each algorithm at its
exact minimum on a 3-D network under adversarial traffic — every packet
must still be delivered (deadlock freedom with minimal resources).
"""

import pytest

from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import BitComplement, UniformRandom

TOPO = HyperX((3, 3, 3), 2)

CASES = [
    ("DOR", 1),
    ("VAL", 2),
    ("UGAL", 2),
    ("UGAL+", 2),
    ("ROMM", 2),
    ("MIN-AD", 3),
    ("O1Turn", 3),
    ("DimWAR", 2),  # the paper's headline: 2 VCs in ANY dimensionality
    ("OmniWAR", 6),  # N + M with the default M = N = 3
]


@pytest.mark.parametrize("name,min_vcs", CASES)
@pytest.mark.parametrize("pattern_cls", [UniformRandom, BitComplement])
def test_runs_at_minimum_vcs(name, min_vcs, pattern_cls):
    from dataclasses import replace

    algo = make_algorithm(name, TOPO)
    assert algo.num_classes == min_vcs, (
        f"{name} declares {algo.num_classes} classes, test expects {min_vcs}"
    )
    cfg = default_config()
    cfg = replace(cfg, router=replace(cfg.router, num_vcs=min_vcs))
    net = Network(TOPO, algo, cfg)
    sim = Simulator(net)
    traffic = SyntheticTraffic(
        net, pattern_cls(TOPO.num_terminals), rate=0.3, seed=7
    )
    sim.processes.append(traffic)
    sim.run(1500)
    traffic.stop()
    assert sim.drain(max_cycles=400_000), (
        f"{name} with {min_vcs} VCs failed to drain: possible deadlock"
    )
    assert net.total_injected_flits() == net.total_ejected_flits()


def test_dimwar_two_vcs_in_four_dimensions():
    """The dimensionality-independence claim, at 4 dimensions."""
    from dataclasses import replace

    topo = HyperX((2, 2, 2, 2), 1)
    algo = make_algorithm("DimWAR", topo)
    assert algo.num_classes == 2
    cfg = default_config()
    cfg = replace(cfg, router=replace(cfg.router, num_vcs=2))
    net = Network(topo, algo, cfg)
    sim = Simulator(net)
    traffic = SyntheticTraffic(
        net, BitComplement(topo.num_terminals), rate=0.35, seed=3
    )
    sim.processes.append(traffic)
    sim.run(2000)
    traffic.stop()
    assert sim.drain(max_cycles=400_000)
    assert net.total_injected_flits() == net.total_ejected_flits()
