"""Tests for the measurement harness (stats, sweeps, saturation) and the
reporting utilities."""

import math

import pytest

from repro.analysis.report import format_table, to_csv
from repro.analysis.sweep import (
    PointResult,
    SweepResult,
    measure_point,
    nearest_rank_p99,
    saturation_throughput,
    sweep_load,
)
from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.stats import LatencyMonitor, PacketStats, accepted_rate
from repro.network.types import Packet
from repro.topology.hyperx import HyperX
from repro.traffic.patterns import UniformRandom


# ---------------------------------------------------------------------------
# PacketStats / LatencyMonitor
# ---------------------------------------------------------------------------


def _delivered_packet(create, eject, hops=2, deroutes=0):
    p = Packet(0, 1, 4, create_cycle=create)
    p.hops, p.deroutes = hops, deroutes
    return p, eject


def test_packet_stats_summaries():
    stats = PacketStats()
    for create, eject in [(0, 30), (10, 50), (20, 80)]:
        p, e = _delivered_packet(create, eject)
        p.eject_cycle = e
        stats.on_delivery(p, e)
    assert stats.packets_delivered == 3
    assert stats.mean_latency() == pytest.approx((30 + 40 + 60) / 3)
    assert stats.mean_latency(since=10) == pytest.approx(50.0)
    assert stats.mean_hops() == 2.0
    assert math.isnan(stats.mean_latency(since=999))


def test_monitor_stable_flat_latency():
    stats = PacketStats()
    for create in range(0, 1000, 10):
        p, _ = _delivered_packet(create, create + 40)
        p.eject_cycle = create + 40
        stats.on_delivery(p, p.eject_cycle)
    v = LatencyMonitor(min_samples=20).verdict(
        stats, 0, 1000, num_terminals=4, offered_rate=0.2
    )
    assert v.stable and v.mean_latency == pytest.approx(40.0)


def test_monitor_detects_growth():
    stats = PacketStats()
    for create in range(0, 1000, 10):
        latency = 40 + create  # latency grows linearly: saturation
        p, _ = _delivered_packet(create, create + latency)
        p.eject_cycle = create + latency
        stats.on_delivery(p, p.eject_cycle)
    v = LatencyMonitor(min_samples=20).verdict(
        stats, 0, 1000, num_terminals=4, offered_rate=0.2
    )
    assert not v.stable and "growing" in v.reason


def test_monitor_detects_backlog():
    stats = PacketStats()
    for create in range(0, 1000, 10):
        p, _ = _delivered_packet(create, create + 40)
        p.eject_cycle = create + 40
        stats.on_delivery(p, p.eject_cycle)
    v = LatencyMonitor(min_samples=20).verdict(
        stats, 0, 1000, num_terminals=4, offered_rate=0.2,
        undelivered_backlog=10_000,
    )
    assert not v.stable and "backlog" in v.reason


def test_monitor_insufficient_samples():
    stats = PacketStats()
    v = LatencyMonitor().verdict(stats, 0, 100, 4, 0.1)
    assert not v.stable


def test_accepted_rate_helper():
    assert accepted_rate(800, 400, 4) == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# nearest-rank p99
# ---------------------------------------------------------------------------


def test_p99_nearest_rank_known_distributions():
    # n=100 of 1..100: rank ceil(99) = 99 -> index 98 -> value 99.  (The old
    # truncating formula picked the p98 sample here.)
    assert nearest_rank_p99(list(range(1, 101))) == 99.0
    # n=200 of 1..200: rank ceil(198) = 198 -> index 197 -> value 198.
    assert nearest_rank_p99(list(range(1, 201))) == 198.0
    # Small windows clamp to the max sample.
    assert nearest_rank_p99(list(range(1, 51))) == 50.0
    assert nearest_rank_p99([5.0, 1.0, 3.0]) == 5.0
    assert nearest_rank_p99([7.0]) == 7.0


def test_p99_order_independent_and_empty():
    shuffled = [3.0, 1.0, 2.0] * 40  # n=120 -> index ceil(118.8)-1 = 118
    assert nearest_rank_p99(shuffled) == 3.0
    assert math.isnan(nearest_rank_p99([]))


# ---------------------------------------------------------------------------
# measure_point / sweeps
# ---------------------------------------------------------------------------


def _setup():
    topo = HyperX((3, 3), 2)
    return topo, UniformRandom(topo.num_terminals)


def test_measure_point_low_load_stable():
    topo, pat = _setup()
    algo = make_algorithm("DimWAR", topo)
    r = measure_point(topo, algo, pat, 0.2, total_cycles=2500, seed=3)
    assert r.stable
    assert r.accepted_rate == pytest.approx(0.2, abs=0.05)
    assert r.mean_latency > 0 and r.packets_delivered > 100


def test_measure_point_overload_saturates():
    topo, pat = _setup()
    algo = make_algorithm("DOR", topo)
    from repro.traffic.patterns import BitComplement

    r = measure_point(
        topo, algo, BitComplement(topo.num_terminals), 0.9,
        total_cycles=2500, seed=3,
    )
    assert not r.stable
    assert r.accepted_rate < 0.8


def test_sweep_stops_after_unstable():
    topo, pat = _setup()
    from repro.traffic.patterns import BitComplement

    algo = make_algorithm("DOR", topo)
    sweep = sweep_load(
        topo, algo, BitComplement(topo.num_terminals),
        rates=[0.2, 0.4, 0.6, 0.8, 1.0],
        total_cycles=2000, seed=3,
    )
    assert not sweep.points[-1].stable
    assert len(sweep.points) < 5  # stopped early
    assert all(p.stable for p in sweep.points[:-1])


def test_saturation_throughput_monotone_setup():
    topo, pat = _setup()
    algo = make_algorithm("OmniWAR", topo)
    sweep = saturation_throughput(
        topo, algo, pat, granularity=0.25, total_cycles=2000, seed=3
    )
    assert sweep.saturation_rate > 0.2
    offered = [p.offered_rate for p in sweep.points]
    assert offered == sorted(offered)


def test_sweep_result_api():
    s = SweepResult(algorithm="X", pattern="Y")
    assert s.saturation_rate == 0.0
    assert s.stable_points() == []


def test_saturation_granularity_validation():
    topo, pat = _setup()
    algo = make_algorithm("DOR", topo)
    with pytest.raises(ValueError):
        saturation_throughput(topo, algo, pat, granularity=0.0)


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], ["xxx", 4]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len({len(line) for line in lines[2:]}) <= 2  # aligned columns


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a"], [[1, 2]])


def test_to_csv():
    csv_text = to_csv(["a", "b"], [[1, 2], [3, 4]])
    assert csv_text.splitlines() == ["a,b", "1,2", "3,4"]


def test_latency_by_hops_and_deroute_histogram():
    stats = PacketStats()
    for create, eject, hops, der in [
        (0, 30, 1, 0), (0, 34, 1, 0), (0, 60, 2, 1), (0, 64, 2, 0),
    ]:
        p = Packet(0, 1, 4, create_cycle=create)
        p.hops, p.deroutes, p.eject_cycle = hops, der, eject
        stats.on_delivery(p, eject)
    by_hops = stats.latency_by_hops()
    assert by_hops[1] == pytest.approx(32.0)
    assert by_hops[2] == pytest.approx(62.0)
    hist = stats.deroute_histogram()
    assert hist == {0: 3, 1: 1}


def test_ascii_plot_basic():
    from repro.analysis.ascii_plot import ascii_plot

    text = ascii_plot(
        {"A": [(0.1, 40), (0.5, 80)], "B": [(0.1, 42), (0.5, 200)]},
        width=30, height=8,
    )
    lines = text.splitlines()
    assert any("o" in ln for ln in lines)  # series A marker
    assert any("x" in ln for ln in lines)  # series B marker
    assert "A" in text and "B" in text  # legend
    assert "200.0" in text and "40.0" in text  # y range labels


def test_ascii_plot_validation():
    import pytest as _pytest

    from repro.analysis.ascii_plot import ascii_plot

    with _pytest.raises(ValueError):
        ascii_plot({})
    with _pytest.raises(ValueError):
        ascii_plot({"A": []})
    with _pytest.raises(ValueError):
        ascii_plot({"A": [(0, 1)]}, width=4, height=2)


def test_plot_sweeps_uses_stable_points():
    from repro.analysis.ascii_plot import plot_sweeps

    sweep = SweepResult(algorithm="DOR", pattern="UR")
    sweep.points = [
        PointResult(0.2, True, "stable", 40.0, 60.0, 0.2, 2.0, 0.0, 10, 100),
        PointResult(0.4, False, "sat", 400.0, 900.0, 0.3, 2.0, 0.0, 10, 100),
    ]
    text = plot_sweeps({"DOR": sweep}, width=20, height=6)
    assert "40.0" in text
    assert "400" not in text  # the saturated point is excluded
