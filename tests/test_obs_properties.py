"""Property tests: every traced packet's event sequence is well-formed.

For randomly drawn small HyperX configurations, loads, and seeds, every
packet that completes inside the trace must satisfy the lifecycle grammar:

* exactly one ``inject`` (first) and one ``eject`` (last);
* cycles monotone non-decreasing, with ``inject < first route <= eject``;
* one ``route`` + ``vc_alloc`` pair per hop (``route count == hops``);
* ``sa`` fires once per flit per crossbar traversal — ``size * (hops + 1)``
  (the ``+ 1`` is the ejection-port crossing) — and ``link`` once per flit
  per router-to-router channel — ``size * hops``;
* for distance-class algorithms the VC class equals the hop index
  (class 0 at injection, +1 per hop — the deadlock-freedom argument).

Runs under the derandomized ``ci`` Hypothesis profile (tests/conftest.py),
so a failure here reproduces verbatim on any machine.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.obs import EVENT_TYPES, TraceOptions, Tracer
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom

CONFIGS = st.sampled_from([
    ((2, 2), 1),
    ((3, 2), 1),
    ((3, 3), 1),
    ((2, 2), 2),
    ((2, 2, 2), 1),
])
ALGORITHMS = st.sampled_from(["DOR", "DimWAR", "OmniWAR"])

ORDER = {t: i for i, t in enumerate(EVENT_TYPES)}


def _traced_packets(widths, tpr, algorithm, rate, seed, cycles):
    topo = HyperX(widths, tpr)
    algo = make_algorithm(algorithm, topo)
    net = Network(topo, algo, default_config())
    sim = Simulator(net)
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), rate, seed=seed)
    sim.processes.append(traffic)
    tracer = Tracer(sim, TraceOptions(capacity=1 << 18)).attach()
    sim.run(cycles)
    traffic.stop()
    sim.drain(max_cycles=1_000_000)
    tracer.detach()
    assert tracer.ring.dropped == 0
    return algo, tracer.ring.by_packet()


@settings(max_examples=12, deadline=None)
@given(
    config=CONFIGS,
    algorithm=ALGORITHMS,
    rate=st.floats(0.05, 0.3),
    seed=st.integers(0, 2**16),
    cycles=st.integers(120, 300),
)
def test_traced_packets_are_well_formed(config, algorithm, rate, seed, cycles):
    widths, tpr = config
    algo, by_packet = _traced_packets(widths, tpr, algorithm, rate, seed, cycles)
    assert by_packet, "run produced no traced packets"
    complete = 0
    for tid, evs in by_packet.items():
        types = [e.type for e in evs]
        # Monotone time, and the per-cycle event order follows the lifecycle.
        for a, b in zip(evs, evs[1:]):
            assert a.cycle <= b.cycle, f"pkt {tid}: cycle went backwards"
        assert types.count("inject") <= 1 and types.count("eject") <= 1
        if types[0] != "inject" or types[-1] != "eject":
            continue  # clipped by the drain limit — partial stream is fine
        complete += 1
        inject, eject = evs[0], evs[-1]
        size = inject.data["size"]
        hops = eject.data["hops"]
        routes = [e for e in evs if e.type == "route"]
        vcs = [e for e in evs if e.type == "vc_alloc"]
        sas = [e for e in evs if e.type == "sa"]
        links = [e for e in evs if e.type == "link"]

        if routes:  # hops == 0 when src and dst share a router (tpr > 1)
            assert inject.cycle < routes[0].cycle <= eject.cycle
        assert len(routes) == len(vcs) == hops
        assert len(sas) == size * (hops + 1)
        assert len(links) == size * hops
        assert eject.data["latency"] == eject.cycle - inject.data["create"]
        assert eject.data["deroutes"] == sum(r.data["deroute"] for r in routes)
        # The head flit's link traversals happen in hop order (body flits
        # interleave arbitrarily under wormhole pipelining): each route
        # decision after the first is taken where the previous head-flit
        # link delivered to.
        head_links = [l for l in links if l.data["flit"] == 0]
        assert len(head_links) == hops
        for link, nxt in zip(head_links, routes[1:]):
            assert link.data["dst"] == nxt.where

        if getattr(algo, "distance_classes", False):
            for hop, vc in enumerate(vcs):
                assert vc.data["vc_class"] == hop, (
                    f"pkt {tid}: VC class {vc.data['vc_class']} at hop {hop}"
                )
    assert complete > 0, "no packet completed inside the trace"


@settings(max_examples=8, deadline=None)
@given(
    sample_every=st.integers(1, 5),
    seed=st.integers(0, 2**16),
)
def test_sampling_never_breaks_well_formedness(sample_every, seed):
    """Thinned traces stay per-packet complete: sampling drops whole
    packets, never individual events of a kept packet."""
    topo = HyperX((3, 3), 1)
    net = Network(topo, make_algorithm("DimWAR", topo), default_config())
    sim = Simulator(net)
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), 0.2, seed=seed)
    sim.processes.append(traffic)
    tracer = Tracer(sim, TraceOptions(sample_every=sample_every)).attach()
    sim.run(250)
    traffic.stop()
    sim.drain(max_cycles=1_000_000)
    tracer.detach()
    for tid, evs in tracer.ring.by_packet().items():
        types = [e.type for e in evs]
        assert types[0] == "inject" and types[-1] == "eject"
        routes = sum(1 for t in types if t == "route")
        assert routes == evs[-1].data["hops"]
