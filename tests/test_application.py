"""Tests for the 27-point stencil application model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.application.collective import DisseminationCollective
from repro.application.engine import StencilApplication
from repro.application.placement import LinearPlacement, RandomPlacement
from repro.application.stencil import StencilDecomposition
from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.topology.hyperx import HyperX


# ---------------------------------------------------------------------------
# Decomposition
# ---------------------------------------------------------------------------


def test_periodic_grid_has_26_neighbors():
    d = StencilDecomposition((3, 3, 3), aggregate_flits=260)
    for rank in range(d.num_ranks):
        nbrs = d.neighbors(rank)
        assert len(nbrs) == 26  # the 27-point stencil's 26 halo partners
        kinds = [n.kind for n in nbrs]
        assert kinds.count("face") == 6
        assert kinds.count("edge") == 12
        assert kinds.count("corner") == 8


def test_nonperiodic_corner_rank_has_7_neighbors():
    d = StencilDecomposition((3, 3, 3), aggregate_flits=260, periodic=False)
    # a corner sub-cube touches 7 others: 3 faces, 3 edges, 1 corner
    corner = d.rank_id((0, 0, 0))
    nbrs = d.neighbors(corner)
    assert len(nbrs) == 7
    center = d.rank_id((1, 1, 1))
    assert len(d.neighbors(center)) == 26


def test_neighbor_sizes_follow_face_edge_corner_weights():
    d = StencilDecomposition(
        (3, 3, 3), aggregate_flits=2600, face_edge_corner_weights=(16, 4, 1)
    )
    nbrs = d.neighbors(0)
    by_kind = {k: next(n for n in nbrs if n.kind == k).size_flits
               for k in ("face", "edge", "corner")}
    assert by_kind["face"] > by_kind["edge"] > by_kind["corner"] >= 1
    assert by_kind["face"] == pytest.approx(16 * by_kind["corner"], rel=0.30)


def test_aggregate_roughly_preserved():
    d = StencilDecomposition((4, 4, 4), aggregate_flits=2600)
    total = sum(n.size_flits for n in d.neighbors(5))
    assert total == pytest.approx(2600, rel=0.05)


def test_neighbor_symmetry():
    """If A lists B as a neighbour, B lists A (same offsets, mirrored)."""
    d = StencilDecomposition((3, 4, 2), aggregate_flits=260)
    for rank in range(d.num_ranks):
        for n in d.neighbors(rank):
            back = [m.rank for m in d.neighbors(n.rank)]
            assert rank in back


def test_coords_roundtrip_and_traffic_matrix():
    d = StencilDecomposition((2, 3, 4), aggregate_flits=520)
    for r in range(d.num_ranks):
        assert d.rank_id(d.coords(r)) == r
    tm = d.traffic_matrix()
    assert all(src != dst for src, dst in tm)
    assert all(f >= 1 for f in tm.values())


def test_decomposition_validation():
    with pytest.raises(ValueError):
        StencilDecomposition((0, 3, 3), aggregate_flits=260)
    with pytest.raises(ValueError):
        StencilDecomposition((3, 3, 3), aggregate_flits=10)
    with pytest.raises(ValueError):
        StencilDecomposition((3, 3, 3), aggregate_flits=260,
                             face_edge_corner_weights=(0, 1, 1))


# ---------------------------------------------------------------------------
# Collective
# ---------------------------------------------------------------------------


def test_dissemination_rounds_are_log2():
    assert DisseminationCollective(8).num_rounds == 3
    assert DisseminationCollective(27).num_rounds == 5  # ceil(log2 27)
    assert DisseminationCollective(2).num_rounds == 1


def test_dissemination_sends_are_id_plus_minus_2k():
    c = DisseminationCollective(16)
    sends = c.sends(5, 0)
    assert {s.dst_rank for s in sends} == {4, 6}  # ID-1, ID+1
    sends = c.sends(5, 2)
    assert {s.dst_rank for s in sends} == {1, 9}  # ID-4, ID+4


def test_dissemination_send_recv_symmetry():
    """Every send in a round has a matching expected receive at the peer."""
    for n in (5, 8, 12):
        c = DisseminationCollective(n)
        for rnd in range(c.num_rounds):
            incoming = {r: 0 for r in range(n)}
            for rank in range(n):
                for s in c.sends(rank, rnd):
                    incoming[s.dst_rank] += 1
            for rank in range(n):
                assert incoming[rank] == c.expected_receives(rank, rnd)


def test_dissemination_degenerate_half_distance():
    # N=4, round 1: ID+2 == ID-2 (mod 4) -> a single send, not two
    c = DisseminationCollective(4)
    assert len(c.sends(0, 1)) == 1


def test_collective_validation():
    with pytest.raises(ValueError):
        DisseminationCollective(1)
    with pytest.raises(ValueError):
        DisseminationCollective(8, message_flits=0)
    with pytest.raises(ValueError):
        DisseminationCollective(8).sends(0, 99)


# ---------------------------------------------------------------------------
# Placement
# ---------------------------------------------------------------------------


def test_linear_placement():
    p = LinearPlacement(10, 20)
    p.validate()
    assert p.terminal_of(3) == 3
    assert p.rank_of(3) == 3
    assert p.rank_of(15) is None


def test_random_placement_is_injective_and_seeded():
    a = RandomPlacement(20, 30, seed=4)
    b = RandomPlacement(20, 30, seed=4)
    c = RandomPlacement(20, 30, seed=5)
    a.validate()
    assert [a.terminal_of(r) for r in range(20)] == [
        b.terminal_of(r) for r in range(20)
    ]
    assert [a.terminal_of(r) for r in range(20)] != [
        c.terminal_of(r) for r in range(20)
    ]


def test_placement_rejects_overflow():
    with pytest.raises(ValueError):
        LinearPlacement(10, 5)


@settings(max_examples=25, deadline=None)
@given(ranks=st.integers(2, 40), extra=st.integers(0, 20), seed=st.integers(0, 99))
def test_property_random_placement_bijective(ranks, extra, seed):
    p = RandomPlacement(ranks, ranks + extra, seed=seed)
    terms = [p.terminal_of(r) for r in range(ranks)]
    assert len(set(terms)) == ranks
    for r, t in enumerate(terms):
        assert p.rank_of(t) == r


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def _run_app(mode, iterations, algo="DimWAR", grid=(2, 2, 2), seed=1):
    topo = HyperX((3, 3), 2)
    algorithm = make_algorithm(algo, topo)
    net = Network(topo, algorithm, default_config())
    sim = Simulator(net)
    decomp = StencilDecomposition(grid, aggregate_flits=52)
    placement = RandomPlacement(decomp.num_ranks, topo.num_terminals, seed=seed)
    app = StencilApplication(net, decomp, placement, iterations=iterations, mode=mode)
    t = app.run(sim, max_cycles=2_000_000)
    return app, t


@pytest.mark.parametrize("mode", ["collective", "halo", "full"])
def test_app_completes(mode):
    app, t = _run_app(mode, iterations=1)
    assert app.done and t > 0
    assert app.execution_time == t


def test_app_message_counts():
    app, _ = _run_app("full", iterations=2, grid=(2, 2, 2))
    n = app.decomp.num_ranks
    halo_msgs = sum(app.decomp.neighbor_count(r) for r in range(n))
    coll_msgs = sum(
        len(app.collective.sends(r, k))
        for r in range(n)
        for k in range(app.collective.num_rounds)
    )
    assert app.messages_sent == 2 * (halo_msgs + coll_msgs)


def test_app_more_iterations_take_longer():
    _, t1 = _run_app("full", iterations=1)
    _, t4 = _run_app("full", iterations=4)
    assert t4 > t1 * 2


def test_collective_only_mode_sends_no_halos():
    app, _ = _run_app("collective", iterations=1, grid=(2, 2, 2))
    n = app.decomp.num_ranks
    coll_msgs = sum(
        len(app.collective.sends(r, k))
        for r in range(n)
        for k in range(app.collective.num_rounds)
    )
    assert app.messages_sent == coll_msgs


def test_app_rejects_bad_configs():
    topo = HyperX((3, 3), 2)
    algorithm = make_algorithm("DOR", topo)
    net = Network(topo, algorithm, default_config())
    decomp = StencilDecomposition((2, 2, 2), aggregate_flits=52)
    placement = RandomPlacement(decomp.num_ranks, topo.num_terminals)
    with pytest.raises(ValueError):
        StencilApplication(net, decomp, placement, mode="warp")
    with pytest.raises(ValueError):
        StencilApplication(net, decomp, placement, iterations=0)
    bad_placement = RandomPlacement(4, topo.num_terminals)
    with pytest.raises(ValueError):
        StencilApplication(net, decomp, bad_placement)


def test_app_deterministic():
    _, t1 = _run_app("full", 1, seed=2)
    _, t2 = _run_app("full", 1, seed=2)
    assert t1 == t2
