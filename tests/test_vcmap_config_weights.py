"""Tests for the VC map, configuration presets, and weight functions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import default_config, paper_scale
from repro.core.vcmap import VcMap
from repro.core.weights import (
    estimator_modes,
    get_estimator,
    pick_min_weight,
    route_weight,
)


# ---------------------------------------------------------------------------
# VcMap
# ---------------------------------------------------------------------------


def test_even_partition():
    m = VcMap(2, 8)
    assert m.vcs_of(0) == (0, 1, 2, 3)
    assert m.vcs_of(1) == (4, 5, 6, 7)


def test_spares_go_to_early_classes():
    m = VcMap(3, 8)
    assert m.vcs_of(0) == (0, 1, 2)
    assert m.vcs_of(1) == (3, 4, 5)
    assert m.vcs_of(2) == (6, 7)


def test_exact_fit():
    m = VcMap(8, 8)
    for k in range(8):
        assert m.vcs_of(k) == (k,)


def test_class_of_inverse():
    m = VcMap(3, 8)
    for k in range(3):
        for v in m.vcs_of(k):
            assert m.class_of(v) == k


def test_rejects_too_few_vcs():
    with pytest.raises(ValueError):
        VcMap(4, 3)
    with pytest.raises(ValueError):
        VcMap(0, 3)


@given(classes=st.integers(1, 12), spare=st.integers(0, 12))
def test_property_partition_is_contiguous_ordered_and_total(classes, spare):
    num_vcs = classes + spare
    m = VcMap(classes, num_vcs)
    seen = []
    for k in range(classes):
        group = m.vcs_of(k)
        assert group  # never empty
        assert list(group) == list(range(group[0], group[-1] + 1))  # contiguous
        if seen:
            assert group[0] == seen[-1] + 1  # ordered, no gap
        seen.extend(group)
    assert seen == list(range(num_vcs))  # total


# ---------------------------------------------------------------------------
# Config
# ---------------------------------------------------------------------------


def test_default_config_valid():
    cfg = default_config()
    assert cfg.router.num_vcs == 8  # the paper's VC count
    assert cfg.router.buffer_depth >= 1
    # buffering covers the credit round trip (the paper's sizing rule)
    assert cfg.router.buffer_depth * cfg.router.num_vcs >= cfg.credit_round_trip


def test_paper_scale_latencies():
    cfg = paper_scale()
    assert cfg.network.channel_latency_rr == 50  # 10 m at 5 ns/m
    assert cfg.network.channel_latency_rt == 5  # 1 m
    assert cfg.router.xbar_latency == 50
    assert cfg.router.buffer_depth > cfg.credit_round_trip


def test_config_validation_errors():
    from dataclasses import replace

    cfg = default_config()
    bad = replace(cfg, router=replace(cfg.router, num_vcs=0))
    with pytest.raises(ValueError):
        bad.validated()
    bad = replace(cfg, network=replace(cfg.network, channel_latency_rr=0))
    with pytest.raises(ValueError):
        bad.validated()


def test_config_overrides():
    cfg = default_config(seed=99)
    assert cfg.seed == 99


# ---------------------------------------------------------------------------
# Weights
# ---------------------------------------------------------------------------


def test_estimator_modes_cover_paper_options():
    assert set(estimator_modes()) == {"credit", "queue", "credit_queue"}


def test_estimators():
    # normalized: occupancy / (group width x buffer depth)
    assert get_estimator("credit")(8, 4, 2, 16) == 8 / 32
    assert get_estimator("queue")(8, 4, 2, 16) == 4 / 32
    assert get_estimator("credit_queue")(8, 4, 2, 16) == 12 / 32
    assert get_estimator("credit_queue")(32, 0, 2, 16) == 1.0  # full buffers
    with pytest.raises(ValueError):
        get_estimator("psychic")


def test_route_weight_prefers_short_paths_when_idle():
    # congestion 0 everywhere: 1-hop minimal must beat a 2-hop deroute
    assert route_weight(0.0, 1) < route_weight(0.0, 2)


def test_route_weight_is_congestion_times_hops():
    # the paper's weight function, with the +1 idle-bias per hop
    assert route_weight(3.0, 2) == pytest.approx((3.0 + 1.0) * 2)
    assert route_weight(5.0, 1, bias=0.0) == pytest.approx(5.0)


def test_deroute_wins_only_under_congestion():
    # minimal hop congested by c, deroute idle: deroute (2 hops) wins iff
    # (c+1)*1 > (0+1)*2 i.e. c > 1
    assert route_weight(1.0, 1) <= route_weight(0.0, 2)
    assert route_weight(2.5, 1) > route_weight(0.0, 2)


def test_pick_min_weight_with_tiebreak():
    assert pick_min_weight([3.0, 1.0, 2.0]) == 1
    assert pick_min_weight([1.0, 1.0], tiebreak=[0.9, 0.1]) == 1
    assert pick_min_weight([5.0]) == 0
