"""Tests for the algorithm registry (Tables 1 & 2) and the DAL analysis."""

import pytest

from repro.core.dal_analysis import DalThroughputModel, paper_quoted_points
from repro.core.registry import (
    ALGORITHM_DESCRIPTIONS,
    PAPER_ALGORITHMS,
    algorithm_names,
    make_algorithm,
    table1_rows,
)
from repro.topology.hyperx import HyperX
from repro.traffic.sizes import FixedSize, UniformSize


def test_registry_covers_paper_lineup():
    assert set(PAPER_ALGORITHMS) == {"DOR", "VAL", "UGAL", "UGAL+", "DimWAR",
                                     "OmniWAR"}
    for name in PAPER_ALGORITHMS:
        assert name in algorithm_names()
        assert name in ALGORITHM_DESCRIPTIONS


def test_make_algorithm_unknown():
    topo = HyperX((3, 3), 1)
    with pytest.raises(ValueError):
        make_algorithm("WARP-10", topo)
    with pytest.raises(ValueError):
        make_algorithm("DOR", topo, deroutes=2)  # DOR takes no kwargs


def test_make_algorithm_names_match():
    topo = HyperX((3, 3, 3), 1)
    for name in PAPER_ALGORITHMS:
        algo = make_algorithm(name, topo)
        assert algo.name == name


def test_table1_reproduces_paper_rows():
    rows = {r["name"]: r for r in table1_rows(num_dims=3)}
    assert set(rows) == {"UGAL", "Clos-AD", "DAL", "DimWAR", "OmniWAR"}
    # the paper's Table 1 facts
    assert rows["UGAL"]["routing_style"] == "source"
    assert rows["UGAL"]["vcs_required"] == 2
    assert rows["UGAL"]["packet_contents"] == "int. addr."
    assert rows["Clos-AD"]["architecture_requirements"] == "seq. alloc."
    assert rows["DAL"]["vcs_required"] == "1+1e"
    assert rows["DAL"]["deadlock_handling"] == "escape paths"
    assert rows["DimWAR"]["routing_style"] == "incremental"
    assert rows["DimWAR"]["vcs_required"] == 2  # regardless of dimensions
    assert rows["DimWAR"]["packet_contents"] == "none"
    assert rows["OmniWAR"]["vcs_required"] == 6  # N + M with N = M = 3
    assert rows["OmniWAR"]["packet_contents"] == "none"
    assert rows["OmniWAR"]["dimension_ordered"] is False


def test_dimwar_vcs_independent_of_dims():
    for dims in (1, 2, 3, 4):
        rows = {r["name"]: r for r in table1_rows(num_dims=dims)}
        assert rows["DimWAR"]["vcs_required"] == 2


# ---------------------------------------------------------------------------
# DAL
# ---------------------------------------------------------------------------


def test_dal_paper_quoted_caps():
    """Section 4.2: 'the maximum achievable throughput is 8% for single flit
    packets and 68% for randomly sized packets between 1 and 16 flits'."""
    pts = paper_quoted_points()
    assert pts["single_flit"] == pytest.approx(0.08)
    assert pts["uniform_1_16"] == pytest.approx(0.68)


def test_dal_formula():
    m = DalThroughputModel(num_vcs=8, credit_round_trip=100)
    assert m.max_throughput(1) == pytest.approx(8 * 1 / 100)
    assert m.max_throughput_dist(FixedSize(1)) == m.max_throughput(1)
    assert m.max_throughput_dist(UniformSize(1, 16)) == pytest.approx(0.68)


def test_dal_cap_saturates_at_one():
    m = DalThroughputModel(num_vcs=8, credit_round_trip=10)
    assert m.max_throughput(100) == 1.0


def test_dal_rejects_bad_size():
    with pytest.raises(ValueError):
        DalThroughputModel().max_throughput(0)


def test_dal_longer_round_trip_hurts():
    a = DalThroughputModel(credit_round_trip=50).max_throughput(4)
    b = DalThroughputModel(credit_round_trip=200).max_throughput(4)
    assert a > b
