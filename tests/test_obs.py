"""Tests for repro.obs: tracer, ring buffer, time series, exporters, profiler.

Covers the observation layer end to end — event model and sampling,
attach/detach hygiene on every hook seam (the bound-method identity
pitfall), the exporters' round trips, phase profiling, and the driver
plumbing (``measure_point`` / ``run_fault_transient`` / ``PointSpec``) —
plus the cross-checks proving trace-derived statistics reconstruct
``repro.network.stats`` exactly.
"""

import dataclasses
import json
import math
import pickle

import pytest

from repro.analysis.sweep import measure_point
from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.network.stats import PacketStats
from repro.obs import (
    EVENT_TYPES,
    EventRing,
    PhaseProfiler,
    TimeSeriesSampler,
    TraceEvent,
    TraceOptions,
    Tracer,
    chrome_trace,
    events_jsonl,
    occupancy_heatmap,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.topology.hyperx import HyperX
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import UniformRandom


def _sim(widths=(2, 2), tpr=1, algo="DimWAR", rate=0.2, seed=3):
    topo = HyperX(widths, tpr)
    net = Network(topo, make_algorithm(algo, topo), default_config())
    sim = Simulator(net)
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), rate, seed=seed)
    sim.processes.append(traffic)
    return topo, net, sim, traffic


def _traced_run(options=None, cycles=300, drain=True, **kwargs):
    topo, net, sim, traffic = _sim(**kwargs)
    tracer = Tracer(sim, options).attach()
    sim.run(cycles)
    if drain:
        traffic.stop()
        sim.drain(max_cycles=100_000)
    tracer.detach()
    return topo, net, sim, tracer


# ---------------------------------------------------------------------------
# Options and ring buffer
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"sample_every": 0},
        {"capacity": 0},
        {"start": -1},
        {"start": 10, "end": 10},
        {"end": 0},
        {"window": -1},
    ],
)
def test_trace_options_validation(kwargs):
    with pytest.raises(ValueError):
        TraceOptions(**kwargs)


def test_trace_options_picklable_and_frozen():
    opt = TraceOptions(sample_every=2, window=50)
    assert pickle.loads(pickle.dumps(opt)) == opt
    with pytest.raises(dataclasses.FrozenInstanceError):
        opt.sample_every = 3


def test_event_ring_drops_oldest():
    ring = EventRing(3)
    for i in range(5):
        ring.append(TraceEvent(i, "inject", i, 0, {}))
    assert len(ring) == 3
    assert ring.recorded == 5 and ring.dropped == 2
    assert [ev.cycle for ev in ring.events()] == [2, 3, 4]
    ring.clear()
    assert len(ring) == 0 and ring.recorded == 5  # counters survive clear


def test_event_ring_counts_cover_all_types():
    ring = EventRing(8)
    ring.append(TraceEvent(0, "inject", 0, 0, {}))
    ring.append(TraceEvent(1, "route", 0, 0, {}))
    counts = ring.counts()
    assert set(counts) == set(EVENT_TYPES)
    assert counts["inject"] == 1 and counts["eject"] == 0
    assert ring.by_packet() == {0: ring.events()}


def test_tracer_honors_ring_capacity():
    _, _, _, tracer = _traced_run(TraceOptions(capacity=16), cycles=300)
    assert len(tracer.ring) == 16
    assert tracer.ring.dropped > 0
    assert tracer.ring.recorded == len(tracer.ring) + tracer.ring.dropped


# ---------------------------------------------------------------------------
# Attach/detach hygiene (satellite: the bound-method identity pitfall)
# ---------------------------------------------------------------------------


def test_attach_detach_attach_leaves_zero_residue():
    topo, net, sim, traffic = _sim()
    sinks_before = [rec.data._sink for rec in net.links if rec.kind == "rr"]
    tracer = Tracer(sim)
    for _ in range(2):  # attach -> detach twice; second round must be clean
        tracer.attach()
        sim.run(100)
        tracer.detach()
        for r in net.routers:
            assert r._route_hook is None and r._route_hooks == []
            assert r._forward_hook is None and r._forward_hooks == []
        for t in net.terminals:
            assert t.inject_listeners == [] and t.delivery_listeners == []
        sinks_after = [rec.data._sink for rec in net.links if rec.kind == "rr"]
        assert sinks_after == sinks_before  # originals restored by identity
    assert len(tracer.events()) > 0


def test_double_attach_rejected_and_detach_idempotent():
    _, _, sim, _ = _sim()
    tracer = Tracer(sim).attach()
    with pytest.raises(RuntimeError):
        tracer.attach()
    tracer.detach()
    tracer.detach()  # no-op, no error
    assert not tracer.attached


def test_duplicate_hook_registration_rejected():
    _, net, _, _ = _sim()
    r = net.routers[0]
    hook = lambda *a: None
    r.add_route_hook(hook)
    with pytest.raises(ValueError):
        r.add_route_hook(hook)
    r.remove_route_hook(hook)
    assert r._route_hook is None
    r.add_forward_hook(hook)
    with pytest.raises(ValueError):
        r.add_forward_hook(hook)
    r.remove_forward_hook(hook)
    assert r._forward_hook is None


def test_tracer_coexists_with_sanitizer():
    """Hook fan-out: the sanitizer and the tracer share the route seam."""
    from repro.check.sanitizer import Sanitizer

    topo, net, sim, traffic = _sim()
    sanitizer = Sanitizer(sim).attach()
    tracer = Tracer(sim).attach()
    sim.run(200)
    tracer.detach()
    # The sanitizer's hook must survive the tracer's detach untouched.
    assert all(r._route_hook is not None for r in net.routers)
    sim.run(50)
    sanitizer.final_check()
    sanitizer.detach()
    assert all(r._route_hook is None for r in net.routers)
    assert tracer.ring.counts()["route"] > 0


def test_sampler_attach_detach_residue_free():
    _, net, sim, _ = _sim()
    sampler = TimeSeriesSampler(sim, window=50).attach()
    with pytest.raises(RuntimeError):
        sampler.attach()
    sim.run(120)
    sampler.finalize(sim.cycle)
    sampler.detach()
    sampler.detach()  # idempotent
    assert all(t.delivery_listeners == [] for t in net.terminals)
    assert len(sampler.samples) == 3  # two full windows + one partial


# ---------------------------------------------------------------------------
# Sampling and cycle windows
# ---------------------------------------------------------------------------


def test_sample_every_thins_packets():
    _, _, _, full = _traced_run(TraceOptions(sample_every=1), cycles=300)
    _, _, _, third = _traced_run(TraceOptions(sample_every=3), cycles=300)
    n = full.packets_sampled
    assert n > 10
    assert third.packets_sampled == math.ceil(n / 3)
    # Sampled tids are dense 0..k-1 and every event belongs to one.
    tids = {ev.pkt for ev in third.events()}
    assert tids <= set(range(third.packets_sampled))


def test_cycle_window_filters_events_but_not_ids():
    _, _, _, full = _traced_run(TraceOptions(), cycles=300)
    _, _, _, windowed = _traced_run(TraceOptions(start=100, end=200), cycles=300)
    assert all(100 <= ev.cycle < 200 for ev in windowed.events())
    # Trace-local ids are window-independent: the same packet gets the same
    # tid, so windowed inject events are a subset of the full stream's.
    full_injects = {
        ev.pkt: ev.to_dict() for ev in full.events() if ev.type == "inject"
    }
    for ev in windowed.events():
        if ev.type == "inject":
            assert full_injects[ev.pkt] == ev.to_dict()
    assert windowed.packets_sampled == full.packets_sampled


# ---------------------------------------------------------------------------
# Cross-checks: trace-derived stats == repro.network.stats
# ---------------------------------------------------------------------------


def test_trace_reconstructs_packet_stats_exactly():
    """At sample_every=1 with no drops, the multiset of per-packet
    (create, latency, hops, deroutes) from eject events equals what
    PacketStats collected through its own delivery listener."""
    topo, net, sim, traffic = _sim(widths=(3, 3), algo="OmniWAR", rate=0.3)
    stats = PacketStats()
    for t in net.terminals:
        t.delivery_listeners.append(stats.on_delivery)
    tracer = Tracer(sim).attach()
    sim.run(400)
    traffic.stop()
    sim.drain(max_cycles=100_000)
    tracer.detach()
    assert tracer.ring.dropped == 0
    ejects = [ev for ev in tracer.events() if ev.type == "eject"]
    assert len(ejects) == stats.packets_delivered > 0
    from_trace = sorted(
        (e.data["create"], e.data["latency"], e.data["hops"], e.data["deroutes"])
        for e in ejects
    )
    from_stats = sorted(
        (s.create_cycle, s.latency, s.hops, s.deroutes) for s in stats.samples
    )
    assert from_trace == from_stats
    assert sum(e.data["size"] for e in ejects) == stats.flits_delivered


def test_timeseries_reconstructs_network_totals():
    topo, net, sim, traffic = _sim(widths=(3, 3), rate=0.3)
    stats = PacketStats()
    for t in net.terminals:
        t.delivery_listeners.append(stats.on_delivery)
    sampler = TimeSeriesSampler(sim, window=100).attach()
    sim.run(450)
    sampler.finalize(sim.cycle)
    sampler.detach()
    assert [s.span for s in sampler.samples] == [100, 100, 100, 100, 50]
    assert sum(s.accepted_flits for s in sampler.samples) == net.total_ejected_flits()
    assert sum(s.injected_flits for s in sampler.samples) == net.total_injected_flits()
    assert sum(s.packets_delivered for s in sampler.samples) == stats.packets_delivered
    # Window latencies aggregate the same deliveries PacketStats saw.
    delivered = sum(s.packets_delivered for s in sampler.samples)
    assert delivered == len(stats.samples)


def test_trace_route_events_match_packet_hops():
    _, _, _, tracer = _traced_run(cycles=300)
    by_packet = tracer.ring.by_packet()
    checked = 0
    for tid, evs in by_packet.items():
        if evs[0].type != "inject" or evs[-1].type != "eject":
            continue  # packet clipped by the run end
        routes = [e for e in evs if e.type == "route"]
        eject = evs[-1]
        assert len(routes) == eject.data["hops"]
        assert sum(e.data["deroute"] for e in routes) == eject.data["deroutes"]
        assert eject.cycle - evs[0].data["create"] == eject.data["latency"]
        checked += 1
    assert checked > 5


def test_route_events_carry_scored_candidates():
    _, _, _, tracer = _traced_run(algo="OmniWAR", widths=(3, 3), cycles=300)
    routes = [ev for ev in tracer.events() if ev.type == "route"]
    assert routes
    for ev in routes:
        cands = ev.data["cands"]
        assert cands, "route event with no candidates"
        chosen = [c for c in cands if c[0] == ev.data["out_port"]]
        assert chosen, "chosen port missing from candidate list"
        for out_port, vc_class, hops, deroute, weight in cands:
            assert deroute in (0, 1)
            assert weight is None or weight > 0


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def test_jsonl_round_trip(tmp_path):
    _, _, _, tracer = _traced_run(cycles=200)
    events = tracer.events()
    path = write_jsonl(events, str(tmp_path / "t.jsonl"))
    assert read_jsonl(path) == events  # TraceEvent.__eq__ is dict equality
    assert events_jsonl([]) == ""
    text = events_jsonl(events)
    assert text.endswith("\n") and len(text.splitlines()) == len(events)


def test_chrome_trace_structure():
    topo, net, sim, traffic = _sim(rate=0.3)
    tracer = Tracer(sim).attach()
    sampler = TimeSeriesSampler(sim, window=100).attach()
    sim.run(300)
    traffic.stop()
    sim.drain(max_cycles=100_000)
    sampler.finalize(sim.cycle)
    sampler.detach()
    tracer.detach()
    doc = chrome_trace(tracer.events(), sampler.samples)
    assert doc["displayTimeUnit"] == "ms"
    te = doc["traceEvents"]
    phases = {e["ph"] for e in te}
    assert {"M", "X", "i", "C"} <= phases
    slices = [e for e in te if e["ph"] == "X"]
    injects = [ev for ev in tracer.events() if ev.type == "inject"]
    assert len(slices) == len(injects)
    for s in slices:
        assert s["dur"] >= 1 and s["pid"] == 1
    counters = [e for e in te if e["ph"] == "C"]
    assert len(counters) == 2 * len(sampler.samples)
    json.dumps(doc)  # must be serializable as-is


def test_write_chrome_trace_is_valid_json(tmp_path):
    _, _, _, tracer = _traced_run(cycles=200)
    path = write_chrome_trace(tracer.events(), str(tmp_path / "t.chrome.json"))
    with open(path) as f:
        doc = json.load(f)
    assert "traceEvents" in doc


def test_occupancy_heatmap_modes():
    topo, net, sim, _ = _sim(rate=0.4)
    sampler = TimeSeriesSampler(sim, window=50).attach()
    sim.run(300)
    sampler.finalize(sim.cycle)
    sampler.detach()
    router_map = occupancy_heatmap(sampler.samples, mode="router")
    assert "r0" in router_map and str(sampler.samples[0].start) in router_map
    vc_map = occupancy_heatmap(sampler.samples, mode="vc")
    assert "vc0" in vc_map
    with pytest.raises(ValueError):
        occupancy_heatmap(sampler.samples, mode="link")
    with pytest.raises(ValueError):
        occupancy_heatmap([], mode="router")


def test_ascii_heatmap_validation():
    from repro.analysis.ascii_plot import ascii_heatmap

    with pytest.raises(ValueError):
        ascii_heatmap([])
    with pytest.raises(ValueError):
        ascii_heatmap([[1, 2]], row_labels=["a", "b"])
    out = ascii_heatmap([[0, 1], [2, 3]], row_labels=["a", "b"], title="t")
    assert "t" in out and "a" in out


# ---------------------------------------------------------------------------
# Phase profiler
# ---------------------------------------------------------------------------


def test_phase_profiler_accounts_and_unwraps():
    topo, net, sim, traffic = _sim(rate=0.3)
    prof = PhaseProfiler(sim)
    prof.run(300)
    assert prof.cycles_profiled == 300 and sim.cycle == 300
    rep = prof.report()
    assert set(rep) == set(PhaseProfiler.PHASES)
    assert all(v >= 0.0 for v in rep.values())
    assert abs(sum(rep.values()) - prof.total_s) < 1e-9
    assert rep["route"] > 0.0  # a loaded run must compute routes
    # Shadowed bound methods are gone: no instance attrs remain.
    for r in net.routers:
        for name in ("_compute_route", "_allocate_vc", "_step_outputs"):
            assert name not in r.__dict__
    assert "total" in prof.format_report()


def test_phase_profiler_preserves_simulation_results():
    _, net_a, sim_a, tr_a = _sim(rate=0.3, seed=5)
    sim_a.run(400)
    _, net_b, sim_b, tr_b = _sim(rate=0.3, seed=5)
    PhaseProfiler(sim_b).run(400)
    assert net_a.total_ejected_flits() == net_b.total_ejected_flits()
    assert net_a.total_injected_flits() == net_b.total_injected_flits()
    assert tr_a.packets_generated == tr_b.packets_generated


# ---------------------------------------------------------------------------
# Driver plumbing
# ---------------------------------------------------------------------------


def _point_kwargs(trace=None):
    topo = HyperX((2, 2), 1)
    algo = make_algorithm("DimWAR", topo)
    patt = UniformRandom(topo.num_terminals)
    return dict(
        topology=topo, algorithm=algo, pattern=patt, rate=0.15,
        total_cycles=600, seed=2, trace=trace,
    )


def test_measure_point_trace_export(tmp_path):
    out = str(tmp_path / "traces")
    trace = TraceOptions(window=100, out_dir=out, chrome=True)
    traced = measure_point(**_point_kwargs(trace))
    plain = measure_point(**_point_kwargs())
    a, b = dataclasses.asdict(traced), dataclasses.asdict(plain)
    a.pop("wall_clock_s"), b.pop("wall_clock_s")
    assert a == b  # tracing never changes the measurement
    stem = "trace_DimWAR_UR_r0.1500"
    jsonl = tmp_path / "traces" / f"{stem}.jsonl"
    chrome = tmp_path / "traces" / f"{stem}.chrome.json"
    assert jsonl.exists() and chrome.exists()
    assert read_jsonl(str(jsonl))  # parseable, non-empty


def test_point_spec_carries_trace_and_pickles(tmp_path):
    from repro.analysis.parallel import PointSpec, run_point

    trace = TraceOptions(sample_every=2, window=200, out_dir=str(tmp_path))
    spec = PointSpec(
        widths=(2, 2), terminals_per_router=1, algorithm="DOR",
        pattern="UR", rate=0.1, total_cycles=400, seed=1, trace=trace,
    )
    clone = pickle.loads(pickle.dumps(spec))
    assert clone.trace == trace
    result = run_point(clone)
    assert result.packets_delivered > 0
    assert (tmp_path / "trace_DOR_UR_r0.1000.jsonl").exists()


def test_fault_transient_trace_export(tmp_path):
    from repro.experiments.faults import run_fault_transient

    res = run_fault_transient(
        "DimWAR", scale="smoke", rate=0.1, window=60,
        pre_windows=2, post_windows=2, fail_links=1,
        trace=TraceOptions(window=60, out_dir=str(tmp_path)),
    )
    assert res.delivered_packets > 0
    files = sorted(p.name for p in tmp_path.iterdir())
    assert files == ["trace_fault_DimWAR_smoke.jsonl"]


def test_trace_on_off_oracle_small():
    from repro.check.oracle import diff_trace_on_off

    report = diff_trace_on_off(widths=(2, 2), rates=(0.1,), total_cycles=400)
    assert report.ok, report.detail
