"""Tests for phased traffic and the transient-response experiment."""

import pytest

from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.experiments.transient import TransientSeries, run_transient
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.topology.hyperx import HyperX
from repro.traffic.patterns import BitComplement, UniformRandom
from repro.traffic.switching import PhasedTraffic


def _net():
    topo = HyperX((3, 3), 2)
    net = Network(topo, make_algorithm("DimWAR", topo), default_config())
    return topo, net


def test_phased_traffic_switches_pattern():
    topo, net = _net()
    ur = UniformRandom(topo.num_terminals)
    bc = BitComplement(topo.num_terminals)
    tr = PhasedTraffic(net, [(0, ur), (100, bc)], rate=0.3, seed=1)
    assert tr.current_pattern(0) is ur
    assert tr.current_pattern(99) is ur
    assert tr.current_pattern(100) is bc
    assert tr.current_pattern(5000) is bc


def test_phased_traffic_generates_bc_after_switch():
    topo, net = _net()
    sim = Simulator(net)
    bc = BitComplement(topo.num_terminals)
    tr = PhasedTraffic(
        net, [(0, UniformRandom(topo.num_terminals)), (200, bc)],
        rate=0.5, seed=2,
    )
    sim.processes.append(tr)
    delivered = []
    for t in net.terminals:
        t.delivery_listeners.append(lambda p, c: delivered.append(p))
    sim.run(600)
    tr.stop()
    sim.drain(max_cycles=50_000)
    late = [p for p in delivered if p.create_cycle >= 250]
    assert late
    n = topo.num_terminals
    assert all(p.dst_terminal == n - 1 - p.src_terminal for p in late)


def test_phased_traffic_validation():
    topo, net = _net()
    ur = UniformRandom(topo.num_terminals)
    with pytest.raises(ValueError):
        PhasedTraffic(net, [], rate=0.3)
    with pytest.raises(ValueError):
        PhasedTraffic(net, [(10, ur)], rate=0.3)  # must start at 0
    with pytest.raises(ValueError):
        PhasedTraffic(net, [(0, ur), (0, ur)], rate=0.3)  # not increasing
    with pytest.raises(ValueError):
        PhasedTraffic(net, [(0, ur)], rate=1.5)
    with pytest.raises(ValueError):
        PhasedTraffic(net, [(0, UniformRandom(4))], rate=0.3)  # wrong size


def test_transient_series_settling():
    s = TransientSeries(algorithm="X", window=100, switch_cycle=300)
    s.windows = [
        (0, 40.0, 0.0, 50),
        (100, 40.0, 0.0, 50),
        (200, 40.0, 0.0, 50),
        (300, 200.0, 0.5, 50),  # switch: spike
        (400, 90.0, 0.4, 50),
        (500, 60.0, 0.4, 50),
        (600, 58.0, 0.4, 50),
    ]
    # 90 > 1.3 x 58, so the run settles at the 500-window
    assert s.settling_window() == 500
    assert s.settling_time() == 200
    assert s.pre_switch_deroutes() == pytest.approx(0.0)
    assert s.post_switch_deroutes() == pytest.approx(0.425)


def test_transient_series_never_settles():
    s = TransientSeries(algorithm="X", window=100, switch_cycle=100)
    s.windows = [(0, 40.0, 0.0, 50), (100, 100.0, 0.1, 50)]
    assert s.settling_window() is None


def test_run_transient_end_to_end():
    series = run_transient(
        "DimWAR", scale="smoke", rate=0.25, window=200,
        pre_windows=3, post_windows=4, seed=1,
    )
    assert len(series.windows) == 7
    assert series.switch_cycle == 600
    # deroutes ramp once the adversarial phase begins
    assert series.post_switch_deroutes() > series.pre_switch_deroutes()
