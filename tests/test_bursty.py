"""Tests for the bursty (on/off Markov) injection process."""

import numpy as np
import pytest

from repro.config import default_config
from repro.core.registry import make_algorithm
from repro.network.network import Network
from repro.network.simulator import Simulator
from repro.topology.hyperx import HyperX
from repro.traffic.injection import BurstyTraffic
from repro.traffic.patterns import UniformRandom


def _net(widths=(4, 4), tpr=2):
    topo = HyperX(widths, tpr)
    net = Network(topo, make_algorithm("DimWAR", topo), default_config())
    return topo, net


def test_long_run_offered_load_matches_rate():
    topo, net = _net()
    sim = Simulator(net)
    tr = BurstyTraffic(
        net, UniformRandom(topo.num_terminals), rate=0.15,
        duty_cycle=0.25, burst_length=32, seed=7,
    )
    sim.processes.append(tr)
    cycles = 20_000
    sim.run(cycles)
    offered = tr.flits_generated / (cycles * topo.num_terminals)
    assert offered == pytest.approx(0.15, rel=0.15)


def test_duty_cycle_stationary():
    topo, net = _net()
    tr = BurstyTraffic(
        net, UniformRandom(topo.num_terminals), rate=0.1,
        duty_cycle=0.3, burst_length=16, seed=3,
    )
    samples = []
    for cycle in range(8000):
        tr(cycle)
        if cycle % 10 == 0:
            samples.append(tr.fraction_on)
    # drain the source queues so the test network object can be dropped
    assert np.mean(samples) == pytest.approx(0.3, abs=0.06)


def test_bursts_are_bursty():
    """Per-terminal injections cluster: the variance of per-window packet
    counts must exceed a Bernoulli process of the same mean."""
    from repro.traffic.injection import SyntheticTraffic

    topo, net = _net()
    window = 64

    def window_counts(tr_cls, **kw):
        t2, n2 = _net()
        tr = tr_cls(n2, UniformRandom(t2.num_terminals), rate=0.2, seed=5, **kw)
        counts = []
        c = 0
        for w in range(60):
            before = tr.packets_generated
            for _ in range(window):
                tr(c)
                c += 1
            counts.append(tr.packets_generated - before)
        return np.var(counts)

    var_bursty = window_counts(BurstyTraffic, duty_cycle=0.2, burst_length=128)
    var_bernoulli = window_counts(SyntheticTraffic)
    assert var_bursty > 2 * var_bernoulli


def test_everything_still_delivered():
    topo, net = _net()
    sim = Simulator(net)
    tr = BurstyTraffic(
        net, UniformRandom(topo.num_terminals), rate=0.25,
        duty_cycle=0.5, burst_length=32, seed=2,
    )
    sim.processes.append(tr)
    sim.run(2000)
    tr.stop()
    assert sim.drain(max_cycles=100_000)
    assert net.total_ejected_flits() == tr.flits_generated


def test_validation():
    topo, net = _net()
    ur = UniformRandom(topo.num_terminals)
    with pytest.raises(ValueError):
        BurstyTraffic(net, ur, rate=1.5)
    with pytest.raises(ValueError):
        BurstyTraffic(net, ur, rate=0.2, duty_cycle=0.0)
    with pytest.raises(ValueError):
        BurstyTraffic(net, ur, rate=0.2, burst_length=0.5)
    with pytest.raises(ValueError):
        # on-state rate would exceed channel capacity
        BurstyTraffic(net, ur, rate=0.6, duty_cycle=0.25)
    with pytest.raises(ValueError):
        BurstyTraffic(net, UniformRandom(4), rate=0.2)
