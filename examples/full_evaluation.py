#!/usr/bin/env python3
"""Regenerate the paper's complete evaluation at a chosen scale.

Runs every figure/table driver in sequence and writes the rendered tables
(and raw sweep JSON) to an output directory.  This is the one-command
"reproduce the paper" entry point; the pytest benchmarks do the same work
piecewise with shape assertions.

Run:  python examples/full_evaluation.py [smoke|small|paper] [outdir]

Smoke scale finishes in tens of minutes; small in hours; paper is the
4,096-node full-fidelity configuration (budget days of CPU).
"""

import os
import sys
import time

from repro.experiments import (
    fig1_paths,
    fig2_scalability,
    fig3_cost,
    fig4_topologies,
    fig5_vcusage,
    fig6_synthetic,
    fig7_model,
    fig8_stencil,
    irregular,
    table1_comparison,
    table_area,
    transient,
)

scale = sys.argv[1] if len(sys.argv) > 1 else "smoke"
outdir = sys.argv[2] if len(sys.argv) > 2 else f"evaluation_{scale}"
os.makedirs(outdir, exist_ok=True)


def save(name: str, text: str) -> None:
    path = os.path.join(outdir, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print(f"[{time.strftime('%H:%M:%S')}] wrote {path}")


print(f"scale={scale}, output -> {outdir}/")
t0 = time.time()

save("table1", table1_comparison.render(table1_comparison.run()))
save("fig2_scalability", fig2_scalability.render(fig2_scalability.run()))
save("fig3_cost", fig3_cost.render(fig3_cost.run()))
save("fig7_model", fig7_model.run())
save("table_area", table_area.render(table_area.run()))
save("fig1_paths", fig1_paths.render(fig1_paths.run()))
save("fig5_vcusage", fig5_vcusage.render(fig5_vcusage.run()))
save("fig4_topologies", fig4_topologies.render(fig4_topologies.run(scale)))
save("fig8_stencil", fig8_stencil.render(fig8_stencil.run(scale=scale)))
save("transient", transient.render(transient.run(scale=scale)))
save("irregular", irregular.render(irregular.run(scale=scale)))

# Figure 6: the big one — per-pattern sweeps plus the 6g chart, with the
# raw measured curves archived as JSON next to the rendered tables.
result = fig6_synthetic.run_throughput_chart(scale=scale)
for pattern in fig6_synthetic.PAPER_PATTERNS:
    save(
        f"fig6_{pattern}",
        fig6_synthetic.render_load_latency(result, pattern),
    )
for (pattern, algo), sweep in result.sweeps.items():
    sweep.save(os.path.join(outdir, f"fig6_{pattern}_{algo}.json"))
save("fig6g_throughput", fig6_synthetic.render_throughput_chart(result))

print(f"done in {(time.time() - t0) / 60:.1f} minutes")
