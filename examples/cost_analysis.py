#!/usr/bin/env python3
"""Topology scalability and cabling-cost analysis (Figures 2 and 3).

Purely analytical — no simulation — so it runs in milliseconds at the
paper's full scale, including the quoted 64-port HyperX data points.

Run:  python examples/cost_analysis.py
"""

from repro.experiments import fig2_scalability, fig3_cost
from repro.topology.scalability import hyperx_max_nodes

print(fig2_scalability.render(fig2_scalability.run(radices=[32, 48, 64, 96])))

print("\nPaper's quoted 64-port HyperX maxima:")
for dims, expected in ((2, 10_648), (3, 78_608), (4, 463_736)):
    nodes, widths, t = hyperx_max_nodes(64, dims)
    flag = "OK" if nodes == expected else "MISMATCH"
    print(f"  {dims}D: {nodes:,} nodes (widths={widths}, T={t}) "
          f"— paper says {expected:,} [{flag}]")

print()
print(fig3_cost.render(fig3_cost.run(target_sizes=[4096, 65536, 262144])))
print("\nExpected shape: DF/HX < 1 (Dragonfly cheaper) with copper+AOC at "
      "modern signaling rates; DF/HX >= ~1 (HyperX lower or equal) with "
      "passive optical cables.")
