#!/usr/bin/env python3
"""Quickstart: simulate DimWAR on a small HyperX and print the measurement.

This is the expanded form of ``repro.quick_simulation``: build a topology,
instantiate a routing algorithm, wire the network, attach synthetic traffic,
and measure one load point the way the paper's methodology does (warmup,
mid-window latency sampling, saturation detection).

Run:  python examples/quickstart.py
"""

from repro import HyperX, default_config, make_algorithm
from repro.analysis import measure_point
from repro.traffic import UniformRandom, UniformSize

# 1. A 2-D HyperX: 4x4 routers, 4 terminals each (64 nodes, radix-10 routers).
topology = HyperX(widths=(4, 4), terminals_per_router=4)

# 2. The paper's light-weight incremental algorithm (2 VCs, Section 5.1).
algorithm = make_algorithm("DimWAR", topology)

# 3. Uniform-random traffic, packets 1..16 flits (the paper's size mix),
#    offered at 30% of terminal-channel capacity.
pattern = UniformRandom(topology.num_terminals)

result = measure_point(
    topology,
    algorithm,
    pattern,
    rate=0.30,
    total_cycles=4000,
    cfg=default_config(),
    size_dist=UniformSize(1, 16),
    seed=42,
)

print(f"topology        : HyperX {topology.widths}, T={topology.terminals_per_router}")
print(f"algorithm       : {algorithm.name} ({algorithm.num_classes} resource classes)")
print(f"offered load    : {result.offered_rate:.2f} flits/cycle/terminal")
print(f"accepted        : {result.accepted_rate:.3f}")
print(f"mean latency    : {result.mean_latency:.1f} cycles (p99 {result.p99_latency:.0f})")
print(f"mean hops       : {result.mean_hops:.2f}")
print(f"mean deroutes   : {result.mean_deroutes:.3f}")
print(f"verdict         : {'stable' if result.stable else 'SATURATED'} ({result.reason})")
