#!/usr/bin/env python3
"""Link-utilization telemetry: watch the DCR funnel form and dissolve.

Runs the paper's worst-case admissible pattern (DCR) on a 3-D HyperX twice
— once under DOR, once under OmniWAR — and prints per-dimension utilization
and the hottest links.  Under DOR, a whole X-line funnels through single
Y-channels (the paper's 64:1 oversubscription argument, w*T:1 here); under
OmniWAR the deroutes spread the same traffic across the dimension.

Run:  python examples/telemetry_heatmap.py
"""

from repro import HyperX, default_config, make_algorithm
from repro.analysis import format_table
from repro.network import Network, Simulator, TelemetryProbe
from repro.traffic import DimensionComplementReverse, SyntheticTraffic

topology = HyperX((3, 3, 3), 2)
pattern = DimensionComplementReverse(topology)
rate = 0.15

rows = []
for name in ("DOR", "OmniWAR"):
    net = Network(topology, make_algorithm(name, topology), default_config())
    sim = Simulator(net)
    probe = TelemetryProbe(net)
    traffic = SyntheticTraffic(net, pattern, rate, seed=7)
    sim.processes.append(traffic)
    sim.run(500)  # warm up
    probe.start_window(sim.cycle)
    sim.run(1500)
    dims = probe.dimension_utilization(sim.cycle)
    summary = probe.utilization_summary(sim.cycle)
    rows.append([
        name,
        " ".join(f"d{d}={u:.2f}" for d, u in dims.items()),
        f"{summary['max']:.2f}",
        f"{probe.oversubscription_ratio(sim.cycle):.1f}x",
    ])
    print(f"\n{name}: hottest links after {sim.cycle} cycles of DCR @ {rate}")
    for s in probe.hottest_links(sim.cycle, n=4):
        d = topology.port_dim(s.src_router, s.src_port)
        print(
            f"  router {topology.coords(s.src_router)} dim {d}: "
            f"{s.flits} flits ({s.utilization:.2f} utilization)"
        )

print()
print(format_table(
    ["algorithm", "per-dimension utilization", "max link", "max/mean load"],
    rows,
    title=f"DCR @ {rate} on HyperX {topology.widths}: funnel vs spread",
))
print("\nExpected: DOR shows a far higher max/mean ratio (the funnel);"
      "\nOmniWAR spreads load, so its hottest link is much cooler.")
