#!/usr/bin/env python3
"""Load-latency sweep on adversarial traffic (a Figure 6-style experiment).

Sweeps offered load on the URBy pattern — bit-complement in the *second*
dimension, uniform elsewhere — the paper's key experiment showing that
source-adaptive routing is blind to congestion it cannot see at the source
router, while incremental routing (DimWAR) slides around it.

Run:  python examples/synthetic_sweep.py            # quick (2-D network)
      python examples/synthetic_sweep.py --3d       # the full 3-D scenario
"""

import sys

from repro import HyperX, default_config, make_algorithm
from repro.analysis import format_table, plot_sweeps, sweep_load
from repro.traffic import UniformRandomBisection

three_d = "--3d" in sys.argv

if three_d:
    topology = HyperX((4, 4, 4), 4)  # 256 nodes
    rates = [0.10, 0.20, 0.30, 0.40, 0.50]
    cycles = 4000
else:
    topology = HyperX((4, 4), 2)  # 32 nodes
    rates = [0.10, 0.20, 0.30, 0.40, 0.50, 0.60]
    cycles = 3000

pattern = UniformRandomBisection(topology, dim=1)  # URBy
print(f"pattern {pattern.name} on HyperX {topology.widths} "
      f"(DOR capacity = 1/{topology.widths[1]} = "
      f"{1 / topology.widths[1]:.3f} flits/cycle/terminal)\n")

rows = []
sweeps = {}
for name in ("DOR", "UGAL", "DimWAR", "OmniWAR"):
    algorithm = make_algorithm(name, topology)
    sweep = sweep_load(
        topology, algorithm, pattern, rates,
        total_cycles=cycles, cfg=default_config(), seed=7,
    )
    sweeps[name] = sweep
    for p in sweep.points:
        rows.append([
            name,
            f"{p.offered_rate:.2f}",
            f"{p.accepted_rate:.3f}",
            f"{p.mean_latency:.1f}" if p.stable else "saturated",
        ])
    rows.append([name, "-> max stable", f"{sweep.saturation_rate:.3f}", ""])

print(format_table(["algorithm", "offered", "accepted", "mean latency"], rows))
print()
print(plot_sweeps(sweeps))
print("\nExpected shape: DOR saturates at the 1/w cap; DimWAR/OmniWAR reach "
      "far higher loads at flat latency; source-adaptive UGAL degrades "
      "earlier/with much higher latency because the Y-dimension congestion "
      "is not visible at the source router.")
