#!/usr/bin/env python3
"""Record a stencil workload once, replay it under every routing algorithm.

Production message traces are proprietary; the paper drives its application
model from a traffic matrix instead.  This example shows the equivalent
pipeline our library provides: capture every message of a stencil run into
a trace file, then replay that identical timed workload under each routing
algorithm and compare completion times.

Run:  python examples/trace_replay.py
"""

import os
import tempfile

from repro import HyperX, default_config, make_algorithm
from repro.analysis import format_table
from repro.application import (
    MessageTrace,
    RandomPlacement,
    StencilApplication,
    StencilDecomposition,
    TraceReplay,
    record_stencil_trace,
)
from repro.network import Network, Simulator

topology = HyperX((3, 3), 2)  # 18 terminals

# 1. Record: run the stencil once (under DimWAR) and capture its messages.
net = Network(topology, make_algorithm("DimWAR", topology), default_config())
decomp = StencilDecomposition((2, 3, 3), aggregate_flits=260)
placement = RandomPlacement(decomp.num_ranks, topology.num_terminals, seed=3)
app = StencilApplication(net, decomp, placement, iterations=1)
trace = record_stencil_trace(app, Simulator(net))

path = os.path.join(tempfile.gettempdir(), "stencil.trace.jsonl")
trace.save(path)
print(f"recorded {len(trace)} messages / {trace.total_flits} flits over "
      f"{trace.span_cycles} cycles -> {path}")

# 2. Replay: the identical timed workload under each algorithm.
trace = MessageTrace.load(path)
rows = []
for name in ("DOR", "VAL", "UGAL", "DimWAR", "OmniWAR"):
    net = Network(topology, make_algorithm(name, topology), default_config())
    sim = Simulator(net)
    t = TraceReplay(net, trace).run(sim)
    rows.append([name, t])

print(format_table(
    ["algorithm", "completion cycle"],
    rows,
    title="Trace replay: same workload, every algorithm (lower is better)",
))
