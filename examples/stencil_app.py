#!/usr/bin/env python3
"""27-point stencil application model across routing algorithms (Figure 8).

Runs the paper's application workload — halo exchange with 26 neighbours,
dissemination collective, zero compute, random placement — on a small HyperX
and compares execution time per routing algorithm and phase.

Run:  python examples/stencil_app.py
"""

from repro import HyperX, default_config, make_algorithm
from repro.analysis import format_table
from repro.application import (
    RandomPlacement,
    StencilApplication,
    StencilDecomposition,
)
from repro.network import Network, Simulator

topology = HyperX((3, 3, 3), 2)  # 54 nodes
decomp = StencilDecomposition(grid=(3, 3, 3), aggregate_flits=1040)
print(
    f"stencil {decomp.grid} = {decomp.num_ranks} ranks on HyperX "
    f"{topology.widths} x T{topology.terminals_per_router}; "
    f"{decomp.aggregate_flits} flits/halo/rank; "
    f"26 neighbours each (faces/edges/corners weighted)"
)

rows = []
for mode in ("collective", "halo", "full"):
    for name in ("DOR", "VAL", "UGAL", "DimWAR", "OmniWAR"):
        algorithm = make_algorithm(name, topology)
        net = Network(topology, algorithm, default_config())
        sim = Simulator(net)
        placement = RandomPlacement(decomp.num_ranks, topology.num_terminals, seed=11)
        app = StencilApplication(net, decomp, placement, iterations=1, mode=mode)
        t = app.run(sim, max_cycles=2_000_000)
        rows.append([mode, name, t, app.messages_sent])

print(format_table(
    ["phase", "algorithm", "execution time (cycles)", "messages"],
    rows,
    title="Figure 8-style comparison (lower time is better)",
))
print("\nExpected shape: collectives are latency-bound (everything but VAL "
      "close); halo exchanges are bandwidth-bound (DOR worst, VAL second "
      "worst, DimWAR/OmniWAR best); the full app follows the halo ranking.")
