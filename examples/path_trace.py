#!/usr/bin/env python3
"""Path and virtual-channel tracing (Figures 1 and 5).

Reproduces the paper's two illustrative figures from live simulations:

* Figure 1 — after congesting the minimal channel out of a source router,
  source-adaptive UGAL either ignores it or takes a full Valiant detour,
  while incremental DimWAR/OmniWAR deroute once and continue minimally;
* Figure 5 — the VC usage that makes both algorithms deadlock free:
  DimWAR reuses its two resource classes across ordered dimensions,
  OmniWAR's VC index is the hop count (distance classes).

Run:  python examples/path_trace.py
"""

from repro.experiments import fig1_paths, fig5_vcusage

print(fig1_paths.render(fig1_paths.run(probes=10)))
print()
print(fig5_vcusage.render(fig5_vcusage.run()))
