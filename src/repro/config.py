"""Configuration dataclasses and presets.

All latencies and rates are expressed in flit cycles.  The paper's evaluation
uses 50 ns router-to-router channels (10 m), 5 ns router-to-terminal channels
(1 m), a 50 ns crossbar, 8 VCs, and "enough buffering to cover more than the
credit round trip" — :func:`paper_scale` reproduces that configuration.  The
scaled default (:func:`default_config`) shortens the latencies proportionally
so that a pure-Python simulation finishes quickly while keeping the same
credit-round-trip-to-buffer-depth relationship that governs back-pressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class RouterConfig:
    """Parameters of the combined input/output-queued (CIOQ) router."""

    num_vcs: int = 8
    buffer_depth: int = 16  # flits per input VC
    xbar_latency: int = 4  # cycles through the internal datapath
    input_speedup: int = 4  # flits/cycle an input port may forward (CIOQ speedup)
    output_queue_depth: int = 16  # flits staged at each output (per VC)
    arbiter: str = "age"  # "age" (paper) or "round_robin"
    congestion_mode: str = "credit_queue"  # see core/weights.py
    #: what a route candidate's congestion estimate covers: the VCs of its
    #: own resource class ("class") or the whole output port ("port").
    #: Class scope is sharper but biased toward classes that happen to be
    #: idle (a deroute class is); port scope measures the shared channel.
    congestion_scope: str = "port"
    #: Clos-AD's sequential allocator (Section 4.1): within a cycle, each
    #: routing decision sees the commitments already made by other inputs.
    #: Architecturally infeasible in high-radix routers — the paper (and our
    #: default) evaluates without it; enabling it is an ablation.
    sequential_allocation: bool = False
    #: Memoise per-router candidate lists for stateless algorithms.  Purely
    #: an optimisation — results must be identical either way, which the
    #: repro.check differential oracle verifies by replaying runs with this
    #: switched off.
    route_cache: bool = True
    #: Score cached candidate skeletons with the router's inlined weight
    #: kernel instead of the reference _allocate_vc/congestion/route_weight
    #: call chain.  Purely an optimisation — byte-identical results, verified
    #: by the repro.check kernel-on/off differential oracle.
    scoring_kernel: bool = True
    #: Run eligible simulations through the struct-of-arrays datapath
    #: (:mod:`repro.network.soa`): fused per-stage kernels over the same
    #: shared flat state, with the object path kept as the reference
    #: implementation.  Purely an optimisation — byte-identical results,
    #: verified by the repro.check soa-on/off differential oracle.  Runs
    #: with observers attached (sanitizer process, tracer hooks) fall back
    #: to the object path automatically regardless of this flag.
    soa_core: bool = True
    #: Compress runs of quiescent cycles: when no terminal is active, jump
    #: the clock straight to the earliest cycle at which anything can happen
    #: (:mod:`repro.network.skip`).  Purely an optimisation — byte-identical
    #: results, verified by the repro.check skip-on/off differential oracle.
    #: Runs with a process that must observe every cycle (anything not
    #: marked ``skip_safe``, e.g. the sanitizer) fall back to per-cycle
    #: stepping automatically regardless of this flag.
    cycle_skip: bool = True


@dataclass
class NetworkConfig:
    """Parameters of the interconnect fabric around the routers."""

    channel_latency_rr: int = 8  # router-to-router channel, cycles
    channel_latency_rt: int = 2  # router-to-terminal channel, cycles
    ejection_rate: int = 1  # flits/cycle a terminal consumes
    track_vc_trace: bool = False  # record per-hop VC/port on every packet


@dataclass
class SimConfig:
    """Top-level simulation configuration."""

    router: RouterConfig = field(default_factory=RouterConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    seed: int = 12345

    @property
    def credit_round_trip(self) -> int:
        """Cycles from consuming a credit to seeing it restored (approx.)."""
        return 2 * self.network.channel_latency_rr + self.router.xbar_latency

    def validated(self) -> "SimConfig":
        r, n = self.router, self.network
        if r.num_vcs < 1:
            raise ValueError("need at least one VC")
        if r.buffer_depth < 1 or r.output_queue_depth < 1:
            raise ValueError("buffers must hold at least one flit")
        if n.channel_latency_rr < 1 or n.channel_latency_rt < 1:
            raise ValueError("channel latencies must be >= 1 cycle")
        if n.ejection_rate < 1:
            raise ValueError("ejection rate must be >= 1 flit/cycle")
        return self


def default_config(**overrides) -> SimConfig:
    """Scaled-down default: short channels, buffers covering the round trip."""
    cfg = SimConfig()
    return replace(cfg, **overrides).validated() if overrides else cfg.validated()


def paper_scale(**overrides) -> SimConfig:
    """The paper's latencies: 50-cycle router-to-router channels and crossbar,
    5-cycle terminal channels, 8 VCs, buffering beyond the credit round trip.
    """
    cfg = SimConfig(
        router=RouterConfig(
            num_vcs=8,
            buffer_depth=160,  # > credit round trip of 150 cycles
            xbar_latency=50,
            input_speedup=4,
            output_queue_depth=32,
            arbiter="age",
        ),
        network=NetworkConfig(channel_latency_rr=50, channel_latency_rt=5),
    )
    return replace(cfg, **overrides).validated() if overrides else cfg.validated()
