"""Sharded multi-process simulation engine.

Large HyperX instances (16x16x16 = 4096 routers, 64k terminals at 16
terminals/router) are too much work for one Python process: even with the
SoA datapath the per-cycle compute is serial.  This module partitions the
routers of one simulation across worker processes — one *shard* each — and
advances the shards in lock-stepped bounded-cycle chunks, exchanging the
flits and credits that cross shard boundaries over pipes.

**Partitioning.**  :class:`ShardPlan` slices the topology along its widest
dimension into contiguous coordinate blocks, one per shard; a shard owns
every router whose coordinate in that dimension falls in its block (and the
terminals of those routers).  Each worker builds a *partial*
:class:`~repro.network.network.Network` (``owned_routers=``): unowned
routers are ``None`` holes and cross-shard links terminate in boundary
channels (:attr:`Network.boundary_out` / :attr:`Network.boundary_in`).

**Chunk protocol.**  The conservative lookahead is the router-to-router
channel latency ``L = channel_latency_rr``: a flit pushed onto a boundary
channel at cycle ``u`` cannot be delivered before ``u + L``, so a chunk of
at most ``L`` cycles can run with no mid-chunk communication — every
boundary crossing pushed inside chunk ``[t, t+l)``, ``l <= L``, has ready
cycle ``u + L >= t + L > t + l - 1`` and is still parked in its export
channel when the chunk ends.  The coordinator then drains each shard's
exports and injects them into the importing shard's boundary channels at
the start of the next chunk, timestamps intact: the receiving shard
delivers each item at exactly the cycle the unsharded simulator would.
Export channels carry a poison sink (:func:`~repro.network.network`'s
``_poison_sink``) so any protocol violation raises instead of corrupting
state.

**Skip-ahead composition.**  Each worker reports, with its exports, a bound
from :meth:`~repro.network.simulator.Simulator.next_event_cycle` — the
earliest cycle its shard can change state absent external input.  When the
minimum of those bounds (and of the ready cycles of any exports in flight)
exceeds ``t + L``, nothing anywhere can happen in between and the
coordinator issues one long chunk straight to the bound: global quiescence
compresses to a single round trip, composing with each worker's own
in-chunk cycle skip-ahead.  A ``None`` bound (a process without
``next_wakeup``) vetoes long chunks; correctness never depends on jumping.

**Determinism.**  Every worker runs the *full* traffic process against the
same seed, replaying the complete RNG stream; sources owned by other shards
consume their packet id and inject nothing (see
:mod:`repro.traffic.injection`), so packet ids and Bernoulli draws are
aligned across shards and with the unsharded run.  Cross-shard flits are
re-materialized from wire descriptors onto per-shard *replica* packets
(refcounted by transit, evicted when the tail passes), so a packet's
telemetry (hops, deroutes, create cycle) travels with its head flit.
Merged statistics are byte-identical to single-process runs for any shard
count — the ``shard-on-vs-off`` differential oracle in ``repro.check``
enforces it.

**Tracing.**  ``ShardEngine(..., trace=TraceOptions(pid_ids=True))``
attaches a :class:`~repro.obs.tracer.Tracer` inside every worker; each
lifecycle event is recorded by exactly one shard, :func:`merged_trace`
concatenates the per-shard streams from the finish reports, and
:func:`~repro.obs.export.canonical_jsonl` renders them byte-identical to
a canonicalized unsharded trace of the same run.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import TYPE_CHECKING, Any

from ..config import default_config
from .network import Network
from .simulator import Simulator
from .stats import LatencySample, PacketStats
from .types import Flit, Packet

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.parallel import PointSpec
    from ..analysis.sweep import PointResult
    from ..faults.model import FaultSchedule
    from ..topology.base import Topology

#: boundary-channel key: ("d" | "c", pushing_router, pushing_port)
BoundaryKey = tuple


class ShardPlan:
    """Partition of a topology's routers into contiguous dimension slices.

    The partition dimension is the widest one (ties break to the lowest
    index), split into ``shards`` contiguous coordinate blocks whose sizes
    differ by at most one.  More shards than the widest dimension has
    coordinates cannot be placed (a block would be empty) and raises.
    """

    def __init__(self, topology: "Topology", shards: int):
        widths = tuple(topology.widths)
        if shards < 1:
            raise ValueError("shards must be >= 1")
        dim = max(range(len(widths)), key=widths.__getitem__)
        if shards > widths[dim]:
            raise ValueError(
                f"{shards} shards exceed the widest dimension ({widths[dim]})"
            )
        base, extra = divmod(widths[dim], shards)
        blocks: list[tuple[int, int]] = []
        start = 0
        for s in range(shards):
            stop = start + base + (1 if s < extra else 0)
            blocks.append((start, stop))
            start = stop
        self.topology = topology
        self.shards = shards
        self.dim = dim
        #: per-shard [lo, hi) coordinate blocks along :attr:`dim`
        self.blocks = tuple(blocks)

    def shard_of_router(self, router: int) -> int:
        c = self.topology.coords(router)[self.dim]
        for s, (lo, hi) in enumerate(self.blocks):
            if lo <= c < hi:
                return s
        raise ValueError(f"router {router} coordinate {c} outside every block")

    def owned_routers(self, shard: int) -> frozenset[int]:
        lo, hi = self.blocks[shard]
        dim = self.dim
        topo = self.topology
        return frozenset(
            r for r in range(topo.num_routers) if lo <= topo.coords(r)[dim] < hi
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _WorkerState:
    """One shard's live simulation plus the cross-shard packet replica map."""

    def __init__(self, spec: "PointSpec", owned: frozenset[int], schedule,
                 trace=None):
        from ..core.registry import make_algorithm
        from ..topology.hyperx import HyperX
        from ..traffic.injection import SyntheticTraffic
        from ..traffic.sizes import UniformSize

        from ..traffic.patterns import pattern_by_name

        topo: "Topology" = HyperX(tuple(spec.widths), spec.terminals_per_router)
        if spec.faults or schedule is not None:
            from ..faults.degraded import DegradedTopology
            from ..faults.model import FaultSet

            topo = DegradedTopology(topo, FaultSet(list(spec.faults)))
        algorithm = make_algorithm(
            spec.algorithm, topo, **dict(spec.algorithm_kwargs)
        )
        pattern = pattern_by_name(spec.pattern, topo)
        cfg = spec.cfg or default_config()
        self.net = Network(topo, algorithm, cfg, owned_routers=owned)
        self.sim = Simulator(self.net)
        if schedule is not None:
            from ..faults.inject import FaultInjector

            # Injector before traffic, matching the order the per-cycle
            # reference harness registers them: fault flips land before the
            # cycle's injections.
            self.sim.processes.append(FaultInjector(self.net, schedule))
        traffic = SyntheticTraffic(
            self.net,
            pattern,
            spec.rate,
            spec.size_dist or UniformSize(1, 16),
            seed=spec.seed,
        )
        self.sim.processes.append(traffic)
        self.stats = PacketStats()
        for t in self.net.terminals:
            if t is not None:
                t.delivery_listeners.append(self.stats.on_delivery)
        # pid -> [replica Packet, transits-in-flight]; a head import creates
        # or refreshes the replica, the matching tail import drops the ref.
        self._replicas: dict[int, list] = {}
        self.tracer = None
        if trace is not None:
            from ..obs.tracer import Tracer

            if not trace.pid_ids:
                raise ValueError(
                    "sharded tracing needs TraceOptions(pid_ids=True): "
                    "trace-local ids cannot identify a packet whose inject "
                    "happened in another shard"
                )
            self.tracer = Tracer(self.sim, trace).attach()

    # -- chunk boundary ------------------------------------------------

    def apply_imports(self, imports: list) -> None:
        """Queue the peer shards' exports onto our boundary-in channels.

        Items keep the ready cycles stamped at push time, so delivery
        happens at exactly the unsharded cycle.  Entries already in the
        pipe (from earlier chunks) are strictly earlier — an old entry's
        ready precedes the previous chunk's start plus ``L``, a new one's
        follows it — so appending preserves the pipe's ready ordering.
        """
        net = self.net
        boundary_in = net.boundary_in
        active = net._active_channels
        replicas = self._replicas
        for key, items in imports:
            ch = boundary_in[key]
            pipe = ch._pipe
            was_empty = not pipe
            if key[0] == "c":
                pipe.extend(items)
            else:
                for ready, vc, index, info in items:
                    if index == 0:
                        (src, dst, size, cc, pid, inj, hops, der,
                         rs, vt, pt) = info
                        ent = replicas.get(pid)
                        if ent is None:
                            ent = replicas[pid] = [
                                Packet(src, dst, size, cc, pid=pid), 0
                            ]
                        pkt = ent[0]
                        pkt.inject_cycle = inj
                        pkt.hops = hops
                        pkt.deroutes = der
                        pkt._routing_state = rs
                        pkt.vc_trace = vt
                        pkt.port_trace = pt
                        ent[1] += 1
                    else:
                        ent = replicas.get(info)
                        if ent is None:
                            raise RuntimeError(
                                f"body flit of unknown packet {info} crossed "
                                f"the shard boundary before its head"
                            )
                        pkt = ent[0]
                    flit = Flit(pkt, index)
                    if flit.tail:
                        ent[1] -= 1
                        if ent[1] <= 0:
                            del replicas[pkt.pid]
                    pipe.append((ready, (vc, flit)))
            if was_empty and pipe:
                ch._next_ready = pipe[0][0]
                active[ch] = None

    def drain_exports(self) -> list:
        """Pop every parked boundary export, encoded for the wire.

        A head flit carries the packet's full descriptor (the importer
        builds or refreshes its replica from it); body and tail flits carry
        just ``(pid, index)``.  The descriptor is taken at drain time, after
        the chunk completed — safe, because once a head is parked in an
        export channel no router in *this* shard can touch its packet again
        (the next route decision belongs to the importing shard).
        """
        out = []
        active = self.net._active_channels
        for key, ch in self.net.boundary_out.items():
            pipe = ch._pipe
            if not pipe:
                continue
            if key[0] == "c":
                items: list = list(pipe)
            else:
                items = []
                for ready, (vc, flit) in pipe:
                    p = flit.packet
                    if flit.index == 0:
                        items.append((ready, vc, 0, (
                            p.src_terminal, p.dst_terminal, p.size,
                            p.create_cycle, p.pid, p.inject_cycle,
                            p.hops, p.deroutes, p._routing_state,
                            p.vc_trace, p.port_trace,
                        )))
                    else:
                        items.append((ready, vc, flit.index, p.pid))
            pipe.clear()
            active.pop(ch, None)
            out.append((key, items))
        return out

    # -- end of run ----------------------------------------------------

    def report(self) -> dict[str, Any]:
        net, stats = self.net, self.stats
        trace: dict[str, Any] = {}
        if self.tracer is not None:
            trace["trace_events"] = [
                (ev.cycle, ev.type, ev.pkt, ev.where, ev.data)
                for ev in self.tracer.events()
            ]
            trace["trace_dropped"] = self.tracer.ring.dropped
        return {
            **trace,
            "samples": [
                (s.create_cycle, s.latency, s.hops, s.deroutes)
                for s in stats.samples
            ],
            "packets_delivered": stats.packets_delivered,
            "flits_delivered": stats.flits_delivered,
            "ejected": net.total_ejected_flits(),
            "backlog": net.total_backlog_flits(),
            "routes_computed": sum(
                r.routes_computed for r in net.routers if r is not None
            ),
            "route_stalls": sum(
                r.route_stalls for r in net.routers if r is not None
            ),
        }


def _shard_worker(conn, spec: "PointSpec", owned: frozenset[int], schedule,
                  trace=None) -> None:
    """Worker process entry: build one shard, then serve chunk requests."""
    try:
        state = _WorkerState(spec, owned, schedule, trace)
        net, sim = state.net, state.sim
        conn.send(("ok", (list(net.boundary_in), list(net.boundary_out))))
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "chunk":
                _, end, imports = msg
                state.apply_imports(imports)
                sim.run(end - sim.cycle)
                exports = state.drain_exports()
                conn.send(("ok", (exports, sim.next_event_cycle())))
            elif op == "ejected":
                conn.send(("ok", net.total_ejected_flits()))
            elif op == "finish":
                conn.send(("ok", state.report()))
            elif op == "stop":
                return
            else:
                raise RuntimeError(f"unknown shard op {op!r}")
    except BaseException:  # report the failure instead of dying silently
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class ShardEngine:
    """Coordinates one sharded simulation across forked worker processes.

    The public surface mirrors what ``measure_point`` needs from a
    simulator: :meth:`run` to advance the global clock, :meth:`total_ejected`
    for the mid-run throughput snapshot, :meth:`finish` for the merged
    end-of-run statistics, and :meth:`close` to tear the workers down.

    Workers are forked (never spawned): fork shares the parent's packet-id
    counter position, which keeps pids aligned with an unsharded run in the
    same process, and skips re-importing the simulator in each worker.
    """

    def __init__(self, spec: "PointSpec", shards: int,
                 schedule: "FaultSchedule | None" = None, trace=None):
        from ..topology.hyperx import HyperX

        topo = HyperX(tuple(spec.widths), spec.terminals_per_router)
        self.plan = ShardPlan(topo, shards)
        self.shards = shards
        self.num_terminals = topo.num_terminals
        cfg = spec.cfg or default_config()
        #: conservative chunk length: the cross-shard channel latency
        self._chunk_cycles = cfg.network.channel_latency_rr
        ctx = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        for s in range(shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child, spec, self.plan.owned_routers(s), schedule, trace),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        # Handshake: each worker names its import/export keys; a shard's
        # export key is the importing shard's import key by construction,
        # which yields the export -> destination-shard routing tables.
        import_owner: dict[BoundaryKey, int] = {}
        export_keys: list[list[BoundaryKey]] = []
        for s in range(shards):
            imports, exports = self._recv(s)
            for key in imports:
                import_owner[key] = s
            export_keys.append(exports)
        self._export_dst: list[dict[BoundaryKey, int]] = []
        for s in range(shards):
            table = {}
            for key in export_keys[s]:
                owner = import_owner.get(key)
                if owner is None:
                    raise RuntimeError(
                        f"boundary export {key!r} has no importing shard"
                    )
                table[key] = owner
            self._export_dst.append(table)
        # Exports drained from one chunk, awaiting injection with the next.
        self._pending: list[list] = [[] for _ in range(shards)]
        self._cycle = 0
        # min over worker next-event bounds and pending-import ready
        # cycles; None = unknown (vetoes long chunks).
        self._bound: int | None = None

    # -- plumbing ------------------------------------------------------

    def _recv(self, shard: int):
        try:
            msg = self._conns[shard].recv()
        except EOFError:
            raise RuntimeError(
                f"shard worker {shard} died without reporting an error"
            ) from None
        if msg[0] == "error":
            raise RuntimeError(f"shard worker {shard} failed:\n{msg[1]}")
        if msg[0] != "ok":
            raise RuntimeError(
                f"unexpected reply {msg[0]!r} from shard worker {shard}"
            )
        return msg[1]

    # -- public surface ------------------------------------------------

    @property
    def cycle(self) -> int:
        return self._cycle

    def run(self, cycles: int) -> None:
        """Advance every shard by ``cycles`` cycles, chunk by chunk.

        Each round trip covers ``min(L, remaining)`` cycles — or jumps
        straight to the global next-event bound when that bound clears
        ``t + L``, in which case no shard can push anything in the gap
        (the bound says no state changes before it, and there are no
        imports in flight, or the bound would not clear ``t + L``).
        """
        if cycles < 0:
            raise ValueError("cycles must be >= 0")
        target = self._cycle + cycles
        L = self._chunk_cycles
        conns = self._conns
        pending = self._pending
        export_dst = self._export_dst
        while self._cycle < target:
            t = self._cycle
            bound = self._bound
            if bound is not None and bound > t + L:
                end = min(bound, target)
            else:
                end = min(t + L, target)
            for s, conn in enumerate(conns):
                conn.send(("chunk", end, pending[s]))
                pending[s] = []
            bounds: list[int | None] = []
            for s in range(len(conns)):
                exports, b = self._recv(s)
                bounds.append(b)
                dst = export_dst[s]
                for key, items in exports:
                    pending[dst[key]].append((key, items))
            self._cycle = end
            gb: int | None = None
            valid = True
            for b in bounds:
                if b is None:
                    valid = False
                    break
                if gb is None or b < gb:
                    gb = b
            if valid:
                for batch in pending:
                    for _key, items in batch:
                        first = items[0][0]  # items are ready-ordered
                        if gb is None or first < gb:
                            gb = first
                self._bound = gb
            else:
                self._bound = None

    def total_ejected(self) -> int:
        """Flits consumed at terminals so far, summed across shards."""
        for conn in self._conns:
            conn.send(("ejected",))
        return sum(self._recv(s) for s in range(self.shards))

    def finish(self) -> list[dict[str, Any]]:
        """Collect every shard's end-of-run report (in shard order)."""
        for conn in self._conns:
            conn.send(("finish",))
        return [self._recv(s) for s in range(self.shards)]

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - crash cleanup
                proc.terminate()
                proc.join(timeout=10)
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "ShardEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Spec-level entry points
# ----------------------------------------------------------------------


def merged_trace(reports: list) -> tuple[list, int]:
    """Merge per-shard trace payloads from :meth:`ShardEngine.finish`.

    Returns ``(events, dropped)``: every shard's
    :class:`~repro.obs.events.TraceEvent` records in one list (shard order,
    not globally sorted — feed them to
    :func:`~repro.obs.export.canonical_jsonl` for comparable bytes) and the
    summed ring-drop count.  Each lifecycle event is recorded by exactly
    one shard — inject/eject by the terminal's owner, route/sa by the
    router's, link by the receiving end — so the merge is a plain
    concatenation with no dedup.
    """
    from ..obs.events import TraceEvent

    events = []
    dropped = 0
    for rep in reports:
        dropped += rep.get("trace_dropped", 0)
        for cycle, type_, pkt, where, data in rep.get("trace_events", ()):
            events.append(TraceEvent(cycle, type_, pkt, where, data))
    return events, dropped


def shard_fallback_reason(spec: "PointSpec") -> str | None:
    """Why this spec cannot run sharded, or None when it can.

    Mirrors the SoA/skip ``fallback_reason`` convention: a non-None reason
    routes the point to the single-process path, and results are identical
    either way — sharding only changes wall-clock and memory.
    """
    if spec.check:
        return "sanitizer audits complete credit loops, which shard boundaries split"
    if spec.trace is not None:
        return (
            "traced sweep points take the single-process path (their "
            "golden-pinned JSONL depends on recording order; sharded "
            "tracing is the explicit ShardEngine(trace=...) API)"
        )
    if max(spec.widths) < spec.shards:
        return (
            f"{spec.shards} shards need a dimension at least that wide "
            f"(widest is {max(spec.widths)})"
        )
    if "fork" not in multiprocessing.get_all_start_methods():
        return "no fork start method on this platform"
    return None


def run_point_sharded(spec: "PointSpec",
                      schedule: "FaultSchedule | None" = None) -> "PointResult":
    """Measure one load point on the sharded engine.

    Replays ``measure_point``'s exact schedule — run to the half-way mark,
    snapshot ejected flits, run the rest — then folds the per-shard reports
    into one :class:`~repro.network.stats.PacketStats` and hands the same
    integer aggregates to :func:`~repro.analysis.sweep.finalize_point`, so
    the resulting point is byte-identical to the single-process one.
    """
    from ..analysis.sweep import finalize_point

    started = time.perf_counter()
    total = spec.total_cycles
    half = total // 2
    engine = ShardEngine(spec, spec.shards, schedule=schedule)
    try:
        engine.run(half)
        ejected_at_half = engine.total_ejected()
        engine.run(total - half)
        reports = engine.finish()
    finally:
        engine.close()
    stats = PacketStats()
    for rep in reports:
        stats.samples.extend(LatencySample(*t) for t in rep["samples"])
        stats.packets_delivered += rep["packets_delivered"]
        stats.flits_delivered += rep["flits_delivered"]
    return finalize_point(
        rate=spec.rate,
        total_cycles=total,
        num_terminals=engine.num_terminals,
        stats=stats,
        ejected_total=sum(r["ejected"] for r in reports),
        ejected_at_half=ejected_at_half,
        undelivered_backlog=sum(r["backlog"] for r in reports),
        routes_computed=sum(r["routes_computed"] for r in reports),
        route_stalls=sum(r["route_stalls"] for r in reports),
        started=started,
    )
