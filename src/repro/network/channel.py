"""Pipelined channels.

A :class:`Channel` carries at most one item per cycle with a fixed pipeline
latency, modelling a cable (or on-board trace) between a router output and the
downstream input.  Credits travel on an identical channel in the opposite
direction.  Items pushed at cycle ``t`` become deliverable at ``t + latency``.

Delivery is two-phase: the simulator first calls :meth:`Channel.deliver` on
every channel (moving arrived items into the downstream component), then lets
every component compute and push new items.  This guarantees that an item can
never traverse two channels in the same cycle.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable


class Channel:
    """A fixed-latency pipeline.

    Data channels carry at most one flit per cycle (``limit_rate=True``);
    credit channels are narrow sideband signals and may carry several credits
    per cycle (``limit_rate=False``).
    """

    __slots__ = ("latency", "name", "limit_rate", "_pipe", "_sink", "_last_push_cycle", "utilization_count")

    def __init__(
        self,
        latency: int,
        sink: Callable[[Any], None],
        name: str = "",
        limit_rate: bool = True,
    ):
        if latency < 1:
            raise ValueError("channel latency must be >= 1 cycle")
        self.latency = latency
        self.name = name
        self.limit_rate = limit_rate
        self._sink = sink
        self._pipe: deque[tuple[int, Any]] = deque()
        self._last_push_cycle = -1
        self.utilization_count = 0  # items ever pushed (for link-utilization stats)

    def push(self, cycle: int, item: Any) -> None:
        """Send ``item`` down the channel at ``cycle``."""
        if self.limit_rate:
            if cycle <= self._last_push_cycle:
                raise RuntimeError(
                    f"channel {self.name!r} pushed twice in cycle {cycle}"
                )
            self._last_push_cycle = cycle
        self.utilization_count += 1
        self._pipe.append((cycle + self.latency, item))

    def deliver(self, cycle: int) -> None:
        """Hand every item whose latency has elapsed to the sink."""
        pipe = self._pipe
        while pipe and pipe[0][0] <= cycle:
            _, item = pipe.popleft()
            self._sink(item)

    @property
    def in_flight(self) -> int:
        return len(self._pipe)

    @property
    def busy(self) -> bool:
        return bool(self._pipe)
