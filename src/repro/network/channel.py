"""Pipelined channels.

A :class:`Channel` carries at most one item per cycle with a fixed pipeline
latency, modelling a cable (or on-board trace) between a router output and the
downstream input.  Credits travel on an identical channel in the opposite
direction.  Items pushed at cycle ``t`` become deliverable at ``t + latency``.

Delivery is two-phase: the simulator first calls :meth:`Channel.deliver` on
every *busy* channel (moving arrived items into the downstream component),
then lets every component compute and push new items.  This guarantees that an
item can never traverse two channels in the same cycle.

Busy tracking: a channel wired into a :class:`~repro.network.network.Network`
registers itself in the network's active-channel set on the empty->busy
transition of :meth:`push`; the simulator only visits registered channels and
unregisters them once their pipeline drains.  Idle channels therefore cost
nothing per cycle (see DESIGN.md, performance notes).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable


class Channel:
    """A fixed-latency pipeline.

    Data channels carry at most one flit per cycle (``limit_rate=True``);
    credit channels are narrow sideband signals and may carry several credits
    per cycle (``limit_rate=False``).
    """

    __slots__ = ("latency", "name", "limit_rate", "min_gap", "_pipe", "_sink", "_last_push_cycle", "utilization_count", "_active_set", "_next_ready", "_soa_rec")

    def __init__(
        self,
        latency: int,
        sink: Callable[[Any], None],
        name: str = "",
        limit_rate: bool = True,
    ):
        if latency < 1:
            raise ValueError("channel latency must be >= 1 cycle")
        self.latency = latency
        self.name = name
        self.limit_rate = limit_rate
        #: minimum cycles between pushes; > 1 models a degraded-bandwidth
        #: link (set by the fault injector).  The router's output stage
        #: checks it before arbitrating for the port.
        self.min_gap = 1
        self._sink = sink
        self._pipe: deque[tuple[int, Any]] = deque()
        self._last_push_cycle = -1
        self.utilization_count = 0  # items ever pushed (for link-utilization stats)
        #: lower bound on the head item's delivery cycle — the simulator's
        #: delivery loop skips the channel without touching the pipe while
        #: ``cycle < _next_ready``.  Set exactly on the empty->busy push
        #: transition and refreshed after each delivery pass; pops by other
        #: consumers (the obs profiler's own loop, :meth:`deliver`) can only
        #: raise the true head ready-cycle, so the bound stays conservative.
        #: Cycle skip-ahead (:mod:`repro.network.skip`) also feeds this into
        #: its global next-event bound: a stale-low value merely vetoes one
        #: jump (the engine executes the next cycle), never skips a delivery.
        self._next_ready = 0
        #: activity registry (dict used as an ordered set) shared with the
        #: owning network; None for standalone channels driven directly.
        self._active_set: dict["Channel", None] | None = None
        #: typed delivery record compiled by the SoA core
        #: (:mod:`repro.network.soa`): the link-traversal kernel dispatches
        #: on it instead of calling ``_sink`` per item.  None until (and
        #: unless) an SoA core is compiled for the owning simulator; the
        #: object path always uses ``_sink``.
        self._soa_rec: tuple | None = None

    def push(self, cycle: int, item: Any) -> None:
        """Send ``item`` down the channel at ``cycle``."""
        if self.limit_rate:
            if cycle <= self._last_push_cycle:
                raise RuntimeError(
                    f"channel {self.name!r} pushed twice in cycle {cycle}"
                )
            self._last_push_cycle = cycle
        self.utilization_count += 1
        ready = cycle + self.latency
        if not self._pipe:
            self._next_ready = ready
            if self._active_set is not None:
                self._active_set[self] = None
        self._pipe.append((ready, item))

    def deliver(self, cycle: int) -> None:
        """Hand every item whose latency has elapsed to the sink."""
        pipe = self._pipe
        while pipe and pipe[0][0] <= cycle:
            _, item = pipe.popleft()
            self._sink(item)
        if pipe:
            self._next_ready = pipe[0][0]

    @property
    def in_flight(self) -> int:
        return len(self._pipe)

    def pending_payloads(self):
        """The payloads currently in the pipeline, oldest first.

        Inspection hook for the runtime sanitizer (repro.check): data
        channels yield ``(vc, flit)`` tuples, credit channels bare VC ids.
        The returned iterator must not outlive the current cycle.
        """
        return (item for _, item in self._pipe)

    @property
    def busy(self) -> bool:
        return bool(self._pipe)
