"""Network telemetry: link utilization, VC occupancy, and congestion maps.

The evaluation narrative of the paper leans on *where* load lands: DOR
funnelling an X-line's traffic through one Y-channel on DCR, S2 leaving
most in-dimension links idle, deroutes spreading load across a dimension's
lateral channels.  This module turns a simulated network into those
numbers: per-channel utilization, per-dimension aggregates for HyperX, and
buffer-occupancy snapshots.

Utilization is flits pushed over cycles elapsed — i.e. the fraction of the
channel's capacity actually used in [window_start, now).

Fault telemetry: networks built on a :class:`~repro.faults.DegradedTopology`
carry a shared fault state whose counters
(:meth:`TelemetryProbe.fault_counters`) record how routing reacted —
candidates masked, committed routes revoked, fault events applied.

Example::

    >>> from repro.config import SimConfig
    >>> from repro.core.registry import make_algorithm
    >>> from repro.network.network import Network
    >>> from repro.network.telemetry import TelemetryProbe
    >>> from repro.topology.hyperx import HyperX
    >>> topo = HyperX((2, 2), 1)
    >>> net = Network(topo, make_algorithm("DOR", topo), SimConfig())
    >>> probe = TelemetryProbe(net)
    >>> probe.fault_counters()["failed_links"]  # pristine topology: all zero
    0
    >>> probe.utilization_summary(cycle=100)["max"]
    0.0
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..topology.hyperx import HyperX

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network


@dataclass(frozen=True)
class LinkStat:
    src_router: int
    src_port: int
    flits: int
    utilization: float


class TelemetryProbe:
    """Samples link and buffer state of a network over a window."""

    def __init__(self, network: "Network"):
        self.network = network
        self._window_start_cycle = 0
        self._baseline: dict[int, int] = {}
        # Map each data channel back to (router, port) for attribution.
        self._channel_of: list[tuple[int, int, object]] = []
        for r in network.routers:
            for port, ch in enumerate(r.out_channels):
                if ch is not None and network.topology.peer(r.router_id, port).is_router:
                    self._channel_of.append((r.router_id, port, ch))

    # ------------------------------------------------------------------

    def start_window(self, cycle: int) -> None:
        """Begin a measurement window at ``cycle``."""
        self._window_start_cycle = cycle
        self._baseline = {
            id(ch): ch.utilization_count for _, _, ch in self._channel_of
        }

    def link_stats(self, cycle: int) -> list[LinkStat]:
        """Per-router-channel utilization over the current window."""
        span = max(1, cycle - self._window_start_cycle)
        out = []
        for router, port, ch in self._channel_of:
            flits = ch.utilization_count - self._baseline.get(id(ch), 0)
            out.append(
                LinkStat(router, port, flits, min(1.0, flits / span))
            )
        return out

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def utilization_summary(self, cycle: int) -> dict[str, float]:
        """min / mean / max / p95 utilization across router channels."""
        stats = sorted(s.utilization for s in self.link_stats(cycle))
        if not stats:
            return {"min": 0.0, "mean": 0.0, "max": 0.0, "p95": 0.0}
        return {
            "min": stats[0],
            "mean": sum(stats) / len(stats),
            "max": stats[-1],
            "p95": stats[min(len(stats) - 1, int(0.95 * len(stats)))],
        }

    def dimension_utilization(self, cycle: int) -> dict[int, float]:
        """Mean utilization per HyperX dimension (HyperX networks only)."""
        topo = self.network.topology
        # A DegradedTopology wrapper delegates port_dim etc.; unwrap for the
        # type check so fault experiments get dimension aggregates too.
        hx = getattr(topo, "base", topo)
        if not isinstance(hx, HyperX):
            raise TypeError("dimension_utilization requires a HyperX network")
        sums: dict[int, float] = {d: 0.0 for d in range(hx.num_dims)}
        counts: dict[int, int] = {d: 0 for d in range(hx.num_dims)}
        for s in self.link_stats(cycle):
            d = hx.port_dim(s.src_router, s.src_port)
            sums[d] += s.utilization
            counts[d] += 1
        return {d: (sums[d] / counts[d] if counts[d] else 0.0) for d in sums}

    def hottest_links(self, cycle: int, n: int = 5) -> list[LinkStat]:
        """The ``n`` most utilized router channels."""
        return sorted(
            self.link_stats(cycle), key=lambda s: s.flits, reverse=True
        )[:n]

    def oversubscription_ratio(self, cycle: int) -> float:
        """max/mean link load: ~1 for balanced traffic, large for funnels."""
        stats = self.link_stats(cycle)
        loads = [s.flits for s in stats]
        mean = sum(loads) / len(loads) if loads else 0.0
        if mean == 0:
            return 1.0
        return max(loads) / mean

    # ------------------------------------------------------------------
    # Route-cache telemetry
    # ------------------------------------------------------------------

    def route_cache_stats(self) -> dict[str, float]:
        """Aggregate route-cache counters across every router.

        ``hits``/``misses`` count candidate-skeleton lookups by cacheable
        algorithms (stateful algorithms bypass the cache entirely and count
        in neither); ``evictions`` counts capacity evictions — nonzero means
        the working set of ``(destination, input-class)`` keys exceeded the
        per-router cap and the oldest entries were recycled.  ``hit_rate``
        is hits over lookups (0.0 before any lookup happens).
        """
        hits = misses = evictions = 0
        for r in self.network.routers:
            hits += r.route_cache_hits
            misses += r.route_cache_misses
            evictions += r.route_cache_evictions
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }

    # ------------------------------------------------------------------
    # Fault telemetry
    # ------------------------------------------------------------------

    def fault_counters(self) -> dict[str, int]:
        """Per-fault counters from the network's shared fault state.

        All zeros when the network was built on a pristine topology.
        ``masked_candidates`` counts ports filtered at candidate-computation
        time (cached candidate lists do not recount), ``revoked_routes``
        counts committed-but-unstarted routes undone by mid-run fault
        events, ``events_applied`` counts schedule events fired.
        """
        state = getattr(self.network, "fault_state", None)
        if state is None:
            return {
                "failed_links": 0,
                "failed_routers": 0,
                "degraded_links": 0,
                "masked_candidates": 0,
                "revoked_routes": 0,
                "events_applied": 0,
            }
        return {
            "failed_links": state.num_failed_links,
            "failed_routers": len(state.failed_routers),
            "degraded_links": len(state.degraded) // 2,
            "masked_candidates": state.masked_candidates,
            "revoked_routes": state.revoked_routes,
            "events_applied": state.events_applied,
        }

    # ------------------------------------------------------------------
    # Instantaneous state
    # ------------------------------------------------------------------

    def buffer_occupancy(self) -> dict[str, float]:
        """Mean and max input-VC occupancy across the network, in flits."""
        occ = []
        for r in self.network.routers:
            for iu in r.inputs:
                for vc in iu.vcs:
                    occ.append(vc.occupancy)
        if not occ:
            return {"mean": 0.0, "max": 0.0}
        return {"mean": sum(occ) / len(occ), "max": float(max(occ))}

    def vc_occupancy_by_class(self) -> dict[int, int]:
        """Total buffered flits per resource class (VC-map aware)."""
        vc_map = self.network.vc_map
        out = {k: 0 for k in range(vc_map.num_classes)}
        for r in self.network.routers:
            for iu in r.inputs:
                for vc_id, vc in enumerate(iu.vcs):
                    out[vc_map.class_of(vc_id)] += vc.occupancy
        return out
