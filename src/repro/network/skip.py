"""Event-compressing scheduler: cycle skip-ahead.

The activity sets (:mod:`repro.network.network`) make an idle cycle cheap;
this module makes runs of idle cycles *free* by not executing them at all.
After each executed cycle, when no terminal is active, the engine asks
:func:`next_event_bound` for the earliest future cycle at which anything can
happen and advances the clock straight there.  The bound is the min over
lower bounds the simulator already maintains for other reasons:

* ``Channel._next_ready`` — the earliest cycle a busy channel's head item
  can deliver (exact after any delivery pass, conservative after a push);
* ``Router._stage_ready[port]`` — the earliest cycle an output port with
  staged payload can emit (earliest staged head still in the crossbar, or
  the end of a degraded link's ``min_gap`` window);
* process wakeups — every registered process that declares
  ``skip_safe = True`` must also expose ``next_wakeup(cycle) -> int | None``
  returning the earliest cycle at (or after) ``cycle`` at which calling it
  could change simulation state, or ``None`` for "never again".  Traffic
  generators scan their Bernoulli draws ahead (in exact per-cycle RNG
  order — see :mod:`repro.traffic.injection`), the fault injector reports
  its next scheduled event, and the time-series sampler its next window
  boundary.

Every bound is *conservative*: a stale-low value (e.g. ``_stage_ready``
zeroed by ``Network.invalidate_route_caches``) merely vetoes the jump for
one cycle, after which the executed pass refreshes it.  Landing early is
always safe — the engine re-checks and re-jumps — so correctness never
depends on a bound being tight.

Two veto rules keep the executed-cycle state in lockstep with per-cycle
stepping:

* a router with any *awake* active input VC may compute routes or forward
  on the very next cycle, so it pins the bound to "now";
* a router holding an ``_active_out`` entry whose staged count is zero is
  one step away from dropping out of the activity sets; it is stepped (not
  skipped over) so ``Network.quiescent`` flips on the same cycle under
  both modes.

Eligibility mirrors the SoA pattern (:func:`repro.network.soa.fallback_reason`):
:func:`skip_fallback_reason` is re-checked on every ``run()`` call, and any
process not marked ``skip_safe`` — the runtime sanitizer, the application
engine — routes the run through plain per-cycle stepping, with the reason
recorded in ``Simulator.skip_fallback_reason``.  The ``skip-on-vs-off``
differential oracle in ``python -m repro check`` replays a sweep under both
modes and demands byte-identical curves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network
    from .simulator import Simulator


def skip_fallback_reason(sim: "Simulator") -> str | None:
    """Why this ``run()`` call must step every cycle; None when skip-ahead
    applies.

    Checked per ``run()`` call (one flag read plus one scan over the
    registered processes) so observers attached or detached between runs
    take effect immediately.  A process opts in by exposing
    ``skip_safe = True`` *and* implementing ``next_wakeup`` — the bundled
    traffic generators, the fault injector, and the time-series sampler
    do; the runtime sanitizer deliberately does not, which keeps checked
    runs on the per-cycle reference path the oracle compares against.
    """
    if not sim.network.cfg.router.cycle_skip:
        return "RouterConfig.cycle_skip is off"
    for proc in sim.processes:
        if not getattr(proc, "skip_safe", False):
            return f"process {type(proc).__name__} is not marked skip_safe"
    return None


def next_event_bound(
    network: "Network",
    processes: list[Callable[[int], None]],
    cycle: int,
    end: int,
) -> int:
    """Earliest cycle in ``[cycle, end]`` at which anything can happen.

    ``cycle`` is the next cycle the engine would execute; a return value of
    ``cycle`` means "this cycle must run" (no jump), a value ``B > cycle``
    means cycles ``cycle .. B-1`` are provably inert and the clock may move
    straight to ``B``.  The caller guarantees no terminal is active.

    The result is a conservative lower bound built from state the simulator
    maintains anyway (see the module docstring); each contributing bound at
    or below ``cycle`` short-circuits to an immediate veto.
    """
    bound = end
    for ch in network._active_channels:
        nr = ch._next_ready
        if nr < bound:
            if nr <= cycle:
                return cycle
            bound = nr
    for r in network._active_routers:
        ai = r._active_in
        # An awake input VC may route or forward next cycle: veto.  (All
        # asleep = the input pass is a no-op until a credit delivery —
        # already bounded by its channel — wakes one.)
        if ai and len(r._asleep) < len(ai):
            return cycle
        if r._active_out:
            staged_count = r._staged_count
            stage_ready = r._stage_ready
            for port in r._active_out:
                if staged_count[port] == 0:
                    # Cleanup pending: the next output pass drops this
                    # entry (and maybe the router) from the activity sets.
                    # Step it so quiescence flips on the per-cycle schedule.
                    return cycle
                sr = stage_ready[port]
                if sr < bound:
                    if sr <= cycle:
                        return cycle
                    bound = sr
    for proc in processes:
        w = proc.next_wakeup(cycle)
        if w is not None and w < bound:
            if w <= cycle:
                return cycle
            bound = w
    return bound
