"""The combined input/output-queued (CIOQ) router model.

This reproduces the router architecture of the paper's evaluation (Section 6):

* per-input-port, per-VC buffered inputs with credit-based flow control,
* a routing stage that asks the configured :class:`RoutingAlgorithm` for the
  valid candidates and scores each with the paper's weight
  ``congestion x hopcount`` from locally observable state,
* wormhole virtual-channel allocation (an output VC is held by one packet
  from head to tail),
* an internal datapath with *speedup* so that the crossbar is not the
  bottleneck ("sufficient speedup to ensure the internal router datapath is
  not a bottleneck"), modelled as per-input-port forwarding speedup into
  per-output staging queues,
* a fixed crossbar traversal latency,
* age-based arbitration for the output channel (the oldest packet in the
  network wins), as used for both VC and crossbar scheduling in the paper.

Routing decisions for adaptive algorithms are re-evaluated every cycle while
a packet waits, which is precisely what allows incremental algorithms to react
to congestion at every hop.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from ..core.base import NoRouteError, RouteCandidate, RouteContext
from ..core.weights import get_estimator, route_weight
from .buffers import CreditTracker, InputUnit, VcRoute
from .channel import Channel
from .types import Flit

if TYPE_CHECKING:  # pragma: no cover
    from ..config import SimConfig
    from ..core.base import RoutingAlgorithm
    from ..core.vcmap import VcMap
    from ..topology.base import Topology


def _hook_fanout(hooks: list):
    """Collapse a hook list into the single-slot fast-path representation:
    None when empty, the hook itself when alone, a dispatch closure else."""
    if not hooks:
        return None
    if len(hooks) == 1:
        return hooks[0]
    frozen = tuple(hooks)

    def dispatch(*args):
        for h in frozen:
            h(*args)

    return dispatch


class Router:
    """One router of the simulated network."""

    def __init__(
        self,
        router_id: int,
        topology: "Topology",
        algorithm: "RoutingAlgorithm",
        vc_map: "VcMap",
        cfg: "SimConfig",
        rng: np.random.Generator,
        dest_router: list[int] | None = None,
        ports: "list[tuple[int, object]] | None" = None,
    ):
        self.router_id = router_id
        self.topology = topology
        self.algorithm = algorithm
        self.vc_map = vc_map
        self.cfg = cfg
        self.rng = rng
        rc = cfg.router
        self.num_vcs = rc.num_vcs
        self.radix = topology.radix(router_id)
        self._estimator = get_estimator(rc.congestion_mode)
        self._buffer_depth = rc.buffer_depth

        # Which ports face terminals (ejection targets / injection sources).
        # The Network builder passes its own (port, peer) walk in via
        # ``ports`` so topology.peer() runs once per port per build instead
        # of twice; standalone routers (unit tests) walk it themselves.
        self.terminal_ports: set[int] = set()
        self.terminal_of_port: dict[int, int] = {}
        for port, peer in (ports if ports is not None
                           else topology.router_ports(router_id)):
            if peer.is_terminal:
                self.terminal_ports.add(port)
                self.terminal_of_port[port] = peer.terminal

        # Input side.
        self.inputs = [InputUnit(self.num_vcs, rc.buffer_depth) for _ in range(self.radix)]
        self._credit_return: list[Channel | None] = [None] * self.radix

        # Output side.
        self.credit_trackers: list[CreditTracker | None] = [None] * self.radix
        self.out_channels: list[Channel | None] = [None] * self.radix
        # Preresolved (channel, staged-queues, live-VC list) per wired output
        # port; the _active_out values the output pass works from.
        self._out_ent: list[tuple | None] = [None] * self.radix
        self.out_vc_owner: list[list[int | None]] = [
            [None] * self.num_vcs for _ in range(self.radix)
        ]
        # staged[port][vc]: deque of (ready_cycle, flit) past the crossbar
        self.staged: list[list[deque]] = [
            [deque() for _ in range(self.num_vcs)] for _ in range(self.radix)
        ]
        self._staged_count = [0] * self.radix

        # Active-set bookkeeping.  _active_in is a *sorted* list of live
        # flat input keys (``port * num_vcs + vc``); the input pass iterates
        # it in ascending (port, vc) order and resolves each key through
        # _in_ents, the preresolved (VcState, fifo, port, vc) entries built
        # once per input port by make_flit_sink.  Keeping the schedule
        # canonical — a static property of the wiring, not of arrival
        # history — makes every within-cycle delivery interleaving
        # observationally equivalent, which is what lets the sharded engine
        # (repro.network.shard) reproduce single-process arbitration
        # byte-for-byte from per-shard state alone.
        self._active_in: list[int] = []
        self._in_ents: list[tuple | None] = [None] * (self.radix * self.num_vcs)
        # _active_out maps port -> (channel, staged queues, live-VC list),
        # the preresolved entry built by attach_output.  Insertion order is
        # the order the input pass first stages to each port — a function of
        # the canonical input schedule, so it is reproducible too.
        self._active_out: dict[int, tuple] = {}

        # Sequential allocation (Section 4.1): flits committed by routing
        # decisions earlier in the SAME cycle, visible to later decisions.
        self._sequential = rc.sequential_allocation
        self._pending_commit = [0] * self.radix

        # Output arbitration: age-based (the paper's choice) or round-robin.
        if rc.arbiter not in ("age", "round_robin"):
            raise ValueError(f"unknown arbiter {rc.arbiter!r}")
        self._age_arbitration = rc.arbiter == "age"
        self._rr_next = [0] * self.radix  # per-port rotating VC priority

        # Telemetry.
        self.flits_forwarded = 0
        self.routes_computed = 0
        self.route_stalls = 0  # cycles a head packet had no feasible candidate

        # Hot-path hoists: resolve config/attribute chains once instead of on
        # every cycle (profiled; the lookups dominate loaded-cycle cost).
        self._speedup = rc.input_speedup
        self._xbar_lat = rc.xbar_latency
        self._stage_cap = rc.output_queue_depth * self.num_vcs
        self._port_scope = rc.congestion_scope == "port"
        self._track_vc_trace = cfg.network.track_vc_trace
        # Shared references into the VcMap's own tables: identical for every
        # router of a network, read-only on this side, and rebuilding them
        # per router was a measurable slice of large-network construction.
        self._vcs_of = vc_map._groups
        self._class_of = vc_map._class_of
        self._is_term_port = [p in self.terminal_ports for p in range(self.radix)]
        # Destination router per terminal, tabulated: _compute_route resolves
        # the dest router with one list index instead of a topology call per
        # routing decision.  The table is identical for every router of a
        # network, so the Network builder computes it once and shares it —
        # tabulating it per router made construction O(routers x terminals)
        # and was the dominant cost of building large networks.  Standalone
        # routers (unit tests) tabulate their own.
        self._dest_router = dest_router if dest_router is not None else [
            topology.router_of_terminal(t) for t in range(topology.num_terminals)
        ]

        # Per-cycle scratch, allocated once and reset sparsely via the
        # touched lists (see _step_inputs).
        self._port_budget = [0] * self.radix
        self._budget_touched: list[int] = []
        self._commit_touched: list[int] = []

        # port -> (fifos, keys, ents) captured by make_flit_sink; the SoA
        # core's delivery records alias these instead of rebuilding them.
        self._sink_refs: dict[int, tuple[list, list, list]] = {}

        # Pre-drawn tie-break jitter: one generator call per 4096 draws
        # instead of one rng.random() per candidate scored.  Drawn lazily on
        # the first routing decision — the router's rng feeds nothing else,
        # so the stream is unchanged, and idle routers (most of a large
        # network at construction time) never pay for the block.
        self._jitter: list[float] | None = None
        self._jitter_idx = 0

        # Memoised candidate *skeletons* for stateless algorithms (see
        # RoutingAlgorithm.cache_key and _build_skeleton): each entry
        # pre-resolves, per candidate, everything the scoring loop needs —
        # hops, the VC group of its class, and the output port's credit
        # tracker / VC-owner list / staged queues — so a cache hit scores
        # congestion x precomputed-hops without re-deriving any of it.
        # Bounded so paper-scale runs stay bounded; on overflow the oldest
        # key is evicted in insertion (clock) order, O(1) and with zero
        # bookkeeping on the hit path.  A cap of 0 (cfg.router.route_cache
        # = False) disables memoisation entirely — the differential oracle
        # in repro.check replays runs cache-on vs cache-off and asserts
        # identical results.
        self._route_cache: dict = {}
        self._route_cache_cap = 8192 if rc.route_cache else 0
        self.route_cache_hits = 0
        self.route_cache_misses = 0
        self.route_cache_evictions = 0

        # Scoring fast path (cfg.router.scoring_kernel): score cached
        # skeletons with an inlined weight pass instead of the reference
        # _allocate_vc/port_congestion/route_weight call chain.  Both paths
        # are algebraically identical; `python -m repro check` proves them
        # byte-identical by replaying sweeps kernel-on vs kernel-off.
        self._scoring_kernel = rc.scoring_kernel
        self._est_inline = rc.congestion_mode == "credit_queue"
        self._port_denom = self.num_vcs * rc.buffer_depth

        # Event-driven stage scheduling (see _step_inputs/_step_outputs):
        # an input VC whose committed route is blocked on downstream credits
        # goes to sleep and is woken by the credit sink the cycle the credit
        # returns; per output port, only VCs with staged payload are scanned
        # and a port whose staged heads are all still in the crossbar (or
        # whose degraded link is in its min_gap window) is skipped until
        # `_stage_ready`.
        # Cycle skip-ahead (repro.network.skip) reuses these structures as
        # its router-level event bound: awake `_active_in` entries and
        # `_active_out` ports with an empty staging queue (cleanup pending)
        # veto jumping entirely; otherwise the min over `_stage_ready` of
        # active ports bounds when this router can next do work.  The
        # round-robin arbiter leaves `_stage_ready` untouched on a no-grant
        # pass, keeping it <= cycle — a standing veto, so staleness is
        # conservative there too.
        self._asleep: set[int] = set()  # flat input keys, as in _active_in
        self._credit_waiter: list[list[int | None]] = [
            [None] * self.num_vcs for _ in range(self.radix)
        ]
        self._staged_live: list[list[int]] = [[] for _ in range(self.radix)]
        self._stage_ready = [0] * self.radix
        # Reusable deferred-deletion scratch for the step loops: marking dead
        # keys and deleting after the pass lets the loops iterate the active
        # sets directly instead of copying them every cycle (nothing inserts
        # into these sets during the compute phase).
        self._dead_in: list[int] = []
        self._dead_out: list[int] = []

        # Route observation hooks (repro.check VC-legality sanitizer,
        # repro.obs tracer): registered via add_route_hook(), called as
        # (cycle, router, in_port, in_vc, ctx, cand, out_vc, scored) for
        # every committed route, where ``scored`` lists every candidate
        # considered as (cand, out_vc_or_None, weight_or_None).  The fast
        # path keeps a single slot: None when no hooks, the sole hook when
        # one, a fan-out closure otherwise — one is-None test per routing
        # decision when disabled.
        self._route_hook = None
        self._route_hooks: list = []
        # Switch-allocation observation hook: fired from _step_inputs as
        # (cycle, router, in_port, in_vc, out_port, out_vc, flit) every time
        # a flit crosses the crossbar into the staged output queue.
        self._forward_hook = None
        self._forward_hooks: list = []

        # Simulator activity registry.  The owning Network replaces this with
        # its shared registry before wiring; standalone routers (unit tests)
        # keep the private throwaway dict.
        self._wake_registry: dict["Router", None] = {}

    # ------------------------------------------------------------------
    # Wiring (called by the network builder)
    # ------------------------------------------------------------------

    def attach_output(self, port: int, data: Channel, credits: CreditTracker) -> None:
        self.out_channels[port] = data
        self.credit_trackers[port] = credits
        self._out_ent[port] = (data, self.staged[port], self._staged_live[port])

    def attach_credit_return(self, port: int, channel: Channel) -> None:
        self._credit_return[port] = channel

    # ------------------------------------------------------------------
    # Observation hooks (repro.check sanitizer, repro.obs tracer)
    # ------------------------------------------------------------------

    def add_route_hook(self, hook) -> None:
        """Register a route-observation hook.

        Hooks are called after every committed route decision as
        ``hook(cycle, router, in_port, in_vc, ctx, cand, out_vc, scored)``
        in registration order.  Registering the same hook twice (bound
        methods compare by ``__self__`` and ``__func__``, so a re-bound
        method of the same object still counts) is an error — it is the
        detach-residue bug class this API exists to prevent.
        """
        if hook in self._route_hooks:
            raise ValueError(f"route hook {hook!r} already registered")
        self._route_hooks.append(hook)
        self._route_hook = _hook_fanout(self._route_hooks)

    def remove_route_hook(self, hook) -> None:
        """Unregister a hook added by :meth:`add_route_hook`."""
        self._route_hooks.remove(hook)
        self._route_hook = _hook_fanout(self._route_hooks)

    def add_forward_hook(self, hook) -> None:
        """Register a switch-allocation hook, fired per forwarded flit as
        ``hook(cycle, router, in_port, in_vc, out_port, out_vc, flit)``."""
        if hook in self._forward_hooks:
            raise ValueError(f"forward hook {hook!r} already registered")
        self._forward_hooks.append(hook)
        self._forward_hook = _hook_fanout(self._forward_hooks)

    def remove_forward_hook(self, hook) -> None:
        """Unregister a hook added by :meth:`add_forward_hook`."""
        self._forward_hooks.remove(hook)
        self._forward_hook = _hook_fanout(self._forward_hooks)

    # ------------------------------------------------------------------
    # Channel sinks
    # ------------------------------------------------------------------

    def make_flit_sink(self, port: int):
        vcs = self.inputs[port].vcs
        depth = self.inputs[port].depth
        active = self._active_in
        wake = self._wake_registry
        # Flat input keys and preresolved work entries: the input pass
        # resolves (state, fifo, port, vc) with one list index per live key
        # instead of re-indexing inputs[port].vcs[vc] per cycle.
        keys = [port * self.num_vcs + v for v in range(self.num_vcs)]
        ents = [(vcs[v], vcs[v].fifo, port, v) for v in range(self.num_vcs)]
        for v in range(self.num_vcs):
            self._in_ents[keys[v]] = ents[v]

        fifos = [vcs[v].fifo for v in range(self.num_vcs)]
        # Shared with the SoA core's per-channel delivery record
        # (repro.network.soa), which would otherwise rebuild all three
        # lists per incoming channel — ~1.4 KB each, megabytes at scale.
        self._sink_refs[port] = (fifos, keys, ents)

        def sink(item: tuple[int, Flit]) -> None:
            # InputUnit.receive inlined (per-flit hot path).
            vc, flit = item
            fifo = fifos[vc]
            n = len(fifo)
            if n >= depth:
                raise RuntimeError(
                    f"buffer overflow on VC {vc}: credit protocol violated"
                )
            fifo.append(flit)
            if n == 0:
                # Empty->busy transition; a non-empty FIFO implies the key
                # is already registered (a key leaves the live list only in
                # the pass that observes its FIFO empty).
                insort(active, keys[vc])
                wake[self] = None

        return sink

    def active_input_keys(self) -> list[tuple[int, int]]:
        """The live input VCs as (port, vc) pairs, in schedule order
        (introspection for tests and tools; the hot path keeps flat keys)."""
        nv = self.num_vcs
        return [divmod(k, nv) for k in self._active_in]

    def make_credit_sink(self, port: int):
        """Sink for credits (bare VC ids) returned downstream of ``port``.

        Doubles as the wake-up path for event-driven input scheduling: an
        input VC that went to sleep blocked on this (port, vc) credit is
        re-armed the moment the credit returns — the same cycle the polling
        implementation would have succeeded, since credits are delivered in
        the channel phase before routers step.
        """
        tracker_ref = self.credit_trackers
        waiters = self._credit_waiter[port]
        asleep = self._asleep

        def sink(vc: int) -> None:
            # CreditTracker.restore inlined (per-flit hot path).
            tracker = tracker_ref[port]
            if tracker.credits[vc] >= tracker.depth:
                raise RuntimeError(f"credit overflow on VC {vc}")
            tracker.credits[vc] += 1
            tracker.occupied_total -= 1
            k = waiters[vc]
            if k is not None:
                waiters[vc] = None
                asleep.discard(k)

        return sink

    # ------------------------------------------------------------------
    # Congestion observation (RouterView protocol)
    # ------------------------------------------------------------------

    def class_congestion(self, out_port: int, vc_class: int) -> float:
        vcs = self._vcs_of[vc_class]
        tracker = self.credit_trackers[out_port]
        staged = self.staged[out_port]
        credits = tracker.credits
        depth = tracker.depth
        occ = 0
        stg = 0
        for v in vcs:
            occ += depth - credits[v]
            stg += len(staged[v])
        if self._sequential:
            stg += self._pending_commit[out_port]
        return self._estimator(occ, stg, len(vcs), self._buffer_depth)

    def port_congestion(self, out_port: int) -> float:
        tracker = self.credit_trackers[out_port]
        occ = tracker.occupied_total
        stg = self._staged_count[out_port]
        if self._sequential:
            stg += self._pending_commit[out_port]
        return self._estimator(occ, stg, self.num_vcs, self._buffer_depth)

    # ------------------------------------------------------------------
    # Per-cycle pipeline
    # ------------------------------------------------------------------

    def step(self, cycle: int) -> None:
        # Sleeping input VCs (blocked on downstream credits) stay in
        # _active_in so the router keeps stepping, but when *every* active
        # entry is asleep the whole input pass is a no-op and is skipped.
        active_in = self._active_in
        if active_in and len(self._asleep) < len(active_in):
            self._step_inputs(cycle)
        if self._active_out:
            self._step_outputs(cycle)

    @property
    def idle(self) -> bool:
        return not self._active_in and not self._active_out

    def _step_inputs(self, cycle: int) -> None:
        speedup = self._speedup
        budget = self._port_budget
        touched = self._budget_touched
        if touched:  # zero only the entries the previous cycle dirtied
            for p in touched:
                budget[p] = 0
            touched.clear()
        if self._sequential:
            ct = self._commit_touched
            if ct:
                pc = self._pending_commit
                for p in ct:
                    pc[p] = 0
                ct.clear()
        active = self._active_in
        in_ents = self._in_ents
        asleep = self._asleep
        trackers = self.credit_trackers
        staged_count = self._staged_count
        stage_cap = self._stage_cap
        xbar_lat = self._xbar_lat
        staged = self.staged
        staged_live = self._staged_live
        active_out = self._active_out
        out_ents = self._out_ent
        credit_return = self._credit_return
        forward_hook = self._forward_hook
        dead = self._dead_in
        forwarded = 0
        # Keys enter _asleep only from inside this loop, and a key just put
        # to sleep is never revisited in the same pass — so when the set is
        # empty at loop entry the membership test can be skipped entirely.
        check_asleep = bool(asleep)
        for key in active:
            if check_asleep and key in asleep:
                continue  # blocked on credits; the credit sink wakes it
            state, fifo, port, vc = in_ents[key]
            if not fifo:
                dead.append(key)
                continue
            if budget[port] >= speedup:
                continue
            route = state.route
            if route is None:
                head = fifo[0]
                if not head.is_head:
                    raise RuntimeError("non-head flit with no route: VC protocol bug")
                route = self._compute_route(cycle, port, vc, head)
                if route is None:
                    self.route_stalls += 1
                    continue
                state.route = route
            # Switch allocation + crossbar traversal, inlined (this is the
            # per-flit hot path; it was a _try_forward method once).
            out_port = route.out_port
            out_vc = route.out_vc
            tracker = trackers[out_port]
            if tracker.credits[out_vc] <= 0:
                # Sleep until the credit sink restores this exact (port, VC).
                # The single waiter slot is sound because an output VC is
                # owned by exactly one in-flight packet (wormhole VC
                # allocation).
                self._credit_waiter[out_port][out_vc] = key
                asleep.add(key)
                continue
            sc = staged_count[out_port]
            if sc >= stage_cap:
                continue  # frees locally via _step_outputs; keep polling
            flit = fifo.popleft()
            # CreditTracker.consume inlined; the underflow check is the
            # credit test a few lines up.
            tracker.credits[out_vc] -= 1
            tracker.occupied_total += 1
            sq = staged[out_port][out_vc]
            if not sq:
                insort(staged_live[out_port], out_vc)
            sq.append((cycle + xbar_lat, flit))
            staged_count[out_port] = sc + 1
            if sc == 0:
                # Empty->busy transition: register the port.  Re-assigning
                # an already-present key never moves it in a dict, so
                # storing only on the transition leaves the (deterministic)
                # port iteration order exactly as before.
                active_out[out_port] = out_ents[out_port]
            forwarded += 1
            if budget[port] == 0:
                touched.append(port)
            budget[port] += 1
            # Return a credit (bare VC id) upstream for the freed input slot
            # (Channel.push inlined; credit channels are not rate limited).
            cr = credit_return[port]
            if cr is not None:
                if cr.limit_rate:
                    if cycle <= cr._last_push_cycle:
                        raise RuntimeError(
                            f"channel {cr.name!r} pushed twice in cycle {cycle}"
                        )
                    cr._last_push_cycle = cycle
                cr.utilization_count += 1
                ready = cycle + cr.latency
                pipe = cr._pipe
                if not pipe:
                    cr._next_ready = ready
                    if cr._active_set is not None:
                        cr._active_set[cr] = None
                pipe.append((ready, vc))
            if forward_hook is not None:
                forward_hook(cycle, self, port, vc, out_port, out_vc, flit)
            if flit.index == flit.packet.size - 1:  # tail flit
                self.out_vc_owner[out_port][out_vc] = None
                state.route = None
            if not fifo:
                dead.append(key)
        if forwarded:
            self.flits_forwarded += forwarded
        if dead:
            for key in dead:
                active.remove(key)
            dead.clear()

    def _step_outputs(self, cycle: int) -> None:
        staged_count = self._staged_count
        active = self._active_out
        stage_ready = self._stage_ready
        dead = self._dead_out
        age = self._age_arbitration
        for port, ent in active.items():
            if staged_count[port] == 0:
                dead.append(port)
                continue
            # Event-driven skip: _stage_ready holds a proven lower bound on
            # the next cycle this port can emit (earliest staged head still
            # in the crossbar, or the end of a degraded link's min_gap
            # window).  The bound stays valid under pushes because a newly
            # staged flit is never ready earlier than heads staged before it.
            if cycle < stage_ready[port]:
                continue
            ch, staged, live = ent
            # Degraded-bandwidth link (fault injection): at most one flit
            # every min_gap cycles.  Healthy channels short-circuit on the
            # first comparison.
            if ch.min_gap > 1 and cycle - ch._last_push_cycle < ch.min_gap:
                stage_ready[port] = ch._last_push_cycle + ch.min_gap
                continue
            best_vc = -1
            if age:
                if len(live) == 1:
                    # Overwhelmingly common under load: one VC with staged
                    # payload — no arbitration, just the crossbar-exit check.
                    v = live[0]
                    if staged[v][0][0] > cycle:
                        stage_ready[port] = staged[v][0][0]
                        continue
                    best_vc = v
                else:
                    # Age arbitration over the live VCs' ready heads.  The
                    # (create_cycle, pid) age key is compared as two ints to
                    # avoid a tuple per candidate; pids are unique so the
                    # lexicographic order is total.
                    bc = bp = 0
                    next_ready = -1
                    for v in live:
                        ready, flit = staged[v][0]
                        if ready <= cycle:
                            p = flit.packet
                            c = p.create_cycle
                            if (
                                best_vc < 0
                                or c < bc
                                or (c == bc and p.pid < bp)
                            ):
                                bc = c
                                bp = p.pid
                                best_vc = v
                        elif next_ready < 0 or ready < next_ready:
                            next_ready = ready
                    if best_vc < 0:
                        # Every staged head is still in the crossbar: sleep
                        # the port until the earliest one emerges.
                        if next_ready > 0:
                            stage_ready[port] = next_ready
                        continue
            else:  # round-robin over VCs with a ready head flit
                base = self._rr_next[port]
                for off in range(self.num_vcs):
                    v = (base + off) % self.num_vcs
                    q = staged[v]
                    if q and q[0][0] <= cycle:
                        best_vc = v
                        self._rr_next[port] = (v + 1) % self.num_vcs
                        break
                if best_vc < 0:
                    continue  # nothing past the crossbar yet this cycle
            q = staged[best_vc]
            _, flit = q.popleft()
            if not q:
                live.remove(best_vc)
            staged_count[port] -= 1
            # Channel.push inlined (per-flit hot path).
            if ch.limit_rate:
                if cycle <= ch._last_push_cycle:
                    raise RuntimeError(
                        f"channel {ch.name!r} pushed twice in cycle {cycle}"
                    )
                ch._last_push_cycle = cycle
            ch.utilization_count += 1
            ready = cycle + ch.latency
            pipe = ch._pipe
            if not pipe:
                ch._next_ready = ready
                if ch._active_set is not None:
                    ch._active_set[ch] = None
            pipe.append((ready, (best_vc, flit)))
            if staged_count[port] == 0:
                dead.append(port)
        if dead:
            for port in dead:
                del active[port]
            dead.clear()

    # ------------------------------------------------------------------
    # Route computation
    # ------------------------------------------------------------------

    def _compute_route(self, cycle: int, port: int, vc: int, head: Flit) -> VcRoute | None:
        packet = head.packet
        self.routes_computed += 1
        dest_router = self._dest_router[packet.dst_terminal]
        if dest_router == self.router_id:
            return self._route_ejection(port, vc, packet)

        from_terminal = self._is_term_port[port]
        ctx = RouteContext(
            router=self,
            packet=packet,
            input_port=port,
            input_vc_class=0 if from_terminal else self._class_of[vc],
            from_terminal=from_terminal,
        )
        algorithm = self.algorithm
        ck = algorithm.cache_key(ctx, dest_router)
        if ck is None:
            # Stateful (uncacheable) algorithm: no skeleton to amortise, so
            # score straight off the candidate list with the reference loop.
            cands = algorithm.candidates(ctx)
            if not cands:
                raise NoRouteError(
                    f"{algorithm.name} returned no candidates at router "
                    f"{self.router_id} for packet {packet.pid}"
                )
            return self._choose_reference(cycle, port, vc, ctx, cands)
        cache = self._route_cache
        skel = cache.get(ck)
        if skel is None:
            self.route_cache_misses += 1
            cands = algorithm.candidates(ctx)
            if not cands:
                raise NoRouteError(
                    f"{algorithm.name} returned no candidates at router "
                    f"{self.router_id} for packet {packet.pid}"
                )
            skel = self._build_skeleton(cands)
            if self._route_cache_cap:
                if len(cache) >= self._route_cache_cap:
                    del cache[next(iter(cache))]
                    self.route_cache_evictions += 1
                cache[ck] = skel
        else:
            self.route_cache_hits += 1
        if self._scoring_kernel:
            return self._choose_fast(cycle, port, vc, ctx, skel)
        return self._choose_reference(cycle, port, vc, ctx, [e[0] for e in skel])

    def _build_skeleton(self, cands: list[RouteCandidate]) -> list[tuple]:
        """Pre-resolve everything the scoring loop reads per candidate.

        Built once per cache fill; the referenced trackers / owner lists /
        staged queues are the router's own long-lived mutable objects, so a
        cached skeleton always observes current congestion state.
        """
        vcs_of = self._vcs_of
        trackers = self.credit_trackers
        owners = self.out_vc_owner
        staged = self.staged
        return [
            (
                c,
                c.out_port,
                vcs_of[c.vc_class],
                c.hops,
                trackers[c.out_port],
                owners[c.out_port],
                staged[c.out_port],
            )
            for c in cands
        ]

    def _choose_fast(self, cycle: int, port: int, vc: int, ctx: RouteContext,
                     skel: list[tuple]) -> VcRoute | None:
        """Scoring kernel: one batched weight pass over a skeleton.

        Algebraically identical to _choose_reference — same VC allocation
        scan, the same (occ + stg) / (group * depth) congestion estimate
        with the same integer denominator (so the floats match bit-for-bit),
        the same (congestion + bias) * hops weight, and the same jitter
        consumption (one draw per *feasible* candidate) — with every
        attribute chain and function call hoisted out of the loop.
        """
        port_scope = self._port_scope
        seq = self._sequential
        pending = self._pending_commit
        staged_count = self._staged_count
        est = self._estimator
        inline_cq = self._est_inline
        denom = self._port_denom
        depth = self._buffer_depth
        nv = self.num_vcs
        jitter = self._jitter
        if jitter is None:
            jitter = self._jitter = self.rng.random(4096).tolist()
        jidx = self._jitter_idx
        hook = self._route_hook
        scored: list | None = [] if hook is not None else None
        best_cand: RouteCandidate | None = None
        best_out_vc = -1
        best_w = best_j = 0.0
        for cand, out_port, vcs, hops, tracker, owner, staged in skel:
            credits = tracker.credits
            best_vc = -1
            bc = 0
            for v in vcs:
                if owner[v] is None:
                    c = credits[v]
                    if c > bc:
                        bc = c
                        best_vc = v
            if best_vc < 0:
                if scored is not None:
                    scored.append((cand, None, None))
                continue
            if port_scope:
                occ = tracker.occupied_total
                stg = staged_count[out_port]
                if seq:
                    stg += pending[out_port]
                if inline_cq:
                    w = ((occ + stg) / denom + 1.0) * hops
                else:
                    w = (est(occ, stg, nv, depth) + 1.0) * hops
            else:
                occ = 0
                stg = 0
                for v in vcs:
                    occ += depth - credits[v]
                    stg += len(staged[v])
                if seq:
                    stg += pending[out_port]
                if inline_cq:
                    w = ((occ + stg) / (len(vcs) * depth) + 1.0) * hops
                else:
                    w = (est(occ, stg, len(vcs), depth) + 1.0) * hops
            j = jitter[jidx]
            jidx = (jidx + 1) & 4095
            if scored is not None:
                scored.append((cand, best_vc, w))
            if best_cand is None or w < best_w or (w == best_w and j < best_j):
                best_cand = cand
                best_out_vc = best_vc
                best_w = w
                best_j = j
        self._jitter_idx = jidx
        if best_cand is None:
            return None
        return self._commit_choice(cycle, port, vc, ctx, best_cand,
                                   best_out_vc, scored)

    def _choose_reference(self, cycle: int, port: int, vc: int,
                          ctx: RouteContext,
                          cands: list[RouteCandidate]) -> VcRoute | None:
        """Reference scoring loop (scoring_kernel = False and uncacheable
        algorithms): the straightforward _allocate_vc / port_congestion /
        route_weight call chain the kernel is checked against."""
        packet = ctx.packet
        port_scope = self._port_scope
        jitter = self._jitter
        if jitter is None:
            jitter = self._jitter = self.rng.random(4096).tolist()
        jidx = self._jitter_idx
        hook = self._route_hook
        # Candidate record for observers, built only when a hook is attached
        # so the tracer never re-runs candidates()/scoring (which would
        # perturb fault counters and the jitter stream).
        scored: list | None = [] if hook is not None else None
        best_cand: RouteCandidate | None = None
        best_out_vc = -1
        best_w = best_j = 0.0
        for cand in cands:
            out_vc = self._allocate_vc(cand.out_port, cand.vc_class, packet.pid)
            if out_vc is None:
                if scored is not None:
                    scored.append((cand, None, None))
                continue
            if port_scope:
                congestion = self.port_congestion(cand.out_port)
            else:
                congestion = self.class_congestion(cand.out_port, cand.vc_class)
            w = route_weight(congestion, cand.hops)
            j = jitter[jidx]
            jidx = (jidx + 1) & 4095
            if scored is not None:
                scored.append((cand, out_vc, w))
            if best_cand is None or w < best_w or (w == best_w and j < best_j):
                best_cand = cand
                best_out_vc = out_vc
                best_w = w
                best_j = j
        self._jitter_idx = jidx
        if best_cand is None:
            return None
        return self._commit_choice(cycle, port, vc, ctx, best_cand,
                                   best_out_vc, scored)

    def _commit_choice(self, cycle: int, port: int, vc: int,
                       ctx: RouteContext, cand: RouteCandidate, out_vc: int,
                       scored: list | None) -> VcRoute:
        """Shared dispatch tail: commit, ownership, telemetry, hooks."""
        packet = ctx.packet
        self.algorithm.commit(ctx, cand)
        self.out_vc_owner[cand.out_port][out_vc] = packet.pid
        if self._sequential:
            if self._pending_commit[cand.out_port] == 0:
                self._commit_touched.append(cand.out_port)
            self._pending_commit[cand.out_port] += packet.size
        packet.hops += 1
        if cand.deroute:
            packet.deroutes += 1
        if self._track_vc_trace:
            if packet.vc_trace is None:
                packet.vc_trace = []
                packet.port_trace = []
            packet.vc_trace.append(out_vc)
            packet.port_trace.append(cand.out_port)
        hook = self._route_hook
        if hook is not None:
            hook(cycle, self, port, vc, ctx, cand, out_vc, scored)
        return VcRoute(cand.out_port, out_vc, packet.pid, cand.deroute)

    def revoke_unstarted_routes(self, ports: set[int]) -> int:
        """Un-commit routes through ``ports`` whose wormhole has not started.

        Called by the fault injector when output ports fail mid-run.  A route
        is revocable only while its head flit is still first in the input
        FIFO (``index == 0`` at the head means zero flits were forwarded, so
        zero downstream credits were consumed): the output-VC ownership is
        released, the packet's hop/deroute telemetry is un-counted, and the
        input VC is re-woken so the next cycle recomputes a route over the
        surviving candidates.  Routes whose transfer already started are left
        alone — the flits drain over the physically-present channel
        (fail-stop at routing granularity, lossless drain).  Returns the
        number of routes revoked.
        """
        revoked = 0
        for port in range(self.radix):
            unit = self.inputs[port]
            for vc, state in enumerate(unit.vcs):
                route = state.route
                if route is None or route.out_port not in ports:
                    continue
                head = state.fifo[0] if state.fifo else None
                if head is None or not head.is_head or head.index != 0:
                    continue  # transfer started (or head already moved on): drain
                flat = port * self.num_vcs + vc
                self.out_vc_owner[route.out_port][route.out_vc] = None
                # The revoked route may be asleep waiting on a credit that
                # will never matter again; wake it so the re-route runs.
                self._credit_waiter[route.out_port][route.out_vc] = None
                self._asleep.discard(flat)
                state.route = None
                packet = head.packet
                packet.hops -= 1
                if route.deroute:
                    packet.deroutes -= 1
                if self._track_vc_trace and packet.vc_trace:
                    packet.vc_trace.pop()
                    packet.port_trace.pop()
                # A revocable head implies a non-empty FIFO, so the key is
                # already live; the membership check is defensive (cold path).
                if self._in_ents[flat] is None:
                    self._in_ents[flat] = (state, state.fifo, port, vc)
                if flat not in self._active_in:
                    insort(self._active_in, flat)
                self._wake_registry[self] = None
                revoked += 1
        return revoked

    def _allocate_vc(self, out_port: int, vc_class: int, pid: int) -> int | None:
        """Pick a free, credited VC in the class group; None when infeasible."""
        credits = self.credit_trackers[out_port].credits
        owner = self.out_vc_owner[out_port]
        best_vc = None
        best_credits = 0
        for v in self._vcs_of[vc_class]:
            if owner[v] is None:
                c = credits[v]
                if c > best_credits:
                    best_credits = c
                    best_vc = v
        return best_vc

    def _route_ejection(self, port: int, vc: int, packet) -> VcRoute | None:
        dst = packet.dst_terminal
        out_port = None
        for p, t in self.terminal_of_port.items():
            if t == dst:
                out_port = p
                break
        if out_port is None:
            raise RuntimeError(
                f"packet {packet.pid} for terminal {dst} reached router "
                f"{self.router_id}, which does not host it"
            )
        # Any free VC with credit; the ejection channel has no deadlock cycle.
        best_vc = self._allocate_vc(out_port, 0, packet.pid)
        if best_vc is None and self.vc_map.num_classes > 1:
            for klass in range(1, self.vc_map.num_classes):
                best_vc = self._allocate_vc(out_port, klass, packet.pid)
                if best_vc is not None:
                    break
        if best_vc is None:
            return None
        self.out_vc_owner[out_port][best_vc] = packet.pid
        if self.cfg.network.track_vc_trace and packet.vc_trace is not None:
            pass  # ejection hop not part of the router-to-router VC trace
        return VcRoute(out_port, best_vc, packet.pid)
