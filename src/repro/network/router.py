"""The combined input/output-queued (CIOQ) router model.

This reproduces the router architecture of the paper's evaluation (Section 6):

* per-input-port, per-VC buffered inputs with credit-based flow control,
* a routing stage that asks the configured :class:`RoutingAlgorithm` for the
  valid candidates and scores each with the paper's weight
  ``congestion x hopcount`` from locally observable state,
* wormhole virtual-channel allocation (an output VC is held by one packet
  from head to tail),
* an internal datapath with *speedup* so that the crossbar is not the
  bottleneck ("sufficient speedup to ensure the internal router datapath is
  not a bottleneck"), modelled as per-input-port forwarding speedup into
  per-output staging queues,
* a fixed crossbar traversal latency,
* age-based arbitration for the output channel (the oldest packet in the
  network wins), as used for both VC and crossbar scheduling in the paper.

Routing decisions for adaptive algorithms are re-evaluated every cycle while
a packet waits, which is precisely what allows incremental algorithms to react
to congestion at every hop.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from ..core.base import NoRouteError, RouteCandidate, RouteContext
from ..core.weights import get_estimator, route_weight
from .buffers import CreditTracker, InputUnit, VcRoute
from .channel import Channel
from .types import Flit

if TYPE_CHECKING:  # pragma: no cover
    from ..config import SimConfig
    from ..core.base import RoutingAlgorithm
    from ..core.vcmap import VcMap
    from ..topology.base import Topology


def _hook_fanout(hooks: list):
    """Collapse a hook list into the single-slot fast-path representation:
    None when empty, the hook itself when alone, a dispatch closure else."""
    if not hooks:
        return None
    if len(hooks) == 1:
        return hooks[0]
    frozen = tuple(hooks)

    def dispatch(*args):
        for h in frozen:
            h(*args)

    return dispatch


class Router:
    """One router of the simulated network."""

    def __init__(
        self,
        router_id: int,
        topology: "Topology",
        algorithm: "RoutingAlgorithm",
        vc_map: "VcMap",
        cfg: "SimConfig",
        rng: np.random.Generator,
    ):
        self.router_id = router_id
        self.topology = topology
        self.algorithm = algorithm
        self.vc_map = vc_map
        self.cfg = cfg
        self.rng = rng
        rc = cfg.router
        self.num_vcs = rc.num_vcs
        self.radix = topology.radix(router_id)
        self._estimator = get_estimator(rc.congestion_mode)
        self._buffer_depth = rc.buffer_depth

        # Which ports face terminals (ejection targets / injection sources).
        self.terminal_ports: set[int] = set()
        self.terminal_of_port: dict[int, int] = {}
        for port, peer in topology.router_ports(router_id):
            if peer.is_terminal:
                self.terminal_ports.add(port)
                self.terminal_of_port[port] = peer.terminal

        # Input side.
        self.inputs = [InputUnit(self.num_vcs, rc.buffer_depth) for _ in range(self.radix)]
        self._credit_return: list[Channel | None] = [None] * self.radix

        # Output side.
        self.credit_trackers: list[CreditTracker | None] = [None] * self.radix
        self.out_channels: list[Channel | None] = [None] * self.radix
        self.out_vc_owner: list[list[int | None]] = [
            [None] * self.num_vcs for _ in range(self.radix)
        ]
        # staged[port][vc]: deque of (ready_cycle, flit) past the crossbar
        self.staged: list[list[deque]] = [
            [deque() for _ in range(self.num_vcs)] for _ in range(self.radix)
        ]
        self._staged_count = [0] * self.radix

        # Active-set bookkeeping (dicts preserve deterministic insertion order).
        self._active_in: dict[tuple[int, int], bool] = {}
        self._active_out: dict[int, bool] = {}

        # Sequential allocation (Section 4.1): flits committed by routing
        # decisions earlier in the SAME cycle, visible to later decisions.
        self._sequential = rc.sequential_allocation
        self._pending_commit = [0] * self.radix

        # Output arbitration: age-based (the paper's choice) or round-robin.
        if rc.arbiter not in ("age", "round_robin"):
            raise ValueError(f"unknown arbiter {rc.arbiter!r}")
        self._age_arbitration = rc.arbiter == "age"
        self._rr_next = [0] * self.radix  # per-port rotating VC priority

        # Telemetry.
        self.flits_forwarded = 0
        self.routes_computed = 0
        self.route_stalls = 0  # cycles a head packet had no feasible candidate

        # Hot-path hoists: resolve config/attribute chains once instead of on
        # every cycle (profiled; the lookups dominate loaded-cycle cost).
        self._speedup = rc.input_speedup
        self._xbar_lat = rc.xbar_latency
        self._stage_cap = rc.output_queue_depth * self.num_vcs
        self._port_scope = rc.congestion_scope == "port"
        self._track_vc_trace = cfg.network.track_vc_trace
        self._vcs_of = [vc_map.vcs_of(k) for k in range(vc_map.num_classes)]
        self._class_of = [vc_map.class_of(v) for v in range(self.num_vcs)]
        self._is_term_port = [p in self.terminal_ports for p in range(self.radix)]
        self._router_of_term = topology.router_of_terminal

        # Per-cycle scratch, allocated once and reset sparsely via the
        # touched lists (see _step_inputs).
        self._port_budget = [0] * self.radix
        self._budget_touched: list[int] = []
        self._commit_touched: list[int] = []

        # Pre-drawn tie-break jitter: one generator call per 4096 draws
        # instead of one rng.random() per candidate scored.
        self._jitter: list[float] = rng.random(4096).tolist()
        self._jitter_idx = 0

        # Memoised candidate lists for stateless algorithms (see
        # RoutingAlgorithm.cache_key).  Bounded so long paper-scale runs
        # cannot grow it without limit; on overflow new keys are simply not
        # inserted (hits keep being served).  A cap of 0 (cfg.router.
        # route_cache = False) disables memoisation entirely — the
        # differential oracle in repro.check replays runs cache-on vs
        # cache-off and asserts identical results.
        self._route_cache: dict = {}
        self._route_cache_cap = 8192 if rc.route_cache else 0

        # Route observation hooks (repro.check VC-legality sanitizer,
        # repro.obs tracer): registered via add_route_hook(), called as
        # (cycle, router, in_port, in_vc, ctx, cand, out_vc, scored) for
        # every committed route, where ``scored`` lists every candidate
        # considered as (cand, out_vc_or_None, weight_or_None).  The fast
        # path keeps a single slot: None when no hooks, the sole hook when
        # one, a fan-out closure otherwise — one is-None test per routing
        # decision when disabled.
        self._route_hook = None
        self._route_hooks: list = []
        # Switch-allocation observation hook: fired from _try_forward as
        # (cycle, router, in_port, in_vc, out_port, out_vc, flit) every time
        # a flit crosses the crossbar into the staged output queue.
        self._forward_hook = None
        self._forward_hooks: list = []

        # Simulator activity registry.  The owning Network replaces this with
        # its shared registry before wiring; standalone routers (unit tests)
        # keep the private throwaway dict.
        self._wake_registry: dict["Router", None] = {}

    # ------------------------------------------------------------------
    # Wiring (called by the network builder)
    # ------------------------------------------------------------------

    def attach_output(self, port: int, data: Channel, credits: CreditTracker) -> None:
        self.out_channels[port] = data
        self.credit_trackers[port] = credits

    def attach_credit_return(self, port: int, channel: Channel) -> None:
        self._credit_return[port] = channel

    # ------------------------------------------------------------------
    # Observation hooks (repro.check sanitizer, repro.obs tracer)
    # ------------------------------------------------------------------

    def add_route_hook(self, hook) -> None:
        """Register a route-observation hook.

        Hooks are called after every committed route decision as
        ``hook(cycle, router, in_port, in_vc, ctx, cand, out_vc, scored)``
        in registration order.  Registering the same hook twice (bound
        methods compare by ``__self__`` and ``__func__``, so a re-bound
        method of the same object still counts) is an error — it is the
        detach-residue bug class this API exists to prevent.
        """
        if hook in self._route_hooks:
            raise ValueError(f"route hook {hook!r} already registered")
        self._route_hooks.append(hook)
        self._route_hook = _hook_fanout(self._route_hooks)

    def remove_route_hook(self, hook) -> None:
        """Unregister a hook added by :meth:`add_route_hook`."""
        self._route_hooks.remove(hook)
        self._route_hook = _hook_fanout(self._route_hooks)

    def add_forward_hook(self, hook) -> None:
        """Register a switch-allocation hook, fired per forwarded flit as
        ``hook(cycle, router, in_port, in_vc, out_port, out_vc, flit)``."""
        if hook in self._forward_hooks:
            raise ValueError(f"forward hook {hook!r} already registered")
        self._forward_hooks.append(hook)
        self._forward_hook = _hook_fanout(self._forward_hooks)

    def remove_forward_hook(self, hook) -> None:
        """Unregister a hook added by :meth:`add_forward_hook`."""
        self._forward_hooks.remove(hook)
        self._forward_hook = _hook_fanout(self._forward_hooks)

    # ------------------------------------------------------------------
    # Channel sinks
    # ------------------------------------------------------------------

    def make_flit_sink(self, port: int):
        inputs = self.inputs[port]
        active = self._active_in
        wake = self._wake_registry

        def sink(item: tuple[int, Flit]) -> None:
            vc, flit = item
            inputs.receive(vc, flit)
            active[(port, vc)] = True
            wake[self] = None

        return sink

    def make_credit_sink(self, port: int):
        """Sink for credits (bare VC ids) returned downstream of ``port``."""
        tracker_ref = self.credit_trackers

        def sink(vc: int) -> None:
            tracker_ref[port].restore(vc)

        return sink

    # ------------------------------------------------------------------
    # Congestion observation (RouterView protocol)
    # ------------------------------------------------------------------

    def class_congestion(self, out_port: int, vc_class: int) -> float:
        vcs = self._vcs_of[vc_class]
        tracker = self.credit_trackers[out_port]
        staged = self.staged[out_port]
        credits = tracker.credits
        depth = tracker.depth
        occ = 0
        stg = 0
        for v in vcs:
            occ += depth - credits[v]
            stg += len(staged[v])
        if self._sequential:
            stg += self._pending_commit[out_port]
        return self._estimator(occ, stg, len(vcs), self._buffer_depth)

    def port_congestion(self, out_port: int) -> float:
        tracker = self.credit_trackers[out_port]
        occ = tracker.occupied_total
        stg = self._staged_count[out_port]
        if self._sequential:
            stg += self._pending_commit[out_port]
        return self._estimator(occ, stg, self.num_vcs, self._buffer_depth)

    # ------------------------------------------------------------------
    # Per-cycle pipeline
    # ------------------------------------------------------------------

    def step(self, cycle: int) -> None:
        if self._active_in:
            self._step_inputs(cycle)
        if self._active_out:
            self._step_outputs(cycle)

    @property
    def idle(self) -> bool:
        return not self._active_in and not self._active_out

    def _step_inputs(self, cycle: int) -> None:
        speedup = self._speedup
        budget = self._port_budget
        touched = self._budget_touched
        if touched:  # zero only the entries the previous cycle dirtied
            for p in touched:
                budget[p] = 0
            touched.clear()
        if self._sequential:
            ct = self._commit_touched
            if ct:
                pc = self._pending_commit
                for p in ct:
                    pc[p] = 0
                ct.clear()
        inputs = self.inputs
        active = self._active_in
        for key in list(active):
            port, vc = key
            state = inputs[port].vcs[vc]
            if not state.fifo:
                del active[key]
                continue
            if budget[port] >= speedup:
                continue
            head = state.fifo[0]
            if state.route is None:
                if not head.is_head:
                    raise RuntimeError("non-head flit with no route: VC protocol bug")
                route = self._compute_route(cycle, port, vc, head)
                if route is None:
                    self.route_stalls += 1
                    continue
                state.route = route
            self._try_forward(cycle, port, vc, state)

    def _try_forward(self, cycle, port, vc, state) -> None:
        route = state.route
        out_port, out_vc = route.out_port, route.out_vc
        tracker = self.credit_trackers[out_port]
        if tracker.credits[out_vc] <= 0:
            return
        if self._staged_count[out_port] >= self._stage_cap:
            return
        flit = state.fifo.popleft()
        tracker.consume(out_vc)
        self.staged[out_port][out_vc].append((cycle + self._xbar_lat, flit))
        self._staged_count[out_port] += 1
        self._active_out[out_port] = True
        self.flits_forwarded += 1
        budget = self._port_budget
        if budget[port] == 0:
            self._budget_touched.append(port)
        budget[port] += 1
        # Return a credit (bare VC id) upstream for the freed input slot.
        cr = self._credit_return[port]
        if cr is not None:
            cr.push(cycle, vc)
        hook = self._forward_hook
        if hook is not None:
            hook(cycle, self, port, vc, out_port, out_vc, flit)
        if flit.index == flit.packet.size - 1:  # tail flit
            self.out_vc_owner[out_port][out_vc] = None
            state.route = None
        if not state.fifo:
            self._active_in.pop((port, vc), None)

    def _step_outputs(self, cycle: int) -> None:
        staged_count = self._staged_count
        active = self._active_out
        for port in list(active):
            if staged_count[port] == 0:
                del active[port]
                continue
            ch = self.out_channels[port]
            # Degraded-bandwidth link (fault injection): at most one flit
            # every min_gap cycles.  Healthy channels short-circuit on the
            # first comparison.
            if ch.min_gap > 1 and cycle - ch._last_push_cycle < ch.min_gap:
                continue
            staged = self.staged[port]
            best_vc = -1
            if self._age_arbitration:
                best_key = None
                for v, q in enumerate(staged):
                    if q:
                        ready, flit = q[0]
                        if ready <= cycle:
                            k = flit.packet.age_key
                            if best_key is None or k < best_key:
                                best_key = k
                                best_vc = v
            else:  # round-robin over VCs with a ready head flit
                base = self._rr_next[port]
                for off in range(self.num_vcs):
                    v = (base + off) % self.num_vcs
                    q = staged[v]
                    if q and q[0][0] <= cycle:
                        best_vc = v
                        self._rr_next[port] = (v + 1) % self.num_vcs
                        break
            if best_vc < 0:
                continue  # nothing past the crossbar yet this cycle
            _, flit = staged[best_vc].popleft()
            staged_count[port] -= 1
            ch.push(cycle, (best_vc, flit))
            if staged_count[port] == 0:
                del active[port]

    # ------------------------------------------------------------------
    # Route computation
    # ------------------------------------------------------------------

    def _compute_route(self, cycle: int, port: int, vc: int, head: Flit) -> VcRoute | None:
        packet = head.packet
        self.routes_computed += 1
        dest_router = self._router_of_term(packet.dst_terminal)
        if dest_router == self.router_id:
            return self._route_ejection(port, vc, packet)

        from_terminal = self._is_term_port[port]
        ctx = RouteContext(
            router=self,
            packet=packet,
            input_port=port,
            input_vc_class=0 if from_terminal else self._class_of[vc],
            from_terminal=from_terminal,
        )
        algorithm = self.algorithm
        ck = algorithm.cache_key(ctx, dest_router)
        if ck is None:
            cands = algorithm.candidates(ctx)
        else:
            cands = self._route_cache.get(ck)
            if cands is None:
                cands = algorithm.candidates(ctx)
                if len(self._route_cache) < self._route_cache_cap:
                    self._route_cache[ck] = cands
        if not cands:
            raise NoRouteError(
                f"{algorithm.name} returned no candidates at router "
                f"{self.router_id} for packet {packet.pid}"
            )
        port_scope = self._port_scope
        jitter = self._jitter
        jidx = self._jitter_idx
        hook = self._route_hook
        # Candidate record for observers, built only when a hook is attached
        # so the tracer never re-runs candidates()/scoring (which would
        # perturb fault counters and the jitter stream).
        scored: list | None = [] if hook is not None else None
        best_cand: RouteCandidate | None = None
        best_out_vc = -1
        best_w = best_j = 0.0
        for cand in cands:
            out_vc = self._allocate_vc(cand.out_port, cand.vc_class, packet.pid)
            if out_vc is None:
                if scored is not None:
                    scored.append((cand, None, None))
                continue
            if port_scope:
                congestion = self.port_congestion(cand.out_port)
            else:
                congestion = self.class_congestion(cand.out_port, cand.vc_class)
            w = route_weight(congestion, cand.hops)
            j = jitter[jidx]
            jidx = (jidx + 1) & 4095
            if scored is not None:
                scored.append((cand, out_vc, w))
            if best_cand is None or w < best_w or (w == best_w and j < best_j):
                best_cand = cand
                best_out_vc = out_vc
                best_w = w
                best_j = j
        self._jitter_idx = jidx
        if best_cand is None:
            return None
        cand, out_vc = best_cand, best_out_vc
        algorithm.commit(ctx, cand)
        self.out_vc_owner[cand.out_port][out_vc] = packet.pid
        if self._sequential:
            if self._pending_commit[cand.out_port] == 0:
                self._commit_touched.append(cand.out_port)
            self._pending_commit[cand.out_port] += packet.size
        packet.hops += 1
        if cand.deroute:
            packet.deroutes += 1
        if self._track_vc_trace:
            if packet.vc_trace is None:
                packet.vc_trace = []
                packet.port_trace = []
            packet.vc_trace.append(out_vc)
            packet.port_trace.append(cand.out_port)
        if hook is not None:
            hook(cycle, self, port, vc, ctx, cand, out_vc, scored)
        return VcRoute(cand.out_port, out_vc, packet.pid, cand.deroute)

    def revoke_unstarted_routes(self, ports: set[int]) -> int:
        """Un-commit routes through ``ports`` whose wormhole has not started.

        Called by the fault injector when output ports fail mid-run.  A route
        is revocable only while its head flit is still first in the input
        FIFO (``index == 0`` at the head means zero flits were forwarded, so
        zero downstream credits were consumed): the output-VC ownership is
        released, the packet's hop/deroute telemetry is un-counted, and the
        input VC is re-woken so the next cycle recomputes a route over the
        surviving candidates.  Routes whose transfer already started are left
        alone — the flits drain over the physically-present channel
        (fail-stop at routing granularity, lossless drain).  Returns the
        number of routes revoked.
        """
        revoked = 0
        for port in range(self.radix):
            unit = self.inputs[port]
            for vc, state in enumerate(unit.vcs):
                route = state.route
                if route is None or route.out_port not in ports:
                    continue
                head = state.fifo[0] if state.fifo else None
                if head is None or not head.is_head or head.index != 0:
                    continue  # transfer started (or head already moved on): drain
                self.out_vc_owner[route.out_port][route.out_vc] = None
                state.route = None
                packet = head.packet
                packet.hops -= 1
                if route.deroute:
                    packet.deroutes -= 1
                if self._track_vc_trace and packet.vc_trace:
                    packet.vc_trace.pop()
                    packet.port_trace.pop()
                self._active_in[(port, vc)] = True
                self._wake_registry[self] = None
                revoked += 1
        return revoked

    def _allocate_vc(self, out_port: int, vc_class: int, pid: int) -> int | None:
        """Pick a free, credited VC in the class group; None when infeasible."""
        credits = self.credit_trackers[out_port].credits
        owner = self.out_vc_owner[out_port]
        best_vc = None
        best_credits = 0
        for v in self._vcs_of[vc_class]:
            if owner[v] is None:
                c = credits[v]
                if c > best_credits:
                    best_credits = c
                    best_vc = v
        return best_vc

    def _route_ejection(self, port: int, vc: int, packet) -> VcRoute | None:
        dst = packet.dst_terminal
        out_port = None
        for p, t in self.terminal_of_port.items():
            if t == dst:
                out_port = p
                break
        if out_port is None:
            raise RuntimeError(
                f"packet {packet.pid} for terminal {dst} reached router "
                f"{self.router_id}, which does not host it"
            )
        # Any free VC with credit; the ejection channel has no deadlock cycle.
        best_vc = self._allocate_vc(out_port, 0, packet.pid)
        if best_vc is None and self.vc_map.num_classes > 1:
            for klass in range(1, self.vc_map.num_classes):
                best_vc = self._allocate_vc(out_port, klass, packet.pid)
                if best_vc is not None:
                    break
        if best_vc is None:
            return None
        self.out_vc_owner[out_port][best_vc] = packet.pid
        if self.cfg.network.track_vc_trace and packet.vc_trace is not None:
            pass  # ejection hop not part of the router-to-router VC trace
        return VcRoute(out_port, best_vc, packet.pid)
