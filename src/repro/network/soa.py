"""Struct-of-arrays (SoA) flit datapath: fused per-stage kernels.

The object model (`Router`/`Terminal`/`Channel`) spends most of a loaded
cycle on *dispatch*: per-component ``step()`` method calls, the per-call
re-hoisting of a dozen attribute chains into locals, and per-flit
re-resolution of the output-side structures (credit array, staging queue,
credit-return pipe) that a wormhole's route pins for its whole lifetime.

This module removes that overhead without forking the simulator's state:

* **Shared flat state.**  The per-(port, VC) credit counters
  (``CreditTracker.credits``), staged-flit counts (``_staged_count``), VC
  occupancy (input FIFO deques), staging queues (``staged[port][vc]``) and
  in-flight channel payloads (``Channel._pipe``) already live in flat
  parallel Python lists/deques indexed by port and VC.  The SoA core binds
  *those same objects* into its kernels — there is no mirror copy and no
  synchronisation step, so facade reads (tests, sanitizer, stats) and
  kernel writes observe a single state at all times, and every
  order-bearing structure (the insertion-ordered active dicts, the jitter
  ring, the route-cache clock) is shared too.  Bit-identity with the object
  path is by construction, and certified by the ``soa-vs-object``
  differential oracle in :mod:`repro.check`.  (``array``/``numpy`` backings
  were benchmarked and rejected for these arrays: at the 8-32 element
  batches a radix-8 router touches per cycle, buffer-protocol scalar access
  costs more than a list index — see DESIGN.md section 7.)

* **Fused per-stage kernels.**  One compiled closure per router and per
  terminal holds every loop-invariant reference in cell variables —
  compiled once, not re-hoisted per cycle — and runs the route,
  VC-allocation, switch-allocation and link-traversal stages of that
  component in a single frame, with zero intermediate method calls.  The
  kernels are a line-for-line transliteration of
  ``Router._step_inputs``/``_step_outputs`` and
  ``Terminal._step_injection``/``_step_ejection``, specialised for the
  configurations the eligibility gate admits (age arbitration, no
  sequential allocation, no observation hooks).

* **Per-wormhole stream records.**  A committed route pins its output
  port and VC until the tail flit; the kernel resolves the six structures
  the forwarding inner loop touches (tracker, credit list, staging queue,
  live-VC list, output entry, credit-return channel) once per wormhole
  into ``VcRoute.stream`` instead of once per flit.

The object path remains the reference implementation.  ``Simulator.run``
consults :func:`fallback_reason` on every call: runs with observers
attached (the repro.check sanitizer registers a process, the repro.obs
tracer registers router hooks), with ``RouterConfig.soa_core`` off, or
with configurations the kernels do not specialise for, transparently take
the object path.  Because all state is shared, a simulation may alternate
between the two engines across ``run()`` calls mid-stream and produce the
same cycle-exact results either way.
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING

from .skip import next_event_bound
from .types import Flit

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network
    from .router import Router
    from .simulator import Simulator
    from .terminal import Terminal


def fallback_reason(sim: "Simulator") -> str | None:
    """Why this ``run()`` call must take the object path; None when the SoA
    core applies.

    Checked per ``run()`` call (cheap: two flag reads, one scan over the
    registered processes and one over the routers' hook slots) so observers
    attached or detached between runs take effect immediately.  A process
    must declare itself compatible by exposing ``soa_safe = True`` —
    synthetic traffic and the fault injector do; the runtime sanitizer
    deliberately does not, which routes checked runs through the reference
    implementation the oracle compares against.
    """
    net = sim.network
    rc = net.cfg.router
    if not rc.soa_core:
        return "RouterConfig.soa_core is off"
    if rc.sequential_allocation:
        return "sequential_allocation is not specialised"
    if rc.arbiter != "age":
        return f"arbiter {rc.arbiter!r} is not specialised"
    for proc in sim.processes:
        if not getattr(proc, "soa_safe", False):
            return f"process {type(proc).__name__} is not marked soa_safe"
    for r in net.routers:
        # None holes are the unowned routers of a partial (sharded) build.
        if r is not None and (r._route_hooks or r._forward_hooks):
            return "router observation hooks attached"
    return None


# ----------------------------------------------------------------------
# Kernel compilation
# ----------------------------------------------------------------------


def router_flit_rec(r: "Router", port: int) -> tuple:
    """Delivery record (kind 0) for a flit channel into a router input.

    Aliases the (fifos, flat keys) lists the object-path sink captured at
    wiring time rather than rebuilding them: identical behaviour, zero
    extra footprint (benchmarks/check_soa_memory.py guards it).  Module
    level because :func:`_compile_channels` and the shard engine's tracer
    seam both build these.
    """
    fifos, keys, _ents = r._sink_refs[port]
    return (
        0,
        fifos,
        keys,
        r._active_in,
        r._wake_registry,
        r,
        r.inputs[port].depth,
    )


def router_credit_rec(r: "Router", port: int) -> tuple:
    """Delivery record (kind 2) for a credit channel into a router port."""
    return (2, r.credit_trackers[port], r._credit_waiter[port], r._asleep)


def _compile_router(r: "Router"):
    """Build the fused input+output kernel for one router.

    Every name below is a cell variable of the returned closure: the
    attribute chains ``Router.step`` re-resolves per cycle are resolved
    exactly once, here.  All referenced structures are the router's own
    long-lived mutable objects (wiring is immutable after construction),
    so the kernel always observes — and mutates — current facade state.
    """
    router = r
    active_in = r._active_in
    in_ents = r._in_ents
    asleep = r._asleep
    trackers = r.credit_trackers
    staged_count = r._staged_count
    stage_cap = r._stage_cap
    xbar_lat = r._xbar_lat
    staged = r.staged
    staged_live = r._staged_live
    active_out = r._active_out
    out_ents = r._out_ent
    credit_return = r._credit_return
    credit_waiter = r._credit_waiter
    out_vc_owner = r.out_vc_owner
    budget = r._port_budget
    touched = r._budget_touched
    speedup = r._speedup
    dead_in = r._dead_in
    dead_out = r._dead_out
    stage_ready = r._stage_ready
    compute_route = r._compute_route

    def step(
        cycle: int,
        # Default-argument rebinding: every hot name below becomes a frame
        # local (LOAD_FAST) instead of a closure cell (LOAD_DEREF), which
        # measures faster in the per-flit inner loops.  Callers pass only
        # ``cycle``.
        active_in=active_in,
        in_ents=in_ents,
        asleep=asleep,
        staged_count=staged_count,
        stage_cap=stage_cap,
        xbar_lat=xbar_lat,
        active_out=active_out,
        credit_waiter=credit_waiter,
        budget=budget,
        touched=touched,
        speedup=speedup,
        dead_in=dead_in,
        dead_out=dead_out,
        stage_ready=stage_ready,
        compute_route=compute_route,
        insort=insort,
    ) -> None:
        # ---------------- input pass: route + VC alloc + switch alloc ----
        if active_in and len(asleep) < len(active_in):
            if touched:
                for p in touched:
                    budget[p] = 0
                touched.clear()
            forwarded = 0
            check_asleep = bool(asleep)
            for key in active_in:
                if check_asleep and key in asleep:
                    continue
                state, fifo, port, vc = in_ents[key]
                if not fifo:
                    dead_in.append(key)
                    continue
                if budget[port] >= speedup:
                    continue
                route = state.route
                if route is None:
                    head = fifo[0]
                    if not head.is_head:
                        raise RuntimeError(
                            "non-head flit with no route: VC protocol bug"
                        )
                    route = compute_route(cycle, port, vc, head)
                    if route is None:
                        router.route_stalls += 1
                        continue
                    state.route = route
                stream = route.stream
                if stream is None:
                    op = route.out_port
                    ov = route.out_vc
                    tracker = trackers[op]
                    stream = route.stream = (
                        op, ov, tracker, tracker.credits, staged[op][ov],
                        staged_live[op], out_ents[op], credit_return[port],
                        out_vc_owner[op],
                    )
                op, ov, tracker, credits_l, sq, live, out_ent, cr, owner = stream
                if credits_l[ov] <= 0:
                    credit_waiter[op][ov] = key
                    asleep.add(key)
                    continue
                sc = staged_count[op]
                if sc >= stage_cap:
                    continue
                flit = fifo.popleft()
                credits_l[ov] -= 1
                tracker.occupied_total += 1
                if not sq:
                    insort(live, ov)
                sq.append((cycle + xbar_lat, flit))
                staged_count[op] = sc + 1
                if sc == 0:
                    active_out[op] = out_ent
                forwarded += 1
                if budget[port] == 0:
                    touched.append(port)
                budget[port] += 1
                if cr is not None:
                    # Credit channels are wired rate-unlimited and always
                    # registered in the shared active set.
                    cr.utilization_count += 1
                    ready = cycle + cr.latency
                    pipe = cr._pipe
                    if not pipe:
                        cr._next_ready = ready
                        cr._active_set[cr] = None
                    pipe.append((ready, vc))
                if flit.tail:
                    owner[ov] = None
                    state.route = None
                if not fifo:
                    dead_in.append(key)
            if forwarded:
                router.flits_forwarded += forwarded
            if dead_in:
                for key in dead_in:
                    active_in.remove(key)
                dead_in.clear()
        # ---------------- output pass: link traversal --------------------
        if active_out:
            for port, ent in active_out.items():
                if staged_count[port] == 0:
                    dead_out.append(port)
                    continue
                if cycle < stage_ready[port]:
                    continue
                ch, pstaged, live = ent
                if ch.min_gap > 1 and cycle - ch._last_push_cycle < ch.min_gap:
                    stage_ready[port] = ch._last_push_cycle + ch.min_gap
                    continue
                if len(live) == 1:
                    v = live[0]
                    if pstaged[v][0][0] > cycle:
                        stage_ready[port] = pstaged[v][0][0]
                        continue
                    best_vc = v
                else:
                    best_vc = -1
                    bc = bp = 0
                    next_ready = -1
                    for v in live:
                        ready, flit = pstaged[v][0]
                        if ready <= cycle:
                            p = flit.packet
                            c = p.create_cycle
                            if (
                                best_vc < 0
                                or c < bc
                                or (c == bc and p.pid < bp)
                            ):
                                bc = c
                                bp = p.pid
                                best_vc = v
                        elif next_ready < 0 or ready < next_ready:
                            next_ready = ready
                    if best_vc < 0:
                        if next_ready > 0:
                            stage_ready[port] = next_ready
                        continue
                q = pstaged[best_vc]
                _, flit = q.popleft()
                if not q:
                    live.remove(best_vc)
                staged_count[port] -= 1
                if cycle <= ch._last_push_cycle:
                    raise RuntimeError(
                        f"channel {ch.name!r} pushed twice in cycle {cycle}"
                    )
                ch._last_push_cycle = cycle
                ch.utilization_count += 1
                ready = cycle + ch.latency
                pipe = ch._pipe
                if not pipe:
                    ch._next_ready = ready
                    ch._active_set[ch] = None
                pipe.append((ready, (best_vc, flit)))
                if staged_count[port] == 0:
                    dead_out.append(port)
            if dead_out:
                for port in dead_out:
                    del active_out[port]
                dead_out.clear()

    return step


def _compile_terminal(t: "Terminal"):
    """Build the fused injection+ejection kernel for one terminal."""
    terminal = t
    algorithm = t.algorithm
    icred = t.inject_credits
    ich = t.inject_channel
    vcs_of = [t.vc_map.vcs_of(k) for k in range(t.vc_map.num_classes)]
    fifos = [t.receive.vcs[v].fifo for v in range(t.num_vcs)]
    rx_live = t._rx_live
    eject_rate = t._eject_rate
    expected_index = t._expected_index
    ecred = t.eject_credit_channel

    def step(
        cycle: int,
        # Default-argument rebinding, as in the router kernel: hot closure
        # cells become frame locals.  Callers pass only ``cycle``.
        terminal=terminal,
        algorithm=algorithm,
        icred=icred,
        ich=ich,
        vcs_of=vcs_of,
        fifos=fifos,
        rx_live=rx_live,
        eject_rate=eject_rate,
        expected_index=expected_index,
        ecred=ecred,
        Flit=Flit,
    ) -> None:
        # ---------------- injection --------------------------------------
        ap = terminal._active_packet
        source_queue = terminal.source_queue
        if ap is not None or source_queue:
            if ap is None:
                packet = source_queue[0]
                best_vc = None
                bc = 0
                credits_l = icred.credits
                for klass in algorithm.injection_classes(packet):
                    for v in vcs_of[klass]:
                        c = credits_l[v]
                        if c > bc:
                            bc = c
                            best_vc = v
                if best_vc is not None:
                    source_queue.popleft()
                    terminal._active_packet = ap = packet
                    terminal._next_flit_index = 0
                    terminal._active_vc = best_vc
                    packet.inject_cycle = cycle
                    listeners = terminal.inject_listeners
                    if listeners:
                        for listener in listeners:
                            listener(packet, cycle)
            if ap is not None:
                vc = terminal._active_vc
                credits_l = icred.credits
                if credits_l[vc] > 0:
                    idx = terminal._next_flit_index
                    flit = Flit(ap, idx)
                    credits_l[vc] -= 1
                    icred.occupied_total += 1
                    # Injection channels are wired rate-limited: keep the
                    # double-push protocol check of the reference path.
                    if cycle <= ich._last_push_cycle:
                        raise RuntimeError(
                            f"channel {ich.name!r} pushed twice in cycle {cycle}"
                        )
                    ich._last_push_cycle = cycle
                    ich.utilization_count += 1
                    ready = cycle + ich.latency
                    pipe = ich._pipe
                    if not pipe:
                        ich._next_ready = ready
                        ich._active_set[ich] = None
                    pipe.append((ready, (vc, flit)))
                    terminal.flits_injected += 1
                    idx += 1
                    if idx >= ap.size:
                        terminal._active_packet = None
                        terminal._active_vc = None
                    else:
                        terminal._next_flit_index = idx
        # ---------------- ejection (age arbitration) ---------------------
        if terminal._rx_count:
            budget = eject_rate
            while budget > 0 and terminal._rx_count > 0:
                if len(rx_live) == 1:
                    best_vc = rx_live[0]
                else:
                    best_vc = -1
                    bc = bp = 0
                    for v in rx_live:
                        p = fifos[v][0].packet
                        c = p.create_cycle
                        if best_vc < 0 or c < bc or (c == bc and p.pid < bp):
                            bc = c
                            bp = p.pid
                            best_vc = v
                    if best_vc < 0:
                        return
                fifo = fifos[best_vc]
                flit = fifo.popleft()
                if not fifo:
                    rx_live.remove(best_vc)
                terminal._rx_count -= 1
                packet = flit.packet
                pid = packet.pid
                expected = expected_index.get(pid, 0)
                if flit.index != expected:
                    raise RuntimeError(
                        f"flit reordering within packet {pid}: got flit "
                        f"{flit.index}, expected {expected}"
                    )
                tail = flit.tail
                if tail:
                    expected_index.pop(pid, None)
                else:
                    expected_index[pid] = expected + 1
                terminal.flits_ejected += 1
                budget -= 1
                if ecred is not None:
                    # Ejection-credit channels are wired rate-unlimited.
                    ecred.utilization_count += 1
                    ready = cycle + ecred.latency
                    pipe = ecred._pipe
                    if not pipe:
                        ecred._next_ready = ready
                        ecred._active_set[ecred] = None
                    pipe.append((ready, best_vc))
                if tail:
                    terminal._complete_packet(packet, cycle)

    return step


def _compile_channels(net: "Network") -> None:
    """Attach a typed delivery record to every wired channel.

    The link-traversal kernel in :meth:`SoACore.run` dispatches on the
    record kind and applies the sink body inline — the records resolve
    exactly the references the per-channel ``_sink`` closures captured at
    wiring time, so both delivery mechanisms are interchangeable per item.

    Kinds: 0 = flit into a router input, 1 = flit into a terminal,
    2 = credit into a router's output tracker, 3 = credit into a
    terminal's injection tracker.

    Partial (sharded) builds additionally compile records for the boundary
    *import* channels, which terminate in the same router sinks as regular
    router-to-router links.  Boundary *export* channels keep ``_soa_rec =
    None``: the shard engine drains them at chunk boundaries strictly
    before their latency elapses, so the delivery loop's ``_next_ready``
    short-circuit rejects them before the record is ever read.
    """
    for link in net.links:
        if link.kind == "rr":
            dst_router, dst_port = link.dst
            src_router, src_port = link.src
            link.data._soa_rec = router_flit_rec(net.routers[dst_router], dst_port)
            link.credit._soa_rec = router_credit_rec(net.routers[src_router], src_port)
        elif link.kind == "inj":
            dst_router, dst_port = link.dst
            t = net.terminals[link.src]
            link.data._soa_rec = router_flit_rec(net.routers[dst_router], dst_port)
            link.credit._soa_rec = (3, t.inject_credits)
        else:  # "ej"
            src_router, src_port = link.src
            t = net.terminals[link.dst]
            link.data._soa_rec = (
                1,
                t._sink_fifos,
                t._rx_live,
                t._wake_registry,
                t,
                t.receive.depth,
            )
            link.credit._soa_rec = router_credit_rec(
                net.routers[src_router], src_port
            )
    for key, ch in net.boundary_in.items():
        r_id, port = net._boundary_in_dst[key]
        router = net.routers[r_id]
        if key[0] == "d":
            ch._soa_rec = router_flit_rec(router, port)
        else:
            ch._soa_rec = router_credit_rec(router, port)


# ----------------------------------------------------------------------
# The core
# ----------------------------------------------------------------------


class SoACore:
    """Compiled SoA datapath for one :class:`Simulator`.

    Compiled once per simulator (wiring is immutable after network
    construction); :meth:`run` is the drop-in replacement for the object
    path's chunked cycle loop.  The delivery phase is shared verbatim with
    the object engine — channel sinks are already per-channel compiled
    closures — so only the compute phase dispatches through the fused
    kernels.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        net: "Network" = sim.network
        self.network = net
        # None holes are the unowned routers/terminals of a partial build.
        for r in net.routers:
            if r is not None:
                r._soa_step = _compile_router(r)
        for t in net.terminals:
            if t is not None:
                t._soa_step = _compile_terminal(t)
        _compile_channels(net)

    def run(self, cycles: int, skip: bool = False) -> None:
        """Advance ``cycles`` cycles through the fused kernels.

        Structure and ordering are cycle-exact with ``Simulator.run``'s
        object loop: deliveries, then processes, then terminals (snapshot
        iteration — a delivery listener may wake a terminal mid-pass),
        then routers, with the same deferred removal from the same shared
        activity dicts — including the same cycle skip-ahead step
        (:mod:`repro.network.skip`) when the dispatcher passes ``skip``.
        """
        sim = self.sim
        network = self.network
        active_channels = network._active_channels
        active_terminals = network._active_terminals
        active_routers = network._active_routers
        processes = sim.processes
        cycle = sim.cycle
        end = cycle + cycles
        drained: list = []
        while cycle < end:
            # Link-traversal kernel: the object engine's delivery loop with
            # the per-item sink calls replaced by inline bodies dispatched
            # on each channel's typed record (same channel order, same item
            # order, same error messages).
            if active_channels:
                for ch in active_channels:
                    if ch._next_ready > cycle:
                        continue
                    pipe = ch._pipe
                    rec = ch._soa_rec
                    kind = rec[0]
                    if kind == 0:  # flit -> router input
                        _, fifos, keys, active_in, wake, router, depth = rec
                        while pipe and pipe[0][0] <= cycle:
                            vc, flit = pipe.popleft()[1]
                            fifo = fifos[vc]
                            n = len(fifo)
                            if n >= depth:
                                raise RuntimeError(
                                    f"buffer overflow on VC {vc}: credit "
                                    f"protocol violated"
                                )
                            fifo.append(flit)
                            if n == 0:
                                insort(active_in, keys[vc])
                                wake[router] = None
                    elif kind == 2:  # credit -> router output tracker
                        tracker, waiters, asleep = rec[1], rec[2], rec[3]
                        credits_l = tracker.credits
                        depth = tracker.depth
                        while pipe and pipe[0][0] <= cycle:
                            vc = pipe.popleft()[1]
                            if credits_l[vc] >= depth:
                                raise RuntimeError(
                                    f"credit overflow on VC {vc}"
                                )
                            credits_l[vc] += 1
                            tracker.occupied_total -= 1
                            k = waiters[vc]
                            if k is not None:
                                waiters[vc] = None
                                asleep.discard(k)
                    elif kind == 1:  # flit -> terminal
                        _, fifos, rx_live, wake, terminal, depth = rec
                        while pipe and pipe[0][0] <= cycle:
                            vc, flit = pipe.popleft()[1]
                            fifo = fifos[vc]
                            n = len(fifo)
                            if n >= depth:
                                raise RuntimeError(
                                    f"buffer overflow on VC {vc}: credit "
                                    f"protocol violated"
                                )
                            fifo.append(flit)
                            terminal._rx_count += 1
                            if n == 0:
                                insort(rx_live, vc)
                                wake[terminal] = None
                    else:  # kind == 3: credit -> terminal inject tracker
                        tracker = rec[1]
                        while pipe and pipe[0][0] <= cycle:
                            tracker.restore(pipe.popleft()[1])
                    if pipe:
                        ch._next_ready = pipe[0][0]
                    else:
                        drained.append(ch)
                if drained:
                    for ch in drained:
                        del active_channels[ch]
                    drained.clear()
            for proc in processes:
                proc(cycle)
            if active_terminals:
                for t in list(active_terminals):
                    t._soa_step(cycle)
                    if (
                        t._rx_count == 0
                        and not t.source_queue
                        and t._active_packet is None
                    ):
                        active_terminals.pop(t, None)
            if active_routers:
                for r in active_routers:
                    r._soa_step(cycle)
                    if not r._active_in and not r._active_out:
                        drained.append(r)
                if drained:
                    for r in drained:
                        del active_routers[r]
                    drained.clear()
            cycle += 1
            sim.cycle = cycle
            # Cycle skip-ahead, identical to the object loop's step.
            if skip and not active_terminals and cycle < end:
                bound = next_event_bound(network, processes, cycle, end)
                if bound > cycle:
                    cycle = bound
                    sim.cycle = bound
