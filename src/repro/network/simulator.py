"""The cycle engine.

Each simulated cycle has two phases:

1. **deliver** — every channel hands over items whose pipeline latency has
   elapsed (flits into input buffers, credits into credit trackers);
2. **compute** — every router steps its pipeline and every terminal injects /
   ejects, pushing new items onto channels (which arrive >= 1 cycle later).

The two-phase structure makes the simulation independent of component
iteration order for correctness (order only affects tie-breaking) and
guarantees nothing traverses two channels in one cycle.

Only *active* components are visited each cycle: channels register
themselves in the network's activity set on the empty->busy push transition,
and routers/terminals are woken by flit delivery or packet offers.  Drained
channels and components that step to idle are dropped from the sets, so a
quiet network costs almost nothing per cycle — the activity-tracking trick
that keeps a pure-Python cycle simulator usable (see DESIGN.md, performance
notes).

:meth:`Simulator.run` is the chunked fast path: the per-cycle loop lives in
one frame with the activity sets bound to locals, instead of paying a method
call and attribute re-resolution per cycle.  :meth:`Simulator.step` is just
``run(1)``.

Hook points: anything callable with ``(cycle)`` can be registered as a
*process* via :meth:`Simulator.add_process` — traffic generators, the
application engine, the fault injector, and the runtime sanitizer
(:class:`repro.check.Sanitizer`) all attach this way.  Processes run at the
start of every compute phase, after channel deliveries have settled, which
is a consistency point: every credit consume/restore and buffer push/pop
pair has completed, so cross-component invariants (flit conservation,
credit reconciliation) hold exactly.  An unregistered hook costs nothing —
the run loop touches only the registered list.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .soa import SoACore, fallback_reason

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network


class Simulator:
    """Drives a :class:`~repro.network.network.Network` cycle by cycle."""

    def __init__(self, network: "Network"):
        self.network = network
        self.cycle = 0
        #: callables invoked at the start of every compute phase with
        #: ``(cycle)``; traffic generators and the application engine hook here
        self.processes: list[Callable[[int], None]] = []
        # SoA dispatch state: the compiled core (built lazily on the first
        # eligible run), which engine the last run() used, and — when the
        # object path was taken — why (diagnostics / tests).
        self._soa: SoACore | None = None
        self.soa_active = False
        self.soa_fallback_reason: str | None = None

    # ------------------------------------------------------------------

    def add_process(self, proc: Callable[[int], None]) -> Callable[[int], None]:
        """Register ``proc`` to run at the start of every compute phase.

        This is the simulator's generic hook point (see the module
        docstring for the consistency guarantees at the call site).
        Returns ``proc`` so attach-and-keep reads naturally.
        """
        self.processes.append(proc)
        return proc

    def remove_process(self, proc: Callable[[int], None]) -> None:
        """Unregister a process added with :meth:`add_process`."""
        self.processes.remove(proc)

    # ------------------------------------------------------------------

    def step(self) -> None:
        self.run(1)

    def run(self, cycles: int) -> None:
        """Advance the simulation by ``cycles`` cycles.

        Dispatches to the struct-of-arrays core (:mod:`repro.network.soa`)
        when eligible — the default for plain runs — and otherwise takes
        the object path below, the reference implementation.  Both engines
        mutate the same shared state, so the choice may differ between
        consecutive ``run()`` calls (e.g. a sanitizer attached mid-stream)
        without affecting results; the soa-vs-object differential oracle
        in repro.check certifies bit-identical behaviour.
        """
        reason = fallback_reason(self)
        if reason is None:
            core = self._soa
            if core is None:
                core = self._soa = SoACore(self)
            self.soa_active = True
            self.soa_fallback_reason = None
            core.run(cycles)
            return
        self.soa_active = False
        self.soa_fallback_reason = reason
        network = self.network
        active_channels = network._active_channels
        active_terminals = network._active_terminals
        active_routers = network._active_routers
        processes = self.processes
        cycle = self.cycle
        end = cycle + cycles
        drained: list = []  # reusable deferred-deletion scratch
        while cycle < end:
            # Phase 1: deliveries.  Channels pushed during this cycle
            # register for *later* cycles (latency >= 1), and no sink pushes
            # onto another channel, so the set can be iterated directly with
            # drained channels removed after the pass.  The delivery loop is
            # inlined (rather than calling Channel.deliver) because the
            # per-channel call overhead dominates at load.
            if active_channels:
                for ch in active_channels:
                    # _next_ready is a conservative lower bound on the head
                    # item's delivery cycle (see Channel): most busy
                    # channels are skipped on one int compare instead of a
                    # pipe peek.
                    if ch._next_ready > cycle:
                        continue
                    pipe = ch._pipe
                    while pipe and pipe[0][0] <= cycle:
                        ch._sink(pipe.popleft()[1])
                    if pipe:
                        ch._next_ready = pipe[0][0]
                    else:
                        drained.append(ch)
                if drained:
                    for ch in drained:
                        del active_channels[ch]
                    drained.clear()
            # Phase 2: compute.
            for proc in processes:
                proc(cycle)
            if active_terminals:
                # Snapshot: a delivery listener may wake another terminal
                # mid-iteration (it then runs from the next cycle on).
                # Idle checks are inlined (the properties showed up in
                # loaded-cycle profiles).
                for t in list(active_terminals):
                    t.step(cycle)
                    if (
                        t._rx_count == 0
                        and not t.source_queue
                        and t._active_packet is None
                    ):
                        active_terminals.pop(t, None)
            if active_routers:
                # Nothing inserts into the router set during the compute
                # phase (flit sinks run in phase 1), so iterate directly.
                for r in active_routers:
                    r.step(cycle)
                    if not r._active_in and not r._active_out:
                        drained.append(r)
                if drained:
                    for r in drained:
                        del active_routers[r]
                    drained.clear()
            cycle += 1
            self.cycle = cycle

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int,
        check_every: int = 64,
    ) -> bool:
        """Run until ``predicate()`` is true, checking every ``check_every``
        cycles; returns False on timeout without re-evaluating the predicate.
        """
        deadline = self.cycle + max_cycles
        if max_cycles <= 0:
            return predicate()
        while self.cycle < deadline:
            self.run(min(check_every, deadline - self.cycle))
            if predicate():
                return True
        return False

    def drain(self, max_cycles: int = 1_000_000) -> bool:
        """Run until the network is empty of traffic (no new injections)."""
        return self.run_until(self.network.quiescent, max_cycles)
