"""The cycle engine.

Each simulated cycle has two phases:

1. **deliver** — every channel hands over items whose pipeline latency has
   elapsed (flits into input buffers, credits into credit trackers);
2. **compute** — every router steps its pipeline and every terminal injects /
   ejects, pushing new items onto channels (which arrive >= 1 cycle later).

The two-phase structure makes the simulation independent of component
iteration order for correctness (order only affects tie-breaking) and
guarantees nothing traverses two channels in one cycle.

Only *busy* channels are visited each cycle; idle routers/terminals return
immediately — the standard activity-tracking trick that keeps a pure-Python
cycle simulator usable (see DESIGN.md, performance notes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network


class Simulator:
    """Drives a :class:`~repro.network.network.Network` cycle by cycle."""

    def __init__(self, network: "Network"):
        self.network = network
        self.cycle = 0
        #: callables invoked at the start of every compute phase with
        #: ``(cycle)``; traffic generators and the application engine hook here
        self.processes: list[Callable[[int], None]] = []

    # ------------------------------------------------------------------

    def step(self) -> None:
        cycle = self.cycle
        # Phase 1: deliveries.  Direct _pipe access (instead of the .busy
        # property) because this loop dominates idle-cycle cost (profiled).
        for ch in self.network.channels:
            if ch._pipe:
                ch.deliver(cycle)
        # Phase 2: compute.
        for proc in self.processes:
            proc(cycle)
        for t in self.network.terminals:
            if not t.idle:
                t.step(cycle)
        for r in self.network.routers:
            if not r.idle:
                r.step(cycle)
        self.cycle += 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int,
        check_every: int = 64,
    ) -> bool:
        """Run until ``predicate()`` is true; returns False on timeout."""
        deadline = self.cycle + max_cycles
        while self.cycle < deadline:
            for _ in range(min(check_every, deadline - self.cycle)):
                self.step()
            if predicate():
                return True
        return predicate()

    def drain(self, max_cycles: int = 1_000_000) -> bool:
        """Run until the network is empty of traffic (no new injections)."""
        return self.run_until(self.network.quiescent, max_cycles)
