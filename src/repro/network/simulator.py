"""The cycle engine.

Each simulated cycle has two phases:

1. **deliver** — every channel hands over items whose pipeline latency has
   elapsed (flits into input buffers, credits into credit trackers);
2. **compute** — every router steps its pipeline and every terminal injects /
   ejects, pushing new items onto channels (which arrive >= 1 cycle later).

The two-phase structure makes the simulation independent of component
iteration order for correctness (order only affects tie-breaking) and
guarantees nothing traverses two channels in one cycle.

Only *active* components are visited each cycle: channels register
themselves in the network's activity set on the empty->busy push transition,
and routers/terminals are woken by flit delivery or packet offers.  Drained
channels and components that step to idle are dropped from the sets, so a
quiet network costs almost nothing per cycle — the activity-tracking trick
that keeps a pure-Python cycle simulator usable (see DESIGN.md, performance
notes).

:meth:`Simulator.run` is the chunked fast path: the per-cycle loop lives in
one frame with the activity sets bound to locals, instead of paying a method
call and attribute re-resolution per cycle.  :meth:`Simulator.step` is just
``run(1)``.

Hook points: anything callable with ``(cycle)`` can be registered as a
*process* via :meth:`Simulator.add_process` — traffic generators, the
application engine, the fault injector, and the runtime sanitizer
(:class:`repro.check.Sanitizer`) all attach this way.  Processes run at the
start of every compute phase, after channel deliveries have settled, which
is a consistency point: every credit consume/restore and buffer push/pop
pair has completed, so cross-component invariants (flit conservation,
credit reconciliation) hold exactly.  An unregistered hook costs nothing —
the run loop touches only the registered list.

On top of the activity sets, both engines *compress* runs of inert cycles:
when no terminal is active and every process can bound its next wakeup
(:mod:`repro.network.skip`), the clock jumps straight to the earliest cycle
at which anything can happen instead of iterating the gap.  Eligibility is
re-checked per ``run()`` and recorded in ``skip_active`` /
``skip_fallback_reason``, mirroring the SoA dispatch; results are
byte-identical either way (the skip-on-vs-off oracle in ``repro.check``
proves it), so compression is invisible except in wall-clock time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .skip import next_event_bound, skip_fallback_reason
from .soa import SoACore, fallback_reason

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network

#: Bound-search horizon for :meth:`Simulator.next_event_cycle` — far enough
#: that any real schedule beats it; "nothing before the horizon" reads as
#: "no computable event" (None).
_HORIZON = 1 << 62


class Simulator:
    """Drives a :class:`~repro.network.network.Network` cycle by cycle."""

    def __init__(self, network: "Network"):
        self.network = network
        self.cycle = 0
        #: callables invoked at the start of every compute phase with
        #: ``(cycle)``; traffic generators and the application engine hook here
        self.processes: list[Callable[[int], None]] = []
        # SoA dispatch state: the compiled core (built lazily on the first
        # eligible run), which engine the last run() used, and — when the
        # object path was taken — why (diagnostics / tests).
        self._soa: SoACore | None = None
        self.soa_active = False
        self.soa_fallback_reason: str | None = None
        # Cycle skip-ahead dispatch state (repro.network.skip), mirroring
        # the SoA pair above: whether the last run() was allowed to
        # compress inert cycles, and if not, why.
        self.skip_active = False
        self.skip_fallback_reason: str | None = None

    # ------------------------------------------------------------------

    def add_process(self, proc: Callable[[int], None]) -> Callable[[int], None]:
        """Register ``proc`` to run at the start of every compute phase.

        This is the simulator's generic hook point (see the module
        docstring for the consistency guarantees at the call site).
        Returns ``proc`` so attach-and-keep reads naturally.
        """
        self.processes.append(proc)
        return proc

    def remove_process(self, proc: Callable[[int], None]) -> None:
        """Unregister a process added with :meth:`add_process`."""
        self.processes.remove(proc)

    # ------------------------------------------------------------------

    def step(self) -> None:
        self.run(1)

    def run(self, cycles: int) -> None:
        """Advance the simulation by ``cycles`` cycles.

        Dispatches to the struct-of-arrays core (:mod:`repro.network.soa`)
        when eligible — the default for plain runs — and otherwise takes
        the object path below, the reference implementation.  Both engines
        mutate the same shared state, so the choice may differ between
        consecutive ``run()`` calls (e.g. a sanitizer attached mid-stream)
        without affecting results; the soa-vs-object differential oracle
        in repro.check certifies bit-identical behaviour.

        Orthogonally, either engine may compress inert cycles
        (:mod:`repro.network.skip`) when every registered process supports
        it — checked per call the same way and recorded in
        ``skip_active`` / ``skip_fallback_reason``.
        """
        skip_reason = skip_fallback_reason(self)
        skip = skip_reason is None
        self.skip_active = skip
        self.skip_fallback_reason = skip_reason
        reason = fallback_reason(self)
        if reason is None:
            core = self._soa
            if core is None:
                core = self._soa = SoACore(self)
            self.soa_active = True
            self.soa_fallback_reason = None
            core.run(cycles, skip)
            return
        self.soa_active = False
        self.soa_fallback_reason = reason
        network = self.network
        active_channels = network._active_channels
        active_terminals = network._active_terminals
        active_routers = network._active_routers
        processes = self.processes
        cycle = self.cycle
        end = cycle + cycles
        drained: list = []  # reusable deferred-deletion scratch
        while cycle < end:
            # Phase 1: deliveries.  Channels pushed during this cycle
            # register for *later* cycles (latency >= 1), and no sink pushes
            # onto another channel, so the set can be iterated directly with
            # drained channels removed after the pass.  The delivery loop is
            # inlined (rather than calling Channel.deliver) because the
            # per-channel call overhead dominates at load.
            if active_channels:
                for ch in active_channels:
                    # _next_ready is a conservative lower bound on the head
                    # item's delivery cycle (see Channel): most busy
                    # channels are skipped on one int compare instead of a
                    # pipe peek.
                    if ch._next_ready > cycle:
                        continue
                    pipe = ch._pipe
                    while pipe and pipe[0][0] <= cycle:
                        ch._sink(pipe.popleft()[1])
                    if pipe:
                        ch._next_ready = pipe[0][0]
                    else:
                        drained.append(ch)
                if drained:
                    for ch in drained:
                        del active_channels[ch]
                    drained.clear()
            # Phase 2: compute.
            for proc in processes:
                proc(cycle)
            if active_terminals:
                # Snapshot: a delivery listener may wake another terminal
                # mid-iteration (it then runs from the next cycle on).
                # Idle checks are inlined (the properties showed up in
                # loaded-cycle profiles).
                for t in list(active_terminals):
                    t.step(cycle)
                    if (
                        t._rx_count == 0
                        and not t.source_queue
                        and t._active_packet is None
                    ):
                        active_terminals.pop(t, None)
            if active_routers:
                # Nothing inserts into the router set during the compute
                # phase (flit sinks run in phase 1), so iterate directly.
                for r in active_routers:
                    r.step(cycle)
                    if not r._active_in and not r._active_out:
                        drained.append(r)
                if drained:
                    for r in drained:
                        del active_routers[r]
                    drained.clear()
            cycle += 1
            self.cycle = cycle
            # Cycle skip-ahead (repro.network.skip): with no terminal
            # active, jump straight to the earliest cycle at which anything
            # can happen.  Loaded cycles pay one falsy test here.
            if skip and not active_terminals and cycle < end:
                bound = next_event_bound(network, processes, cycle, end)
                if bound > cycle:
                    cycle = bound
                    self.cycle = bound

    def next_event_cycle(self) -> int | None:
        """Earliest cycle at (or after) ``self.cycle`` at which the
        simulation can change state, or None when no bound is computable.

        Computed from simulator state and the process ``next_wakeup``
        protocol alone — deliberately independent of the
        ``RouterConfig.cycle_skip`` flag, so event-aware stepping (see
        :meth:`run_until`) visits identical cycle boundaries whether or
        not the engine is allowed to compress, which is what the
        skip-on-vs-off differential oracle relies on.

        None means either "unknown" (a registered process does not expose
        ``next_wakeup``) or "nothing scheduled" (a fully idle simulation);
        callers must treat both as "assume anything may happen".
        """
        cycle = self.cycle
        network = self.network
        if network._active_terminals:
            return cycle
        processes = self.processes
        for proc in processes:
            if getattr(proc, "next_wakeup", None) is None:
                return None
        far = cycle + _HORIZON
        bound = next_event_bound(network, processes, cycle, far)
        return bound if bound < far else None

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_cycles: int,
        check_every: int = 64,
    ) -> bool:
        """Run until ``predicate()`` is true, returning False on timeout
        without re-evaluating the predicate.

        **Predicate contract.**  The predicate must be a function of
        *simulation state* (queue contents, counters, quiescence …), not of
        the raw cycle number: it is evaluated at every *advanced-to* cycle
        boundary — every ``check_every`` cycles while events are dense, and
        exactly at the next event (per :meth:`next_event_cycle`) when the
        next event lies beyond the grid — never at each integer cycle in
        between.  Skipped boundaries are provably inert, so a state
        predicate cannot change value across one; a predicate on the bare
        cycle number may be observed only on the evaluation grid:

        >>> from repro.config import SimConfig
        >>> from repro.core.registry import make_algorithm
        >>> from repro.network.network import Network
        >>> from repro.topology.hyperx import HyperX
        >>> topo = HyperX((2,), 1)
        >>> net = Network(topo, make_algorithm("DOR", topo), SimConfig())
        >>> sim = Simulator(net)
        >>> sim.run_until(lambda: sim.cycle >= 100, max_cycles=1000)
        True
        >>> sim.cycle  # idle net: seen on the check_every=64 grid, not at 100
        128

        The evaluation schedule depends only on simulator state, never on
        whether compression is enabled, so runs are byte-identical with
        ``cycle_skip`` on or off.
        """
        deadline = self.cycle + max_cycles
        if max_cycles <= 0:
            return predicate()
        while self.cycle < deadline:
            target = min(self.cycle + check_every, deadline)
            nxt = self.next_event_cycle()
            if nxt is not None and nxt > target:
                # Nothing can happen before nxt: stretch the chunk so the
                # next evaluation lands on a boundary where state moved.
                target = min(nxt, deadline)
            self.run(target - self.cycle)
            if predicate():
                return True
        return False

    def drain(self, max_cycles: int = 1_000_000) -> bool:
        """Run until the network is empty of traffic (no new injections)."""
        return self.run_until(self.network.quiescent, max_cycles)
