"""Arbiters used for switch/channel scheduling.

The paper's router uses *age-based arbitration* (Dally's virtual-channel flow
control work) for both virtual-channel and crossbar scheduling: the oldest
packet in the network wins, which is the classic way to keep low-diameter
networks stable near saturation.  A round-robin arbiter is provided as the
cheap alternative (used by the arbitration ablation bench).
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


class Arbiter:
    """Base arbiter: pick one request out of many."""

    def pick(self, requests: Sequence[T], key: Callable[[T], tuple]) -> T | None:
        raise NotImplementedError


class AgeBasedArbiter(Arbiter):
    """Grant the request whose key (creation cycle, packet id) is smallest.

    Ties cannot occur because packet ids are unique.
    """

    name = "age"

    def pick(self, requests: Sequence[T], key: Callable[[T], tuple]) -> T | None:
        if not requests:
            return None
        return min(requests, key=key)


class RoundRobinArbiter(Arbiter):
    """Rotating-priority arbiter over an index space of size ``size``.

    ``key(request)`` must return a tuple whose first element is the request's
    index in the rotation.  After a grant, priority moves just past the
    granted index, guaranteeing starvation freedom.
    """

    name = "round_robin"

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("arbiter size must be >= 1")
        self.size = size
        self._next = 0

    def pick(self, requests: Sequence[T], key: Callable[[T], tuple]) -> T | None:
        if not requests:
            return None
        base = self._next
        best = min(requests, key=lambda r: (key(r)[0] - base) % self.size)
        self._next = (key(best)[0] + 1) % self.size
        return best


def make_arbiter(kind: str, size: int) -> Arbiter:
    """Factory used by router construction ("age" or "round_robin")."""
    if kind == "age":
        return AgeBasedArbiter()
    if kind == "round_robin":
        return RoundRobinArbiter(size)
    raise ValueError(f"unknown arbiter kind {kind!r}")
