"""The flit-level interconnection-network simulator (SuperSim substrate)."""

from .network import Network
from .simulator import Simulator
from .stats import LatencyMonitor, PacketStats
from .telemetry import LinkStat, TelemetryProbe
from .types import Flit, Message, Packet

__all__ = [
    "Network",
    "Simulator",
    "Packet",
    "Flit",
    "Message",
    "PacketStats",
    "LatencyMonitor",
    "TelemetryProbe",
    "LinkStat",
]
