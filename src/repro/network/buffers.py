"""Buffering primitives: per-VC input buffers and credit counters.

An :class:`InputUnit` models the buffered input side of one router (or
terminal) port: one FIFO per virtual channel, with per-VC routing state for
the packet currently at the head of each VC.  A :class:`CreditTracker` counts
the free slots the upstream side believes exist in a downstream
:class:`InputUnit` — the essence of credit-based flow control.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .types import Flit


@dataclass
class VcRoute:
    """Route assignment for the packet at the head of an input VC.

    ``deroute`` records whether the chosen candidate was a deroute, so a
    revoked-before-started route (fault injection) can un-count the packet's
    ``hops``/``deroutes`` telemetry exactly.

    ``stream`` is scratch for the SoA core (:mod:`repro.network.soa`): a
    lazily-built tuple pre-resolving the fixed output-side references the
    fused input kernel touches per forwarded flit (tracker, credit array,
    staging queue, ...).  It is bound to this route's wormhole — the route
    object dies with the tail flit (or a fault revocation), taking the
    stream with it — and the object-path reference implementation ignores
    it entirely.
    """

    out_port: int
    out_vc: int
    packet_id: int
    deroute: bool = False
    stream: tuple | None = field(default=None, compare=False, repr=False)


class VcState:
    """One virtual channel of an input unit."""

    __slots__ = ("fifo", "route")

    def __init__(self) -> None:
        self.fifo: deque[Flit] = deque()
        self.route: VcRoute | None = None

    @property
    def occupancy(self) -> int:
        return len(self.fifo)

    @property
    def head(self) -> Flit | None:
        return self.fifo[0] if self.fifo else None


class InputUnit:
    """Per-VC buffered input of a port."""

    __slots__ = ("num_vcs", "depth", "vcs")

    def __init__(self, num_vcs: int, depth: int):
        if num_vcs < 1 or depth < 1:
            raise ValueError("need >= 1 VC and >= 1 buffer slot")
        self.num_vcs = num_vcs
        self.depth = depth
        self.vcs = [VcState() for _ in range(num_vcs)]

    def receive(self, vc: int, flit: Flit) -> None:
        state = self.vcs[vc]
        if len(state.fifo) >= self.depth:
            raise RuntimeError(
                f"buffer overflow on VC {vc}: credit protocol violated"
            )
        state.fifo.append(flit)

    def occupancy(self, vc: int | None = None) -> int:
        if vc is not None:
            return self.vcs[vc].occupancy
        return sum(v.occupancy for v in self.vcs)

    @property
    def empty(self) -> bool:
        return all(not v.fifo for v in self.vcs)


class CreditTracker:
    """Upstream view of free space in a downstream input unit.

    ``occupied_total`` is maintained incrementally so that the congestion
    estimators on the routing hot path read total occupancy in O(1) instead
    of summing the per-VC credit counters every candidate evaluation.
    """

    __slots__ = ("depth", "credits", "occupied_total")

    def __init__(self, num_vcs: int, depth: int):
        self.depth = depth
        self.credits = [depth] * num_vcs
        self.occupied_total = 0

    def available(self, vc: int) -> int:
        return self.credits[vc]

    def consume(self, vc: int) -> None:
        if self.credits[vc] <= 0:
            raise RuntimeError(f"credit underflow on VC {vc}")
        self.credits[vc] -= 1
        self.occupied_total += 1

    def restore(self, vc: int) -> None:
        if self.credits[vc] >= self.depth:
            raise RuntimeError(f"credit overflow on VC {vc}")
        self.credits[vc] += 1
        self.occupied_total -= 1

    def occupied(self, vc: int) -> int:
        """Downstream slots believed to be occupied (incl. flits in flight)."""
        return self.depth - self.credits[vc]

    def total_occupied(self) -> int:
        return self.occupied_total

    def consistent(self) -> bool:
        """True when the incremental total matches the per-VC counters and
        every counter is within ``[0, depth]``.

        Inspection hook for the runtime sanitizer (repro.check): the
        incremental ``occupied_total`` is the quantity the routing hot path
        trusts, so drift between it and the per-VC counters silently skews
        every congestion estimate.
        """
        return (
            all(0 <= c <= self.depth for c in self.credits)
            and self.occupied_total == sum(self.depth - c for c in self.credits)
        )
