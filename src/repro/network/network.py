"""Network construction: topology -> routers + terminals + channels.

:class:`Network` instantiates one :class:`~repro.network.router.Router` per
topology router and one :class:`~repro.network.terminal.Terminal` per
endpoint, then wires every directed channel (data downstream, credits
upstream) with the configured latencies: ``channel_latency_rr`` between
routers, ``channel_latency_rt`` between a router and its terminals.

Partial builds (``owned_routers=``) construct only a subset of the routers —
one *shard* of the network — leaving ``None`` holes everywhere else and
terminating cross-shard links in boundary channels the sharded engine
(:mod:`repro.network.shard`) drains and fills at chunk boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.vcmap import VcMap
from .buffers import CreditTracker, InputUnit
from .channel import Channel
from .router import Router
from .terminal import Terminal

if TYPE_CHECKING:  # pragma: no cover
    from ..config import SimConfig
    from ..core.base import RoutingAlgorithm
    from ..topology.base import Topology


@dataclass(frozen=True)
class LinkRecord:
    """One credit-flow-controlled hop, recorded at wiring time.

    The record pairs everything a per-link audit needs: the upstream credit
    tracker, the upstream staging queues that hold flits which have already
    consumed a credit (``None`` for terminal injection, which has no
    crossbar), the data and credit channels, and the downstream input unit
    the credits account for.  ``repro.check``'s credit-reconciliation
    sanitizer walks :attr:`Network.links` and asserts, per VC,

        ``tracker.occupied(vc) == staged + data-in-flight +
        downstream occupancy + credits-in-flight``

    which is the exact statement of credit-based flow control.
    """

    kind: str  # "rr" (router->router), "inj" (terminal->router), "ej" (router->terminal)
    src: tuple[int, int] | int  # (router, port), or terminal id for "inj"
    dst: tuple[int, int] | int  # (router, port), or terminal id for "ej"
    tracker: CreditTracker
    staged: list | None  # upstream per-VC staging deques ("rr"/"ej" only)
    data: Channel
    credit: Channel
    downstream: InputUnit

    @property
    def label(self) -> str:
        return f"{self.kind} {self.src}->{self.dst}"


def _poison_sink(name: str):
    """Sink for boundary *export* channels: delivery is a protocol bug.

    The shard engine drains exports at chunk boundaries strictly before
    their channel latency elapses (chunk length <= ``channel_latency_rr``),
    so the simulator's delivery loop must never reach payload on one.
    """

    def sink(item):
        raise RuntimeError(
            f"boundary export channel {name!r} delivered in-chunk: "
            f"shard chunk protocol violated"
        )

    return sink


class Network:
    """A fully wired simulated network (or one shard of it)."""

    def __init__(
        self,
        topology: "Topology",
        algorithm: "RoutingAlgorithm",
        cfg: "SimConfig",
        owned_routers: "set[int] | frozenset[int] | None" = None,
    ):
        cfg.validated()
        if algorithm.num_classes > cfg.router.num_vcs:
            raise ValueError(
                f"{algorithm.name} needs {algorithm.num_classes} resource "
                f"classes but the router only has {cfg.router.num_vcs} VCs"
            )
        self.topology = topology
        self.algorithm = algorithm
        self.cfg = cfg
        self.vc_map = VcMap(
            algorithm.num_classes,
            cfg.router.num_vcs,
            weights=getattr(algorithm, "class_weights", None),
        )
        #: shared FaultState when built on a repro.faults.DegradedTopology
        #: (None on a pristine topology); the FaultInjector requires it.
        self.fault_state = getattr(topology, "faults", None)
        #: router ids this build owns; None for a full (unsharded) build.
        #: Unowned routers and their terminals are ``None`` holes in
        #: :attr:`routers` / :attr:`terminals`.
        self.owned_routers = (
            None if owned_routers is None else frozenset(owned_routers)
        )

        # Shared activity registries (insertion-ordered dicts used as sets).
        # Channels register on the empty->busy push transition; routers and
        # terminals are woken by flit delivery / packet offers.  The
        # simulator visits only registered entries, so idle components cost
        # nothing per cycle (see DESIGN.md, performance notes).  Cycle
        # skip-ahead (repro.network.skip) goes one further: it only jumps
        # the clock while _active_terminals is empty, and derives its
        # global next-event bound from the members of the other two sets —
        # so membership here is also the skip engine's eligibility signal.
        self._active_channels: dict[Channel, None] = {}
        self._active_routers: dict[Router, None] = {}
        self._active_terminals: dict[Terminal, None] = {}

        seeds = np.random.SeedSequence(cfg.seed).spawn(topology.num_routers)
        # One shared terminal -> destination-router table for every router
        # (tabulating it per router made construction O(routers x terminals)).
        dest_router = [
            topology.router_of_terminal(t) for t in range(topology.num_terminals)
        ]
        owned = self.owned_routers
        # One port walk per router, shared between Router construction and
        # wiring: topology.peer() does coordinate math per port, and walking
        # router_ports twice per router was a measurable slice of large-
        # network construction time.
        self._ports_of: list[list | None] = [
            list(topology.router_ports(r))
            if owned is None or r in owned
            else None
            for r in range(topology.num_routers)
        ]
        self.routers: list[Router | None] = [
            Router(r, topology, algorithm, self.vc_map, cfg,
                   np.random.default_rng(seeds[r]), dest_router=dest_router,
                   ports=self._ports_of[r])
            if owned is None or r in owned
            else None
            for r in range(topology.num_routers)
        ]
        self.terminals: list[Terminal | None] = [
            Terminal(t, algorithm, self.vc_map, cfg)
            if owned is None or dest_router[t] in owned
            else None
            for t in range(topology.num_terminals)
        ]
        # Replace the components' private registries with the shared ones
        # BEFORE wiring: the flit sinks capture the registry at creation.
        for router in self.routers:
            if router is not None:
                router._wake_registry = self._active_routers
        for terminal in self.terminals:
            if terminal is not None:
                terminal._wake_registry = self._active_terminals
        self.channels: list[Channel] = []
        #: wiring map, one :class:`LinkRecord` per credit-flow-controlled
        #: hop; built once here, consumed by the repro.check sanitizer.
        #: Boundary half-links of a partial build are *not* recorded — the
        #: sanitizer audits complete credit loops, which a shard does not
        #: have at its edges (the sharded engine falls back to unsharded
        #: execution whenever the sanitizer is requested).
        self.links: list[LinkRecord] = []
        #: boundary channels of a partial build, keyed by
        #: ``(kind, pushing_router, pushing_port)`` with kind ``"d"`` (data)
        #: or ``"c"`` (credits).  ``boundary_out`` holds channels pushed by
        #: an owned router and drained by the shard engine at chunk
        #: boundaries; ``boundary_in`` holds channels the engine fills with
        #: the peer shard's exports.  A shard's export key equals the
        #: consuming shard's import key by construction.  Empty on a full
        #: build.
        self.boundary_out: dict[tuple, Channel] = {}
        self.boundary_in: dict[tuple, Channel] = {}
        #: import key -> (owned router id, port) the import terminates at;
        #: used by the SoA core to compile delivery records for boundary
        #: imports and by the tracer to label cross-shard link events.
        self._boundary_in_dst: dict[tuple, tuple[int, int]] = {}
        self._wire()
        self._ports_of = []  # construction scratch; drop the peer objects

    # ------------------------------------------------------------------

    def _channel(self, latency: int, sink, name: str, limit_rate: bool = True) -> Channel:
        ch = Channel(latency, sink, name=name, limit_rate=limit_rate)
        ch._active_set = self._active_channels
        self.channels.append(ch)
        return ch

    def _wire(self) -> None:
        topo, cfg = self.topology, self.cfg
        num_vcs = cfg.router.num_vcs
        depth = cfg.router.buffer_depth
        lat_rr = cfg.network.channel_latency_rr
        lat_rt = cfg.network.channel_latency_rt
        routers = self.routers
        terminals = self.terminals
        links_append = self.links.append
        channel = self._channel
        ports_of = self._ports_of

        for r in range(topo.num_routers):
            a = routers[r]
            if a is None:
                continue
            for port, peer in ports_of[r]:
                # Missing peers (statically-failed ports of a degraded
                # topology) are simply left unwired.
                if peer.is_router:
                    rp = peer.router_port
                    b = routers[rp.router]
                    if b is None:
                        self._wire_boundary(
                            a, r, port, rp.router, rp.port,
                            lat_rr, num_vcs, depth,
                        )
                        continue
                    data = channel(
                        lat_rr, b.make_flit_sink(rp.port), f"r{r}p{port}->r{rp.router}"
                    )
                    tracker = CreditTracker(num_vcs, depth)
                    a.attach_output(port, data, tracker)
                    cred = channel(
                        lat_rr, a.make_credit_sink(port),
                        f"cr r{rp.router}->r{r}p{port}", limit_rate=False,
                    )
                    b.attach_credit_return(rp.port, cred)
                    links_append(LinkRecord(
                        "rr", (r, port), (rp.router, rp.port), tracker,
                        a.staged[port], data, cred, b.inputs[rp.port],
                    ))
                elif peer.is_terminal:
                    t = terminals[peer.terminal]
                    # Terminal -> router (injection).
                    inj = channel(
                        lat_rt, a.make_flit_sink(port), f"t{t.terminal_id}->r{r}"
                    )
                    inj_tracker = CreditTracker(num_vcs, depth)
                    t.attach_injection(inj, inj_tracker)
                    inj_cred = channel(
                        lat_rt, t.make_credit_sink(),
                        f"cr r{r}->t{t.terminal_id}", limit_rate=False,
                    )
                    a.attach_credit_return(port, inj_cred)
                    links_append(LinkRecord(
                        "inj", t.terminal_id, (r, port), inj_tracker,
                        None, inj, inj_cred, a.inputs[port],
                    ))
                    # Router -> terminal (ejection).
                    ej = channel(
                        lat_rt, t.make_flit_sink(), f"r{r}->t{t.terminal_id}"
                    )
                    ej_tracker = CreditTracker(num_vcs, depth)
                    a.attach_output(port, ej, ej_tracker)
                    ej_cred = channel(
                        lat_rt, a.make_credit_sink(port),
                        f"cr t{t.terminal_id}->r{r}", limit_rate=False,
                    )
                    t.attach_ejection_credit(ej_cred)
                    links_append(LinkRecord(
                        "ej", (r, port), t.terminal_id, ej_tracker,
                        a.staged[port], ej, ej_cred, t.receive,
                    ))

    def _wire_boundary(self, a: Router, r: int, port: int, q: int, q_port: int,
                       lat_rr: int, num_vcs: int, depth: int) -> None:
        """Wire one cross-shard port of a partial build.

        The unowned peer ``q``'s half of the link lives in another shard;
        the four channels built here are this shard's halves of the two
        directed data paths and their credit returns:

        * export data ``("d", r, port)`` — flits this shard's router pushes
          toward ``q``; drained by the shard engine, poison sink.
        * import data ``("d", q, q_port)`` — flits ``q`` pushed toward us;
          filled by the shard engine, terminates in the normal flit sink.
        * export credits ``("c", r, port)`` — credits this router returns
          upstream for the ``q -> r`` data path; drained, poison sink.
        * import credits ``("c", q, q_port)`` — credits ``q`` returns for
          the ``r -> q`` data path; filled, terminates in the credit sink.
        """
        data_out = self._channel(
            lat_rr, _poison_sink(f"r{r}p{port}->shard"), f"r{r}p{port}->shard"
        )
        a.attach_output(port, data_out, CreditTracker(num_vcs, depth))
        self.boundary_out[("d", r, port)] = data_out

        data_in = self._channel(
            lat_rr, a.make_flit_sink(port), f"shard->r{r}p{port}"
        )
        self.boundary_in[("d", q, q_port)] = data_in
        self._boundary_in_dst[("d", q, q_port)] = (r, port)

        cred_out = self._channel(
            lat_rr, _poison_sink(f"cr r{r}p{port}->shard"),
            f"cr r{r}p{port}->shard", limit_rate=False,
        )
        a.attach_credit_return(port, cred_out)
        self.boundary_out[("c", r, port)] = cred_out

        cred_in = self._channel(
            lat_rr, a.make_credit_sink(port),
            f"cr shard->r{r}p{port}", limit_rate=False,
        )
        self.boundary_in[("c", q, q_port)] = cred_in
        self._boundary_in_dst[("c", q, q_port)] = (r, port)

    # ------------------------------------------------------------------
    # Introspection used by tests and the measurement harness
    # ------------------------------------------------------------------

    def flits_in_flight(self) -> int:
        """Flits anywhere between source-queue exit and terminal consumption."""
        n = 0
        for ch in self.channels:
            if ch.limit_rate:  # data channels only
                n += ch.in_flight
        for r in self.routers:
            if r is None:
                continue
            for iu in r.inputs:
                n += iu.occupancy()
            n += sum(r._staged_count)
        for t in self.terminals:
            if t is not None:
                n += t.receive.occupancy()
        return n

    def total_injected_flits(self) -> int:
        return sum(t.flits_injected for t in self.terminals if t is not None)

    def total_ejected_flits(self) -> int:
        return sum(t.flits_ejected for t in self.terminals if t is not None)

    def total_backlog_flits(self) -> int:
        return sum(t.backlog_flits for t in self.terminals if t is not None)

    def quiescent(self) -> bool:
        """True when no traffic remains anywhere in the system."""
        return (
            all(t.idle for t in self.terminals if t is not None)
            and all(r.idle for r in self.routers if r is not None)
            and all(not ch.busy for ch in self.channels)
        )

    def invalidate_route_caches(self) -> None:
        """Drop every router's memoised candidate skeletons.

        Called by the fault injector when the fault state's epoch changes:
        cached candidate lists may reference ports that just failed.  The
        output-stage ready bounds are reset too — a fault event may rewrite
        a channel's ``min_gap``, invalidating bounds derived from the old
        value.
        """
        for r in self.routers:
            if r is None:
                continue
            r._route_cache.clear()
            ready = r._stage_ready
            for p in range(len(ready)):
                ready[p] = 0

    def validate_wiring(self) -> None:
        """Check construction invariants; raises ``AssertionError``.

        * every *wired* router-facing port has a data channel and credit
          tracker (ports with missing peers — statically-failed, on a
          degraded topology — are unwired on every attachment),
        * every alive terminal is attached on both directions; terminals of
          statically-failed routers are fully detached,
        * channel counts match the surviving structure (partial builds count
          four channels per boundary port: data + credits, each direction).
        """
        topo = self.topology
        owned = self.owned_routers
        expected_channels = 0
        for r in range(topo.num_routers):
            router = self.routers[r]
            if router is None:
                continue
            for port, peer in topo.router_ports(r):
                if peer.is_missing:
                    assert router.out_channels[port] is None, (
                        f"router {r} failed port {port} has an output channel"
                    )
                    continue
                assert router.out_channels[port] is not None, (
                    f"router {r} port {port} has no output channel"
                )
                assert router.credit_trackers[port] is not None, (
                    f"router {r} port {port} has no credit tracker"
                )
                assert router._credit_return[port] is not None, (
                    f"router {r} port {port} has no credit return path"
                )
                if (
                    owned is not None
                    and peer.is_router
                    and peer.router_port.router not in owned
                ):
                    expected_channels += 4  # boundary: data + credit, both ways
                else:
                    expected_channels += 2  # data out + credit return
        for t in self.terminals:
            if t is None:
                continue
            if t.inject_channel is None:
                # Terminal of a statically-failed router: fully detached.
                assert t.inject_credits is None and t.eject_credit_channel is None
                continue
            assert t.inject_credits is not None
            assert t.eject_credit_channel is not None
            expected_channels += 2  # injection data + ejection credit
        assert len(self.channels) == expected_channels, (
            f"channel count {len(self.channels)} != expected {expected_channels}"
        )
