"""Network construction: topology -> routers + terminals + channels.

:class:`Network` instantiates one :class:`~repro.network.router.Router` per
topology router and one :class:`~repro.network.terminal.Terminal` per
endpoint, then wires every directed channel (data downstream, credits
upstream) with the configured latencies: ``channel_latency_rr`` between
routers, ``channel_latency_rt`` between a router and its terminals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.vcmap import VcMap
from .buffers import CreditTracker, InputUnit
from .channel import Channel
from .router import Router
from .terminal import Terminal

if TYPE_CHECKING:  # pragma: no cover
    from ..config import SimConfig
    from ..core.base import RoutingAlgorithm
    from ..topology.base import Topology


@dataclass(frozen=True)
class LinkRecord:
    """One credit-flow-controlled hop, recorded at wiring time.

    The record pairs everything a per-link audit needs: the upstream credit
    tracker, the upstream staging queues that hold flits which have already
    consumed a credit (``None`` for terminal injection, which has no
    crossbar), the data and credit channels, and the downstream input unit
    the credits account for.  ``repro.check``'s credit-reconciliation
    sanitizer walks :attr:`Network.links` and asserts, per VC,

        ``tracker.occupied(vc) == staged + data-in-flight +
        downstream occupancy + credits-in-flight``

    which is the exact statement of credit-based flow control.
    """

    kind: str  # "rr" (router->router), "inj" (terminal->router), "ej" (router->terminal)
    src: tuple[int, int] | int  # (router, port), or terminal id for "inj"
    dst: tuple[int, int] | int  # (router, port), or terminal id for "ej"
    tracker: CreditTracker
    staged: list | None  # upstream per-VC staging deques ("rr"/"ej" only)
    data: Channel
    credit: Channel
    downstream: InputUnit

    @property
    def label(self) -> str:
        return f"{self.kind} {self.src}->{self.dst}"


class Network:
    """A fully wired simulated network."""

    def __init__(
        self,
        topology: "Topology",
        algorithm: "RoutingAlgorithm",
        cfg: "SimConfig",
    ):
        cfg.validated()
        if algorithm.num_classes > cfg.router.num_vcs:
            raise ValueError(
                f"{algorithm.name} needs {algorithm.num_classes} resource "
                f"classes but the router only has {cfg.router.num_vcs} VCs"
            )
        self.topology = topology
        self.algorithm = algorithm
        self.cfg = cfg
        self.vc_map = VcMap(
            algorithm.num_classes,
            cfg.router.num_vcs,
            weights=getattr(algorithm, "class_weights", None),
        )
        #: shared FaultState when built on a repro.faults.DegradedTopology
        #: (None on a pristine topology); the FaultInjector requires it.
        self.fault_state = getattr(topology, "faults", None)

        # Shared activity registries (insertion-ordered dicts used as sets).
        # Channels register on the empty->busy push transition; routers and
        # terminals are woken by flit delivery / packet offers.  The
        # simulator visits only registered entries, so idle components cost
        # nothing per cycle (see DESIGN.md, performance notes).  Cycle
        # skip-ahead (repro.network.skip) goes one further: it only jumps
        # the clock while _active_terminals is empty, and derives its
        # global next-event bound from the members of the other two sets —
        # so membership here is also the skip engine's eligibility signal.
        self._active_channels: dict[Channel, None] = {}
        self._active_routers: dict[Router, None] = {}
        self._active_terminals: dict[Terminal, None] = {}

        seeds = np.random.SeedSequence(cfg.seed).spawn(topology.num_routers)
        # One shared terminal -> destination-router table for every router
        # (tabulating it per router made construction O(routers x terminals)).
        dest_router = [
            topology.router_of_terminal(t) for t in range(topology.num_terminals)
        ]
        self.routers = [
            Router(r, topology, algorithm, self.vc_map, cfg,
                   np.random.default_rng(seeds[r]), dest_router=dest_router)
            for r in range(topology.num_routers)
        ]
        self.terminals = [
            Terminal(t, algorithm, self.vc_map, cfg)
            for t in range(topology.num_terminals)
        ]
        # Replace the components' private registries with the shared ones
        # BEFORE wiring: the flit sinks capture the registry at creation.
        for router in self.routers:
            router._wake_registry = self._active_routers
        for terminal in self.terminals:
            terminal._wake_registry = self._active_terminals
        self.channels: list[Channel] = []
        #: wiring map, one :class:`LinkRecord` per credit-flow-controlled
        #: hop; built once here, consumed by the repro.check sanitizer.
        self.links: list[LinkRecord] = []
        self._wire()

    # ------------------------------------------------------------------

    def _channel(self, latency: int, sink, name: str, limit_rate: bool = True) -> Channel:
        ch = Channel(latency, sink, name=name, limit_rate=limit_rate)
        ch._active_set = self._active_channels
        self.channels.append(ch)
        return ch

    def _wire(self) -> None:
        topo, cfg = self.topology, self.cfg
        num_vcs = cfg.router.num_vcs
        depth = cfg.router.buffer_depth
        lat_rr = cfg.network.channel_latency_rr
        lat_rt = cfg.network.channel_latency_rt

        for r in range(topo.num_routers):
            a = self.routers[r]
            for port, peer in topo.router_ports(r):
                # Missing peers (statically-failed ports of a degraded
                # topology) are simply left unwired.
                if peer.is_router:
                    rp = peer.router_port
                    b = self.routers[rp.router]
                    data = self._channel(
                        lat_rr, b.make_flit_sink(rp.port), f"r{r}p{port}->r{rp.router}"
                    )
                    tracker = CreditTracker(num_vcs, depth)
                    a.attach_output(port, data, tracker)
                    cred = self._channel(
                        lat_rr, a.make_credit_sink(port),
                        f"cr r{rp.router}->r{r}p{port}", limit_rate=False,
                    )
                    b.attach_credit_return(rp.port, cred)
                    self.links.append(LinkRecord(
                        "rr", (r, port), (rp.router, rp.port), tracker,
                        a.staged[port], data, cred, b.inputs[rp.port],
                    ))
                elif peer.is_terminal:
                    t = self.terminals[peer.terminal]
                    # Terminal -> router (injection).
                    inj = self._channel(
                        lat_rt, a.make_flit_sink(port), f"t{t.terminal_id}->r{r}"
                    )
                    inj_tracker = CreditTracker(num_vcs, depth)
                    t.attach_injection(inj, inj_tracker)
                    inj_cred = self._channel(
                        lat_rt, t.make_credit_sink(),
                        f"cr r{r}->t{t.terminal_id}", limit_rate=False,
                    )
                    a.attach_credit_return(port, inj_cred)
                    self.links.append(LinkRecord(
                        "inj", t.terminal_id, (r, port), inj_tracker,
                        None, inj, inj_cred, a.inputs[port],
                    ))
                    # Router -> terminal (ejection).
                    ej = self._channel(
                        lat_rt, t.make_flit_sink(), f"r{r}->t{t.terminal_id}"
                    )
                    ej_tracker = CreditTracker(num_vcs, depth)
                    a.attach_output(port, ej, ej_tracker)
                    ej_cred = self._channel(
                        lat_rt, a.make_credit_sink(port),
                        f"cr t{t.terminal_id}->r{r}", limit_rate=False,
                    )
                    t.attach_ejection_credit(ej_cred)
                    self.links.append(LinkRecord(
                        "ej", (r, port), t.terminal_id, ej_tracker,
                        a.staged[port], ej, ej_cred, t.receive,
                    ))

    # ------------------------------------------------------------------
    # Introspection used by tests and the measurement harness
    # ------------------------------------------------------------------

    def flits_in_flight(self) -> int:
        """Flits anywhere between source-queue exit and terminal consumption."""
        n = 0
        for ch in self.channels:
            if ch.limit_rate:  # data channels only
                n += ch.in_flight
        for r in self.routers:
            for iu in r.inputs:
                n += iu.occupancy()
            n += sum(r._staged_count)
        for t in self.terminals:
            n += t.receive.occupancy()
        return n

    def total_injected_flits(self) -> int:
        return sum(t.flits_injected for t in self.terminals)

    def total_ejected_flits(self) -> int:
        return sum(t.flits_ejected for t in self.terminals)

    def total_backlog_flits(self) -> int:
        return sum(t.backlog_flits for t in self.terminals)

    def quiescent(self) -> bool:
        """True when no traffic remains anywhere in the system."""
        return (
            all(t.idle for t in self.terminals)
            and all(r.idle for r in self.routers)
            and all(not ch.busy for ch in self.channels)
        )

    def invalidate_route_caches(self) -> None:
        """Drop every router's memoised candidate skeletons.

        Called by the fault injector when the fault state's epoch changes:
        cached candidate lists may reference ports that just failed.  The
        output-stage ready bounds are reset too — a fault event may rewrite
        a channel's ``min_gap``, invalidating bounds derived from the old
        value.
        """
        for r in self.routers:
            r._route_cache.clear()
            ready = r._stage_ready
            for p in range(len(ready)):
                ready[p] = 0

    def validate_wiring(self) -> None:
        """Check construction invariants; raises ``AssertionError``.

        * every *wired* router-facing port has a data channel and credit
          tracker (ports with missing peers — statically-failed, on a
          degraded topology — are unwired on every attachment),
        * every alive terminal is attached on both directions; terminals of
          statically-failed routers are fully detached,
        * channel counts match the surviving structure.
        """
        topo = self.topology
        expected_channels = 0
        for r in range(topo.num_routers):
            router = self.routers[r]
            for port, peer in topo.router_ports(r):
                if peer.is_missing:
                    assert router.out_channels[port] is None, (
                        f"router {r} failed port {port} has an output channel"
                    )
                    continue
                assert router.out_channels[port] is not None, (
                    f"router {r} port {port} has no output channel"
                )
                assert router.credit_trackers[port] is not None, (
                    f"router {r} port {port} has no credit tracker"
                )
                assert router._credit_return[port] is not None, (
                    f"router {r} port {port} has no credit return path"
                )
                expected_channels += 2  # data out + credit return
        for t in self.terminals:
            if t.inject_channel is None:
                # Terminal of a statically-failed router: fully detached.
                assert t.inject_credits is None and t.eject_credit_channel is None
                continue
            assert t.inject_credits is not None
            assert t.eject_credit_channel is not None
            expected_channels += 2  # injection data + ejection credit
        assert len(self.channels) == expected_channels, (
            f"channel count {len(self.channels)} != expected {expected_channels}"
        )
