"""Network terminals (endpoints).

A terminal injects packets over a terminal channel into its router (credit
flow-controlled, one flit per cycle) and consumes flits arriving from the
router, reassembling packets and recording delivery telemetry.

The injection side models an open-loop source: a traffic generator (or the
application engine) appends packets to an unbounded source queue; the queue's
growth under overload is what the saturation detector watches.  Packets are
injected one at a time (the NIC serializes onto the terminal channel), on a
virtual channel drawn from the routing algorithm's injection classes.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import TYPE_CHECKING, Callable

from .arbiter import make_arbiter
from .buffers import CreditTracker, InputUnit
from .channel import Channel
from .types import Flit, Packet

if TYPE_CHECKING:  # pragma: no cover
    from ..config import SimConfig
    from ..core.base import RoutingAlgorithm
    from ..core.vcmap import VcMap


class Terminal:
    """One endpoint of the network."""

    def __init__(
        self,
        terminal_id: int,
        algorithm: "RoutingAlgorithm",
        vc_map: "VcMap",
        cfg: "SimConfig",
    ):
        self.terminal_id = terminal_id
        self.algorithm = algorithm
        self.vc_map = vc_map
        self.cfg = cfg
        self.num_vcs = cfg.router.num_vcs

        # Injection side.
        self.source_queue: deque[Packet] = deque()
        self._active_packet: Packet | None = None
        # Index of the active packet's next flit.  Flit facade objects are
        # materialized one at a time at push (memory-lean at-rest state: a
        # parked packet is one object, never a deque of size+1 flits).
        self._next_flit_index = 0
        self._active_vc: int | None = None
        self.inject_channel: Channel | None = None
        self.inject_credits: CreditTracker | None = None

        # Ejection side.
        self.receive = InputUnit(self.num_vcs, cfg.router.buffer_depth)
        self.eject_credit_channel: Channel | None = None
        self._eject_arbiter = make_arbiter(cfg.router.arbiter, self.num_vcs)
        self._age = cfg.router.arbiter == "age"
        self._eject_rate = cfg.network.ejection_rate

        # Telemetry / hooks.
        self.flits_injected = 0
        self.flits_ejected = 0
        self.packets_delivered = 0
        self.delivery_listeners: list[Callable[[Packet, int], None]] = []
        # Called as listener(packet, cycle) when a packet starts injecting
        # (its head flit enters the terminal channel this same cycle).
        self.inject_listeners: list[Callable[[Packet, int], None]] = []
        # Reassembly integrity: per-packet next expected flit index.  VC flow
        # control guarantees in-order per-packet delivery; this check turns a
        # violation (a simulator bug) into an immediate error.
        self._expected_index: dict[int, int] = {}
        # Buffered receive-flit count: makes the hot idle check O(1) instead
        # of scanning every VC FIFO (profiled; see guide_00's measure-first).
        self._rx_count = 0
        # VCs with buffered flits, kept sorted: the ejection arbiter scans
        # only these instead of every VC (usually one or two are non-empty).
        self._rx_live: list[int] = []
        # Simulator activity registry.  The owning Network replaces this with
        # its shared registry before wiring; standalone terminals (unit
        # tests) keep the private throwaway dict.
        self._wake_registry: dict["Terminal", None] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_injection(self, channel: Channel, credits: CreditTracker) -> None:
        self.inject_channel = channel
        self.inject_credits = credits

    def attach_ejection_credit(self, channel: Channel) -> None:
        self.eject_credit_channel = channel

    def make_flit_sink(self):
        wake = self._wake_registry
        vcs = self.receive.vcs
        depth = self.receive.depth
        rx_live = self._rx_live

        fifos = [vcs[v].fifo for v in range(self.num_vcs)]
        # Aliased by the SoA core's delivery record (repro.network.soa).
        self._sink_fifos = fifos

        def sink(item: tuple[int, Flit]) -> None:
            # InputUnit.receive inlined (per-flit hot path).
            vc, flit = item
            fifo = fifos[vc]
            n = len(fifo)
            if n >= depth:
                raise RuntimeError(
                    f"buffer overflow on VC {vc}: credit protocol violated"
                )
            fifo.append(flit)
            self._rx_count += 1
            if n == 0:
                # Empty->busy transition; a non-empty FIFO implies rx_count
                # was already positive, so the terminal is already awake.
                insort(rx_live, vc)
                wake[self] = None

        return sink

    def make_credit_sink(self):
        def sink(vc: int) -> None:
            self.inject_credits.restore(vc)

        return sink

    # ------------------------------------------------------------------
    # API for traffic generators / the application engine
    # ------------------------------------------------------------------

    def offer(self, packet: Packet) -> None:
        """Append a packet to the source queue."""
        if packet.src_terminal != self.terminal_id:
            raise ValueError("packet offered to the wrong terminal")
        if self.inject_channel is None:
            raise RuntimeError(
                f"terminal {self.terminal_id} is detached (its router failed "
                f"statically); exclude it from traffic generation"
            )
        self.source_queue.append(packet)
        self._wake_registry[self] = None

    @property
    def backlog_flits(self) -> int:
        """Flits waiting in the source queue (saturation signal)."""
        n = sum(p.size for p in self.source_queue)
        if self._active_packet is not None:
            n += self._active_packet.size - self._next_flit_index
        return n

    @property
    def idle(self) -> bool:
        return (
            self._rx_count == 0
            and not self.source_queue
            and self._active_packet is None
        )

    # ------------------------------------------------------------------
    # Per-cycle behaviour
    # ------------------------------------------------------------------

    def step(self, cycle: int) -> None:
        if self._active_packet is not None or self.source_queue:
            self._step_injection(cycle)
        if self._rx_count:
            self._step_ejection(cycle)

    def _step_injection(self, cycle: int) -> None:
        if self._active_packet is None:
            packet = self.source_queue[0]
            vc = self._pick_injection_vc(packet)
            if vc is None:
                return  # no credited VC this cycle
            self.source_queue.popleft()
            self._active_packet = packet
            self._next_flit_index = 0
            self._active_vc = vc
            packet.inject_cycle = cycle
            if self.inject_listeners:
                for listener in self.inject_listeners:
                    listener(packet, cycle)
        vc = self._active_vc
        credits = self.inject_credits
        if credits.credits[vc] <= 0:
            return
        packet = self._active_packet
        idx = self._next_flit_index
        flit = Flit(packet, idx)
        # CreditTracker.consume and Channel.push inlined (per-flit hot
        # path); the underflow check is the credit test above.
        credits.credits[vc] -= 1
        credits.occupied_total += 1
        ch = self.inject_channel
        if ch.limit_rate:
            if cycle <= ch._last_push_cycle:
                raise RuntimeError(
                    f"channel {ch.name!r} pushed twice in cycle {cycle}"
                )
            ch._last_push_cycle = cycle
        ch.utilization_count += 1
        ready = cycle + ch.latency
        pipe = ch._pipe
        if not pipe:
            ch._next_ready = ready
            if ch._active_set is not None:
                ch._active_set[ch] = None
        pipe.append((ready, (vc, flit)))
        self.flits_injected += 1
        idx += 1
        if idx >= packet.size:
            self._active_packet = None
            self._active_vc = None
        else:
            self._next_flit_index = idx

    def _pick_injection_vc(self, packet: Packet) -> int | None:
        best_vc, best_credits = None, 0
        for klass in self.algorithm.injection_classes(packet):
            for v in self.vc_map.vcs_of(klass):
                c = self.inject_credits.available(v)
                if c > best_credits:
                    best_credits, best_vc = c, v
        return best_vc

    def _step_ejection(self, cycle: int) -> None:
        budget = self._eject_rate
        vcs = self.receive.vcs
        while budget > 0 and self._rx_count > 0:
            if self._age:
                # Inlined age-based pick (the generic arbiter's request-list
                # build dominated ejection cost under load), over the live
                # VCs only.  One live VC — the common case — needs no
                # arbitration at all; the multi-VC scan compares the
                # (create_cycle, pid) age key as two ints (pids are unique,
                # so the order is total).
                live = self._rx_live
                if len(live) == 1:
                    best_vc = live[0]
                else:
                    best_vc = -1
                    bc = bp = 0
                    for v in live:
                        p = vcs[v].fifo[0].packet
                        c = p.create_cycle
                        if best_vc < 0 or c < bc or (c == bc and p.pid < bp):
                            bc = c
                            bp = p.pid
                            best_vc = v
            else:
                requests = [
                    (v, vcs[v].head)
                    for v in range(self.num_vcs)
                    if vcs[v].head is not None
                ]
                pick = self._eject_arbiter.pick(requests, key=lambda r: (r[0],))
                if pick is None:
                    return
                best_vc = pick[0]
            if best_vc < 0:
                return
            fifo = vcs[best_vc].fifo
            flit = fifo.popleft()
            if not fifo:
                self._rx_live.remove(best_vc)
            self._rx_count -= 1
            pid = flit.packet.pid
            expected = self._expected_index.get(pid, 0)
            if flit.index != expected:
                raise RuntimeError(
                    f"flit reordering within packet {pid}: got flit "
                    f"{flit.index}, expected {expected}"
                )
            if flit.is_tail:
                self._expected_index.pop(pid, None)
            else:
                self._expected_index[pid] = expected + 1
            self.flits_ejected += 1
            budget -= 1
            cr = self.eject_credit_channel
            if cr is not None:
                # Credit channels carry the bare VC id (cheaper than a
                # Credit object on the per-flit path); Channel.push inlined.
                if cr.limit_rate:
                    if cycle <= cr._last_push_cycle:
                        raise RuntimeError(
                            f"channel {cr.name!r} pushed twice in cycle {cycle}"
                        )
                    cr._last_push_cycle = cycle
                cr.utilization_count += 1
                ready = cycle + cr.latency
                pipe = cr._pipe
                if not pipe:
                    cr._next_ready = ready
                    if cr._active_set is not None:
                        cr._active_set[cr] = None
                pipe.append((ready, best_vc))
            if flit.is_tail:
                self._complete_packet(flit.packet, cycle)

    def _complete_packet(self, packet: Packet, cycle: int) -> None:
        packet.eject_cycle = cycle
        self.packets_delivered += 1
        if packet.message is not None:
            msg = packet.message
            msg.packets_delivered += 1
            if msg.complete:
                msg.deliver_cycle = cycle
        for listener in self.delivery_listeners:
            listener(packet, cycle)
