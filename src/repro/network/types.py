"""Core datatypes of the flit-level simulator: packets, flits, credits.

The simulator models *flit-granularity* transfer with credit-based virtual-
channel flow control, matching the modelling level of the paper's SuperSim
simulator.  A :class:`Packet` is injected by a terminal, segmented into
:class:`Flit` s, wormhole-routed through the network, and reassembled at the
destination terminal.  A :class:`Message` groups packets for the application
model (halo exchanges, collectives).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

_packet_ids = itertools.count()


def _next_packet_id() -> int:
    return next(_packet_ids)


@dataclass
class Message:
    """An application-level message, segmented into one or more packets.

    Used by :mod:`repro.application`; synthetic traffic uses bare packets.
    """

    src_terminal: int
    dst_terminal: int
    size_flits: int
    tag: Any = None
    create_cycle: int = 0
    packets_total: int = 0
    packets_delivered: int = 0
    deliver_cycle: int | None = None

    @property
    def complete(self) -> bool:
        return self.packets_total > 0 and self.packets_delivered >= self.packets_total


class Packet:
    """A network packet.

    ``routing_state`` is scratch space used by routing algorithms that must
    carry state in the packet (UGAL / Clos-AD / Valiant intermediate
    addresses).  DimWAR and OmniWAR never touch it — their entire routing
    state is encoded in the VC identifier, which is the paper's practicality
    claim (Table 1: "Packet Contents: none").  The backing dict is created
    lazily on first access, so the common DimWAR/OmniWAR packet never
    allocates one.

    A ``__slots__`` class rather than a dataclass: packets are constructed
    and have their fields read on the simulator's per-flit hot paths
    (arbitration age keys, tail-flit checks), where slot access is
    measurably cheaper than instance-dict access.
    """

    __slots__ = (
        "src_terminal",
        "dst_terminal",
        "size",  # flits, head and tail inclusive
        "create_cycle",
        "pid",
        "message",
        # -- telemetry ----------------------------------------------------
        "inject_cycle",  # head flit left the terminal
        "eject_cycle",  # tail flit consumed at destination
        "hops",  # router-to-router hops taken
        "deroutes",  # non-minimal hops taken
        "vc_trace",  # per-hop VCs (enabled for debugging)
        "port_trace",  # per-hop output ports
        "_routing_state",
    )

    def __init__(
        self,
        src_terminal: int,
        dst_terminal: int,
        size: int,
        create_cycle: int,
        pid: int | None = None,
        message: Message | None = None,
    ):
        if size < 1:
            raise ValueError("packet size must be >= 1 flit")
        self.src_terminal = src_terminal
        self.dst_terminal = dst_terminal
        self.size = size
        self.create_cycle = create_cycle
        self.pid = _next_packet_id() if pid is None else pid
        self.message = message
        self.inject_cycle: int | None = None
        self.eject_cycle: int | None = None
        self.hops = 0
        self.deroutes = 0
        self.vc_trace: list[int] | None = None
        self.port_trace: list[int] | None = None
        self._routing_state: dict[str, Any] | None = None

    @property
    def routing_state(self) -> dict[str, Any]:
        """Algorithm scratch space (counts against Table 1 "packet contents")."""
        rs = self._routing_state
        if rs is None:
            rs = self._routing_state = {}
        return rs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(pid={self.pid}, {self.src_terminal}->{self.dst_terminal}, "
            f"size={self.size}, t={self.create_cycle})"
        )

    @property
    def age_key(self) -> tuple[int, int]:
        """Sort key for age-based arbitration (older packets first)."""
        return (self.create_cycle, self.pid)

    @property
    def latency(self) -> int | None:
        """Total packet latency (creation to tail ejection), if delivered."""
        if self.eject_cycle is None:
            return None
        return self.eject_cycle - self.create_cycle

    def flits(self) -> list["Flit"]:
        """Segment the packet into its flits."""
        return [Flit(self, i) for i in range(self.size)]


class Flit:
    """One flit of a packet.  Lightweight: hot-path object.

    ``tail`` is precomputed at construction: the tail test runs once per
    flit on both the switch-allocation and the ejection hot paths, where a
    stored slot is cheaper than re-deriving ``index == packet.size - 1``.
    """

    __slots__ = ("packet", "index", "tail")

    def __init__(self, packet: Packet, index: int):
        self.packet = packet
        self.index = index
        self.tail = index == packet.size - 1

    @property
    def is_head(self) -> bool:
        return self.index == 0

    @property
    def is_tail(self) -> bool:
        return self.tail

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        if self.is_head and self.is_tail:
            kind = "HT"
        return f"Flit(p{self.packet.pid}#{self.index}{kind})"


@dataclass(frozen=True)
class Credit:
    """A credit returned upstream when a buffer slot frees."""

    vc: int
