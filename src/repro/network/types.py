"""Core datatypes of the flit-level simulator: packets, flits, credits.

The simulator models *flit-granularity* transfer with credit-based virtual-
channel flow control, matching the modelling level of the paper's SuperSim
simulator.  A :class:`Packet` is injected by a terminal, segmented into
:class:`Flit` s, wormhole-routed through the network, and reassembled at the
destination terminal.  A :class:`Message` groups packets for the application
model (halo exchanges, collectives).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_packet_ids = itertools.count()


def _next_packet_id() -> int:
    return next(_packet_ids)


@dataclass
class Message:
    """An application-level message, segmented into one or more packets.

    Used by :mod:`repro.application`; synthetic traffic uses bare packets.
    """

    src_terminal: int
    dst_terminal: int
    size_flits: int
    tag: Any = None
    create_cycle: int = 0
    packets_total: int = 0
    packets_delivered: int = 0
    deliver_cycle: int | None = None

    @property
    def complete(self) -> bool:
        return self.packets_total > 0 and self.packets_delivered >= self.packets_total


@dataclass
class Packet:
    """A network packet.

    ``routing_state`` is scratch space used by routing algorithms that must
    carry state in the packet (UGAL / Clos-AD / Valiant intermediate
    addresses).  DimWAR and OmniWAR never touch it — their entire routing
    state is encoded in the VC identifier, which is the paper's practicality
    claim (Table 1: "Packet Contents: none").
    """

    src_terminal: int
    dst_terminal: int
    size: int  # flits, head and tail inclusive
    create_cycle: int
    pid: int = field(default_factory=_next_packet_id)
    message: Message | None = None
    # -- telemetry ---------------------------------------------------------
    inject_cycle: int | None = None  # head flit left the terminal
    eject_cycle: int | None = None  # tail flit consumed at destination
    hops: int = 0  # router-to-router hops taken
    deroutes: int = 0  # non-minimal hops taken
    vc_trace: list[int] | None = None  # per-hop VCs (enabled for debugging)
    port_trace: list[int] | None = None  # per-hop output ports
    # -- algorithm scratch space (counts against Table 1 "packet contents") --
    routing_state: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("packet size must be >= 1 flit")

    @property
    def age_key(self) -> tuple[int, int]:
        """Sort key for age-based arbitration (older packets first)."""
        return (self.create_cycle, self.pid)

    @property
    def latency(self) -> int | None:
        """Total packet latency (creation to tail ejection), if delivered."""
        if self.eject_cycle is None:
            return None
        return self.eject_cycle - self.create_cycle

    def flits(self) -> list["Flit"]:
        """Segment the packet into its flits."""
        return [Flit(self, i) for i in range(self.size)]


class Flit:
    """One flit of a packet.  Lightweight: hot-path object."""

    __slots__ = ("packet", "index")

    def __init__(self, packet: Packet, index: int):
        self.packet = packet
        self.index = index

    @property
    def is_head(self) -> bool:
        return self.index == 0

    @property
    def is_tail(self) -> bool:
        return self.index == self.packet.size - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        if self.is_head and self.is_tail:
            kind = "HT"
        return f"Flit(p{self.packet.pid}#{self.index}{kind})"


@dataclass(frozen=True)
class Credit:
    """A credit returned upstream when a buffer slot frees."""

    vc: int
