"""Measurement: latency sampling, throughput, and stability detection.

The paper's methodology (Section 6.1): warm the network up until packet
latency stabilizes, then measure; if latency never stops growing the network
is *saturated* at that load and no point is plotted.  :class:`LatencyMonitor`
implements that with batch means — latencies are grouped into fixed-size
batches and the run is declared stable when consecutive batch means stop
trending upward.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .types import Packet


@dataclass
class LatencySample:
    create_cycle: int
    latency: int
    hops: int
    deroutes: int


class PacketStats:
    """Collects per-packet telemetry via terminal delivery listeners."""

    def __init__(self) -> None:
        self.samples: list[LatencySample] = []
        self.flits_delivered = 0
        self.packets_delivered = 0

    def on_delivery(self, packet: Packet, cycle: int) -> None:
        self.packets_delivered += 1
        self.flits_delivered += packet.size
        self.samples.append(
            LatencySample(
                packet.create_cycle, packet.latency, packet.hops, packet.deroutes
            )
        )

    # -- summaries ----------------------------------------------------

    def latencies(self, since: int = 0, until: int | None = None) -> list[int]:
        return [
            s.latency
            for s in self.samples
            if s.create_cycle >= since and (until is None or s.create_cycle < until)
        ]

    def mean_latency(self, since: int = 0, until: int | None = None) -> float:
        ls = self.latencies(since, until)
        return sum(ls) / len(ls) if ls else math.nan

    def percentile_latency(self, q: float, since: int = 0) -> float:
        ls = sorted(self.latencies(since))
        if not ls:
            return math.nan
        idx = min(len(ls) - 1, int(q * len(ls)))
        return float(ls[idx])

    def mean_hops(self, since: int = 0) -> float:
        hs = [s.hops for s in self.samples if s.create_cycle >= since]
        return sum(hs) / len(hs) if hs else math.nan

    def mean_deroutes(self, since: int = 0) -> float:
        ds = [s.deroutes for s in self.samples if s.create_cycle >= since]
        return sum(ds) / len(ds) if ds else math.nan

    def latency_by_hops(self, since: int = 0) -> dict[int, float]:
        """Mean latency bucketed by router-hop count — separates the
        serialization/queueing component from the distance component."""
        buckets: dict[int, list[int]] = {}
        for s in self.samples:
            if s.create_cycle >= since:
                buckets.setdefault(s.hops, []).append(s.latency)
        return {h: sum(v) / len(v) for h, v in sorted(buckets.items())}

    def deroute_histogram(self, since: int = 0) -> dict[int, int]:
        """Packet counts by number of deroutes taken."""
        out: dict[int, int] = {}
        for s in self.samples:
            if s.create_cycle >= since:
                out[s.deroutes] = out.get(s.deroutes, 0) + 1
        return dict(sorted(out.items()))


@dataclass
class StabilityVerdict:
    stable: bool
    reason: str
    mean_latency: float = math.nan
    accepted_rate: float = math.nan  # flits/cycle/terminal actually delivered


class LatencyMonitor:
    """Batch-means latency-stabilization detector.

    ``growth_tolerance`` bounds how much the late-half batch mean may exceed
    the early-half batch mean before the run is declared unstable (latency
    still growing == saturated in the paper's methodology).
    """

    def __init__(self, growth_tolerance: float = 1.25, min_samples: int = 50):
        self.growth_tolerance = growth_tolerance
        self.min_samples = min_samples

    def verdict(
        self,
        stats: PacketStats,
        measure_start: int,
        measure_end: int,
        num_terminals: int,
        offered_rate: float,
        undelivered_backlog: int = 0,
        offered_flits: int | None = None,
    ) -> StabilityVerdict:
        window = [
            s
            for s in stats.samples
            if measure_start <= s.create_cycle < measure_end
        ]
        span = measure_end - measure_start
        if not window:
            return StabilityVerdict(False, "no packets delivered", math.nan, 0.0)
        if len(window) < self.min_samples:
            return StabilityVerdict(
                False, f"only {len(window)} samples (<{self.min_samples})"
            )
        mid = measure_start + span // 2
        early = [s.latency for s in window if s.create_cycle < mid]
        late = [s.latency for s in window if s.create_cycle >= mid]
        if not early or not late:
            return StabilityVerdict(False, "lopsided sample window")
        mean_early = sum(early) / len(early)
        mean_late = sum(late) / len(late)
        mean_all = sum(s.latency for s in window) / len(window)
        if mean_late > mean_early * self.growth_tolerance:
            return StabilityVerdict(
                False,
                f"latency growing ({mean_early:.1f} -> {mean_late:.1f})",
                mean_all,
            )
        # Source queues that keep growing mean the network cannot accept the
        # offered load even if delivered-packet latency looks flat.
        offered_window_flits = offered_rate * span * num_terminals
        if offered_window_flits > 0 and undelivered_backlog > 0.10 * offered_window_flits:
            return StabilityVerdict(
                False,
                f"source backlog {undelivered_backlog} flits "
                f"(> 10% of offered window)",
                mean_all,
            )
        return StabilityVerdict(True, "stable", mean_all)


def accepted_rate(
    flits_delivered_window: int, span: int, num_terminals: int
) -> float:
    """Delivered flits per cycle per terminal."""
    return flits_delivered_window / (span * num_terminals)
