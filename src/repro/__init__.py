"""repro — reproduction of *Practical and Efficient Incremental Adaptive
Routing for HyperX Networks* (McDonald et al., SC '19).

The package provides:

* :mod:`repro.core` — the paper's routing algorithms (DimWAR, OmniWAR) and
  the DOR/VAL/UGAL/Clos-AD baselines, plus deadlock analysis;
* :mod:`repro.network` — a flit-level, cycle-driven interconnect simulator
  (credit-based VC flow control, CIOQ routers, age-based arbitration);
* :mod:`repro.topology` — HyperX, Dragonfly, and fat-tree topologies and the
  scalability models of the paper's Figure 2;
* :mod:`repro.traffic` — the synthetic patterns of Table 3;
* :mod:`repro.application` — the 27-point stencil application model;
* :mod:`repro.analysis` — load-latency sweeps and throughput measurement;
* :mod:`repro.cost` — the cabling-cost model of Figure 3;
* :mod:`repro.faults` — link/router fault injection and degraded-topology
  adaptive routing (see ``docs/FAULTS.md``);
* :mod:`repro.obs` — flit-level lifecycle tracing, windowed time-series
  sampling, trace exporters, and phase profiling (see
  ``docs/OBSERVABILITY.md``);
* :mod:`repro.experiments` — one driver per paper figure/table.

Quickstart::

    from repro import quick_simulation
    result = quick_simulation(algorithm="DimWAR", pattern="UR", rate=0.3)
    print(result.mean_latency)
"""

from .config import SimConfig, default_config, paper_scale
from .core.registry import PAPER_ALGORITHMS, algorithm_names, make_algorithm
from .faults import DegradedTopology, FaultSet, random_link_faults
from .topology.hyperx import HyperX, paper_hyperx, regular_hyperx

__version__ = "1.0.0"

__all__ = [
    "SimConfig",
    "default_config",
    "paper_scale",
    "HyperX",
    "regular_hyperx",
    "paper_hyperx",
    "make_algorithm",
    "algorithm_names",
    "PAPER_ALGORITHMS",
    "FaultSet",
    "DegradedTopology",
    "random_link_faults",
    "quick_simulation",
]


def quick_simulation(
    algorithm: str = "DimWAR",
    pattern: str = "UR",
    rate: float = 0.3,
    widths: tuple[int, ...] = (4, 4),
    terminals_per_router: int = 4,
    cycles: int = 3000,
    seed: int = 1,
):
    """Run one synthetic-traffic simulation and return its measurement.

    A convenience wrapper over the full API (topology -> algorithm ->
    network -> traffic -> measurement); see ``examples/quickstart.py`` for
    the expanded form.
    """
    from .analysis.sweep import measure_point
    from .traffic import patterns as P

    topo = HyperX(widths, terminals_per_router)
    algo = make_algorithm(algorithm, topo)
    lookup = {
        "UR": lambda: P.UniformRandom(topo.num_terminals),
        "BC": lambda: P.BitComplement(topo.num_terminals),
        "URBx": lambda: P.UniformRandomBisection(topo, 0),
        "URBy": lambda: P.UniformRandomBisection(topo, 1),
        "S2": lambda: P.Swap2(topo),
        "DCR": lambda: P.DimensionComplementReverse(topo),
    }
    if pattern not in lookup:
        raise ValueError(f"unknown pattern {pattern!r}")
    return measure_point(
        topo,
        algo,
        lookup[pattern](),
        rate,
        total_cycles=cycles,
        seed=seed,
    )
