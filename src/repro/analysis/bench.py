"""Perf microbenchmark harness behind ``python -m repro bench``.

Runs the same eight simulator microbenchmarks as
``benchmarks/test_perf_simulator.py`` (network construction, loaded and
idle simulation cycles — both at small and at 16x16 target scale — a
fault-injection settling transient, traffic generation, one adaptive
routing decision)
without the pytest-benchmark machinery, and regenerates the repo's recorded
``BENCH_sim.json`` in its ``repro-perf-summary/1`` schema.  The
``seed_min_s`` baselines (the very first commit's timings) are carried over
from the existing file so the ``speedup_vs_seed`` trajectory survives
regeneration.

``--compare`` mode times the current tree and prints per-benchmark speedup
against the recorded mins without touching the file — the manual version of
the CI perf ratchet (``benchmarks/check_perf_ratchet.py``).

Timings are wall-clock minima over several rounds: the min is the noise
floor estimator (any round can only be *slowed* by interference), which is
also what pytest-benchmark's history and the CI ratchet key on.
"""

from __future__ import annotations

import json
import statistics
import time
from datetime import datetime, timezone
from platform import python_version

SCHEMA = "repro-perf-summary/1"


# ----------------------------------------------------------------------
# Scenarios (mirrors benchmarks/test_perf_simulator.py)
# ----------------------------------------------------------------------

def _loaded_sim(widths=(4, 4), tpr=2, algo="DimWAR", rate=0.4, warm=300):
    from ..config import default_config
    from ..core.registry import make_algorithm
    from ..network.network import Network
    from ..network.simulator import Simulator
    from ..topology.hyperx import HyperX
    from ..traffic.injection import SyntheticTraffic
    from ..traffic.patterns import UniformRandom

    topo = HyperX(widths, tpr)
    net = Network(topo, make_algorithm(algo, topo), default_config())
    sim = Simulator(net)
    sim.processes.append(
        SyntheticTraffic(net, UniformRandom(topo.num_terminals), rate, seed=1)
    )
    sim.run(warm)
    return sim


def _bench_network_construction():
    from ..config import default_config
    from ..core.registry import make_algorithm
    from ..network.network import Network
    from ..topology.hyperx import HyperX

    topo = HyperX((4, 4, 4), 4)

    def build():
        Network(topo, make_algorithm("OmniWAR", topo), default_config())

    return build, {"rounds": 10, "iterations": 1}


def _bench_cycles_loaded():
    sim = _loaded_sim()

    def run_chunk():
        sim.run(100)

    return run_chunk, {
        "rounds": 10, "iterations": 1, "warmup_rounds": 1,
        "cycles_per_chunk": 100,
    }


def _bench_cycles_loaded_16x16():
    """Loaded throughput at the ROADMAP's target scale (16x16 HyperX, 256
    routers).  Reported both as cycles/sec and delivered flits/sec: the
    steady-state flits-per-cycle rate is sampled once after warm-up, then
    multiplied by the timed cycle rate (both engines deliver bit-identical
    flit streams, so the product is the honest throughput number)."""
    sim = _loaded_sim(widths=(16, 16), tpr=1, algo="DimWAR", rate=0.3, warm=200)
    net = sim.network
    before = net.total_ejected_flits()
    sim.run(100)
    flits_per_cycle = (net.total_ejected_flits() - before) / 100.0

    def run_chunk():
        sim.run(100)

    return run_chunk, {
        "rounds": 5, "iterations": 1, "warmup_rounds": 1,
        "cycles_per_chunk": 100,
        "flits_per_cycle": round(flits_per_cycle, 3),
    }


def _bench_cycles_idle():
    from ..config import default_config
    from ..core.registry import make_algorithm
    from ..network.network import Network
    from ..network.simulator import Simulator
    from ..topology.hyperx import HyperX

    topo = HyperX((4, 4), 2)
    net = Network(topo, make_algorithm("DOR", topo), default_config())
    sim = Simulator(net)

    def run_chunk():
        sim.run(1000)

    # iterations=10: with cycle skip-ahead an idle chunk is only a few
    # microseconds, so single-call rounds are all timer jitter.
    return run_chunk, {"rounds": 10, "iterations": 10, "cycles_per_chunk": 1000}


def _bench_cycles_idle_16x16():
    """Idle cycles at the ROADMAP's target scale (16x16, 256 routers).

    The headline scenario for cycle skip-ahead (:mod:`repro.network.skip`):
    with nothing in flight the engine jumps the clock straight to the end
    of each ``run(1000)`` chunk, so this measures the cost of *compressed*
    time.  The warm-up round keeps the one-time lazy SoA compile out of
    the timings."""
    from ..config import default_config
    from ..core.registry import make_algorithm
    from ..network.network import Network
    from ..network.simulator import Simulator
    from ..topology.hyperx import HyperX

    topo = HyperX((16, 16), 1)
    net = Network(topo, make_algorithm("DOR", topo), default_config())
    sim = Simulator(net)

    def run_chunk():
        sim.run(1000)

    return run_chunk, {
        "rounds": 10, "iterations": 10, "warmup_rounds": 1,
        "cycles_per_chunk": 1000,
    }


def _bench_fault_settling():
    """A fault-injection settling transient: a short low-rate burst, a
    mid-drain degrade event, then a long quiescent settling window.

    Each chunk is self-contained (fresh traffic + injector; the degrade is
    restored to factor 1 before the chunk ends) so rounds are statistically
    identical.  The quiet tail dominates the simulated cycles, so this
    tracks how well the engine compresses mostly-idle fault experiments —
    the regime of the paper's incremental-fault sweeps."""
    from ..config import default_config
    from ..core.registry import make_algorithm
    from ..faults import DegradedTopology, FaultSchedule, FaultSet
    from ..faults.inject import FaultInjector
    from ..network.network import Network
    from ..network.simulator import Simulator
    from ..topology.hyperx import HyperX
    from ..traffic.injection import SyntheticTraffic
    from ..traffic.patterns import UniformRandom

    topo = DegradedTopology(HyperX((8, 8), 1))
    net = Network(topo, make_algorithm("DimWAR", topo), default_config())
    sim = Simulator(net)

    def run_chunk():
        base = sim.cycle
        traffic = SyntheticTraffic(
            net, UniformRandom(topo.num_terminals), rate=0.02, seed=7
        )
        sim.add_process(traffic)
        schedule = FaultSchedule(
            FaultSchedule.from_faultset(
                FaultSet().degrade_link(9, 3, 4), cycle=base + 40
            ).sorted_events()
            + FaultSchedule.from_faultset(
                FaultSet().degrade_link(9, 3, 1), cycle=base + 400
            ).sorted_events()
        )
        injector = FaultInjector(net, schedule)
        sim.add_process(injector)
        sim.run(60)
        traffic.stop()
        sim.remove_process(traffic)
        sim.run(5940)
        sim.remove_process(injector)

    return run_chunk, {
        "rounds": 10, "iterations": 1, "warmup_rounds": 1,
        "cycles_per_chunk": 6000,
    }


def _bench_traffic_generation():
    from ..config import default_config
    from ..core.registry import make_algorithm
    from ..network.network import Network
    from ..topology.hyperx import HyperX
    from ..traffic.injection import SyntheticTraffic
    from ..traffic.patterns import UniformRandom

    topo = HyperX((4, 4, 4), 4)
    net = Network(topo, make_algorithm("DOR", topo), default_config())
    traffic = SyntheticTraffic(net, UniformRandom(topo.num_terminals), 0.3, seed=2)
    cycle = [0]

    def generate():
        traffic(cycle[0])
        cycle[0] += 1

    return generate, {"rounds": 50, "iterations": 10}


def _bench_routing_decision():
    from ..core.base import RouteContext
    from ..network.types import Packet

    sim = _loaded_sim(algo="OmniWAR", rate=0.5, warm=500)
    net = sim.network
    topo = net.topology
    r0 = net.routers[0]
    pkt = Packet(0, topo.num_terminals - 1, 4, create_cycle=sim.cycle)
    ctx = RouteContext(
        router=r0,
        packet=pkt,
        input_port=topo.terminal_port(0),
        input_vc_class=0,
        from_terminal=True,
    )
    candidates = net.algorithm.candidates

    def decide():
        candidates(ctx)

    return decide, {"rounds": 300, "iterations": 50, "warmup_rounds": 10}


def _xl_spec():
    from .parallel import PointSpec

    return PointSpec(
        widths=(16, 16, 16), terminals_per_router=2, algorithm="DimWAR",
        pattern="UR", rate=0.1, total_cycles=0, seed=1,
    )


def _bench_network_construction_16x16x16():
    """One full 4096-router / 8192-terminal build (the ROADMAP's 64k-node
    stepping stone).  A single round: the build is tens of seconds, and
    construction cost has no warm-up or cache effects to average away."""
    from ..config import default_config
    from ..core.registry import make_algorithm
    from ..network.network import Network
    from ..topology.hyperx import HyperX

    topo = HyperX((16, 16, 16), 2)

    def build():
        Network(topo, make_algorithm("DimWAR", topo), default_config())

    return build, {"rounds": 1, "iterations": 1}


def _bench_cycles_loaded_16x16x16():
    """Loaded throughput at 16x16x16 (4096 routers), single process.

    128 warm-up cycles: packet latency at this diameter is ~100 cycles,
    so a shorter warm-up would sample the initial delivery ramp and
    record a misleading flits/cycle."""
    sim = _loaded_sim(
        widths=(16, 16, 16), tpr=2, algo="DimWAR", rate=0.1, warm=128
    )
    net = sim.network
    before = net.total_ejected_flits()
    sim.run(16)
    flits_per_cycle = (net.total_ejected_flits() - before) / 16.0

    def run_chunk():
        sim.run(16)

    return run_chunk, {
        "rounds": 3, "iterations": 1, "cycles_per_chunk": 16,
        "flits_per_cycle": round(flits_per_cycle, 3),
    }


def _bench_cycles_loaded_16x16x16_sharded():
    """The same loaded 16x16x16 scenario on the sharded engine (2 worker
    processes; see :mod:`repro.network.shard`).  Delivered-flit streams
    are byte-identical to the single-process scenario, so the flits/sec
    figures compare directly.  The workers are daemons reaped at process
    exit — the harness has no per-scenario teardown hook."""
    from ..network.shard import ShardEngine

    engine = ShardEngine(_xl_spec(), 2)
    engine.run(128)  # same steady-state warm-up as the unsharded twin
    before = engine.total_ejected()
    engine.run(16)
    flits_per_cycle = (engine.total_ejected() - before) / 16.0

    def run_chunk():
        engine.run(16)

    return run_chunk, {
        "rounds": 3, "iterations": 1, "cycles_per_chunk": 16,
        "flits_per_cycle": round(flits_per_cycle, 3),
        "shards": 2,
    }


#: name -> zero-arg factory returning (callable, options); declaration order
#: is execution order and matches the recorded file's sort order.
SCENARIOS = {
    "test_perf_network_construction": _bench_network_construction,
    "test_perf_routing_decision": _bench_routing_decision,
    "test_perf_simulation_cycles_idle": _bench_cycles_idle,
    "test_perf_simulation_cycles_idle_16x16": _bench_cycles_idle_16x16,
    "test_perf_simulation_cycles_loaded": _bench_cycles_loaded,
    "test_perf_simulation_cycles_loaded_16x16": _bench_cycles_loaded_16x16,
    "test_perf_simulation_fault_settling": _bench_fault_settling,
    "test_perf_traffic_generation": _bench_traffic_generation,
}

#: Target-scale scenarios behind ``repro bench --xl``: a 16x16x16 build is
#: tens of seconds and a loaded run holds gigabytes of state, far too heavy
#: for the default command (and for the tier-1 CLI test that runs it).
#: ``--only`` can name them without ``--xl``.  Recorded entries survive a
#: default-tier regeneration untouched (see :func:`merge_seed_baselines`).
SCENARIOS_XL = {
    "test_perf_network_construction_16x16x16":
        _bench_network_construction_16x16x16,
    "test_perf_simulation_cycles_loaded_16x16x16":
        _bench_cycles_loaded_16x16x16,
    "test_perf_simulation_cycles_loaded_16x16x16_sharded":
        _bench_cycles_loaded_16x16x16_sharded,
}


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def _time_scenario(fn, rounds: int, iterations: int, warmup_rounds: int = 0):
    """Per-round seconds-per-iteration, pytest-benchmark pedantic style:
    shared state across rounds, warm-up rounds discarded."""
    timer = time.perf_counter
    for _ in range(warmup_rounds):
        for _ in range(iterations):
            fn()
    samples = []
    for _ in range(rounds):
        t0 = timer()
        for _ in range(iterations):
            fn()
        samples.append((timer() - t0) / iterations)
    return samples


def run_benchmarks(names=None, xl=False) -> dict:
    """Run the microbenchmarks; returns the ``repro-perf-summary/1`` dict.

    ``names`` restricts to a subset (unknown names raise ValueError) and may
    name ``SCENARIOS_XL`` entries directly; ``xl=True`` appends the whole XL
    tier to a default run.  ``seed_min_s``/``speedup_vs_seed`` are left for
    the caller to graft from the previously recorded file
    (:func:`merge_seed_baselines`).
    """
    scenarios = {**SCENARIOS, **SCENARIOS_XL}
    if names is None:
        selected = list(SCENARIOS) + (list(SCENARIOS_XL) if xl else [])
    else:
        selected = list(names)
    unknown = [n for n in selected if n not in scenarios]
    if unknown:
        raise ValueError(f"unknown benchmark(s): {', '.join(unknown)}")
    out = []
    for name in selected:
        fn, opts = scenarios[name]()
        samples = _time_scenario(
            fn,
            rounds=opts["rounds"],
            iterations=opts["iterations"],
            warmup_rounds=opts.get("warmup_rounds", 0),
        )
        entry = {
            "name": name,
            "min_s": min(samples),
            "median_s": statistics.median(samples),
            "mean_s": statistics.fmean(samples),
            "rounds": len(samples),
        }
        cycles = opts.get("cycles_per_chunk")
        if cycles:
            entry["cycles_per_chunk"] = cycles
            entry["cycles_per_sec_min"] = int(cycles / entry["min_s"])
            fpc = opts.get("flits_per_cycle")
            if fpc is not None:
                entry["flits_per_cycle"] = fpc
                entry["flits_per_sec_min"] = int(fpc * cycles / entry["min_s"])
        if "shards" in opts:
            entry["shards"] = opts["shards"]
        out.append(entry)
    return {
        "schema": SCHEMA,
        "source": "python -m repro bench (src/repro/analysis/bench.py)",
        "python": python_version(),
        "datetime": datetime.now(timezone.utc).isoformat(),
        "benchmarks": sorted(out, key=lambda b: b["name"]),
    }


def merge_seed_baselines(summary: dict, recorded: dict | None) -> dict:
    """Graft ``seed_min_s`` (and recompute ``speedup_vs_seed``) from the
    previously recorded summary so regeneration preserves the trajectory.

    Recorded XL-tier entries that the fresh run skipped (the default
    ``repro bench`` omits ``SCENARIOS_XL``) are carried over verbatim, so a
    default-tier regeneration never silently drops the target-scale
    numbers.  The perf ratchet likewise SKIPs names absent from a fresh
    run, so carried entries are informational, not load-bearing, in CI.
    """
    if not recorded:
        return summary
    seeds = {
        b["name"]: b.get("seed_min_s")
        for b in recorded.get("benchmarks", [])
    }
    for b in summary["benchmarks"]:
        seed = seeds.get(b["name"])
        if seed is not None:
            b["seed_min_s"] = seed
            b["speedup_vs_seed"] = round(seed / b["min_s"], 2)
    fresh = {b["name"] for b in summary["benchmarks"]}
    for b in recorded.get("benchmarks", []):
        if b["name"] in SCENARIOS_XL and b["name"] not in fresh:
            summary["benchmarks"].append(dict(b))
    summary["benchmarks"].sort(key=lambda b: b["name"])
    return summary


def format_comparison(summary: dict, recorded: dict) -> str:
    """Per-benchmark table of fresh min vs the recorded file's min."""
    rec = {b["name"]: b for b in recorded.get("benchmarks", [])}
    lines = [
        f"{'benchmark':<42} {'recorded':>12} {'fresh':>12} {'speedup':>8}"
    ]
    for b in summary["benchmarks"]:
        old = rec.get(b["name"])
        if old is None:
            lines.append(f"{b['name']:<42} {'—':>12} {b['min_s']:>12.3e} {'new':>8}")
            continue
        ratio = old["min_s"] / b["min_s"]
        lines.append(
            f"{b['name']:<42} {old['min_s']:>12.3e} {b['min_s']:>12.3e} "
            f"{ratio:>7.2f}x"
        )
    return "\n".join(lines)


def format_summary(summary: dict) -> str:
    lines = [f"{'benchmark':<42} {'min':>12} {'median':>12} {'vs seed':>8}"]
    for b in summary["benchmarks"]:
        speedup = b.get("speedup_vs_seed")
        lines.append(
            f"{b['name']:<42} {b['min_s']:>12.3e} {b['median_s']:>12.3e} "
            + (f"{speedup:>7.2f}x" if speedup is not None else f"{'—':>8}")
        )
    return "\n".join(lines)


def load_summary(path: str) -> dict | None:
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def write_summary(summary: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")
