"""Measurement harness: load sweeps, saturation search, reporting."""

from .ascii_plot import ascii_plot, plot_sweeps
from .report import format_table, to_csv, write_csv
from .theory import (
    dor_cap_bit_complement,
    dor_cap_dcr,
    dor_cap_urb,
    max_hops,
    mean_min_hops_uniform,
    zero_load_latency,
)
from .sweep import (
    PointResult,
    SweepResult,
    measure_point,
    saturation_throughput,
    sweep_load,
)

__all__ = [
    "measure_point",
    "sweep_load",
    "saturation_throughput",
    "PointResult",
    "SweepResult",
    "format_table",
    "to_csv",
    "write_csv",
    "ascii_plot",
    "plot_sweeps",
    "dor_cap_bit_complement",
    "dor_cap_urb",
    "dor_cap_dcr",
    "mean_min_hops_uniform",
    "max_hops",
    "zero_load_latency",
]
