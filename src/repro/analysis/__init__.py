"""Measurement harness: load sweeps, saturation search, reporting."""

from .ascii_plot import ascii_plot, plot_sweeps
from .report import format_table, to_csv, write_csv
from .theory import (
    dor_cap_bit_complement,
    dor_cap_dcr,
    dor_cap_urb,
    max_hops,
    mean_min_hops_uniform,
    zero_load_latency,
)
from .memo import SIM_SALT, SweepMemo, canonical_spec, point_key
from .parallel import PointSpec, SweepProgress, point_specs, run_point, run_points
from .sweep import (
    PointResult,
    SweepResult,
    measure_point,
    nearest_rank_p99,
    saturation_throughput,
    sweep_load,
)

__all__ = [
    "measure_point",
    "nearest_rank_p99",
    "sweep_load",
    "saturation_throughput",
    "PointResult",
    "SweepResult",
    "PointSpec",
    "SweepMemo",
    "SIM_SALT",
    "canonical_spec",
    "point_key",
    "SweepProgress",
    "point_specs",
    "run_point",
    "run_points",
    "format_table",
    "to_csv",
    "write_csv",
    "ascii_plot",
    "plot_sweeps",
    "dor_cap_bit_complement",
    "dor_cap_urb",
    "dor_cap_dcr",
    "mean_min_hops_uniform",
    "max_hops",
    "zero_load_latency",
]
