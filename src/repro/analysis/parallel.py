"""Parallel experiment engine: fan ``measure_point`` work units over cores.

Every figure of the paper is a grid of independent
``(algorithm, pattern, offered-load, seed)`` simulation points.  This module
runs such grids on a :class:`~concurrent.futures.ProcessPoolExecutor`:

* a :class:`PointSpec` is a *picklable* description of one point — topology
  parameters, algorithm name (+ kwargs), pattern name, rate, cycle budget,
  config, and seed — reconstructed into live objects inside the worker
  process by :func:`run_point`;
* :func:`run_points` dispatches specs in order with a bounded speculative
  window, collects results *in submission order*, and — when asked to stop
  at the first unstable point (``sweep_load``'s ``stop_after_unstable``) —
  cancels every not-yet-started future past it;
* determinism: each point builds a fresh ``Network`` (router rngs derived
  from ``cfg.seed``) and a fresh traffic process (rng from ``spec.seed``),
  so the results are bit-identical no matter how many workers run them —
  ``workers=1`` and ``workers=4`` produce byte-identical sweep JSON.

Worker processes import this module, so :func:`run_point` must stay a
module-level function (bound methods and closures do not pickle).

Example (the exact code path a worker executes, run serially)::

    >>> from repro.analysis.parallel import PointSpec, run_point
    >>> spec = PointSpec(widths=(2, 2), terminals_per_router=1,
    ...                  algorithm="DOR", pattern="UR", rate=0.1,
    ...                  total_cycles=400, seed=1)
    >>> result = run_point(spec)
    >>> result.offered_rate
    0.1
    >>> result.packets_delivered > 0
    True
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from ..config import SimConfig
from ..topology.hyperx import HyperX

if TYPE_CHECKING:  # pragma: no cover
    from ..core.base import RoutingAlgorithm
    from ..obs import TraceOptions
    from ..topology.base import Topology
    from ..traffic.base import TrafficPattern
    from ..traffic.sizes import SizeDistribution
    from .memo import SweepMemo
    from .sweep import PointResult

#: progress callback: (index, total, result) — invoked in submission order.
ProgressFn = Callable[[int, int, "PointResult"], None]


@dataclass(frozen=True)
class PointSpec:
    """Picklable description of one ``measure_point`` work unit.

    Carries names and parameters rather than live objects: the worker
    rebuilds the topology, algorithm, and pattern from them, which keeps the
    spec small on the wire and sidesteps pickling simulator internals.
    """

    widths: tuple[int, ...]
    terminals_per_router: int
    algorithm: str
    pattern: str
    rate: float
    total_cycles: int = 6000
    seed: int = 1
    cfg: SimConfig | None = None
    size_dist: "SizeDistribution | None" = None
    algorithm_kwargs: tuple[tuple[str, Any], ...] = field(default=())
    #: declarative faults (LinkFault/RouterFault/DegradedLink, all frozen
    #: and picklable); non-empty means the worker wraps the topology in a
    #: DegradedTopology built from exactly these faults.
    faults: tuple = ()
    #: attach the repro.check runtime sanitizer inside the worker
    check: bool = False
    #: attach the repro.obs lifecycle tracer inside the worker (TraceOptions
    #: is a frozen dataclass of primitives, so the spec stays picklable);
    #: per-point artifacts land under trace.out_dir with deterministic names
    trace: "TraceOptions | None" = None
    #: run the point on the sharded engine (repro.network.shard) with this
    #: many worker processes; 0 keeps the single-process path.  Sharding is
    #: an execution detail, not a simulation parameter — results are
    #: byte-identical for every value (the shard-on-vs-off oracle proves
    #: it), so this field is excluded from the memo key.
    shards: int = 0


def run_point(spec: PointSpec) -> "PointResult":
    """Reconstruct one point from its spec and measure it (worker entry)."""
    from ..core.registry import make_algorithm
    from ..traffic.patterns import pattern_by_name
    from .sweep import measure_point

    if spec.shards:
        from ..network.shard import run_point_sharded, shard_fallback_reason

        if shard_fallback_reason(spec) is None:
            return run_point_sharded(spec)

    topo: "Topology" = HyperX(tuple(spec.widths), spec.terminals_per_router)
    if spec.faults:
        from ..faults.degraded import DegradedTopology
        from ..faults.model import FaultSet

        topo = DegradedTopology(topo, FaultSet(list(spec.faults)))
    algorithm = make_algorithm(spec.algorithm, topo, **dict(spec.algorithm_kwargs))
    pattern = pattern_by_name(spec.pattern, topo)
    return measure_point(
        topo,
        algorithm,
        pattern,
        spec.rate,
        total_cycles=spec.total_cycles,
        cfg=spec.cfg,
        size_dist=spec.size_dist,
        seed=spec.seed,
        check=spec.check,
        trace=spec.trace,
    )


def point_specs(
    topology: "Topology",
    algorithm: "RoutingAlgorithm",
    pattern: "TrafficPattern",
    rates: Sequence[float],
    total_cycles: int = 6000,
    cfg: SimConfig | None = None,
    size_dist: "SizeDistribution | None" = None,
    seed: int = 1,
    check: bool = False,
    trace: "TraceOptions | None" = None,
    shards: int = 0,
) -> list[PointSpec]:
    """Turn live sweep arguments into one spec per offered load.

    Raises ``ValueError`` when the arguments cannot be expressed as a
    picklable spec: non-HyperX topologies, algorithms not in the registry,
    patterns :func:`~repro.traffic.patterns.pattern_by_name` cannot rebuild,
    or a degraded topology whose live fault state has drifted from the
    declarative FaultSet it was built from (a mid-run injector mutated it —
    the spec would rebuild a different surviving graph).  Those
    combinations still work on the serial path.
    """
    from ..core.registry import algorithm_names
    from ..faults.degraded import DegradedTopology
    from ..traffic.patterns import pattern_by_name

    faults: tuple = ()
    if isinstance(topology, DegradedTopology):
        if topology.faultset is None:
            raise ValueError(
                "parallel sweeps need the DegradedTopology's declarative "
                "FaultSet; one built directly on a FaultState cannot be "
                "reconstructed in a worker"
            )
        if topology.faults.epoch != topology.resolved_epoch:
            raise ValueError(
                "the DegradedTopology's fault state was mutated after "
                "construction (mid-run injection?); its FaultSet no longer "
                "describes the surviving graph, so workers cannot rebuild it"
            )
        faults = tuple(topology.faultset)
        topology = topology.base
    if not isinstance(topology, HyperX):
        raise ValueError(
            "parallel sweeps reconstruct the topology in the worker and "
            f"support HyperX only, not {type(topology).__name__}"
        )
    if algorithm.name not in algorithm_names():
        raise ValueError(
            f"algorithm {algorithm.name!r} is not in the registry; the "
            "worker cannot reconstruct it"
        )
    algo_kwargs: dict[str, Any] = {}
    deroutes = getattr(algorithm, "deroutes", None)
    if deroutes is not None and deroutes != topology.num_dims:
        algo_kwargs["deroutes"] = deroutes
    # Fail fast in the parent if the pattern name does not round-trip.
    pattern_by_name(pattern.name, topology)
    return [
        PointSpec(
            widths=tuple(topology.widths),
            terminals_per_router=topology.terminals_per_router,
            algorithm=algorithm.name,
            pattern=pattern.name,
            rate=rate,
            total_cycles=total_cycles,
            cfg=cfg,
            size_dist=size_dist,
            seed=seed,
            algorithm_kwargs=tuple(sorted(algo_kwargs.items())),
            faults=faults,
            check=check,
            trace=trace,
            shards=shards,
        )
        for rate in rates
    ]


def run_points(
    specs: Sequence[PointSpec],
    workers: int = 1,
    stop_on_unstable: bool = False,
    speculation: int | None = None,
    progress: ProgressFn | None = None,
    memo: "SweepMemo | None" = None,
) -> list["PointResult"]:
    """Run specs in order, optionally in parallel, collecting ordered results.

    With ``stop_on_unstable`` the returned list ends at the first unstable
    point, exactly like the serial sweep.  In parallel mode the runner keeps
    ``workers + speculation`` futures outstanding (speculatively dispatching
    rates past the newest confirmed-stable one) and cancels everything not
    yet started once the first unstable point is known; results for
    cancelled or discarded rates are never returned, so output is identical
    for any worker count.

    ``memo`` (a :class:`~repro.analysis.memo.SweepMemo`) replays memoised
    points from disk and persists freshly simulated ones.  A spec determines
    its result exactly (the determinism the oracles enforce), so memoised
    and simulated results are interchangeable: output is identical with or
    without the memo, for any worker count.  In parallel mode cache hits
    never occupy a worker — only misses are dispatched to the pool.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    n = len(specs)
    if n == 0:
        return []
    if speculation is None:
        speculation = max(workers, 2)

    results: list["PointResult"] = []
    if workers == 1:
        for i, spec in enumerate(specs):
            point = memo.get(spec) if memo is not None else None
            if point is None:
                point = run_point(spec)
                if memo is not None:
                    memo.put(spec, point)
            if progress is not None:
                progress(i, n, point)
            results.append(point)
            if stop_on_unstable and not point.stable:
                break
        return results

    window = workers + speculation
    with ProcessPoolExecutor(max_workers=workers) as pool:

        def submit(i: int):
            """A memo hit is carried as a plain result, a miss as a future."""
            if memo is not None:
                cached = memo.get(specs[i])
                if cached is not None:
                    return (cached, None)
            return (None, pool.submit(run_point, specs[i]))

        futures = {i: submit(i) for i in range(min(window, n))}
        next_submit = len(futures)
        try:
            for i in range(n):
                cached, fut = futures.pop(i)
                if fut is None:
                    point = cached
                else:
                    point = fut.result()
                    if memo is not None:
                        memo.put(specs[i], point)
                if progress is not None:
                    progress(i, n, point)
                results.append(point)
                if stop_on_unstable and not point.stable:
                    break
                if next_submit < n:
                    futures[next_submit] = submit(next_submit)
                    next_submit += 1
        finally:
            for _, fut in futures.values():
                if fut is not None:
                    fut.cancel()
    return results


class SweepProgress:
    """Simple progress/timing reporter for :func:`run_points`.

    Prints one line per completed point — index, rate, verdict, and the
    point's wall-clock — to ``write`` (default: stderr via ``print``).
    """

    def __init__(self, label: str = "", write: Callable[[str], None] | None = None):
        self.label = label
        self._write = write
        self._started = time.perf_counter()

    def __call__(self, index: int, total: int, point: "PointResult") -> None:
        status = "stable" if point.stable else f"SATURATED ({point.reason})"
        elapsed = time.perf_counter() - self._started
        line = (
            f"[{self.label or 'sweep'}] point {index + 1}/{total} "
            f"rate={point.offered_rate:.3f} {status} "
            f"point={point.wall_clock_s:.2f}s elapsed={elapsed:.2f}s"
        )
        if self._write is not None:
            self._write(line)
        else:  # pragma: no cover - console convenience
            import sys

            print(line, file=sys.stderr)
