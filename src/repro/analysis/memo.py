"""Disk-backed sweep memo: measure_point results keyed by canonical specs.

Every figure of the paper re-simulates the same ``(topology, algorithm,
pattern, load, seed)`` grid points; after an unrelated change (docs, a new
experiment, plotting code) those simulations produce byte-identical results
— the parallel-sweep engine already guarantees a :class:`PointSpec`
determines its :class:`~repro.analysis.sweep.PointResult` exactly.  This
module makes that determinism pay for itself: results are persisted under
``benchmarks/output/memo/`` keyed by a SHA-256 hash of the *canonical* spec
(topology widths and terminals, algorithm name + kwargs, pattern, offered
rate, cycle budget, seed, full simulator config, size distribution, and the
declarative fault list) plus a **code-version salt**.  Re-running a sweep
whose points are memoised is near-free; bumping the salt (done whenever a
change alters simulation semantics) invalidates every archived result at
once.

What is deliberately *not* in the key: execution machinery that provably
cannot change a result.  The ``shards`` field (how many processes the
sharded engine spreads the point over) is excluded — a point measured with
any shard count replays byte-identically for every other, which the
shard-on-vs-off differential oracle enforces.  The ``check`` sanitizer and
``trace`` observer flags can't change results either, but they make a spec
**unmemoisable** instead of being excluded — their whole point is their
side effects (audits, trace artifacts), which a cache hit would silently
skip.

Usage::

    memo = SweepMemo()                     # benchmarks/output/memo/
    sweep_load(topo, algo, patt, rates, memo=memo)        # fills the memo
    sweep_load(topo, algo, patt, rates, memo=memo)        # replays from disk
    saturation_throughput(topo, algo, patt, memo=memo)    # warm-started

See docs/SIMULATOR.md (performance notes) for the key schema and the
warm-start behaviour.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from typing import TYPE_CHECKING, Sequence

from ..traffic.sizes import UniformSize

if TYPE_CHECKING:  # pragma: no cover
    from .parallel import PointSpec
    from .sweep import PointResult

#: Code-version salt mixed into every memo key.  Bump the suffix whenever a
#: change alters simulation *semantics* (routing decisions, arbitration,
#: flow control, traffic generation, stats windows) — i.e. whenever the
#: repro.check oracles would have to be re-baselined.  Pure optimisations
#: proven byte-identical by those oracles do NOT require a bump.
SIM_SALT = "repro-sim/2"  # /2: canonical input-VC service order (arbitration)

#: storage format version for the per-point JSON files
MEMO_SCHEMA = "repro-memo/1"


def canonical_spec(spec: "PointSpec") -> dict:
    """The canonical JSON-able description of a spec — the hash preimage.

    Canonical means two specs describing the same simulation serialize
    identically: kwargs are sorted, the config is expanded field-by-field
    (so ``None`` and an explicitly passed default differ only if the
    defaults differ), the size distribution is normalized to its
    parameter-encoding name (``None`` means the ``measure_point`` default,
    ``uniform1-16``), and faults become ``[class-name, field-dict]`` pairs.
    """
    from ..config import default_config

    cfg = spec.cfg if spec.cfg is not None else default_config()
    size = spec.size_dist if spec.size_dist is not None else UniformSize(1, 16)
    return {
        "widths": list(spec.widths),
        "terminals_per_router": spec.terminals_per_router,
        "algorithm": spec.algorithm,
        "algorithm_kwargs": [[k, v] for k, v in sorted(spec.algorithm_kwargs)],
        "pattern": spec.pattern,
        "rate": spec.rate,
        "total_cycles": spec.total_cycles,
        "seed": spec.seed,
        "cfg": asdict(cfg),
        "size_dist": size.name,
        "faults": [[type(f).__name__, asdict(f)] for f in spec.faults],
    }


def point_key(spec: "PointSpec", salt: str = SIM_SALT) -> str:
    """SHA-256 memo key of a spec under ``salt`` (hex digest)."""
    preimage = json.dumps(
        {"salt": salt, "spec": canonical_spec(spec)},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(preimage.encode("utf-8")).hexdigest()


def memoisable(spec: "PointSpec") -> bool:
    """False for specs whose runs exist for their side effects.

    A sanitized (``check=True``) or traced (``trace`` set) run must actually
    execute — the audits and trace artifacts are the product; replaying the
    numeric result from disk would skip them.
    """
    return not spec.check and spec.trace is None


class SweepMemo:
    """Disk-backed ``PointSpec -> PointResult`` store.

    One JSON file per point under ``root``, named by the full memo key.
    ``get`` misses (returning None) on absent, corrupt, or foreign-salt
    files — and unlinks corrupt ones so a later ``put`` can repair them;
    ``put`` publishes atomically (private temp file + hardlink) so a
    crashed run never leaves a half-written entry that later replays as
    garbage.  Publication is **first-writer-wins** across processes: when
    several workers race to memoise the same key (the shared-cache path of
    the sweep-farm service), exactly one hardlink lands and every loser
    degrades to a collision — the spec is deterministic, so the winner's
    bytes are the losers' bytes.  Hit/miss/write/collision counters make
    warm-start tests (and curious users) precise about what was actually
    simulated.
    """

    def __init__(self, root: str = "benchmarks/output/memo",
                 salt: str = SIM_SALT):
        self.root = root
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.collisions = 0

    # ------------------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, spec: "PointSpec") -> "PointResult | None":
        """The memoised result for ``spec``, or None (counted as a miss)."""
        from .sweep import PointResult

        if not memoisable(spec):
            return None
        key = point_key(spec, self.salt)
        path = self._path(key)
        try:
            with open(path) as f:
                data = json.load(f)
        except OSError:
            self.misses += 1
            return None
        except ValueError:
            self._evict_corrupt(path)
            self.misses += 1
            return None
        # The key embeds the salt, so a stale-salt file can only be found
        # under its own (different) name; the schema/key check guards
        # against truncated or hand-edited files.
        if data.get("schema") != MEMO_SCHEMA or data.get("key") != key:
            self._evict_corrupt(path)
            self.misses += 1
            return None
        self.hits += 1
        return PointResult(**data["result"])

    @staticmethod
    def _evict_corrupt(path: str) -> None:
        """Unlink an unreadable entry so first-writer-wins can repair it.

        Publication only refuses to overwrite an *existing* file; a corrupt
        entry left in place would therefore shadow every future ``put`` of
        its key.  Best-effort: a concurrent eviction losing the race is
        fine.
        """
        try:
            os.unlink(path)
        except OSError:
            pass

    def put(self, spec: "PointSpec", result: "PointResult") -> str | None:
        """Persist ``result`` under ``spec``'s key; returns the path."""
        if not memoisable(spec):
            return None
        key = point_key(spec, self.salt)
        payload = asdict(result)
        # Host timing is nondeterministic and excluded from sweep JSON;
        # memoised replays read it back as 0.0 by construction.
        payload["wall_clock_s"] = 0.0
        data = {
            "schema": MEMO_SCHEMA,
            "salt": self.salt,
            "key": key,
            "spec": canonical_spec(spec),
            "result": payload,
        }
        os.makedirs(self.root, exist_ok=True)
        path = self._path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as f:
                json.dump(data, f, indent=2, allow_nan=True)
            try:
                # Atomic first-writer-wins publication: hardlinking the
                # private temp file fails with FileExistsError when another
                # process already published this key, and readers only ever
                # see complete files.
                os.link(tmp, path)
            except FileExistsError:
                # Lost the race.  The winner wrote the same bytes (the spec
                # determines the result), so this degrades to a hit on the
                # winner's entry rather than an error or a torn file.
                self.collisions += 1
                return path
            except OSError:  # pragma: no cover - no-hardlink filesystems
                os.replace(tmp, path)
            self.writes += 1
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return path

    # ------------------------------------------------------------------

    def warm_start_bounds(
        self, specs: Sequence["PointSpec"]
    ) -> tuple[int | None, int | None]:
        """Bisection bracket over ``specs`` (assumed rate-ascending) from
        memoised results alone: ``(highest stable index, lowest unstable
        index)``, either None when no cached point answers.

        The upper bound is the load-beyond-saturation truncation point for
        a warm-started :func:`~repro.analysis.sweep.saturation_throughput`:
        an ascending stop-at-first-unstable sweep can never emit a point
        past a rate already known unstable, so rates above it need neither
        simulation nor a cache probe.  (Counted separately from get()'s
        hit/miss statistics — probing is not replaying.)
        """
        hi: int | None = None
        lo: int | None = None
        hits, misses = self.hits, self.misses
        for i, spec in enumerate(specs):
            cached = self.get(spec)
            if cached is None:
                continue
            if cached.stable:
                lo = i if lo is None else max(lo, i)
            elif hi is None or i < hi:
                hi = i
        self.hits, self.misses = hits, misses  # probes aren't replays
        return lo, hi
