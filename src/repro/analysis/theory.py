"""Closed-form performance bounds used to validate the simulator.

Each function states a property the paper reasons with:

* **DOR capacity caps** — under BC-style complement patterns every terminal
  of a router funnels through the router's single pair-link in the targeted
  dimension, capping throughput at ``1/T``; under DCR, dimension-ordered
  routing funnels a whole X-line (``w*T`` terminals) through one Y-channel,
  capping it at ``1/(w*T)`` (the paper's 64:1 / 1.56% at 8x8x8xT8);
* **mean minimal hops** of uniform traffic on HyperX:
  ``sum_d (w_d - 1) / w_d`` (per dimension, the chance the coordinate
  differs);
* **zero-load latency** of the simulated pipeline, which the simulator must
  match to within a few cycles of stage-boundary slack (tested).

These are *bounds and expectations*, not simulations; tests assert the
simulator lands where the math says it must.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..topology.hyperx import HyperX

if TYPE_CHECKING:  # pragma: no cover
    from ..config import SimConfig


# ---------------------------------------------------------------------------
# Capacity caps (flits/cycle/terminal) for dimension-order routing
# ---------------------------------------------------------------------------


def dor_cap_bit_complement(topology: HyperX) -> float:
    """BC under DOR: the pair link of each unaligned dimension carries all
    ``T`` terminals of its router."""
    return 1.0 / topology.terminals_per_router


def dor_cap_urb(topology: HyperX, dim: int) -> float:
    """URB(dim) under DOR: same pair-link argument in the targeted dim.

    Routers whose coordinate is self-complementary (odd width middle) have
    no crossing, but the complement rows bind first, so the cap holds.
    """
    if not 0 <= dim < topology.num_dims:
        raise ValueError("dimension out of range")
    return 1.0 / topology.terminals_per_router


def dor_cap_dcr(topology: HyperX) -> float:
    """DCR under DOR: an X-line's ``w*T`` terminals share one Y-channel."""
    if topology.num_dims != 3:
        raise ValueError("DCR is defined for 3-D HyperX networks")
    w = topology.widths[0]
    return 1.0 / (w * topology.terminals_per_router)


def valiant_cap_uniform(topology: HyperX) -> float:
    """VAL on benign traffic wastes ~half the bandwidth (2x path length)."""
    mean_min = mean_min_hops_uniform(topology)
    mean_val = 2 * mean_min  # two DOR phases over random intermediates
    return min(1.0, mean_min / mean_val) if mean_val else 1.0


# ---------------------------------------------------------------------------
# Path-length expectations
# ---------------------------------------------------------------------------


def mean_min_hops_uniform(topology: HyperX) -> float:
    """Expected minimal router hops of uniform random traffic.

    Destination router uniform over all routers (including the source's):
    each dimension is unaligned with probability (w_d - 1) / w_d.
    """
    return sum((w - 1) / w for w in topology.widths)


def max_hops(topology: HyperX, algorithm_name: str, deroutes: int | None = None) -> int:
    """Worst-case router-to-router path length per algorithm."""
    n = topology.num_dims
    if algorithm_name in ("DOR", "MIN-AD"):
        return n
    if algorithm_name in ("VAL", "UGAL"):
        return 2 * n
    if algorithm_name in ("UGAL+",):
        return n + 1  # single-deviation LCA intermediates
    if algorithm_name == "DimWAR":
        return 2 * n  # one deroute per dimension
    if algorithm_name in ("OmniWAR", "OmniWAR-b2b"):
        m = n if deroutes is None else deroutes
        return n + m
    raise ValueError(f"unknown algorithm {algorithm_name!r}")


# ---------------------------------------------------------------------------
# Zero-load latency
# ---------------------------------------------------------------------------


def zero_load_latency(cfg: "SimConfig", hops: int, packet_size: int) -> tuple[int, int]:
    """(lower, upper) bound on packet latency at zero load.

    Head path: terminal channel, then per router a crossbar traversal, with
    ``hops`` router-to-router channels between, then the terminal channel
    out.  The tail trails the head by ``packet_size - 1`` cycles.  The upper
    bound allows one cycle of stage-boundary slack per traversed unit.
    """
    if hops < 0 or packet_size < 1:
        raise ValueError("need hops >= 0 and packet_size >= 1")
    r, n = cfg.router, cfg.network
    head = (
        n.channel_latency_rt
        + (hops + 1) * r.xbar_latency
        + hops * n.channel_latency_rr
        + n.channel_latency_rt
    )
    lower = head + (packet_size - 1)
    stages = 2 + (hops + 1) * 2  # channels + router input/output boundaries
    return lower, lower + stages + 2
