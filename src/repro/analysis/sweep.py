"""Load-latency sweeps and saturation-throughput search (Section 6.1).

The paper's methodology: warm the network up until latency stabilizes, then
measure; injection continues while measurements complete; a load where latency
never stabilizes is *saturated* and not plotted.  :func:`measure_point`
implements one load point of that procedure; :func:`sweep_load` produces a
Figure-6-style load-vs-latency curve; :func:`saturation_throughput` finds the
achieved throughput bar of Figure 6g by sweeping at fixed granularity (the
paper uses 2%) until the first saturated point.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable

from ..config import SimConfig, default_config
from ..network.network import Network
from ..network.simulator import Simulator
from ..network.stats import LatencyMonitor, PacketStats
from ..traffic.injection import SyntheticTraffic
from ..traffic.sizes import SizeDistribution, UniformSize

if TYPE_CHECKING:  # pragma: no cover
    from ..core.base import RoutingAlgorithm
    from ..obs import TraceOptions
    from ..topology.base import Topology
    from ..traffic.base import TrafficPattern
    from .memo import SweepMemo


@dataclass
class PointResult:
    """Measurement of one (algorithm, pattern, offered-load) point."""

    offered_rate: float
    stable: bool
    reason: str
    mean_latency: float
    p99_latency: float
    accepted_rate: float  # flits/cycle/terminal delivered in the window
    mean_hops: float
    mean_deroutes: float
    packets_delivered: int
    cycles: int
    # -- where simulation time goes (trailing defaults: older archives and
    # positional constructions keep working) ------------------------------
    routes_computed: int = 0  # routing decisions across all routers
    route_stalls: int = 0  # cycles a head packet had no feasible candidate
    wall_clock_s: float = 0.0  # host seconds for this point (NOT serialized)

    def __str__(self) -> str:  # pragma: no cover - convenience
        status = "stable" if self.stable else f"SATURATED ({self.reason})"
        return (
            f"load={self.offered_rate:.2f} accepted={self.accepted_rate:.3f} "
            f"latency={self.mean_latency:.1f} (p99={self.p99_latency:.1f}) "
            f"hops={self.mean_hops:.2f} deroutes={self.mean_deroutes:.2f} "
            f"[{status}]"
        )


@dataclass
class SweepResult:
    """A full load-vs-latency curve for one algorithm/pattern pair."""

    algorithm: str
    pattern: str
    points: list[PointResult] = field(default_factory=list)

    @property
    def saturation_rate(self) -> float:
        """Accepted throughput at the highest stable load (Fig 6g's bars)."""
        stable = [p for p in self.points if p.stable]
        return max((p.accepted_rate for p in stable), default=0.0)

    def stable_points(self) -> list[PointResult]:
        return [p for p in self.points if p.stable]

    # -- serialization (for archiving measured curves) -------------------

    def to_json(self) -> str:
        points = []
        for p in self.points:
            d = asdict(p)
            # Host timing is nondeterministic; keep archives (and the
            # serial-vs-parallel byte-identity guarantee) reproducible.
            d.pop("wall_clock_s", None)
            points.append(d)
        return json.dumps(
            {
                "algorithm": self.algorithm,
                "pattern": self.pattern,
                "points": points,
            },
            indent=2,
            allow_nan=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        data = json.loads(text)
        return cls(
            algorithm=data["algorithm"],
            pattern=data["pattern"],
            points=[PointResult(**p) for p in data["points"]],
        )

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "SweepResult":
        with open(path) as f:
            return cls.from_json(f.read())


def nearest_rank_p99(values: list[float]) -> float:
    """Nearest-rank 99th percentile: ``sorted(values)[ceil(0.99 n) - 1]``.

    The index is clamped to the last element for tiny windows.  (The earlier
    truncating form ``int(0.99 n) - 1`` underestimates the rank: at n=100 it
    picked index 97, i.e. the p98 sample.)
    """
    if not values:
        return math.nan
    idx = min(len(values) - 1, math.ceil(0.99 * len(values)) - 1)
    return float(sorted(values)[idx])


def measure_point(
    topology: "Topology",
    algorithm: "RoutingAlgorithm",
    pattern: "TrafficPattern",
    rate: float,
    total_cycles: int = 6000,
    cfg: SimConfig | None = None,
    size_dist: SizeDistribution | None = None,
    seed: int = 1,
    monitor: LatencyMonitor | None = None,
    check: bool = False,
    trace: "TraceOptions | None" = None,
) -> PointResult:
    """Simulate one offered-load point and classify it stable/saturated.

    The run lasts ``total_cycles`` with injection on throughout.  Latency is
    sampled over packets *created* in the middle window [0.3T, 0.7T) (and
    delivered by the end); accepted throughput counts flits ejected in the
    second half of the run.

    ``check`` attaches the :class:`repro.check.Sanitizer` for the whole run
    (periodic invariant audits plus a final one); the measured numbers are
    unchanged — the sanitizer only observes.

    ``trace`` (a :class:`repro.obs.TraceOptions`) attaches the lifecycle
    :class:`~repro.obs.Tracer` — plus a
    :class:`~repro.obs.TimeSeriesSampler` when ``trace.window`` > 0 — for
    the whole run.  Like the sanitizer, tracing only observes: the returned
    point is byte-identical with tracing on or off (enforced by
    ``repro.check.oracle.diff_trace_on_off``).  With ``trace.out_dir`` set,
    the trace is exported there as JSONL (and Chrome trace JSON when
    ``trace.chrome``) under a deterministic per-point name.
    """
    started = time.perf_counter()
    cfg = cfg or default_config()
    size_dist = size_dist or UniformSize(1, 16)
    net = Network(topology, algorithm, cfg)
    sim = Simulator(net)
    sanitizer = None
    if check:
        from ..check.sanitizer import Sanitizer

        sanitizer = Sanitizer(sim).attach()
    tracer = sampler = None
    if trace is not None:
        from ..obs import TimeSeriesSampler, Tracer

        tracer = Tracer(sim, trace).attach()
        if trace.window:
            sampler = TimeSeriesSampler(sim, window=trace.window).attach()
    traffic = SyntheticTraffic(net, pattern, rate, size_dist, seed=seed)
    sim.processes.append(traffic)
    stats = PacketStats()
    for t in net.terminals:
        t.delivery_listeners.append(stats.on_delivery)

    measure_start = int(total_cycles * 0.3)
    measure_end = int(total_cycles * 0.7)
    half = total_cycles // 2

    sim.run(half)
    ejected_at_half = net.total_ejected_flits()
    sim.run(total_cycles - half)
    if sanitizer is not None:
        # Injection is still on, so the final audit is the lenient one.
        sanitizer.final_check()
        sanitizer.detach()
    if tracer is not None:
        if sampler is not None:
            sampler.finalize(sim.cycle)
            sampler.detach()
        tracer.detach()
        if trace.out_dir:
            from ..obs.export import write_point_trace

            stem = f"trace_{algorithm.name}_{pattern.name}_r{rate:.4f}"
            write_point_trace(tracer, sampler, trace.out_dir, stem)

    return finalize_point(
        rate=rate,
        total_cycles=total_cycles,
        num_terminals=topology.num_terminals,
        stats=stats,
        ejected_total=net.total_ejected_flits(),
        ejected_at_half=ejected_at_half,
        undelivered_backlog=net.total_backlog_flits(),
        routes_computed=sum(r.routes_computed for r in net.routers),
        route_stalls=sum(r.route_stalls for r in net.routers),
        started=started,
        monitor=monitor,
    )


def finalize_point(
    rate: float,
    total_cycles: int,
    num_terminals: int,
    stats: PacketStats,
    ejected_total: int,
    ejected_at_half: int,
    undelivered_backlog: int,
    routes_computed: int,
    route_stalls: int,
    started: float,
    monitor: LatencyMonitor | None = None,
) -> PointResult:
    """Classify one finished run into a :class:`PointResult`.

    Shared epilogue of :func:`measure_point` and the sharded engine's
    :func:`repro.network.shard.run_point_sharded`: every input is either an
    exact integer aggregate (sample tuples, flit counters) or derived from
    them, so a sharded run that merges per-shard statistics produces a
    byte-identical result through this same arithmetic.
    """
    measure_start = int(total_cycles * 0.3)
    measure_end = int(total_cycles * 0.7)
    half = total_cycles // 2
    span = total_cycles - half
    accepted = (ejected_total - ejected_at_half) / (span * num_terminals)
    monitor = monitor or LatencyMonitor()
    verdict = monitor.verdict(
        stats,
        measure_start,
        measure_end,
        num_terminals,
        offered_rate=rate,
        undelivered_backlog=undelivered_backlog,
    )
    mean_lat = verdict.mean_latency
    if math.isnan(mean_lat):
        mean_lat = stats.mean_latency(measure_start, measure_end)

    window = [
        s for s in stats.samples if measure_start <= s.create_cycle < measure_end
    ]
    p99 = nearest_rank_p99([s.latency for s in window])
    hops = (sum(s.hops for s in window) / len(window)) if window else math.nan
    der = (sum(s.deroutes for s in window) / len(window)) if window else math.nan
    return PointResult(
        offered_rate=rate,
        stable=verdict.stable,
        reason=verdict.reason,
        mean_latency=mean_lat,
        p99_latency=float(p99),
        accepted_rate=accepted,
        mean_hops=hops,
        mean_deroutes=der,
        packets_delivered=stats.packets_delivered,
        cycles=total_cycles,
        routes_computed=routes_computed,
        route_stalls=route_stalls,
        wall_clock_s=time.perf_counter() - started,
    )


def sweep_load(
    topology: "Topology",
    algorithm: "RoutingAlgorithm",
    pattern: "TrafficPattern",
    rates: list[float],
    stop_after_unstable: bool = True,
    workers: int | None = None,
    progress: "Callable[[int, int, PointResult], None] | None" = None,
    memo: "SweepMemo | None" = None,
    **kwargs,
) -> SweepResult:
    """Measure a list of offered loads in increasing order.

    With ``stop_after_unstable`` (the default, matching the paper's plots
    that end at saturation) the sweep stops at the first saturated point.

    ``workers`` selects the execution engine.  ``None`` (default) is the
    in-process serial path, reusing the caller's live objects.  Any integer
    ``>= 1`` routes through :mod:`repro.analysis.parallel`: points are
    described by picklable specs and each gets a freshly reconstructed
    topology/algorithm/pattern, so results are bit-identical for every
    worker count (``workers=1`` runs the same spec path serially).
    ``progress`` (spec path only) is called as ``(index, total, point)``
    after each point completes, in rate order.

    ``memo`` (a :class:`~repro.analysis.memo.SweepMemo`) replays previously
    measured points from disk and persists fresh ones.  The memo rides on
    the spec path — the same picklable-spec restrictions as ``workers``
    apply — so ``memo`` without ``workers`` runs the spec path serially.
    Results are byte-identical with the memo on or off.

    ``shards=N`` (a keyword argument forwarded into the specs) runs each
    point on the sharded multi-process engine (:mod:`repro.network.shard`)
    with N workers; like ``workers`` and ``memo`` it rides the spec path
    and cannot change a byte of the result (the shard-on-vs-off oracle in
    ``repro.check`` proves it).
    """
    result = SweepResult(algorithm=algorithm.name, pattern=pattern.name)
    ordered = sorted(rates)
    if workers is None and memo is None and not kwargs.get("shards"):
        kwargs.pop("shards", None)
        for i, rate in enumerate(ordered):
            point = measure_point(topology, algorithm, pattern, rate, **kwargs)
            if progress is not None:
                progress(i, len(ordered), point)
            result.points.append(point)
            if stop_after_unstable and not point.stable:
                break
        return result

    from .parallel import point_specs, run_points

    if kwargs.pop("monitor", None) is not None:
        raise ValueError("custom monitors are not supported with workers=N")
    specs = point_specs(topology, algorithm, pattern, ordered, **kwargs)
    result.points = run_points(
        specs,
        workers=workers if workers is not None else 1,
        stop_on_unstable=stop_after_unstable,
        progress=progress,
        memo=memo,
    )
    return result


def saturation_throughput(
    topology: "Topology",
    algorithm: "RoutingAlgorithm",
    pattern: "TrafficPattern",
    granularity: float = 0.02,
    max_rate: float = 1.0,
    workers: int | None = None,
    memo: "SweepMemo | None" = None,
    **kwargs,
) -> SweepResult:
    """Sweep offered load at fixed granularity until saturation (Fig 6g).

    The paper simulates with 2% injection-rate granularity; coarser values
    trade precision for wall-clock time.  ``workers=N`` fans the points out
    across processes (see :func:`sweep_load`); rates past the first
    saturated one are dispatched speculatively and discarded.

    ``memo`` warm-starts the search from previously measured points: every
    memoised rate replays from disk, and the rate ladder is truncated just
    past the lowest rate the memo already knows to be unstable — an
    ascending stop-at-first-unstable sweep can never emit a point beyond
    it, so those rates are not even probed.  The returned curve is
    byte-identical to a cold run.
    """
    if not 0.0 < granularity <= max_rate:
        raise ValueError("granularity must be in (0, max_rate]")
    steps = int(max_rate / granularity + 1e-9)
    rates = [min(max_rate, round(granularity * i, 9)) for i in range(1, steps + 1)]
    if memo is not None:
        from .parallel import point_specs

        specs = point_specs(topology, algorithm, pattern, rates, **kwargs)
        _, first_unstable = memo.warm_start_bounds(specs)
        if first_unstable is not None:
            rates = rates[: first_unstable + 1]
    return sweep_load(
        topology, algorithm, pattern, rates, stop_after_unstable=True,
        workers=workers, memo=memo, **kwargs
    )
