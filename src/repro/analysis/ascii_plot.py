"""ASCII line plots for terminal output.

The benchmark harness regenerates the paper's figures as tables; for human
scanning, an ASCII rendition of the load-latency curves (Figure 6's visual
form) is often quicker to read.  No plotting dependency required.
"""

from __future__ import annotations

from typing import Sequence

MARKS = "ox+*#@%&"


def ascii_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "offered load",
    y_label: str = "latency",
) -> str:
    """Render named (x, y) series on one character grid.

    Each series gets a marker from ``MARKS``; a legend maps markers to
    names.  Points outside the (auto-scaled) range are clamped to the edge.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 8 or height < 4:
        raise ValueError("plot area too small")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("series contain no points")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for (name, pts), mark in zip(series.items(), MARKS * 4):
        legend.append(f"{mark} = {name}")
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((y - y_lo) / y_span * (height - 1))
            col = min(width - 1, max(0, col))
            row = min(height - 1, max(0, row))
            r = height - 1 - row  # y grows upward
            grid[r][col] = mark if grid[r][col] == " " else "*"

    lines = []
    for i, row in enumerate(grid):
        label = f"{y_hi:8.1f} |" if i == 0 else (
            f"{y_lo:8.1f} |" if i == height - 1 else "         |"
        )
        lines.append(label + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(
        f"          {x_lo:<10.2f}{x_label:^{max(0, width - 20)}}{x_hi:>10.2f}"
    )
    lines.append("          " + "   ".join(legend))
    lines.append(f"          (y: {y_label})")
    return "\n".join(lines)


#: Heatmap intensity ramp, lightest to darkest.
SHADES = " .:-=+*#%@"


def ascii_heatmap(
    rows: Sequence[Sequence[float]],
    row_labels: Sequence[str] | None = None,
    title: str = "",
    x_label: str = "",
    vmax: float | None = None,
) -> str:
    """Render a matrix as a character heatmap (one cell per value).

    Rows are scaled against a shared maximum (``vmax`` or the matrix max),
    mapping linearly onto :data:`SHADES`.  Used by ``repro.obs`` for
    VC/router occupancy over time windows; rows are e.g. routers and
    columns time windows.
    """
    if not rows or not any(len(r) for r in rows):
        raise ValueError("heatmap needs at least one non-empty row")
    if row_labels is not None and len(row_labels) != len(rows):
        raise ValueError("row_labels must match the number of rows")
    peak = vmax if vmax is not None else max(max(r, default=0.0) for r in rows)
    if peak <= 0:
        peak = 1.0
    label_w = max((len(l) for l in row_labels), default=0) if row_labels else 0
    lines = []
    if title:
        lines.append(title)
    top = len(SHADES) - 1
    for i, row in enumerate(rows):
        cells = "".join(
            SHADES[min(top, int(min(1.0, max(0.0, v / peak)) * top))] for v in row
        )
        label = (row_labels[i] if row_labels else "").rjust(label_w)
        lines.append(f"{label} |{cells}|")
    if x_label:
        lines.append(" " * (label_w + 2) + x_label)
    lines.append(
        " " * (label_w + 2)
        + f"scale: ' '=0 … '{SHADES[-1]}'={peak:g}"
    )
    return "\n".join(lines)


def plot_sweeps(sweeps, width: int = 64, height: int = 16) -> str:
    """Plot a dict of ``name -> SweepResult`` as load-vs-latency curves,
    using only each sweep's stable points (as the paper's figures do)."""
    series = {
        name: [(p.offered_rate, p.mean_latency) for p in sweep.stable_points()]
        for name, sweep in sweeps.items()
    }
    series = {k: v for k, v in series.items() if v}
    return ascii_plot(series, width=width, height=height)
