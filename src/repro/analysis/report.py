"""Plain-text reporting: ASCII tables and CSV output.

The benchmark harness has no plotting dependency; every figure is
regenerated as the table of rows/series the paper plots, printed and
optionally written as CSV next to the benchmark results.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()


def write_csv(path: str, headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> None:
    with open(path, "w", newline="") as f:
        f.write(to_csv(headers, rows))
