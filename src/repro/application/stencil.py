"""27-point stencil discretization model (Section 6.2, Figure 7).

A 3-D physical domain is decomposed into ``px x py x pz`` sub-cubes, one per
process.  Each process exchanges halos with its 26 neighbours — 6 faces, 12
edges, 8 corners (Figure 7b) — then participates in a global collective.

The per-neighbour message sizes follow the geometry of a sub-cube halo: for a
sub-cube of side ``n`` cells, a face halo carries O(n^2) cells, an edge halo
O(n), and a corner O(1).  The paper specifies only the *aggregate* bytes per
node per exchange (100 kB in Figure 8); we distribute the aggregate over the
26 neighbours proportionally to configurable face/edge/corner weights.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


@dataclass(frozen=True)
class Neighbor:
    rank: int
    kind: str  # "face" | "edge" | "corner"
    size_flits: int


class StencilDecomposition:
    """The process grid and halo-exchange traffic of a 27-point stencil."""

    def __init__(
        self,
        grid: tuple[int, int, int],
        aggregate_flits: int,
        periodic: bool = True,
        face_edge_corner_weights: tuple[float, float, float] = (16.0, 4.0, 1.0),
    ):
        if len(grid) != 3 or any(g < 1 for g in grid):
            raise ValueError("grid must be three positive extents")
        if aggregate_flits < 26:
            raise ValueError("aggregate must provide at least one flit per neighbour")
        self.grid = grid
        self.aggregate_flits = aggregate_flits
        self.periodic = periodic
        self.weights = dict(
            zip(("face", "edge", "corner"), face_edge_corner_weights)
        )
        if any(w <= 0 for w in self.weights.values()):
            raise ValueError("face/edge/corner weights must be positive")
        self.num_ranks = grid[0] * grid[1] * grid[2]

    # -- rank <-> grid coordinates --------------------------------------

    def coords(self, rank: int) -> tuple[int, int, int]:
        gx, gy, gz = self.grid
        x = rank % gx
        y = (rank // gx) % gy
        z = rank // (gx * gy)
        return (x, y, z)

    def rank_id(self, coords: tuple[int, int, int]) -> int:
        gx, gy, _ = self.grid
        x, y, z = coords
        return x + y * gx + z * gx * gy

    @staticmethod
    def offset_kind(offset: tuple[int, int, int]) -> str:
        nz = sum(1 for o in offset if o != 0)
        return {1: "face", 2: "edge", 3: "corner"}[nz]

    # -- neighbours ------------------------------------------------------

    def neighbors(self, rank: int) -> list[Neighbor]:
        """The rank's halo partners with their per-message sizes in flits.

        Message sizes are the aggregate split proportionally to the
        face/edge/corner weights of the neighbours that actually exist (at
        domain boundaries of a non-periodic decomposition some are missing),
        with a minimum of one flit each.
        """
        x, y, z = self.coords(rank)
        gx, gy, gz = self.grid
        found: list[tuple[int, str]] = []
        for off in itertools.product((-1, 0, 1), repeat=3):
            if off == (0, 0, 0):
                continue
            nx, ny, nz_ = x + off[0], y + off[1], z + off[2]
            if self.periodic:
                nx, ny, nz_ = nx % gx, ny % gy, nz_ % gz
            elif not (0 <= nx < gx and 0 <= ny < gy and 0 <= nz_ < gz):
                continue
            nbr = self.rank_id((nx, ny, nz_))
            if nbr == rank:
                continue  # periodic wrap onto self in a degenerate dimension
            found.append((nbr, self.offset_kind(off)))
        if not found:
            return []
        total_weight = sum(self.weights[kind] for _, kind in found)
        out = []
        for nbr, kind in found:
            flits = max(
                1, round(self.aggregate_flits * self.weights[kind] / total_weight)
            )
            out.append(Neighbor(rank=nbr, kind=kind, size_flits=flits))
        return out

    def neighbor_count(self, rank: int) -> int:
        return len(self.neighbors(rank))

    def traffic_matrix(self) -> dict[tuple[int, int], int]:
        """(src, dst) -> flits per halo exchange, for all ranks."""
        out: dict[tuple[int, int], int] = {}
        for r in range(self.num_ranks):
            for n in self.neighbors(r):
                out[(r, n.rank)] = out.get((r, n.rank), 0) + n.size_flits
        return out
