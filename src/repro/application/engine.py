"""The application engine: drives the stencil model over the simulator.

Implements the per-rank state machine of the paper's Figure 7 pseudo-code
with compute time set to zero (as in the paper's experiments)::

    for iteration in range(iterations):
        exchange()      # 26-neighbour halo, wait for all receives
        compute()       # zero cycles
        collective()    # dissemination rounds, each round blocks on 2 recvs

Messages are segmented into packets (max 16 flits, the paper's packet-size
cap), offered to the source terminal's queue, and tracked via delivery
listeners.  Because ranks run asynchronously, messages from a neighbour's
*future* phase can arrive early; receives are therefore bucketed by an
``(iteration, phase, round)`` tag and a rank only consumes its own bucket.

``mode`` selects the Figure 8 variants: ``"full"`` (8c), ``"halo"`` — halo
exchanges only (8b), ``"collective"`` — collectives only (8a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..network.types import Message, Packet
from .collective import DisseminationCollective
from .placement import Placement
from .stencil import StencilDecomposition

if TYPE_CHECKING:  # pragma: no cover
    from ..network.network import Network
    from ..network.simulator import Simulator

MAX_PACKET_FLITS = 16  # the paper's evaluation packetizes at <= 16 flits


@dataclass
class RankState:
    iteration: int = 0
    phase: str = "exchange"  # "exchange" | "collective" | "done"
    round: int = 0
    received: dict[tuple, int] = field(default_factory=dict)
    done_cycle: int | None = None


class StencilApplication:
    """Runs the 27-point stencil application model on a simulated network."""

    def __init__(
        self,
        network: "Network",
        decomposition: StencilDecomposition,
        placement: Placement,
        iterations: int = 1,
        mode: str = "full",
        collective_flits: int = 1,
    ):
        if mode not in ("full", "halo", "collective"):
            raise ValueError(f"unknown mode {mode!r}")
        if iterations < 1:
            raise ValueError("need at least one iteration")
        if placement.num_ranks != decomposition.num_ranks:
            raise ValueError("placement sized for a different decomposition")
        if placement.num_terminals != network.topology.num_terminals:
            raise ValueError("placement sized for a different network")
        self.network = network
        self.decomp = decomposition
        self.placement = placement
        self.iterations = iterations
        self.mode = mode
        self.collective = DisseminationCollective(
            decomposition.num_ranks, collective_flits
        )
        self.states = [RankState() for _ in range(decomposition.num_ranks)]
        self.messages_sent = 0
        self.packets_sent = 0
        #: optional hook called as (cycle, src_terminal, dst_terminal,
        #: size_flits, tag) for every message posted — used by trace capture
        self.message_hook = None
        self._started = False
        self._pending_actions: list[tuple[str, int]] = []
        self._current_cycle = 0
        if mode == "collective":
            for s in self.states:
                s.phase = "collective"
        for terminal in network.terminals:
            terminal.delivery_listeners.append(self._on_delivery)

    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        return all(s.phase == "done" for s in self.states)

    @property
    def execution_time(self) -> int | None:
        """Cycle the last rank finished, or None while running."""
        if not self.done:
            return None
        return max(s.done_cycle for s in self.states)

    def ranks_done(self) -> int:
        return sum(1 for s in self.states if s.phase == "done")

    # ------------------------------------------------------------------
    # Simulator process protocol
    # ------------------------------------------------------------------

    def __call__(self, cycle: int) -> None:
        self._current_cycle = cycle
        if not self._started:
            self._started = True
            for rank in range(self.decomp.num_ranks):
                self._enter_phase(rank)
        # Phase transitions triggered by deliveries are deferred to the next
        # compute phase so that all sends happen inside the process hook.
        actions, self._pending_actions = self._pending_actions, []
        for kind, rank in actions:
            if kind == "advance":
                self._advance(rank)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def _send(self, src_rank: int, dst_rank: int, flits: int, tag: tuple) -> None:
        src_t = self.placement.terminal_of(src_rank)
        dst_t = self.placement.terminal_of(dst_rank)
        msg = Message(
            src_terminal=src_t,
            dst_terminal=dst_t,
            size_flits=flits,
            tag=tag,
            create_cycle=self._current_cycle,
        )
        remaining = flits
        while remaining > 0:
            size = min(MAX_PACKET_FLITS, remaining)
            pkt = Packet(
                src_terminal=src_t,
                dst_terminal=dst_t,
                size=size,
                create_cycle=self._current_cycle,
                message=msg,
            )
            msg.packets_total += 1
            self.network.terminals[src_t].offer(pkt)
            remaining -= size
            self.packets_sent += 1
        self.messages_sent += 1
        if self.message_hook is not None:
            self.message_hook(self._current_cycle, src_t, dst_t, flits, tag)

    def _enter_phase(self, rank: int) -> None:
        state = self.states[rank]
        if state.phase == "exchange":
            for nbr in self.decomp.neighbors(rank):
                self._send(
                    rank, nbr.rank, nbr.size_flits, ("halo", state.iteration)
                )
            if self.decomp.neighbor_count(rank) == 0:
                self._exchange_complete(rank)
                return
        elif state.phase == "collective":
            for send in self.collective.sends(rank, state.round):
                self._send(
                    rank,
                    send.dst_rank,
                    self.collective.message_flits,
                    ("coll", state.iteration, state.round),
                )
        # A faster neighbour may have delivered this phase's receives before
        # we entered it; without this check the rank would stall forever.
        if self._bucket_complete(rank):
            self._pending_actions.append(("advance", rank))

    # ------------------------------------------------------------------
    # Receiving / progress
    # ------------------------------------------------------------------

    def _on_delivery(self, packet: Packet, cycle: int) -> None:
        msg = packet.message
        if msg is None or not msg.complete or msg.deliver_cycle != cycle:
            return  # synthetic packet, or message not yet fully delivered
        dst_rank = self.placement.rank_of(msg.dst_terminal)
        if dst_rank is None:
            return
        state = self.states[dst_rank]
        state.received[msg.tag] = state.received.get(msg.tag, 0) + 1
        self._current_cycle = cycle
        if self._bucket_complete(dst_rank):
            self._pending_actions.append(("advance", dst_rank))

    def _bucket_complete(self, rank: int) -> bool:
        state = self.states[rank]
        if state.phase == "exchange":
            tag = ("halo", state.iteration)
            return state.received.get(tag, 0) >= self.decomp.neighbor_count(rank)
        if state.phase == "collective":
            tag = ("coll", state.iteration, state.round)
            expected = self.collective.expected_receives(rank, state.round)
            return state.received.get(tag, 0) >= expected
        return False

    def _advance(self, rank: int) -> None:
        """Move the rank's state machine forward after a completed bucket."""
        state = self.states[rank]
        if state.phase == "done" or not self._bucket_complete(rank):
            return
        if state.phase == "exchange":
            self._exchange_complete(rank)
        elif state.phase == "collective":
            state.round += 1
            if state.round < self.collective.num_rounds:
                self._enter_phase(rank)
            else:
                self._iteration_complete(rank)

    def _exchange_complete(self, rank: int) -> None:
        state = self.states[rank]
        if self.mode == "halo":
            self._iteration_complete(rank)
        else:
            state.phase = "collective"
            state.round = 0
            self._enter_phase(rank)

    def _iteration_complete(self, rank: int) -> None:
        state = self.states[rank]
        state.iteration += 1
        state.round = 0
        if state.iteration >= self.iterations:
            state.phase = "done"
            state.done_cycle = self._current_cycle
            return
        state.phase = "collective" if self.mode == "collective" else "exchange"
        self._enter_phase(rank)

    # ------------------------------------------------------------------

    def run(self, sim: "Simulator", max_cycles: int = 2_000_000) -> int:
        """Attach to ``sim``, run to completion, return execution time."""
        sim.processes.append(self)
        finished = sim.run_until(lambda: self.done, max_cycles, check_every=32)
        if not finished:
            raise RuntimeError(
                f"stencil application did not finish within {max_cycles} cycles "
                f"({self.ranks_done()}/{self.decomp.num_ranks} ranks done)"
            )
        return self.execution_time
