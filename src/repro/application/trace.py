"""Message traces: record a workload once, replay it anywhere.

The paper's application model is driven by "a user specified traffic matrix"
(Section 6.2) — production systems drive such models from captured traces.
Since real production traces are proprietary, we provide the equivalent
machinery and generate traces from the stencil model itself:

* :func:`record_stencil_trace` runs the stencil application once and records
  every message as ``(post_cycle, src_terminal, dst_terminal, flits, tag)``;
* :class:`MessageTrace` serializes to/from JSON-lines files;
* :class:`TraceReplay` is a simulator process that re-posts the messages at
  their recorded cycles (timed, open-loop replay), so the *same* captured
  workload can be replayed against any topology/algorithm/configuration of
  equal endpoint count and the completion times compared.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..network.types import Message, Packet
from .engine import MAX_PACKET_FLITS, StencilApplication

if TYPE_CHECKING:  # pragma: no cover
    from ..network.network import Network
    from ..network.simulator import Simulator


@dataclass(frozen=True)
class TracedMessage:
    post_cycle: int
    src_terminal: int
    dst_terminal: int
    size_flits: int
    tag: str


class MessageTrace:
    """An ordered list of timed messages."""

    def __init__(self, messages: list[TracedMessage] | None = None,
                 num_terminals: int = 0):
        self.messages = messages or []
        self.num_terminals = num_terminals

    def append(self, msg: TracedMessage) -> None:
        self.messages.append(msg)

    def __len__(self) -> int:
        return len(self.messages)

    @property
    def total_flits(self) -> int:
        return sum(m.size_flits for m in self.messages)

    @property
    def span_cycles(self) -> int:
        if not self.messages:
            return 0
        return max(m.post_cycle for m in self.messages) + 1

    def validate(self) -> None:
        for m in self.messages:
            if not (0 <= m.src_terminal < self.num_terminals):
                raise ValueError(f"source terminal out of range: {m}")
            if not (0 <= m.dst_terminal < self.num_terminals):
                raise ValueError(f"destination terminal out of range: {m}")
            if m.size_flits < 1 or m.post_cycle < 0:
                raise ValueError(f"bad message: {m}")

    # -- serialization ---------------------------------------------------

    def dumps(self) -> str:
        lines = [json.dumps({"num_terminals": self.num_terminals})]
        for m in self.messages:
            lines.append(
                json.dumps(
                    [m.post_cycle, m.src_terminal, m.dst_terminal,
                     m.size_flits, m.tag]
                )
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def loads(cls, text: str) -> "MessageTrace":
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise ValueError("empty trace")
        header = json.loads(lines[0])
        trace = cls(num_terminals=int(header["num_terminals"]))
        for ln in lines[1:]:
            cyc, src, dst, flits, tag = json.loads(ln)
            trace.append(TracedMessage(cyc, src, dst, flits, str(tag)))
        trace.validate()
        return trace

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.dumps())

    @classmethod
    def load(cls, path: str) -> "MessageTrace":
        with open(path) as f:
            return cls.loads(f.read())


def record_stencil_trace(app: StencilApplication, sim: "Simulator",
                         max_cycles: int = 2_000_000) -> MessageTrace:
    """Run ``app`` to completion while recording every posted message."""
    trace = MessageTrace(num_terminals=app.network.topology.num_terminals)

    def hook(cycle, src_t, dst_t, flits, tag):
        trace.append(TracedMessage(cycle, src_t, dst_t, flits, str(tag)))

    app.message_hook = hook
    app.run(sim, max_cycles=max_cycles)
    return trace


class TraceReplay:
    """Simulator process that re-posts a trace at its recorded cycles."""

    def __init__(self, network: "Network", trace: MessageTrace):
        if trace.num_terminals != network.topology.num_terminals:
            raise ValueError(
                f"trace recorded on {trace.num_terminals} terminals; this "
                f"network has {network.topology.num_terminals}"
            )
        trace.validate()
        self.network = network
        self.trace = trace
        self.messages: list[Message] = []
        self._by_cycle: dict[int, list[TracedMessage]] = {}
        for m in trace.messages:
            self._by_cycle.setdefault(m.post_cycle, []).append(m)
        self.posted = 0

    def __call__(self, cycle: int) -> None:
        for m in self._by_cycle.pop(cycle, ()):
            msg = Message(
                src_terminal=m.src_terminal,
                dst_terminal=m.dst_terminal,
                size_flits=m.size_flits,
                tag=m.tag,
                create_cycle=cycle,
            )
            remaining = m.size_flits
            while remaining > 0:
                size = min(MAX_PACKET_FLITS, remaining)
                pkt = Packet(
                    m.src_terminal, m.dst_terminal, size,
                    create_cycle=cycle, message=msg,
                )
                msg.packets_total += 1
                self.network.terminals[m.src_terminal].offer(pkt)
                remaining -= size
            self.messages.append(msg)
            self.posted += 1

    @property
    def all_posted(self) -> bool:
        return not self._by_cycle

    @property
    def complete(self) -> bool:
        return self.all_posted and all(m.complete for m in self.messages)

    def completion_cycle(self) -> int | None:
        if not self.complete:
            return None
        return max(m.deliver_cycle for m in self.messages)

    def run(self, sim: "Simulator", max_cycles: int = 2_000_000) -> int:
        """Attach, replay to completion, return the completion cycle."""
        sim.processes.append(self)
        ok = sim.run_until(lambda: self.complete, max_cycles, check_every=32)
        if not ok:
            raise RuntimeError(
                f"trace replay incomplete after {max_cycles} cycles "
                f"({self.posted}/{len(self.trace)} messages posted)"
            )
        return self.completion_cycle()
