"""Process-to-terminal placement policies.

The paper's stencil simulations assign processes (stencil sub-cubes) to
network endpoints with a *random* placement policy (Section 6.2), which is
what fragmentated multi-tenant HPC systems produce in practice.  Linear
placement is provided as the contrast case (and for deterministic tests).
"""

from __future__ import annotations

import numpy as np


class Placement:
    """Bijection between application ranks and network terminals."""

    name = "placement"

    def __init__(self, num_ranks: int, num_terminals: int):
        if num_ranks > num_terminals:
            raise ValueError(
                f"{num_ranks} ranks cannot be placed on {num_terminals} terminals"
            )
        self.num_ranks = num_ranks
        self.num_terminals = num_terminals
        self._terminal_of = self._build()
        self._rank_of = {t: r for r, t in enumerate(self._terminal_of)}

    def _build(self) -> list[int]:
        raise NotImplementedError

    def terminal_of(self, rank: int) -> int:
        return self._terminal_of[rank]

    def rank_of(self, terminal: int) -> int | None:
        return self._rank_of.get(terminal)

    def validate(self) -> None:
        assert len(set(self._terminal_of)) == self.num_ranks, "placement not injective"
        assert all(0 <= t < self.num_terminals for t in self._terminal_of)


class LinearPlacement(Placement):
    """Rank r on terminal r."""

    name = "linear"

    def _build(self) -> list[int]:
        return list(range(self.num_ranks))


class RandomPlacement(Placement):
    """Uniform random injective placement (the paper's policy)."""

    name = "random"

    def __init__(self, num_ranks: int, num_terminals: int, seed: int = 0):
        self.seed = seed
        super().__init__(num_ranks, num_terminals)

    def _build(self) -> list[int]:
        rng = np.random.default_rng(self.seed)
        return list(map(int, rng.permutation(self.num_terminals)[: self.num_ranks]))
