"""Dissemination collective (Hensgen/Finkel/Manber barrier; Figure 7c).

The paper's collective() models an ``MPI_AllReduce`` with the *dissemination*
algorithm: ``ceil(log2 N)`` rounds; in round ``k`` every rank sends to
``rank + 2^k (mod N)`` **and** ``rank - 2^k (mod N)`` and waits for the
matching two receives before entering round ``k+1``.  It is topology
agnostic (unlike recursive doubling) and extremely latency sensitive — the
property that makes the full stencil application stress an adaptive routing
algorithm's ability to *stop* load-balancing quickly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CollectiveSend:
    round: int
    dst_rank: int


class DisseminationCollective:
    """Static send/receive schedule of one dissemination collective."""

    def __init__(self, num_ranks: int, message_flits: int = 1):
        if num_ranks < 2:
            raise ValueError("a collective needs at least two ranks")
        if message_flits < 1:
            raise ValueError("collective messages carry at least one flit")
        self.num_ranks = num_ranks
        self.message_flits = message_flits
        self.num_rounds = max(1, math.ceil(math.log2(num_ranks)))

    def sends(self, rank: int, rnd: int) -> list[CollectiveSend]:
        """Destinations rank must send to in round ``rnd`` (ID+2^k, ID-2^k)."""
        if not 0 <= rnd < self.num_rounds:
            raise ValueError(f"round {rnd} out of range")
        d = 1 << rnd
        n = self.num_ranks
        dsts = {(rank + d) % n, (rank - d) % n}
        dsts.discard(rank)
        return [CollectiveSend(rnd, dst) for dst in sorted(dsts)]

    def expected_receives(self, rank: int, rnd: int) -> int:
        """Messages rank must receive before leaving round ``rnd``.

        By symmetry of the +-2^k exchange this equals the number of sends.
        """
        return len(self.sends(rank, rnd))

    def total_messages_per_rank(self) -> int:
        return sum(
            len(self.sends(0, r)) for r in range(self.num_rounds)
        )
