"""The 27-point stencil application model (Section 6.2, Figures 7 & 8)."""

from .collective import CollectiveSend, DisseminationCollective
from .engine import MAX_PACKET_FLITS, StencilApplication
from .placement import LinearPlacement, Placement, RandomPlacement
from .stencil import Neighbor, StencilDecomposition
from .trace import MessageTrace, TracedMessage, TraceReplay, record_stencil_trace

__all__ = [
    "StencilDecomposition",
    "Neighbor",
    "DisseminationCollective",
    "CollectiveSend",
    "Placement",
    "LinearPlacement",
    "RandomPlacement",
    "StencilApplication",
    "MAX_PACKET_FLITS",
    "MessageTrace",
    "TracedMessage",
    "TraceReplay",
    "record_stencil_trace",
]
