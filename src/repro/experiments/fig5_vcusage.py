"""Figure 5: virtual-channel usage of DimWAR and OmniWAR.

The paper's figure shows, on an example path with deroutes, which resource
class each hop uses: DimWAR alternates between its two classes (deroute on
class 1, minimal on class 0, reused across ordered dimensions) while OmniWAR
walks up its distance classes (VC = hop index).

We regenerate it from real traced packets: load a 2-D HyperX until deroutes
happen, pick delivered packets with at least one deroute, and print the
hop-by-hop (dimension, move type, resource class) sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import replace

from ..analysis.report import format_table
from ..config import default_config
from ..core.registry import make_algorithm
from ..network.network import Network
from ..network.simulator import Simulator
from ..topology.hyperx import HyperX
from ..traffic.injection import SyntheticTraffic
from ..traffic.patterns import BitComplement


@dataclass
class HopRecord:
    hop: int
    from_coords: tuple[int, ...]
    to_coords: tuple[int, ...]
    dim: int
    move: str  # "minimal" | "deroute"
    vc: int
    vc_class: int


@dataclass
class Fig5Result:
    #: algorithm -> hop records of one example derouted packet
    examples: dict[str, list[HopRecord]] = field(default_factory=dict)


def trace_example(algo_name: str, widths=(4, 4), tpr=4, seed=3,
                  cycles=2500, rate=0.5) -> list[HopRecord]:
    topo = HyperX(widths, tpr)
    algo = make_algorithm(algo_name, topo)
    cfg = default_config(seed=seed)
    cfg = replace(cfg, network=replace(cfg.network, track_vc_trace=True))
    net = Network(topo, algo, cfg)
    sim = Simulator(net)
    delivered = []
    for t in net.terminals:
        t.delivery_listeners.append(lambda p, c: delivered.append(p))
    traffic = SyntheticTraffic(
        net, BitComplement(topo.num_terminals), rate, seed=seed
    )
    sim.processes.append(traffic)
    sim.run(cycles)
    traffic.stop()
    sim.drain(max_cycles=500_000)

    best = None
    for p in delivered:
        if p.deroutes >= 1 and (best is None or p.deroutes > best.deroutes):
            best = p
    if best is None:
        raise RuntimeError(f"no derouted packet observed for {algo_name}")

    records = []
    router = topo.router_of_terminal(best.src_terminal)
    dest = topo.coords(topo.router_of_terminal(best.dst_terminal))
    for i, (port, vc) in enumerate(zip(best.port_trace, best.vc_trace)):
        d, coord = topo.port_target(router, port)
        frm = topo.coords(router)
        c = list(frm)
        c[d] = coord
        records.append(
            HopRecord(
                hop=i,
                from_coords=frm,
                to_coords=tuple(c),
                dim=d,
                move="minimal" if coord == dest[d] else "deroute",
                vc=vc,
                vc_class=net.vc_map.class_of(vc),
            )
        )
        router = topo.router_id(c)
    return records


def run(algorithms: tuple[str, ...] = ("DimWAR", "OmniWAR")) -> Fig5Result:
    result = Fig5Result()
    for name in algorithms:
        result.examples[name] = trace_example(name)
    return result


def render(result: Fig5Result) -> str:
    out = []
    for name, records in result.examples.items():
        rows = [
            [
                r.hop,
                f"{r.from_coords} -> {r.to_coords}",
                f"dim {r.dim}",
                r.move,
                r.vc,
                r.vc_class,
            ]
            for r in records
        ]
        out.append(
            format_table(
                ["hop", "move", "dimension", "type", "VC", "resource class"],
                rows,
                title=f"Figure 5 ({name}): VC usage along a derouted path",
            )
        )
    return "\n\n".join(out)
