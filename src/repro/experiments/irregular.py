"""Irregular multi-job workloads (Section 3.2).

The paper's motivation scenario: "a small job might only consume a few 10s
of nodes but have very high bandwidth requirements between its nodes.  A
very large job might be running at the same time and some of its traffic
will need to cross the area in which the small job resides."  Source-
adaptive routing either rams minimally into the localized congestion or
load-balances globally (2x bandwidth); fine-grained incremental routing
slips around it with ~one extra hop.

The experiment: a *small job* occupies all terminals of a line of routers
and runs hot uniform traffic among itself, congesting that line's channels;
a *large job* (every other terminal) offers light uniform traffic across
the whole machine.  We measure the large job's latency and path stretch per
routing algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.report import format_table
from ..network.network import Network
from ..network.simulator import Simulator
from ..network.stats import PacketStats
from ..network.types import Packet
from ..core.registry import make_algorithm
from ..traffic.sizes import UniformSize
from .common import Scale, get_scale


@dataclass
class JobResult:
    algorithm: str
    large_job_latency: float
    large_job_p99: float
    large_job_hops: float
    large_job_deroutes: float
    small_job_latency: float
    packets: int


@dataclass
class IrregularResult:
    scale: str
    results: dict[str, JobResult] = field(default_factory=dict)


class _TwoJobTraffic:
    """Small hot job inside one router column + a large job crossing it.

    The *small job* owns every terminal of the Y-column of routers at
    ``x = 0, z = 0`` and runs hot uniform traffic among itself, saturating
    that column's Y-channels.  The *large job* sends from terminals at
    ``x != 0, z = 0`` to terminals at ``x = 0, z != 0``: its dimension-order
    minimal path is an (uncongested) X hop into the hot column, the hot
    column's Y-channels, then a Z hop out — exactly the paper's scenario of
    distant localized congestion that a source router cannot see.
    """

    def __init__(self, network, small_rate, large_rate, seed):
        self.network = network
        topo = network.topology
        if topo.num_dims != 3:
            raise ValueError("the Section 3.2 scenario needs a 3-D HyperX")
        tpr = topo.terminals_per_router
        wx, wy, wz = topo.widths
        self.small = [
            topo.router_id((0, y, 0)) * tpr + i
            for y in range(wy)
            for i in range(tpr)
        ]
        self.large_src = [
            topo.router_id((x, y, 0)) * tpr + i
            for x in range(1, wx)
            for y in range(wy)
            for i in range(tpr)
        ]
        self.large_dst = [
            topo.router_id((0, y, z)) * tpr + i
            for y in range(wy)
            for z in range(1, wz)
            for i in range(tpr)
        ]
        self.small_rate = small_rate
        self.large_rate = large_rate
        self.rng = np.random.default_rng(seed)
        self.sizes = UniformSize(1, 16)
        self.enabled = True

    def _emit(self, cycle, sources, rate, dest_group):
        p = rate / self.sizes.mean
        draws = self.rng.random(len(sources))
        for i in np.nonzero(draws < p)[0]:
            src = sources[int(i)]
            while True:
                dst = dest_group[int(self.rng.integers(len(dest_group)))]
                if dst != src:
                    break
            pkt = Packet(src, dst, self.sizes.sample(self.rng), create_cycle=cycle)
            self.network.terminals[src].offer(pkt)

    def __call__(self, cycle: int) -> None:
        if not self.enabled:
            return
        self._emit(cycle, self.small, self.small_rate, self.small)
        self._emit(cycle, self.large_src, self.large_rate, self.large_dst)

    def stop(self):
        self.enabled = False


def run_one(
    algorithm: str,
    scale: str | Scale = "smoke",
    small_rate: float = 0.85,
    large_rate: float = 0.08,
    cycles: int = 4000,
    seed: int = 6,
) -> JobResult:
    sc = get_scale(scale)
    topo = sc.topology()
    algo = make_algorithm(algorithm, topo)
    net = Network(topo, algo, sc.sim_config())
    sim = Simulator(net)
    traffic = _TwoJobTraffic(net, small_rate, large_rate, seed)
    sim.processes.append(traffic)
    stats = PacketStats()
    small_set = set(traffic.small)
    large_samples, small_samples = [], []

    def listener(p, c):
        sample = (p.latency, p.hops, p.deroutes)
        if p.src_terminal in small_set:
            small_samples.append(sample)
        else:
            large_samples.append(sample)

    for t in net.terminals:
        t.delivery_listeners.append(stats.on_delivery)
        t.delivery_listeners.append(listener)
    sim.run(cycles)
    traffic.stop()
    sim.drain(max_cycles=2_000_000)
    if not large_samples:
        raise RuntimeError("no large-job packets delivered")
    lat = sorted(s[0] for s in large_samples)
    return JobResult(
        algorithm=algorithm,
        large_job_latency=float(np.mean(lat)),
        large_job_p99=float(lat[min(len(lat) - 1, int(0.99 * len(lat)))]),
        large_job_hops=float(np.mean([s[1] for s in large_samples])),
        large_job_deroutes=float(np.mean([s[2] for s in large_samples])),
        small_job_latency=float(np.mean([s[0] for s in small_samples]))
        if small_samples
        else float("nan"),
        packets=len(large_samples),
    )


def run(
    algorithms: tuple[str, ...] = ("DOR", "UGAL", "UGAL+", "DimWAR", "OmniWAR"),
    scale: str | Scale = "smoke",
    **kwargs,
) -> IrregularResult:
    sc = get_scale(scale)
    result = IrregularResult(scale=sc.name)
    for name in algorithms:
        result.results[name] = run_one(name, sc, **kwargs)
    return result


def render(result: IrregularResult) -> str:
    rows = [
        [
            r.algorithm,
            f"{r.large_job_latency:.1f}",
            f"{r.large_job_p99:.0f}",
            f"{r.large_job_hops:.2f}",
            f"{r.large_job_deroutes:.2f}",
            f"{r.small_job_latency:.1f}",
        ]
        for r in result.results.values()
    ]
    return format_table(
        ["algorithm", "large-job latency", "p99", "hops", "deroutes",
         "small-job latency"],
        rows,
        title="Section 3.2: localized congestion — large job crossing a hot "
        f"small job [{result.scale} scale]",
    )
