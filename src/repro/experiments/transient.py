"""Transient response: how fast does an algorithm adapt to a pattern change?

An extension experiment the paper motivates but does not plot: Section 6.2
notes the stencil's rapid alternation between bandwidth-bound and latency-
bound phases means "adaptive routing algorithms need to quickly adapt to
changing network conditions" and that all evaluated adaptive algorithms
were "tuned to react quickly to change".

The experiment injects benign UR traffic, switches to adversarial BC at a
known cycle, and records windowed mean latency and windowed deroute rate.
An incremental algorithm should (a) keep near-zero deroutes before the
switch, (b) ramp deroutes right after it, and (c) settle at a stable
post-switch latency — the settling time *is* the transient response.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import format_table
from ..config import default_config
from ..core.registry import make_algorithm
from ..network.network import Network
from ..network.simulator import Simulator
from ..network.stats import PacketStats
from ..traffic.patterns import BitComplement, UniformRandom
from ..traffic.switching import PhasedTraffic
from .common import Scale, get_scale


@dataclass
class TransientSeries:
    algorithm: str
    window: int
    switch_cycle: int
    #: per-window (start_cycle, mean latency, mean deroutes, packets)
    windows: list[tuple[int, float, float, int]] = field(default_factory=list)

    def settling_window(self, tolerance: float = 1.3) -> int | None:
        """First post-switch window whose latency stays within ``tolerance``
        x the final (settled) latency for the rest of the run."""
        post = [w for w in self.windows if w[0] >= self.switch_cycle and w[3] > 0]
        if len(post) < 2:
            return None
        settled = post[-1][1]
        for i, (start, lat, _, _) in enumerate(post):
            if all(w[1] <= tolerance * settled for w in post[i:]):
                return start
        return None

    def settling_time(self, tolerance: float = 1.3) -> int | None:
        w = self.settling_window(tolerance)
        return None if w is None else w - self.switch_cycle

    def pre_switch_deroutes(self) -> float:
        pre = [w for w in self.windows if w[0] < self.switch_cycle and w[3] > 0]
        return sum(w[2] for w in pre) / len(pre) if pre else float("nan")

    def post_switch_deroutes(self) -> float:
        post = [w for w in self.windows if w[0] >= self.switch_cycle and w[3] > 0]
        return sum(w[2] for w in post) / len(post) if post else float("nan")


def run_transient(
    algorithm: str,
    scale: str | Scale = "smoke",
    rate: float = 0.3,
    window: int = 250,
    pre_windows: int = 6,
    post_windows: int = 10,
    seed: int = 4,
) -> TransientSeries:
    sc = get_scale(scale)
    topo = sc.topology()
    algo = make_algorithm(algorithm, topo)
    net = Network(topo, algo, sc.sim_config())
    sim = Simulator(net)
    switch = pre_windows * window
    total = (pre_windows + post_windows) * window
    traffic = PhasedTraffic(
        net,
        phases=[
            (0, UniformRandom(topo.num_terminals)),
            (switch, BitComplement(topo.num_terminals)),
        ],
        rate=rate,
        seed=seed,
    )
    sim.processes.append(traffic)
    stats = PacketStats()
    for t in net.terminals:
        t.delivery_listeners.append(stats.on_delivery)
    sim.run(total)
    traffic.stop()
    sim.drain(max_cycles=1_000_000)

    series = TransientSeries(algorithm=algorithm, window=window, switch_cycle=switch)
    for start in range(0, total, window):
        bucket = [
            s for s in stats.samples if start <= s.create_cycle < start + window
        ]
        if bucket:
            lat = sum(s.latency for s in bucket) / len(bucket)
            der = sum(s.deroutes for s in bucket) / len(bucket)
        else:
            lat, der = float("nan"), float("nan")
        series.windows.append((start, lat, der, len(bucket)))
    return series


def run(
    algorithms: tuple[str, ...] = ("UGAL", "DimWAR", "OmniWAR"),
    scale: str | Scale = "smoke",
    **kwargs,
) -> dict[str, TransientSeries]:
    return {name: run_transient(name, scale, **kwargs) for name in algorithms}


def render(results: dict[str, TransientSeries]) -> str:
    rows = []
    for name, series in results.items():
        st = series.settling_time()
        rows.append(
            [
                name,
                f"{series.pre_switch_deroutes():.3f}",
                f"{series.post_switch_deroutes():.3f}",
                str(st) if st is not None else "did not settle",
            ]
        )
    header = format_table(
        ["algorithm", "deroutes/pkt pre-switch", "post-switch", "settling time (cycles)"],
        rows,
        title="Transient response: UR -> BC switch",
    )
    detail_rows = []
    for name, series in results.items():
        for start, lat, der, n in series.windows:
            mark = "<- switch" if start == series.switch_cycle else ""
            detail_rows.append(
                [name, start, f"{lat:.1f}", f"{der:.2f}", n, mark]
            )
    detail = format_table(
        ["algorithm", "window start", "mean latency", "deroutes/pkt", "packets", ""],
        detail_rows,
    )
    return header + "\n\n" + detail
