"""Figure 4: 27-point stencil execution time across topologies.

The paper's head-to-head of Fat Tree, Dragonfly, and HyperX running the
stencil application (full mode), each with its natural adaptive routing
(adaptive up/down for the fat tree, UGAL for the Dragonfly, OmniWAR for the
HyperX).  The paper reports the HyperX 25-38% faster in communication time.

Topology configurations are chosen with comparable endpoint counts and
router radix; the stencil grid is sized to the smallest terminal count so
the same ranks run everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import format_table
from ..application.engine import StencilApplication
from ..application.placement import RandomPlacement
from ..application.stencil import StencilDecomposition
from ..core.dragonfly_routing import DragonflyUgal
from ..core.fattree_routing import FatTreeAdaptive
from ..core.registry import make_algorithm
from ..network.network import Network
from ..network.simulator import Simulator
from ..topology.dragonfly import Dragonfly
from ..topology.fattree import FatTree
from ..topology.hyperx import HyperX
from .common import Scale, get_scale


@dataclass(frozen=True)
class TopologyCase:
    name: str
    topology: object
    algorithm: object

    @property
    def num_terminals(self) -> int:
        return self.topology.num_terminals


def paper_cases(scale: str | Scale = "smoke") -> list[TopologyCase]:
    """Comparable FatTree / Dragonfly / HyperX configurations per scale."""
    sc = get_scale(scale)
    # Fat trees are 2:1 edge-oversubscribed (leaf_factor=2) so that all
    # three networks have ~50% bisection and comparable per-node cost —
    # a full-bisection fat tree would cost far more than the HyperX and
    # Dragonfly it is compared against (see EXPERIMENTS.md).
    if sc.name == "smoke":
        ft = FatTree(3, 3, leaf_factor=2)  # 54 terminals, 27 switches
        df = Dragonfly(p=2, a=4, h=2)  # 72 terminals, 36 routers
        hx = HyperX((4, 4), 4)  # 64 terminals, 16 routers
    elif sc.name == "small":
        ft = FatTree(5, 3, leaf_factor=2)  # 250 terminals
        df = Dragonfly(p=3, a=6, h=3)  # 342 terminals
        hx = HyperX((4, 4, 4), 4)  # 256 terminals
    else:  # paper scale
        ft = FatTree(13, 3, leaf_factor=2)  # 4,394 terminals
        df = Dragonfly(p=6, a=12, h=6)  # 5,256 terminals
        hx = HyperX((8, 8, 8), 8)  # 4,096 terminals
    return [
        TopologyCase("FatTree", ft, FatTreeAdaptive(ft)),
        TopologyCase("Dragonfly", df, DragonflyUgal(df)),
        TopologyCase("HyperX", hx, make_algorithm("OmniWAR", hx)),
    ]


@dataclass
class Fig4Result:
    scale: str
    #: (topology, iterations) -> execution time in cycles
    times: dict[tuple[str, int], int] = field(default_factory=dict)

    def hyperx_speedup(self, versus: str, iterations: int) -> float:
        """Relative communication-time reduction of HyperX vs a baseline."""
        base = self.times[(versus, iterations)]
        hx = self.times[("HyperX", iterations)]
        return 1.0 - hx / base


def run(
    scale: str | Scale = "smoke",
    iteration_counts: tuple[int, ...] = (1,),
    seed: int = 5,
    max_cycles: int = 5_000_000,
) -> Fig4Result:
    sc = get_scale(scale)
    cases = paper_cases(sc)
    # one stencil grid fits every topology: size to the smallest network
    min_terminals = min(c.num_terminals for c in cases)
    side = 2
    while (side + 1) ** 3 <= min_terminals:
        side += 1
    grid = (side, side, side)
    result = Fig4Result(scale=sc.name)
    for case in cases:
        for iters in iteration_counts:
            net = Network(case.topology, case.algorithm, sc.sim_config())
            sim = Simulator(net)
            decomp = StencilDecomposition(
                grid, aggregate_flits=sc.stencil_aggregate_flits
            )
            placement = RandomPlacement(
                decomp.num_ranks, case.topology.num_terminals, seed=seed
            )
            app = StencilApplication(net, decomp, placement, iterations=iters)
            result.times[(case.name, iters)] = app.run(sim, max_cycles=max_cycles)
    return result


def render(result: Fig4Result) -> str:
    rows = []
    for (name, iters), t in sorted(result.times.items()):
        rows.append([name, str(iters), str(t)])
    for iters in sorted({i for _, i in result.times}):
        for base in ("FatTree", "Dragonfly"):
            if (base, iters) in result.times:
                rows.append(
                    [
                        f"HyperX vs {base}",
                        str(iters),
                        f"{result.hyperx_speedup(base, iters) * 100:+.1f}% comm time",
                    ]
                )
    return format_table(
        ["topology", "iterations", "execution time (cycles)"],
        rows,
        title=f"Figure 4: stencil execution time per topology "
        f"[{result.scale} scale]",
    )
