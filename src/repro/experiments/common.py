"""Shared experiment scaffolding: scales and scenario construction.

Every experiment driver accepts a ``scale``:

* ``"smoke"`` — minutes-scale sanity runs (tiny network, short windows);
  used by the pytest benchmarks so the whole harness regenerates every
  figure in one sitting.
* ``"small"`` — the scaled default documented in DESIGN.md: a 4x4x4 HyperX
  with 4 terminals per router (256 nodes) exhibiting every phenomenon the
  paper evaluates (bisection saturation, source-adaptive blindness, DCR's
  dimension-order trap).
* ``"paper"`` — the paper's 8x8x8, 8 terminals/router, 4,096-node network
  with 50-cycle channels.  Hours per point in pure Python; provided for
  full-fidelity reproduction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..config import SimConfig, default_config, paper_scale
from ..topology.hyperx import HyperX


@dataclass(frozen=True)
class Scale:
    name: str
    widths: tuple[int, ...]
    terminals_per_router: int
    total_cycles: int  # per measured load point
    granularity: float  # injection-rate sweep step (paper: 0.02)
    stencil_ranks: tuple[int, int, int]
    stencil_aggregate_flits: int

    def topology(self) -> HyperX:
        return HyperX(self.widths, self.terminals_per_router)

    def sim_config(self, **overrides) -> SimConfig:
        if self.name == "paper":
            return paper_scale(**overrides)
        return default_config(**overrides)


SCALES: dict[str, Scale] = {
    "smoke": Scale(
        name="smoke",
        widths=(3, 3, 3),
        terminals_per_router=2,
        total_cycles=2500,
        granularity=0.10,
        stencil_ranks=(3, 3, 3),
        stencil_aggregate_flits=1040,  # ~40 flits per neighbour: bandwidth bound
    ),
    "small": Scale(
        name="small",
        widths=(4, 4, 4),
        terminals_per_router=4,
        total_cycles=5000,
        granularity=0.05,
        stencil_ranks=(4, 4, 4),
        stencil_aggregate_flits=2600,  # ~100 flits per neighbour
    ),
    "paper": Scale(
        name="paper",
        widths=(8, 8, 8),
        terminals_per_router=8,
        total_cycles=60_000,
        granularity=0.02,
        stencil_ranks=(16, 16, 16),
        stencil_aggregate_flits=3200,  # 100 kB at 32 B/flit
    ),
}


def resolve_workers(workers: int | None = None) -> int | None:
    """Resolve the sweep worker count for experiment drivers.

    Precedence: an explicit ``workers`` argument wins; otherwise the
    ``REPRO_WORKERS`` environment variable (so whole figure regenerations
    can be parallelized without threading a flag through every driver);
    otherwise None (the serial in-process path).  ``0`` (from either
    source) means "all cores".
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if not env:
            return None
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}"
            ) from None
    if workers < 0:
        raise ValueError("workers must be >= 0 (0 = all cores)")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


def get_scale(scale: str | Scale) -> Scale:
    if isinstance(scale, Scale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
        ) from None
