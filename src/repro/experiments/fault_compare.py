"""Head-to-head fault benchmark: every fault-capable algorithm, same faults.

The single-algorithm fault transient (:mod:`repro.experiments.faults`)
answers "does this algorithm survive a mid-run failure?".  This driver
answers the successor-paper question — *which* fault-handling discipline
wins, and what does each one pay — by running every requested algorithm
through the **same** connectivity-preserving fault samples at increasing
fault counts and tabulating three figures of merit per (algorithm, k):

* **delivered fraction** and **settling time** from the mid-run transient
  (fail ``k`` links at a known cycle, drain, count packets);
* **saturation throughput** on a *statically* degraded topology with the
  same ``k`` faults — the steady-state capacity cost of routing around
  the damage, measured with the ascending stop-at-first-unstable sweep
  (:func:`repro.analysis.sweep.saturation_throughput`).

A :class:`~repro.core.base.NoRouteError` anywhere is a *result*, not a
crash: the transient captures it in ``routing_error`` and the saturation
sweep records the pair-unreachable verdict per point.  That is how
VCFree's narrower escape envelope (no VCs, but no second rise after a
down hop) shows up against FTHX's escape subnetwork and the masked-port
baselines — see docs/FAULTS.md for a worked example and EXPERIMENTS.md
for measured 8x8 numbers.

Only fault-capable algorithms are accepted
(:func:`repro.core.registry.fault_capable_names`); anything else is
rejected up front with the full capable list, before any simulation runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import format_table
from ..analysis.sweep import saturation_throughput
from ..core.base import NoRouteError
from ..core.registry import (
    algorithm_names,
    fault_capable_names,
    make_algorithm,
)
from ..faults.degraded import DegradedTopology
from ..faults.model import random_faults
from ..traffic.patterns import UniformRandom
from .common import Scale, get_scale
from .faults import run_fault_transient

#: default line-up: the paper's baselines plus both successor schemes
COMPARE_ALGORITHMS = ("DOR", "DimWAR", "OmniWAR", "FTHX", "VCFree")


@dataclass
class FaultComparePoint:
    """One (algorithm, fault count) cell of the comparison grid."""

    algorithm: str
    fault_links: int
    delivered_fraction: float
    settling: int | None
    drained: bool
    routing_error: str | None
    masked_candidates: int
    saturation_rate: float | None = None
    saturation_error: str | None = None


@dataclass
class FaultCompareResult:
    """The full comparison grid plus the scenario it was measured on."""

    scale: str
    widths: tuple[int, ...]
    terminals_per_router: int
    rate: float
    fault_counts: tuple[int, ...]
    fault_seed: int
    algorithms: tuple[str, ...]
    points: list[FaultComparePoint] = field(default_factory=list)

    def cell(self, algorithm: str, fault_links: int) -> FaultComparePoint:
        for p in self.points:
            if p.algorithm == algorithm and p.fault_links == fault_links:
                return p
        raise KeyError((algorithm, fault_links))


def validate_fault_capable(algorithms) -> None:
    """Reject non-fault-capable names up front, before anything runs.

    Registered algorithms without fault awareness (VAL, UGAL+, MIN-AD,
    ROMM, O1Turn) would otherwise die mid-sequence with a NoRouteError
    traceback after burning the earlier algorithms' simulation time; the
    CLI routes this ValueError through the argparse error path (exit 2).
    """
    registered = algorithm_names()
    unknown = [a for a in algorithms if a not in registered]
    if unknown:
        raise ValueError(
            f"{', '.join(unknown)} "
            f"{'is' if len(unknown) == 1 else 'are'} not a registered "
            f"algorithm; see `python -m repro list`"
        )
    capable = fault_capable_names()
    bad = [a for a in algorithms if a not in capable]
    if bad:
        raise ValueError(
            f"{', '.join(bad)} {'is' if len(bad) == 1 else 'are'} not "
            f"fault-capable (no fault-aware candidates() masking); fault "
            f"experiments accept: {', '.join(capable)}.  See docs/FAULTS.md."
        )


def run_fault_comparison(
    algorithms: tuple[str, ...] = COMPARE_ALGORITHMS,
    fault_counts: tuple[int, ...] = (0, 1, 2, 4),
    scale: str | Scale = "smoke",
    topology=None,
    rate: float = 0.2,
    window: int = 250,
    pre_windows: int = 2,
    post_windows: int = 6,
    fault_seed: int = 7,
    seed: int = 4,
    saturation: bool = True,
    granularity: float | None = None,
    max_rate: float = 0.7,
    total_cycles: int | None = None,
    workers: int | None = None,
    check: bool = False,
) -> FaultCompareResult:
    """Run the head-to-head grid: ``algorithms`` x ``fault_counts``.

    Every algorithm sees the *same* fault sample at each ``k`` (same
    ``fault_seed``), so differences are routing discipline, not luck.
    ``topology`` overrides the scale's topology (the docs' 8x8 example
    passes ``HyperX((8, 8), 2)``); ``saturation=False`` skips the
    steady-state sweeps (the transient grid alone is much cheaper — the
    CI smoke step uses it).  ``granularity`` defaults to the scale's
    sweep step; ``workers`` fans the saturation sweep points out in
    parallel.  ``check`` attaches the runtime sanitizer to every
    transient run.
    """
    validate_fault_capable(algorithms)
    if any(k < 0 for k in fault_counts):
        raise ValueError("fault counts must be >= 0")
    sc = get_scale(scale)
    base = topology if topology is not None else sc.topology()
    gran = sc.granularity if granularity is None else granularity
    cycles = sc.total_cycles if total_cycles is None else total_cycles

    result = FaultCompareResult(
        scale=sc.name,
        widths=tuple(base.widths),
        terminals_per_router=base.terminals_per_router,
        rate=rate,
        fault_counts=tuple(fault_counts),
        fault_seed=fault_seed,
        algorithms=tuple(algorithms),
    )
    for k in fault_counts:
        for name in algorithms:
            res = run_fault_transient(
                name,
                scale=sc,
                rate=rate,
                window=window,
                pre_windows=pre_windows,
                post_windows=post_windows,
                fail_links=k,
                fault_seed=fault_seed,
                seed=seed,
                topology=base,
                check=check,
            )
            point = FaultComparePoint(
                algorithm=name,
                fault_links=k,
                delivered_fraction=res.delivered_fraction,
                settling=res.settling_time(),
                drained=res.drained,
                routing_error=res.routing_error,
                masked_candidates=res.fault_counters.get(
                    "masked_candidates", 0
                ),
            )
            if saturation:
                fset = random_faults(base, links=k, seed=fault_seed)
                topo = DegradedTopology(base, fset)
                algo = make_algorithm(name, topo)
                pattern = UniformRandom(base.num_terminals)
                try:
                    sweep = saturation_throughput(
                        topo, algo, pattern,
                        granularity=gran, max_rate=max_rate,
                        total_cycles=cycles, seed=seed, workers=workers,
                    )
                    point.saturation_rate = sweep.saturation_rate
                except NoRouteError as e:
                    point.saturation_error = str(e)
            result.points.append(point)
    return result


def _fmt_delivered(p: FaultComparePoint) -> str:
    if p.routing_error is not None:
        return f"{p.delivered_fraction:.4f}*"
    return f"{p.delivered_fraction:.4f}"


def _fmt_settling(p: FaultComparePoint) -> str:
    if p.routing_error is not None:
        return "n/a*"
    return str(p.settling) if p.settling is not None else "did not settle"


def _fmt_saturation(p: FaultComparePoint) -> str:
    if p.saturation_error is not None:
        return "unreachable*"
    if p.saturation_rate is None:
        return "-"
    return f"{p.saturation_rate:.3f}"


def render(result: FaultCompareResult) -> str:
    """Three metric tables (algorithms x fault counts) plus footnotes."""
    title = (
        f"Fault head-to-head: HyperX {result.widths} "
        f"T={result.terminals_per_router}, rate={result.rate}, "
        f"fault seed {result.fault_seed} ({result.scale} scale)"
    )
    headers = ["algorithm"] + [f"{k} faults" for k in result.fault_counts]

    def grid(fmt, metric_title):
        rows = [
            [name] + [
                fmt(result.cell(name, k)) for k in result.fault_counts
            ]
            for name in result.algorithms
        ]
        return format_table(headers, rows, title=metric_title)

    out = [
        title,
        "",
        grid(_fmt_delivered, "Delivered fraction (mid-run fault transient)"),
        "",
        grid(_fmt_settling, "Settling time, cycles after the fault event"),
    ]
    if any(
        p.saturation_rate is not None or p.saturation_error is not None
        for p in result.points
    ):
        out += [
            "",
            grid(
                _fmt_saturation,
                "Saturation throughput on the statically degraded topology",
            ),
        ]
    notes = [
        f"  * {p.algorithm} @ {p.fault_links} faults: "
        + (p.routing_error or p.saturation_error or "")
        for p in result.points
        if p.routing_error is not None or p.saturation_error is not None
    ]
    if notes:
        out += [
            "",
            "NoRouteError is a reported verdict, never a hang:",
            *notes,
        ]
    return "\n".join(out)
