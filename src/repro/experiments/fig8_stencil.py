"""Figure 8: 27-point stencil execution time per routing algorithm.

Three sub-figures, each for 1 and 16 iterations with zero compute time and
random placement (Section 6.2):

* **8a** collectives only — latency bound; every algorithm but VAL is good;
* **8b** halo exchanges only — bandwidth bound; DOR worst, VAL second worst,
  DimWAR/OmniWAR best;
* **8c** the full application — DimWAR/OmniWAR best, OmniWAR slightly ahead.

Execution time is the cycle at which the last rank completes (smaller is
better, as in the paper's bar charts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import format_table
from ..application.engine import StencilApplication
from ..application.placement import RandomPlacement
from ..application.stencil import StencilDecomposition
from ..core.registry import PAPER_ALGORITHMS, make_algorithm
from ..network.network import Network
from ..network.simulator import Simulator
from .common import Scale, get_scale

MODES = ("collective", "halo", "full")


@dataclass
class Fig8Result:
    scale: str
    #: (mode, iterations, algorithm) -> execution time in cycles
    times: dict[tuple[str, int, str], int] = field(default_factory=dict)


def run_stencil_once(
    algorithm: str,
    mode: str = "full",
    iterations: int = 1,
    scale: str | Scale = "smoke",
    seed: int = 5,
    max_cycles: int = 5_000_000,
) -> int:
    """One bar of Figure 8: execution time for one algorithm/mode/iters."""
    sc = get_scale(scale)
    topo = sc.topology()
    algo = make_algorithm(algorithm, topo)
    net = Network(topo, algo, sc.sim_config())
    sim = Simulator(net)
    decomp = StencilDecomposition(
        sc.stencil_ranks, aggregate_flits=sc.stencil_aggregate_flits
    )
    placement = RandomPlacement(decomp.num_ranks, topo.num_terminals, seed=seed)
    app = StencilApplication(net, decomp, placement, iterations=iterations, mode=mode)
    return app.run(sim, max_cycles=max_cycles)


def run(
    algorithms: tuple[str, ...] = PAPER_ALGORITHMS,
    modes: tuple[str, ...] = MODES,
    iteration_counts: tuple[int, ...] = (1, 16),
    scale: str | Scale = "smoke",
    seed: int = 5,
    repeats: int = 1,
) -> Fig8Result:
    """Run the Figure 8 grid; with ``repeats`` > 1 each bar is the mean over
    that many random placements (reduces small-scale placement noise)."""
    sc = get_scale(scale)
    result = Fig8Result(scale=sc.name)
    for mode in modes:
        for iters in iteration_counts:
            for algo in algorithms:
                times = [
                    run_stencil_once(algo, mode, iters, sc, seed=seed + rep)
                    for rep in range(repeats)
                ]
                result.times[(mode, iters, algo)] = round(sum(times) / len(times))
    return result


def render(result: Fig8Result, algorithms: tuple[str, ...] = PAPER_ALGORITHMS) -> str:
    rows = []
    keys = sorted({(m, i) for m, i, _ in result.times})
    for mode, iters in keys:
        row = [mode, str(iters)]
        for algo in algorithms:
            t = result.times.get((mode, iters, algo))
            row.append(str(t) if t is not None else "-")
        rows.append(row)
    return format_table(
        ["phase", "iterations", *algorithms],
        rows,
        title=f"Figure 8: stencil execution time in cycles, lower is better "
        f"[{result.scale} scale]",
    )
