"""Experiment drivers: one module per paper figure/table.

===========================  ====================================
module                       regenerates
===========================  ====================================
``fig1_paths``               Figure 1 (path examples)
``fig2_scalability``         Figure 2 (max nodes vs radix)
``fig3_cost``                Figure 3 (relative cabling cost)
``fig4_topologies``          Figure 4 (stencil across topologies)
``fig5_vcusage``             Figure 5 (VC usage of DimWAR/OmniWAR)
``fig6_synthetic``           Figures 6a-6g (synthetic traffic)
``fig8_stencil``             Figures 8a-8c (stencil per algorithm)
``table1_comparison``        Table 1 (implementation comparison)
``transient``                transient response (extension experiment)
``faults``                   fault-injection transient (docs/FAULTS.md)
``fault_compare``            head-to-head fault benchmark (docs/FAULTS.md)
===========================  ====================================
"""

from . import (
    fault_compare,
    faults,
    fig1_paths,
    fig2_scalability,
    fig3_cost,
    fig4_topologies,
    fig5_vcusage,
    fig6_synthetic,
    fig7_model,
    fig8_stencil,
    irregular,
    table1_comparison,
    table_area,
    transient,
)
from .common import SCALES, Scale, get_scale

__all__ = [
    "fault_compare",
    "faults",
    "fig1_paths",
    "fig2_scalability",
    "fig3_cost",
    "fig4_topologies",
    "fig5_vcusage",
    "fig6_synthetic",
    "fig7_model",
    "fig8_stencil",
    "irregular",
    "table1_comparison",
    "table_area",
    "transient",
    "Scale",
    "SCALES",
    "get_scale",
]
