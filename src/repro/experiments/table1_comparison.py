"""Table 1: adaptive-routing implementation comparison.

Regenerated from live algorithm metadata (the OmniWAR row's VC requirement
is N+M by construction; DAL's row comes from its published description —
the algorithm is analysed in :mod:`repro.core.dal_analysis`, never
simulated, exactly as in the paper).
"""

from __future__ import annotations

from ..analysis.report import format_table
from ..core.registry import table1_rows


def run(num_dims: int = 3) -> list[dict]:
    return table1_rows(num_dims)


def render(rows: list[dict]) -> str:
    table = [
        [
            r["name"],
            "yes" if r["dimension_ordered"] else "no",
            r["routing_style"],
            r["vcs_required"],
            r["deadlock_handling"],
            r["architecture_requirements"],
            r["packet_contents"],
        ]
        for r in rows
    ]
    return format_table(
        [
            "Algorithm",
            "Dim Ordered",
            "Routing Style",
            "VCs Required",
            "Deadlock Handling",
            "Arch Requirements",
            "Packet Contents",
        ],
        table,
        title="Table 1: adaptive routing implementation comparison",
    )
