"""Figure 7: the 27-point stencil application model, rendered from code.

The paper's Figure 7 is descriptive — (a) the domain decomposition into
sub-cubes, (b) the 6/12/8 face/edge/corner neighbour classification, (c)
the dissemination collective's send pattern.  We regenerate all three from
the live model objects, which doubles as a specification check: the
rendered numbers are produced by the same code the simulations run.
"""

from __future__ import annotations

from ..analysis.report import format_table
from ..application.collective import DisseminationCollective
from ..application.stencil import StencilDecomposition


def render_decomposition(grid=(4, 4, 4), aggregate_flits=2600) -> str:
    d = StencilDecomposition(grid, aggregate_flits=aggregate_flits)
    center = d.rank_id(tuple(g // 2 for g in grid))
    nbrs = d.neighbors(center)
    by_kind = {}
    for n in nbrs:
        by_kind.setdefault(n.kind, []).append(n)
    rows = []
    for kind, expected in (("face", 6), ("edge", 12), ("corner", 8)):
        group = by_kind.get(kind, [])
        rows.append(
            [
                kind,
                len(group),
                expected,
                group[0].size_flits if group else 0,
                sum(n.size_flits for n in group),
            ]
        )
    rows.append(["total", len(nbrs), 26, "-", sum(n.size_flits for n in nbrs)])
    return format_table(
        ["neighbour kind", "count", "paper (Fig 7b)", "flits each", "flits total"],
        rows,
        title=f"Figure 7a/7b: stencil decomposition {grid}, "
        f"{d.num_ranks} ranks, {aggregate_flits} flits/rank/exchange",
    )


def render_collective(num_ranks: int = 16, rank: int = 5) -> str:
    c = DisseminationCollective(num_ranks)
    rows = []
    for rnd in range(c.num_rounds):
        sends = c.sends(rank, rnd)
        rows.append(
            [
                rnd,
                1 << rnd,
                ", ".join(str(s.dst_rank) for s in sends),
                c.expected_receives(rank, rnd),
            ]
        )
    return format_table(
        ["round", "distance 2^k", f"rank {rank} sends to", "receives"],
        rows,
        title=f"Figure 7c: dissemination collective, N={num_ranks} "
        f"({c.num_rounds} rounds = ceil(log2 N))",
    )


def run() -> str:
    return render_decomposition() + "\n\n" + render_collective()
