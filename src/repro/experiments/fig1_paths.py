"""Figure 1: paths of source vs incremental adaptive routing around a
congested channel at the source router.

The figure's scenario: the minimal path's first channel out of the source
router is congested.  Source-adaptive routing (UGAL) decides *once* at the
source — it either ignores the congestion (minimal) or commits to a full
Valiant detour (~2x path).  Incremental routing (DimWAR/OmniWAR) slides
around the congested channel with a single +1-hop deroute and goes minimal
afterwards.

We reproduce the scenario on a 2-D HyperX: saturate the direct channel
between the source and destination routers with background flows, then send
traced probe packets under each algorithm and report the paths taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import replace

from ..analysis.report import format_table
from ..config import default_config
from ..core.registry import make_algorithm
from ..network.network import Network
from ..network.simulator import Simulator
from ..network.types import Packet
from ..topology.hyperx import HyperX


@dataclass
class ProbeTrace:
    algorithm: str
    path: list[tuple[int, ...]]  # router coordinates visited
    hops: int
    deroutes: int
    min_hops: int


@dataclass
class Fig1Result:
    traces: dict[str, list[ProbeTrace]] = field(default_factory=dict)


def _congest_and_probe(
    algo_name: str,
    width: int = 4,
    tpr: int = 4,
    probes: int = 12,
    seed: int = 2,
) -> list[ProbeTrace]:
    topo = HyperX((width, width), tpr)
    algo = make_algorithm(algo_name, topo)
    cfg = default_config(seed=seed)
    cfg = replace(cfg, network=replace(cfg.network, track_vc_trace=True))
    net = Network(topo, algo, cfg)
    sim = Simulator(net)

    src_router = topo.router_id((0, 0))
    dst_router = topo.router_id((width - 1, 0))  # one X hop away

    def hot(cycle: int) -> None:
        # every terminal of the source router floods the destination router,
        # saturating the single minimal channel between them
        if cycle % 2 == 0:
            for lt in range(1, tpr):
                src_t = src_router * tpr + lt
                dst_t = dst_router * tpr + lt
                net.terminals[src_t].offer(
                    Packet(src_t, dst_t, 8, create_cycle=cycle)
                )

    sim.processes.append(hot)
    sim.run(400)  # build the congestion tree

    probe_packets = []

    def probe(cycle: int) -> None:
        if cycle % 40 == 0 and len(probe_packets) < probes:
            src_t = src_router * tpr  # terminal 0 of the source router
            dst_t = dst_router * tpr
            p = Packet(src_t, dst_t, 1, create_cycle=cycle)
            probe_packets.append(p)
            net.terminals[src_t].offer(p)

    sim.processes.append(probe)
    sim.run(40 * probes + 400)
    sim.processes.clear()
    sim.drain(max_cycles=500_000)

    traces = []
    for p in probe_packets:
        if p.eject_cycle is None:
            continue
        path = [topo.coords(src_router)]
        router = src_router
        for port in p.port_trace or []:
            d, coord = topo.port_target(router, port)
            c = list(topo.coords(router))
            c[d] = coord
            router = topo.router_id(c)
            path.append(tuple(c))
        traces.append(
            ProbeTrace(
                algorithm=algo_name,
                path=path,
                hops=p.hops,
                deroutes=p.deroutes,
                min_hops=topo.min_hops(src_router, dst_router),
            )
        )
    return traces


def run(algorithms: tuple[str, ...] = ("UGAL", "DimWAR", "OmniWAR"),
        probes: int = 12) -> Fig1Result:
    result = Fig1Result()
    for name in algorithms:
        result.traces[name] = _congest_and_probe(name, probes=probes)
    return result


def render(result: Fig1Result) -> str:
    rows = []
    for name, traces in result.traces.items():
        if not traces:
            rows.append([name, "-", "-", "no probes delivered"])
            continue
        diverted = [t for t in traces if t.hops > t.min_hops]
        mean_hops = sum(t.hops for t in traces) / len(traces)
        example = max(traces, key=lambda t: t.hops)
        rows.append(
            [
                name,
                f"{mean_hops:.2f}",
                f"{len(diverted)}/{len(traces)}",
                " -> ".join(str(c) for c in example.path),
            ]
        )
    return format_table(
        ["algorithm", "mean hops", "diverted", "longest path taken"],
        rows,
        title="Figure 1: routing around a congested source channel "
        "(minimal distance = 1 hop)",
    )
