"""Figure 6: synthetic-traffic load-latency curves and throughput bars.

Figures 6a-6f plot load versus latency for six traffic patterns (UR, BC,
URBx, URBy, S2, DCR) across the Table 2 algorithms; each curve ends at
saturation.  Figure 6g compares the achieved (saturation) throughput of
every algorithm on every pattern.

:func:`run_pattern` regenerates one sub-figure; :func:`run_throughput_chart`
regenerates 6g.  The expected qualitative results (checked by the benchmark
harness against the measured data):

* UR — every algorithm reaches high throughput; adaptive ones stay minimal.
* BC — adaptive algorithms all reach ~ the bisection bound, with DimWAR and
  OmniWAR at lower latency than UGAL/UGAL+.
* URBx — congestion visible at the source: everyone adaptive does well;
  DOR is capped at 1/w.
* URBy — the paper's source-blindness experiment: DOR capped at 1/w;
  source-adaptive algorithms degrade (latency blows up well before the
  incremental ones); DimWAR/OmniWAR sail to the bisection bound.
* S2 — UGAL collapses to ~50% (topology-agnostic Valiant); UGAL+, DimWAR,
  OmniWAR exploit the idle in-dimension bandwidth.
* DCR — the worst-case admissible pattern: DOR collapses to 1/(w*T);
  DimWAR is limited by dimension order; OmniWAR alone reaches ~50%.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import format_table
from ..analysis.sweep import SweepResult, saturation_throughput, sweep_load
from ..core.registry import PAPER_ALGORITHMS, make_algorithm
from ..traffic.patterns import paper_patterns
from .common import Scale, get_scale, resolve_workers

PAPER_PATTERNS = ("UR", "BC", "URBx", "URBy", "S2", "DCR")


@dataclass
class Fig6Result:
    scale: str
    sweeps: dict[tuple[str, str], SweepResult] = field(default_factory=dict)

    def saturation(self, pattern: str, algorithm: str) -> float:
        return self.sweeps[(pattern, algorithm)].saturation_rate


def run_pattern(
    pattern_name: str,
    algorithms: tuple[str, ...] = PAPER_ALGORITHMS,
    scale: str | Scale = "smoke",
    rates: list[float] | None = None,
    seed: int = 1,
    workers: int | None = None,
) -> Fig6Result:
    """One load-latency sub-figure (6a-6f): sweep every algorithm.

    ``workers`` (or the ``REPRO_WORKERS`` environment variable) fans the
    load points of each sweep over processes; see
    :func:`repro.analysis.sweep.sweep_load`.
    """
    sc = get_scale(scale)
    workers = resolve_workers(workers)
    topo = sc.topology()
    patterns = paper_patterns(topo)
    if pattern_name not in patterns:
        raise ValueError(f"unknown paper pattern {pattern_name!r}")
    result = Fig6Result(scale=sc.name)
    for algo_name in algorithms:
        algo = make_algorithm(algo_name, topo)
        if rates is not None:
            sweep = sweep_load(
                topo, algo, patterns[pattern_name], rates,
                total_cycles=sc.total_cycles, cfg=sc.sim_config(), seed=seed,
                workers=workers,
            )
        else:
            sweep = saturation_throughput(
                topo, algo, patterns[pattern_name],
                granularity=sc.granularity,
                total_cycles=sc.total_cycles, cfg=sc.sim_config(), seed=seed,
                workers=workers,
            )
        result.sweeps[(pattern_name, algo_name)] = sweep
    return result


def run_throughput_chart(
    algorithms: tuple[str, ...] = PAPER_ALGORITHMS,
    patterns: tuple[str, ...] = PAPER_PATTERNS,
    scale: str | Scale = "smoke",
    seed: int = 1,
    workers: int | None = None,
) -> Fig6Result:
    """Figure 6g: achieved throughput for every (pattern, algorithm) pair."""
    sc = get_scale(scale)
    result = Fig6Result(scale=sc.name)
    for pattern_name in patterns:
        sub = run_pattern(pattern_name, algorithms, sc, seed=seed, workers=workers)
        result.sweeps.update(sub.sweeps)
    return result


def render_load_latency(result: Fig6Result, pattern: str) -> str:
    """The rows behind one of Figures 6a-6f."""
    rows = []
    for (pat, algo), sweep in sorted(result.sweeps.items()):
        if pat != pattern:
            continue
        for p in sweep.points:
            rows.append(
                [
                    algo,
                    f"{p.offered_rate:.2f}",
                    f"{p.accepted_rate:.3f}",
                    f"{p.mean_latency:.1f}" if p.stable else "saturated",
                    p.reason if not p.stable else "",
                ]
            )
    return format_table(
        ["algorithm", "offered", "accepted", "mean latency", "note"],
        rows,
        title=f"Figure 6 ({pattern}): load vs latency [{result.scale} scale]",
    )


def render_throughput_chart(
    result: Fig6Result,
    algorithms: tuple[str, ...] = PAPER_ALGORITHMS,
    patterns: tuple[str, ...] = PAPER_PATTERNS,
) -> str:
    """The bar heights of Figure 6g."""
    rows = []
    for pat in patterns:
        row = [pat]
        for algo in algorithms:
            sweep = result.sweeps.get((pat, algo))
            row.append(f"{sweep.saturation_rate:.2f}" if sweep else "-")
        rows.append(row)
    return format_table(
        ["pattern", *algorithms],
        rows,
        title=f"Figure 6g: achieved throughput (flits/cycle/terminal) "
        f"[{result.scale} scale]",
    )
