"""Section 5.4 artifact: routing-table geometry per algorithm.

"When using routing tables to implement routing algorithms, the silicon
area overhead is proportional to the routing table size (both in depth and
width).  Non-deterministic routing algorithms require wider tables based on
the number of options given to each entry.  Advanced routing architectures
(e.g., Cray Aries, Gen-Z) have size optimized tables where the area and
power overhead of the tables is negligible because the depth of the tables
is greatly reduced."

The driver compiles the table-expressible algorithms on a small HyperX to
measure their real option counts, then reports full vs size-optimized table
geometry for both that network and the paper's 8x8x8 configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import format_table
from ..core.registry import make_algorithm
from ..core.tables import (
    CompiledTables,
    TableGeometry,
    compile_tables,
    full_table_geometry,
    optimized_table_geometry,
)
from ..topology.hyperx import HyperX, paper_hyperx

TABLE_ALGORITHMS = ("DOR", "MIN-AD", "DimWAR", "OmniWAR")


@dataclass
class TableAreaResult:
    #: (algorithm, network, style) -> geometry
    geometries: dict[tuple[str, str, str], TableGeometry] = field(
        default_factory=dict
    )


def run(
    algorithms: tuple[str, ...] = TABLE_ALGORITHMS,
    small: HyperX | None = None,
) -> TableAreaResult:
    small = small or HyperX((3, 3, 3), 2)
    big = paper_hyperx()
    result = TableAreaResult()
    for name in algorithms:
        algo_small = make_algorithm(name, small)
        compiled = compile_tables(small, algo_small)
        result.geometries[(name, "small", "full")] = full_table_geometry(
            small, algo_small, compiled
        )
        result.geometries[(name, "small", "size-optimized")] = (
            optimized_table_geometry(small, algo_small, compiled)
        )
        # The paper network's geometry: option counts scale with width, so
        # recompute them from the big topology's per-dimension structure
        # without compiling 512-router tables.
        algo_big = make_algorithm(name, big)
        synthetic = CompiledTables(big, name, algo_big.num_classes)
        scale = {"DOR": 1, "MIN-AD": 3}.get(name)
        if scale is None:
            # adaptive with deroutes: min hop per unaligned dim + deroutes
            n, w = big.num_dims, big.widths[0]
            if name == "DimWAR":
                opts = 1 + (w - 2)  # current dim: minimal + deroutes
            else:  # OmniWAR
                opts = n * (w - 1)  # every unaligned dim, every coord
            scale = opts
        synthetic.tables[0][(1, -1)] = tuple([None] * scale)  # width only
        result.geometries[(name, "paper", "full")] = full_table_geometry(
            big, algo_big, synthetic
        )
        result.geometries[(name, "paper", "size-optimized")] = (
            optimized_table_geometry(big, algo_big, synthetic)
        )
    return result


def render(result: TableAreaResult) -> str:
    rows = []
    for (name, net, style), g in sorted(result.geometries.items()):
        rows.append(
            [
                name,
                net,
                style,
                g.depth,
                g.options_per_entry,
                g.width_bits,
                g.total_bits,
            ]
        )
    return format_table(
        ["algorithm", "network", "table style", "depth", "options/entry",
         "width (bits)", "total bits"],
        rows,
        title="Section 5.4: routing-table geometry (area ~ depth x width)",
    )
