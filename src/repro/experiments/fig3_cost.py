"""Figure 3: Dragonfly cabling cost relative to HyperX.

Regenerates the relative-cost curves per system size and cable technology.
Expected shape (Section 3.1): Dragonfly ~10% cheaper at large scale with
copper+AOC at modern signaling rates; HyperX lower or equal with passive
optical cables.
"""

from __future__ import annotations

from ..analysis.report import format_table
from ..cost.model import CostPoint, figure3_points


def run(target_sizes: list[int] | None = None) -> list[CostPoint]:
    return figure3_points(target_sizes)


def render(points: list[CostPoint]) -> str:
    rows = [
        [
            p.target_nodes,
            p.technology,
            p.hyperx_nodes,
            p.dragonfly_nodes,
            f"{p.hyperx_cost_per_node:.1f}",
            f"{p.dragonfly_cost_per_node:.1f}",
            f"{p.relative_cost:.3f}",
        ]
        for p in points
    ]
    return format_table(
        [
            "target nodes",
            "technology",
            "HX nodes",
            "DF nodes",
            "HX $/node",
            "DF $/node",
            "DF/HX",
        ],
        rows,
        title="Figure 3: Dragonfly cost relative to HyperX",
    )
