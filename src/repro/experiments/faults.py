"""Fault transient: how does routing respond to mid-run link/router failure?

The robustness counterpart of the pattern-switch transient
(:mod:`repro.experiments.transient`): inject uniform-random traffic, fail
``k`` links (and optionally routers) at a known cycle via a
:class:`~repro.faults.inject.FaultInjector`, and record windowed mean
latency and deroute rate.  A fault-tolerant adaptive algorithm should
(a) deliver every packet — including the ones mid-flight when the links die
— and (b) settle at a stable post-fault latency; the settling time *is* the
recovery transient.  DOR, with only a fallback deroute class, either
recovers or reports unreachable pairs via
:class:`~repro.core.base.NoRouteError` (captured in ``routing_error``) —
never hangs.

Randomly sampled fault sets preserve connectivity by construction
(:func:`repro.faults.model.random_faults`), so 100% delivery is the
expected outcome for the weighted-adaptive algorithms; see docs/FAULTS.md
for the worked example and EXPERIMENTS.md for measured numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..analysis.report import format_table
from ..core.base import NoRouteError
from ..core.registry import make_algorithm
from ..faults.degraded import DegradedTopology
from ..faults.inject import FaultInjector
from ..faults.model import FaultSchedule, random_faults
from ..network.network import Network
from ..network.simulator import Simulator
from ..network.stats import PacketStats
from ..network.telemetry import TelemetryProbe
from ..traffic.injection import SyntheticTraffic
from ..traffic.patterns import UniformRandom, UniformRandomSubset
from .common import Scale, get_scale
from .transient import TransientSeries

if TYPE_CHECKING:  # pragma: no cover
    from ..obs import TraceOptions


@dataclass
class FaultTransientResult:
    """Outcome of one fault-transient run."""

    algorithm: str
    scale: str
    fail_links: int
    fail_routers: int
    fault_cycle: int
    series: TransientSeries
    injected_packets: int
    delivered_packets: int
    drained: bool
    routing_error: str | None = None
    fault_counters: dict[str, int] = field(default_factory=dict)

    @property
    def delivered_fraction(self) -> float:
        if self.injected_packets == 0:
            return float("nan")
        return self.delivered_packets / self.injected_packets

    def settling_time(self, tolerance: float = 1.3) -> int | None:
        """Cycles from the fault event to latency settling (None = never)."""
        return self.series.settling_time(tolerance)


def run_fault_transient(
    algorithm: str,
    scale: str | Scale = "smoke",
    rate: float = 0.2,
    window: int = 250,
    pre_windows: int = 4,
    post_windows: int = 10,
    fail_links: int = 2,
    fail_routers: int = 0,
    fault_seed: int = 7,
    seed: int = 4,
    schedule: FaultSchedule | None = None,
    topology=None,
    check: bool = False,
    trace: "TraceOptions | None" = None,
) -> FaultTransientResult:
    """Run one algorithm through a mid-run fault injection.

    Faults fire at ``pre_windows * window`` cycles.  When ``schedule`` is
    None, ``fail_links`` link failures and ``fail_routers`` router failures
    are sampled with :func:`~repro.faults.model.random_faults` (connectivity
    preserved).  ``topology`` overrides the scale's topology (used by the
    docs' 8x8 example).  Traffic is uniform random over the terminals of
    surviving routers — terminals of scheduled-to-fail routers are excluded
    from generation so the delivered fraction measures *routing*, not
    endpoint loss.

    ``check`` attaches the :class:`repro.check.Sanitizer` for the whole run —
    including the fault event and the drain, the paths the sanitizer's
    credit-reconciliation and conservation checks were built to cover.

    ``trace`` (a :class:`repro.obs.TraceOptions`) attaches the lifecycle
    tracer across the fault event and the drain — the degraded-mode
    transient is exactly where per-packet visibility matters.  With
    ``trace.out_dir`` set the stream is exported as
    ``trace_fault_<algorithm>_<scale>.jsonl`` (plus Chrome trace JSON when
    ``trace.chrome``).
    """
    sc = get_scale(scale)
    base = topology if topology is not None else sc.topology()
    topo = DegradedTopology(base)  # faults arrive via the schedule
    algo = make_algorithm(algorithm, topo)
    if not algo.fault_aware:
        raise ValueError(f"{algorithm} is not fault-aware; see docs/FAULTS.md")
    net = Network(topo, algo, sc.sim_config())
    sim = Simulator(net)
    sanitizer = None
    if check:
        from ..check.sanitizer import Sanitizer

        sanitizer = Sanitizer(sim).attach()
    tracer = sampler = None
    if trace is not None:
        from ..obs import TimeSeriesSampler, Tracer

        tracer = Tracer(sim, trace).attach()
        if trace.window:
            sampler = TimeSeriesSampler(sim, window=trace.window).attach()
    fault_cycle = pre_windows * window
    total = (pre_windows + post_windows) * window

    if schedule is None:
        fset = random_faults(
            base, links=fail_links, routers=fail_routers, seed=fault_seed
        )
        schedule = FaultSchedule.from_faultset(fset, cycle=fault_cycle)
    else:
        # Report what the supplied schedule actually contains, not the
        # (ignored) random-sample knobs.
        fail_links = sum(1 for e in schedule.events if e.kind == "link")
        fail_routers = len(schedule.failed_router_ids())
    doomed_routers = schedule.failed_router_ids()
    if doomed_routers:
        tpr = base.num_terminals // base.num_routers
        alive = [
            t for t in range(base.num_terminals) if t // tpr not in doomed_routers
        ]
        pattern = UniformRandomSubset(base.num_terminals, alive)
        traffic = SyntheticTraffic(net, pattern, rate, seed=seed, sources=alive)
    else:
        traffic = SyntheticTraffic(net, UniformRandom(base.num_terminals), rate, seed=seed)
    injector = FaultInjector(net, schedule)
    sim.processes.append(injector)
    sim.processes.append(traffic)
    stats = PacketStats()
    for t in net.terminals:
        t.delivery_listeners.append(stats.on_delivery)
    probe = TelemetryProbe(net)

    drained = False
    routing_error: str | None = None
    try:
        sim.run(total)
        traffic.stop()
        drained = sim.drain(max_cycles=1_000_000)
    except NoRouteError as e:
        routing_error = str(e)
        traffic.stop()
    if sanitizer is not None:
        # After a clean drain every credit must be home and every output VC
        # released; after a NoRouteError the network holds stranded traffic,
        # so only the always-true invariants are audited.
        sanitizer.final_check(
            require_quiescent=drained and routing_error is None
        )
        sanitizer.detach()
    if tracer is not None:
        if sampler is not None:
            sampler.finalize(sim.cycle)
            sampler.detach()
        tracer.detach()
        if trace.out_dir:
            from ..obs.export import write_point_trace

            stem = f"trace_fault_{algorithm}_{sc.name}"
            write_point_trace(tracer, sampler, trace.out_dir, stem)

    series = TransientSeries(
        algorithm=algorithm, window=window, switch_cycle=fault_cycle
    )
    for start in range(0, total, window):
        bucket = [
            s for s in stats.samples if start <= s.create_cycle < start + window
        ]
        if bucket:
            lat = sum(s.latency for s in bucket) / len(bucket)
            der = sum(s.deroutes for s in bucket) / len(bucket)
        else:
            lat, der = float("nan"), float("nan")
        series.windows.append((start, lat, der, len(bucket)))

    return FaultTransientResult(
        algorithm=algorithm,
        scale=sc.name,
        fail_links=fail_links,
        fail_routers=fail_routers,
        fault_cycle=fault_cycle,
        series=series,
        injected_packets=traffic.packets_generated,
        delivered_packets=stats.packets_delivered,
        drained=drained,
        routing_error=routing_error,
        fault_counters=probe.fault_counters(),
    )


def run(
    algorithms: tuple[str, ...] = ("DOR", "DimWAR", "OmniWAR"),
    scale: str | Scale = "smoke",
    **kwargs,
) -> dict[str, FaultTransientResult]:
    """Run the fault transient for several algorithms (CLI entry point)."""
    return {name: run_fault_transient(name, scale, **kwargs) for name in algorithms}


def render(results: dict[str, FaultTransientResult]) -> str:
    rows = []
    for name, res in results.items():
        st = res.settling_time()
        if res.routing_error is not None:
            outcome = "unreachable reported"
        elif res.drained and res.delivered_packets == res.injected_packets:
            outcome = "delivered all"
        else:
            outcome = "incomplete"
        rows.append(
            [
                name,
                f"{res.fail_links}L+{res.fail_routers}R",
                f"{res.delivered_fraction:.4f}",
                str(st) if st is not None else "did not settle",
                str(res.fault_counters.get("masked_candidates", 0)),
                str(res.fault_counters.get("revoked_routes", 0)),
                outcome,
            ]
        )
    header = format_table(
        [
            "algorithm",
            "faults",
            "delivered frac",
            "settling (cycles)",
            "masked cands",
            "revoked",
            "outcome",
        ],
        rows,
        title="Fault transient: mid-run link/router failure",
    )
    detail_rows = []
    for name, res in results.items():
        for start, lat, der, n in res.series.windows:
            mark = "<- fault" if start == res.fault_cycle else ""
            detail_rows.append([name, start, f"{lat:.1f}", f"{der:.2f}", n, mark])
    detail = format_table(
        ["algorithm", "window start", "mean latency", "deroutes/pkt", "packets", ""],
        detail_rows,
    )
    return header + "\n\n" + detail
