"""Figure 2: scalability of low-diameter networks.

Regenerates the max-nodes-vs-router-radix series for HyperX 2/3/4D,
Dragonfly, fat tree, SlimFly, and HyperCube, including the paper's quoted
64-port data points (10,648 / 78,608 / 463,736 nodes for HyperX 2/3/4D).
"""

from __future__ import annotations

from ..analysis.report import format_table
from ..topology.scalability import ScalePoint, figure2_table


def run(radices: list[int] | None = None) -> list[ScalePoint]:
    return figure2_table(radices)


def render(points: list[ScalePoint]) -> str:
    rows = [
        [p.radix, p.topology, p.diameter, p.nodes, p.detail] for p in points
    ]
    return format_table(
        ["radix", "topology", "diameter", "max nodes", "configuration"],
        rows,
        title="Figure 2: scalability of low-diameter networks",
    )
