"""The Figure 3 cabling-cost model: packaging, technologies, comparison."""

from .model import CostPoint, figure3_points, size_dragonfly, size_hyperx
from .packaging import CableInventory, dragonfly_inventory, hyperx_inventory
from .technologies import (
    ELECTRICAL_REACH_M,
    CableTechnology,
    ElectricalAoc,
    PassiveOptical,
    paper_technologies,
)

__all__ = [
    "figure3_points",
    "CostPoint",
    "size_hyperx",
    "size_dragonfly",
    "CableInventory",
    "hyperx_inventory",
    "dragonfly_inventory",
    "CableTechnology",
    "ElectricalAoc",
    "PassiveOptical",
    "paper_technologies",
    "ELECTRICAL_REACH_M",
]
