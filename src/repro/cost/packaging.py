"""Physical packaging models: cable inventories with lengths.

"For this we calculated the length of every cable in each of these networks
based on common physical dimensions and placement" (Section 3.1).  We do the
same with explicit machine-room geometry:

* racks are 0.6 m wide, arranged in rows with 1.5 m aisle pitch,
* a cable between racks runs Manhattan distance plus a 2 m in-rack vertical
  overhead; cables within one rack are 1 m,
* **HyperX (3-D)**: dimension 1 is packaged inside a rack (a full X line per
  rack), dimension 2 connects the racks of a row, dimension 3 connects rows —
  the paper's "each dimension can be individually augmented to fit within a
  physical packaging domain",
* **Dragonfly**: one group per rack; local cables stay in the rack, each
  group pair is joined by one global cable between their racks (row-major
  rack placement, the standard layout of the 2008 cost model).

The inventory is a histogram ``length -> cable count`` (undirected physical
cables), which the cost model prices under each technology.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

RACK_WIDTH_M = 0.6
ROW_PITCH_M = 1.5
IN_RACK_M = 1.0
RACK_OVERHEAD_M = 2.0
RACKS_PER_ROW = 16


def rack_distance_m(rack_a: tuple[int, int], rack_b: tuple[int, int]) -> float:
    """Cable length between two racks at (row, column) grid positions."""
    (ra, ca), (rb, cb) = rack_a, rack_b
    if rack_a == rack_b:
        return IN_RACK_M
    return (
        abs(ca - cb) * RACK_WIDTH_M
        + abs(ra - rb) * ROW_PITCH_M
        + RACK_OVERHEAD_M
    )


@dataclass
class CableInventory:
    """Histogram of physical cables by length."""

    lengths: Counter

    def __init__(self) -> None:
        self.lengths = Counter()

    def add(self, length_m: float, count: int = 1) -> None:
        if length_m <= 0 or count < 1:
            raise ValueError("cables have positive length and count")
        self.lengths[round(length_m, 3)] += count

    @property
    def num_cables(self) -> int:
        return sum(self.lengths.values())

    @property
    def total_length_m(self) -> float:
        return sum(length * n for length, n in self.lengths.items())


def hyperx_inventory(
    widths: tuple[int, int, int], terminals_per_router: int,
    include_terminal_cables: bool = False,
) -> CableInventory:
    """Cable inventory of a 3-D HyperX packaged per the paper's scheme.

    Rack (x2, x3) holds the X-line of ``w1`` routers; racks of equal ``x3``
    form a row.
    """
    w1, w2, w3 = widths
    inv = CableInventory()
    # dim 1: inside every rack, a full crossbar of the X line
    inv.add(IN_RACK_M, (w1 * (w1 - 1) // 2) * w2 * w3)
    # dim 2: between rack columns of one row, w1 cables per router pair
    for a in range(w2):
        for b in range(a + 1, w2):
            d = rack_distance_m((0, a), (0, b))
            inv.add(d, w1 * w3)
    # dim 3: between rows, same column; w1 cables per router pair
    for a in range(w3):
        for b in range(a + 1, w3):
            d = rack_distance_m((a, 0), (b, 0))
            inv.add(d, w1 * w2)
    if include_terminal_cables:
        inv.add(IN_RACK_M, w1 * w2 * w3 * terminals_per_router)
    return inv


def dragonfly_inventory(
    p: int, a: int, h: int, include_terminal_cables: bool = False
) -> CableInventory:
    """Cable inventory of a maximum-size Dragonfly, one group per rack."""
    g = a * h + 1
    inv = CableInventory()
    # local: full crossbar inside each rack
    inv.add(IN_RACK_M, (a * (a - 1) // 2) * g)
    # global: one cable per group pair; racks laid out row-major
    def pos(group: int) -> tuple[int, int]:
        return (group // RACKS_PER_ROW, group % RACKS_PER_ROW)

    for ga in range(g):
        for gb in range(ga + 1, g):
            inv.add(rack_distance_m(pos(ga), pos(gb)))
    if include_terminal_cables:
        inv.add(IN_RACK_M, g * a * p)
    return inv
