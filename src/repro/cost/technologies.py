"""Cable technologies and price curves (Figure 3).

The paper's cost analysis compares two cabling regimes:

* **Electrical + AOC** — direct-attach copper up to the reach limit of the
  signaling rate (the paper quotes 8 m at 2.5 GHz, 5 m at 10 GHz, 3 m at
  25 GHz, 2 m at 50 GHz, 1 m at 100 GHz), active optical cables beyond.
  AOCs carry two transceivers, so their cost is dominated by a large
  per-cable constant.
* **Passive optical** — co-packaged/integrated photonics drive cheap passive
  fiber directly; cost is a small constant plus a small per-meter term.

The paper's absolute prices come from confidential vendor quotes; these
constants are representative public-shape values (a DAC is cheap, an AOC
costs several times a DAC, passive fiber is the cheapest per cable), and the
analysis reports *relative* Dragonfly/HyperX cost as the paper does, which
is insensitive to uniform price scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

#: electrical reach in meters by signaling rate in GHz (Section 3.1)
ELECTRICAL_REACH_M: dict[float, float] = {
    2.5: 8.0,
    10.0: 5.0,
    25.0: 3.0,
    50.0: 2.0,
    100.0: 1.0,
}


@dataclass(frozen=True)
class CableTechnology:
    """A cabling regime: prices a cable of a given length."""

    name: str

    def cable_cost(self, length_m: float) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ElectricalAoc(CableTechnology):
    """DAC below the electrical reach, AOC above it."""

    reach_m: float = 3.0  # 25 GHz default
    dac_base: float = 10.0
    dac_per_m: float = 5.0
    aoc_base: float = 60.0
    aoc_per_m: float = 12.0

    def cable_cost(self, length_m: float) -> float:
        if length_m <= 0:
            raise ValueError("cable length must be positive")
        if length_m <= self.reach_m:
            return self.dac_base + self.dac_per_m * length_m
        return self.aoc_base + self.aoc_per_m * length_m

    @staticmethod
    def at_rate(rate_ghz: float) -> "ElectricalAoc":
        try:
            reach = ELECTRICAL_REACH_M[rate_ghz]
        except KeyError:
            raise ValueError(
                f"unknown signaling rate {rate_ghz}; choose from "
                f"{sorted(ELECTRICAL_REACH_M)}"
            ) from None
        return ElectricalAoc(name=f"DAC/AOC@{rate_ghz:g}GHz", reach_m=reach)


@dataclass(frozen=True)
class PassiveOptical(CableTechnology):
    """Passive fiber driven by co-packaged photonics."""

    base: float = 12.0
    per_m: float = 1.0

    def cable_cost(self, length_m: float) -> float:
        if length_m <= 0:
            raise ValueError("cable length must be positive")
        return self.base + self.per_m * length_m


def paper_technologies() -> list[CableTechnology]:
    """The Figure 3 technology line-up."""
    return [ElectricalAoc.at_rate(r) for r in (2.5, 10.0, 25.0, 50.0, 100.0)] + [
        PassiveOptical(name="passive-optical")
    ]
