"""The Figure 3 cost comparison: Dragonfly cost relative to HyperX.

For a range of target system sizes, size a balanced 3-D HyperX (widths
``w x w x w`` with ``T = w`` terminals per router — the paper's 50%-bisection
proportions, 8x8x8xT8 at 4,096 nodes) and a balanced Dragonfly
(``a = 2p = 2h``, maximum size) with at least that many nodes, price every
cable under each technology, and report the ratio

    relative_cost = dragonfly_$_per_node / hyperx_$_per_node

(the paper's Figure 3 y-axis).  The headline results being reproduced:
with copper + AOC at modern signaling rates the Dragonfly is ~10% cheaper
at large scale; with passive optical cables the HyperX is always lower or
equal in cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from .packaging import CableInventory, dragonfly_inventory, hyperx_inventory
from .technologies import CableTechnology, paper_technologies


@dataclass(frozen=True)
class SizedHyperX:
    width: int

    @property
    def nodes(self) -> int:
        return self.width**4  # w^3 routers x T = w terminals

    @property
    def radix(self) -> int:
        return 3 * (self.width - 1) + self.width


@dataclass(frozen=True)
class SizedDragonfly:
    h: int

    @property
    def a(self) -> int:
        return 2 * self.h

    @property
    def p(self) -> int:
        return self.h

    @property
    def groups(self) -> int:
        return self.a * self.h + 1

    @property
    def nodes(self) -> int:
        return self.groups * self.a * self.p

    @property
    def radix(self) -> int:
        return 4 * self.h - 1


def size_hyperx(target_nodes: int) -> SizedHyperX:
    """Smallest balanced 3-D HyperX with at least ``target_nodes``."""
    w = 2
    while SizedHyperX(w).nodes < target_nodes:
        w += 1
    return SizedHyperX(w)


def size_dragonfly(target_nodes: int) -> SizedDragonfly:
    """Smallest balanced Dragonfly with at least ``target_nodes``."""
    h = 1
    while SizedDragonfly(h).nodes < target_nodes:
        h += 1
    return SizedDragonfly(h)


def inventory_cost(inv: CableInventory, tech: CableTechnology) -> float:
    return sum(tech.cable_cost(length) * n for length, n in inv.lengths.items())


@dataclass
class CostPoint:
    target_nodes: int
    technology: str
    hyperx_nodes: int
    dragonfly_nodes: int
    hyperx_cost_per_node: float
    dragonfly_cost_per_node: float

    @property
    def relative_cost(self) -> float:
        """Dragonfly cost relative to HyperX (Figure 3 y-axis)."""
        return self.dragonfly_cost_per_node / self.hyperx_cost_per_node


def figure3_points(
    target_sizes: list[int] | None = None,
    technologies: list[CableTechnology] | None = None,
) -> list[CostPoint]:
    """Compute the Figure 3 grid: relative cost per size per technology."""
    target_sizes = target_sizes or [1024, 4096, 16384, 65536, 262144]
    technologies = technologies or paper_technologies()
    out = []
    for n in target_sizes:
        hx = size_hyperx(n)
        df = size_dragonfly(n)
        hx_inv = hyperx_inventory((hx.width,) * 3, hx.width)
        df_inv = dragonfly_inventory(df.p, df.a, df.h)
        for tech in technologies:
            out.append(
                CostPoint(
                    target_nodes=n,
                    technology=tech.name,
                    hyperx_nodes=hx.nodes,
                    dragonfly_nodes=df.nodes,
                    hyperx_cost_per_node=inventory_cost(hx_inv, tech) / hx.nodes,
                    dragonfly_cost_per_node=inventory_cost(df_inv, tech) / df.nodes,
                )
            )
    return out
