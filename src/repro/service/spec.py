"""Sweep-request schema: validation, canonical form, and content hashing.

A service client describes a sweep as plain JSON — topology widths,
algorithm, pattern, rate ladder, cycle budget, seed, and an optional
declarative fault list — and the service turns it into the exact
:class:`~repro.analysis.parallel.PointSpec` list a direct
:func:`~repro.analysis.sweep.sweep_load` call would build.  Two invariants
make the service honest:

* **canonical form** — two requests describing the same sweep serialize
  identically (rates sorted the way ``sweep_load`` sorts them, defaults
  expanded, faults normalized to ``[class-name, field-dict]`` pairs), so
  the SHA-256 :func:`request_key` is a true content address.  The key is
  the job id: resubmitting the same sweep *is* the same job.
* **validation by construction** — :func:`build_request` actually builds
  the topology/algorithm/pattern (and rejects unknown keys), so every
  request that enters the queue is one the workers can execute.

Example::

    >>> from repro.service.spec import build_request, request_key
    >>> req = build_request({"widths": [2, 2], "rates": [0.2, 0.1]})
    >>> req.rates            # canonical: sorted ascending, like sweep_load
    (0.1, 0.2)
    >>> len(request_key(req))
    64
    >>> reordered = build_request({"rates": [0.1, 0.2], "widths": [2, 2]})
    >>> request_key(reordered) == request_key(req)
    True
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from ..faults.model import DegradedLink, LinkFault, RouterFault

#: fault classes a request may name, keyed by their canonical spelling
FAULT_CLASSES = {
    "LinkFault": LinkFault,
    "RouterFault": RouterFault,
    "DegradedLink": DegradedLink,
}

#: request fields and their defaults — also the schema whitelist
REQUEST_FIELDS = (
    "widths", "terminals_per_router", "algorithm", "pattern", "rates",
    "total_cycles", "seed", "stop_after_unstable", "faults",
)


@dataclass(frozen=True)
class SweepRequest:
    """One validated, canonical sweep-job description."""

    widths: tuple[int, ...]
    terminals_per_router: int = 1
    algorithm: str = "DimWAR"
    pattern: str = "UR"
    rates: tuple[float, ...] = (0.1, 0.2, 0.3)
    total_cycles: int = 2000
    seed: int = 1
    stop_after_unstable: bool = True
    #: declarative faults, already parsed to frozen fault objects
    faults: tuple = field(default=())

    def canonical(self) -> dict:
        """The JSON-able canonical form — the :func:`request_key` preimage."""
        return {
            "widths": list(self.widths),
            "terminals_per_router": self.terminals_per_router,
            "algorithm": self.algorithm,
            "pattern": self.pattern,
            "rates": list(self.rates),
            "total_cycles": self.total_cycles,
            "seed": self.seed,
            "stop_after_unstable": self.stop_after_unstable,
            "faults": [
                [type(f).__name__, _fault_fields(f)] for f in self.faults
            ],
        }


def _fault_fields(fault) -> dict:
    from dataclasses import asdict

    return dict(sorted(asdict(fault).items()))


def _parse_faults(raw: Any) -> tuple:
    if not isinstance(raw, (list, tuple)):
        raise ValueError("faults must be a list of [class-name, fields] pairs")
    faults = []
    for i, entry in enumerate(raw):
        try:
            name, fields = entry
            cls = FAULT_CLASSES[name]
            faults.append(cls(**{k: int(v) for k, v in fields.items()}))
        except KeyError:
            raise ValueError(
                f"fault #{i}: unknown class {entry[0]!r}; "
                f"choose from {sorted(FAULT_CLASSES)}"
            ) from None
        except (TypeError, ValueError) as exc:
            raise ValueError(f"fault #{i}: {exc}") from None
    return tuple(faults)


def build_request(raw: dict) -> SweepRequest:
    """Validate a raw JSON request dict into a canonical SweepRequest.

    Raises ``ValueError`` on unknown keys, malformed fields, or any
    combination the simulator cannot execute (unknown algorithm/pattern,
    bad widths, faults that disconnect the network) — the 400 path of the
    service.  Validation is *by construction*: the topology, algorithm,
    pattern, and point specs are actually built, so acceptance here means
    the queue runner cannot fail on reconstruction later.
    """
    if not isinstance(raw, dict):
        raise ValueError("request body must be a JSON object")
    unknown = sorted(set(raw) - set(REQUEST_FIELDS))
    if unknown:
        raise ValueError(
            f"unknown request field(s) {unknown}; "
            f"allowed: {sorted(REQUEST_FIELDS)}"
        )
    try:
        widths = tuple(int(w) for w in raw.get("widths", ()))
        rates = tuple(
            sorted(float(r) for r in raw.get("rates", (0.1, 0.2, 0.3)))
        )
        req = SweepRequest(
            widths=widths,
            terminals_per_router=int(raw.get("terminals_per_router", 1)),
            algorithm=str(raw.get("algorithm", "DimWAR")),
            pattern=str(raw.get("pattern", "UR")),
            rates=rates,
            total_cycles=int(raw.get("total_cycles", 2000)),
            seed=int(raw.get("seed", 1)),
            stop_after_unstable=bool(raw.get("stop_after_unstable", True)),
            faults=_parse_faults(raw.get("faults", ())),
        )
    except (TypeError, ValueError) as exc:
        raise ValueError(f"malformed request: {exc}") from None
    if not req.rates:
        raise ValueError("rates must be a non-empty list of offered loads")
    if any(r <= 0 for r in req.rates):
        raise ValueError("rates must be positive offered loads")
    if req.total_cycles < 10:
        raise ValueError("total_cycles must be >= 10")
    build_specs(req)  # validate by construction; result discarded
    return req


def build_scenario(req: SweepRequest) -> tuple:
    """Fresh live ``(topology, algorithm, pattern)`` objects for ``req`` —
    exactly what a direct :func:`~repro.analysis.sweep.sweep_load` caller
    would construct by hand."""
    from ..core.registry import make_algorithm
    from ..faults.degraded import DegradedTopology
    from ..faults.model import FaultSet
    from ..topology.hyperx import HyperX
    from ..traffic.patterns import pattern_by_name

    topo = HyperX(req.widths, req.terminals_per_router)
    if req.faults:
        topo = DegradedTopology(topo, FaultSet(list(req.faults)))
    algo = make_algorithm(req.algorithm, topo)
    patt = pattern_by_name(req.pattern, topo)
    return topo, algo, patt


def build_specs(req: SweepRequest) -> list:
    """The :class:`~repro.analysis.parallel.PointSpec` list for ``req`` —
    the same specs a direct ``sweep_load(..., workers=N)`` call builds."""
    from ..analysis.parallel import point_specs

    topo, algo, patt = build_scenario(req)
    return point_specs(
        topo, algo, patt, list(req.rates),
        total_cycles=req.total_cycles, seed=req.seed,
    )


def request_key(req: SweepRequest) -> str:
    """SHA-256 content address of a canonical request (the job id)."""
    preimage = json.dumps(
        req.canonical(), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(preimage.encode("utf-8")).hexdigest()
