"""Sweep-farm experiment service: HTTP API, job queue, shared result cache.

The paper's evaluation is sweep campaigns — load-latency curves and
saturation ladders over (topology, algorithm, pattern, load, seed) grids —
and every one of those points is deterministic: a canonical spec fixes its
result byte-for-byte.  This package turns that determinism into a
long-running experiment service: clients submit sweep jobs over HTTP, an
async job queue fans the points over the
:mod:`repro.analysis.parallel` ProcessPool workers, and the disk-backed
:class:`~repro.analysis.memo.SweepMemo` acts as a shared content-addressed
result cache, so repeated queries — the "millions of users" path — are
answered without simulating anything.

Layout:

* :mod:`repro.service.spec` — request schema, canonical form, content hash
  (the job id *is* the SHA-256 of the canonical request);
* :mod:`repro.service.jobs` — the queued/running/done/failed/cancelled
  state machine, the JSONL job log that survives restarts, and the queue
  runner;
* :mod:`repro.service.ratelimit` — per-client token buckets (429s);
* :mod:`repro.service.server` — the stdlib ``ThreadingHTTPServer`` front
  end and its endpoint/error contract.

Run it with ``python -m repro serve`` (docs/SERVICE.md documents the API);
the ``service-vs-direct`` oracle in ``python -m repro check`` proves the
curves it serves are byte-identical to direct
:func:`~repro.analysis.sweep.sweep_load` calls for any worker count.
"""

from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    LEGAL_TRANSITIONS,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL,
    Job,
    JobCancelled,
    JobQueue,
    JobStore,
    QueueFull,
    TransitionError,
)
from .ratelimit import RateLimiter, TokenBucket
from .server import ExperimentService, ServiceHandler
from .spec import SweepRequest, build_request, build_specs, request_key

__all__ = [
    "ExperimentService",
    "ServiceHandler",
    "SweepRequest",
    "build_request",
    "build_specs",
    "request_key",
    "Job",
    "JobStore",
    "JobQueue",
    "JobCancelled",
    "QueueFull",
    "TransitionError",
    "RateLimiter",
    "TokenBucket",
    "STATES",
    "TERMINAL",
    "LEGAL_TRANSITIONS",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
]
