"""Job state machine, JSONL-persisted store, and the async queue runner.

A *job* is one content-addressed sweep request moving through a small,
strictly-enforced state machine::

    queued ──▶ running ──▶ done
      │           │  └───▶ failed ──▶ queued   (resubmission retries)
      │           └──────▶ cancelled ──▶ queued (resubmission retries)
      └──────────────────▶ cancelled

``done`` is fully terminal — resubmitting a done job returns its cached
result; resubmitting a failed or cancelled one requeues the *same* job id
(the content hash), so a sweep is one job forever.  Every mutation appends
one JSON line to the job log, and replaying the log through the same
transition rules reconstructs the same states — that is what lets the
service restart without losing its history (interrupted ``running`` jobs
are failed-then-requeued on recovery).

The :class:`JobQueue` is the async half: a bounded single-consumer queue
whose runner thread executes jobs one at a time, fanning each sweep's
points over the :mod:`repro.analysis.parallel` ProcessPool workers with
the shared :class:`~repro.analysis.memo.SweepMemo` as a content-addressed
result cache.  Cancellation of a running job takes effect at the next
point boundary via the sweep progress callback.

Example::

    >>> from repro.service.jobs import JobStore
    >>> store = JobStore()                      # in-memory (no log file)
    >>> job, created = store.submit("abc", {"widths": [2, 2]})
    >>> (job.state, created)
    ('queued', True)
    >>> store.submit("abc", {"widths": [2, 2]})[1]   # content-addressed
    False
    >>> store.transition("abc", "running").state
    'running'
    >>> store.transition("abc", "done").state
    'done'
    >>> store.cancel("abc").state                    # no-op past terminal
    'done'
"""

from __future__ import annotations

import json
import os
import queue
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.memo import SweepMemo
    from .spec import SweepRequest

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: states with no outgoing transitions except resubmission retries
TERMINAL = frozenset({DONE, FAILED, CANCELLED})

#: every legal (from, to) edge; anything else raises TransitionError
LEGAL_TRANSITIONS = frozenset({
    (QUEUED, RUNNING),
    (QUEUED, CANCELLED),
    (RUNNING, DONE),
    (RUNNING, FAILED),
    (RUNNING, CANCELLED),
    (FAILED, QUEUED),      # resubmission/recovery retry
    (CANCELLED, QUEUED),   # resubmission retry
})

#: job-log storage format version
JOBLOG_SCHEMA = "repro-joblog/1"


class TransitionError(ValueError):
    """An illegal state-machine edge was requested."""


class QueueFull(RuntimeError):
    """The bounded job queue is at capacity (the service's 503)."""


class JobCancelled(Exception):
    """Raised inside the runner when a cancel lands mid-sweep."""


@dataclass
class Job:
    """One content-addressed sweep job and its bookkeeping."""

    job_id: str
    request: dict  # canonical request (spec.SweepRequest.canonical())
    state: str = QUEUED
    seq: int = 0  # submission order (monotonic per store)
    error: str = ""
    #: the exact ``SweepResult.to_json()`` bytes, served verbatim
    result_json: str | None = None
    cancel_requested: bool = False
    #: cache accounting for the finished run
    points_total: int = 0
    points_simulated: int = 0
    memo_hits: int = 0
    runs: int = 0  # times this job entered ``running``

    def snapshot(self) -> dict:
        """The JSON status view (result body excluded — it has its own
        endpoint so polling stays cheap)."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "seq": self.seq,
            "error": self.error,
            "cancel_requested": self.cancel_requested,
            "has_result": self.result_json is not None,
            "points_total": self.points_total,
            "points_simulated": self.points_simulated,
            "memo_hits": self.memo_hits,
            "runs": self.runs,
            "request": self.request,
        }


class JobStore:
    """Thread-safe job table with an append-only JSONL event log.

    Every mutation (submit, state change, cancel request, result
    attachment) appends one event line; :meth:`replay` folds a log back
    into an equivalent store through the *same* transition validation, so
    a log that was legal to write is legal to replay — the property the
    Hypothesis suite pins down.
    """

    def __init__(self, log_path: str | None = None):
        self.log_path = log_path
        self.jobs: dict[str, Job] = {}
        self.lock = threading.RLock()
        self._seq = 0
        self._log_lines: list[str] = []
        if log_path:
            os.makedirs(os.path.dirname(log_path) or ".", exist_ok=True)

    # -- event log -----------------------------------------------------

    def _append(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True, separators=(",", ":"),
                          allow_nan=False)
        self._log_lines.append(line)
        if self.log_path:
            with open(self.log_path, "a") as f:
                f.write(line + "\n")

    def log_lines(self) -> list[str]:
        """The event log so far (also on disk when ``log_path`` is set)."""
        with self.lock:
            return list(self._log_lines)

    # -- mutations (all logged) ----------------------------------------

    def submit(self, job_id: str, request: dict) -> tuple[Job, bool]:
        """Create or revive the job for ``job_id``.

        Returns ``(job, created)``: ``created`` is True when the call
        enqueued work — a brand-new job, or a failed/cancelled one
        requeued.  Resubmitting a queued, running, or done job is a pure
        no-op on the existing job.
        """
        with self.lock:
            job = self.jobs.get(job_id)
            if job is None:
                self._seq += 1
                job = Job(job_id=job_id, request=request, seq=self._seq)
                self.jobs[job_id] = job
                self._append({"event": "submit", "job_id": job_id,
                              "seq": job.seq, "request": request})
                return job, True
            if job.state in (FAILED, CANCELLED):
                self._transition_locked(job, QUEUED)
                return job, True
            return job, False

    def transition(self, job_id: str, state: str, error: str = "") -> Job:
        """Move a job along a legal edge (raises TransitionError else)."""
        with self.lock:
            job = self._get(job_id)
            self._transition_locked(job, state, error)
            return job

    def _transition_locked(self, job: Job, state: str, error: str = "") -> None:
        if state not in STATES:
            raise TransitionError(f"unknown state {state!r}")
        if (job.state, state) not in LEGAL_TRANSITIONS:
            raise TransitionError(
                f"illegal transition {job.state!r} -> {state!r} "
                f"for job {job.job_id[:12]}"
            )
        job.state = state
        job.error = error
        if state == QUEUED:  # revived: the old verdict no longer applies
            job.cancel_requested = False
            job.result_json = None
        if state == RUNNING:
            job.runs += 1
        self._append({"event": "state", "job_id": job.job_id,
                      "state": state, "error": error})

    def request_cancel(self, job_id: str) -> Job:
        """Cancel: queued jobs flip immediately, running jobs get flagged
        (the runner honours it at the next point boundary), terminal jobs
        are untouched — cancel-after-done is a no-op by contract."""
        with self.lock:
            job = self._get(job_id)
            if job.state == QUEUED:
                self._transition_locked(job, CANCELLED)
            elif job.state == RUNNING and not job.cancel_requested:
                job.cancel_requested = True
                self._append({"event": "cancel_requested",
                              "job_id": job_id})
            return job

    # Short public alias used by the HTTP layer and the doctest.
    cancel = request_cancel

    def attach_result(self, job_id: str, result_json: str, *,
                      points_total: int, points_simulated: int,
                      memo_hits: int) -> Job:
        """Record a finished sweep's curve and cache accounting, then
        transition running -> done."""
        with self.lock:
            job = self._get(job_id)
            job.result_json = result_json
            job.points_total = points_total
            job.points_simulated = points_simulated
            job.memo_hits = memo_hits
            self._append({
                "event": "result", "job_id": job_id,
                "points_total": points_total,
                "points_simulated": points_simulated,
                "memo_hits": memo_hits,
                "result_json": result_json,
            })
            self._transition_locked(job, DONE)
            return job

    # -- queries -------------------------------------------------------

    def _get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        return job

    def get(self, job_id: str) -> Job | None:
        with self.lock:
            return self.jobs.get(job_id)

    def by_state(self, state: str) -> list[Job]:
        with self.lock:
            return sorted(
                (j for j in self.jobs.values() if j.state == state),
                key=lambda j: j.seq,
            )

    def ordered(self) -> list[Job]:
        with self.lock:
            return sorted(self.jobs.values(), key=lambda j: j.seq)

    def counts(self) -> dict[str, int]:
        with self.lock:
            out = {s: 0 for s in STATES}
            for j in self.jobs.values():
                out[j.state] += 1
            return out

    # -- persistence ---------------------------------------------------

    @classmethod
    def replay(cls, lines, log_path: str | None = None) -> "JobStore":
        """Fold an event log back into a store via the same rules.

        Unparseable or illegal lines (a torn tail from a crash mid-append)
        stop the replay at the last consistent prefix rather than raising:
        the log is an append-only journal, so everything before a torn
        line is intact by construction.
        """
        store = cls(log_path=None)
        for raw in lines:
            raw = raw.strip()
            if not raw:
                continue
            try:
                ev = json.loads(raw)
                kind = ev["event"]
                if kind == "submit":
                    store._seq = max(store._seq, int(ev["seq"]) - 1)
                    store.submit(ev["job_id"], ev["request"])
                elif kind == "state":
                    store.transition(ev["job_id"], ev["state"],
                                     ev.get("error", ""))
                elif kind == "cancel_requested":
                    job = store._get(ev["job_id"])
                    job.cancel_requested = True
                elif kind == "result":
                    job = store._get(ev["job_id"])
                    job.result_json = ev["result_json"]
                    job.points_total = int(ev["points_total"])
                    job.points_simulated = int(ev["points_simulated"])
                    job.memo_hits = int(ev["memo_hits"])
                else:
                    break
            except (KeyError, ValueError, TransitionError):
                break
        # Replay rebuilt the in-memory lines; now start journaling again.
        store.log_path = log_path
        return store

    @classmethod
    def load(cls, log_path: str) -> "JobStore":
        """Replay ``log_path`` (absent file -> empty store) and resume
        journaling to it."""
        lines: list[str] = []
        try:
            with open(log_path) as f:
                lines = f.readlines()
        except OSError:
            pass
        return cls.replay(lines, log_path=log_path)

    def recover(self) -> list[Job]:
        """Requeue work interrupted by a restart.

        Jobs left ``running`` by a dead process are failed (the honest
        record: that run never finished) and immediately requeued; jobs
        left ``queued`` simply re-enter the queue.  Returns the jobs to
        enqueue, in submission order.
        """
        with self.lock:
            revived = []
            for job in self.ordered():
                if job.state == RUNNING:
                    self._transition_locked(
                        job, FAILED, "interrupted by service restart"
                    )
                    self._transition_locked(job, QUEUED)
                    revived.append(job)
                elif job.state == QUEUED:
                    revived.append(job)
            return revived


class JobQueue:
    """Bounded async queue + single runner thread over the sweep engine.

    One job runs at a time; *within* a job the sweep fans its points over
    ``workers`` ProcessPool processes (see
    :func:`repro.analysis.parallel.run_points`), and the shared ``memo``
    serves previously-measured points without simulation.  The bound is on
    *queued* jobs: :meth:`submit` raises :class:`QueueFull` past
    ``max_depth``, which the HTTP layer maps to 503.
    """

    def __init__(self, store: JobStore, memo: "SweepMemo",
                 workers: int | None = None, max_depth: int = 64):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.store = store
        self.memo = memo
        self.workers = workers
        self.max_depth = max_depth
        self._q: "queue.Queue[str | None]" = queue.Queue()
        self._thread: threading.Thread | None = None
        self.jobs_deduped = 0  # submissions answered by an existing job

    # -- submission ----------------------------------------------------

    def submit(self, req: "SweepRequest") -> tuple[Job, bool]:
        """Content-address ``req`` and enqueue it if it needs running."""
        from .spec import request_key

        with self.store.lock:
            existing = self.store.get(request_key(req))
            adds_depth = existing is None or existing.state in (FAILED,
                                                                CANCELLED)
            if adds_depth and len(self.store.by_state(QUEUED)) >= \
                    self.max_depth:
                raise QueueFull(
                    f"job queue is at capacity ({self.max_depth} queued)"
                )
            job, created = self.store.submit(
                request_key(req), req.canonical()
            )
        if created:
            self._q.put(job.job_id)
        else:
            self.jobs_deduped += 1
        return job, created

    def cancel(self, job_id: str) -> Job:
        return self.store.request_cancel(job_id)

    def depth(self) -> int:
        return len(self.store.by_state(QUEUED))

    # -- runner --------------------------------------------------------

    def start(self) -> "JobQueue":
        """Start the runner thread (idempotent); requeues recovered work."""
        if self._thread is None or not self._thread.is_alive():
            for job in self.store.recover():
                self._q.put(job.job_id)
            self._thread = threading.Thread(
                target=self._run_loop, name="repro-service-runner",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the runner after the in-flight job finishes."""
        if self._thread is not None and self._thread.is_alive():
            self._q.put(None)
            self._thread.join(timeout=timeout)
        self._thread = None

    def join(self, timeout: float = 60.0) -> bool:
        """Block until the queue drains (for tests); True when idle."""
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._q.empty() and not self.store.by_state(RUNNING):
                return True
            time.sleep(0.01)
        return False

    def _run_loop(self) -> None:
        while True:
            job_id = self._q.get()
            if job_id is None:
                return
            job = self.store.get(job_id)
            if job is None or job.state != QUEUED:
                continue  # cancelled (or revived elsewhere) while queued
            if job.cancel_requested:
                self.store.transition(job_id, CANCELLED)
                continue
            self.store.transition(job_id, RUNNING)
            try:
                self._execute(job)
            except JobCancelled:
                self.store.transition(job_id, CANCELLED)
            except Exception as exc:  # noqa: BLE001 - job verdict, not crash
                self.store.transition(
                    job_id, FAILED, f"{type(exc).__name__}: {exc}"
                )

    def _execute(self, job: Job) -> None:
        """Run one sweep exactly as a direct caller would, memo-backed."""
        from ..analysis.sweep import sweep_load
        from .spec import SweepRequest, build_scenario

        req = SweepRequest(
            widths=tuple(job.request["widths"]),
            terminals_per_router=job.request["terminals_per_router"],
            algorithm=job.request["algorithm"],
            pattern=job.request["pattern"],
            rates=tuple(job.request["rates"]),
            total_cycles=job.request["total_cycles"],
            seed=job.request["seed"],
            stop_after_unstable=job.request["stop_after_unstable"],
            faults=_faults_from_canonical(job.request["faults"]),
        )
        topo, algo, patt = build_scenario(req)

        def on_point(i, n, point):
            if job.cancel_requested:
                raise JobCancelled(job.job_id)

        hits0, misses0 = self.memo.hits, self.memo.misses
        sweep = sweep_load(
            topo, algo, patt, list(req.rates),
            stop_after_unstable=req.stop_after_unstable,
            total_cycles=req.total_cycles, seed=req.seed,
            workers=self.workers, memo=self.memo, progress=on_point,
        )
        self.store.attach_result(
            job.job_id, sweep.to_json(),
            points_total=len(sweep.points),
            points_simulated=self.memo.misses - misses0,
            memo_hits=self.memo.hits - hits0,
        )


def _faults_from_canonical(raw) -> tuple:
    from .spec import FAULT_CLASSES

    return tuple(FAULT_CLASSES[name](**fields) for name, fields in raw)
