"""The HTTP experiment service: stdlib server over the job queue.

``ExperimentService`` wires the pieces together — a
:class:`~repro.service.jobs.JobStore` journaled to a JSONL log, a
:class:`~repro.service.jobs.JobQueue` runner fanning sweeps over the
ProcessPool workers, the shared :class:`~repro.analysis.memo.SweepMemo`
result cache, and a per-client
:class:`~repro.service.ratelimit.RateLimiter` — behind a
``ThreadingHTTPServer`` (stdlib only, no new runtime dependencies).

Endpoints (see docs/SERVICE.md for the full schema):

====== ========================= ===========================================
method path                      behaviour
====== ========================= ===========================================
POST   ``/jobs``                 submit a sweep request; 202 new, 200 known
GET    ``/jobs``                 list all jobs (snapshots, submission order)
GET    ``/jobs/<id>``            one job's status snapshot
POST   ``/jobs/<id>/cancel``     cancel (no-op past terminal states)
GET    ``/jobs/<id>/result``     the finished curve — the *exact*
                                 ``SweepResult.to_json()`` bytes
GET    ``/healthz``              liveness (never rate limited)
GET    ``/stats``                queue depth, job counts, memo counters
====== ========================= ===========================================

Error contract: malformed requests are 400 with ``{"error": ...}``;
unknown jobs 404; a result fetched before ``done`` is 409; a throttled
client gets 429 with a ``Retry-After`` header; a full queue gets 503 with
``Retry-After``.  The service never returns a traceback.

The result endpoint's byte-identity with a direct
:func:`~repro.analysis.sweep.sweep_load` call — for any worker count,
faulted specs included — is enforced by the ``service-vs-direct``
differential oracle in ``python -m repro check``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..analysis.memo import SweepMemo
from .jobs import JobQueue, JobStore, QueueFull
from .ratelimit import RateLimiter
from .spec import build_request

#: largest accepted request body; sweeps are small JSON documents
MAX_BODY_BYTES = 1 << 20


class ServiceHandler(BaseHTTPRequestHandler):
    """Request router; one instance per request (stdlib contract)."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    @property
    def service(self) -> "ExperimentService":
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.service.quiet:  # pragma: no cover - console noise
            super().log_message(format, *args)

    def _send_json(self, code: int, payload: dict,
                   headers: dict | None = None) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self._send_body(code, body, headers)

    def _send_body(self, code: int, body: bytes,
                   headers: dict | None = None) -> None:
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for k, v in (headers or {}).items():
            self.send_header(k, v)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str,
               headers: dict | None = None) -> None:
        self._send_json(code, {"error": message}, headers)

    def _client_id(self) -> str:
        return self.headers.get("X-Repro-Client") or self.client_address[0]

    def _throttled(self) -> bool:
        """Apply the per-client token bucket (liveness probes exempt)."""
        wait = self.service.limiter.check(self._client_id())
        if wait > 0:
            self._error(429, "rate limit exceeded; retry later",
                        {"Retry-After": f"{wait:.3f}"})
            return True
        return False

    def _read_body(self) -> bytes | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._error(413, f"request body over {MAX_BODY_BYTES} bytes")
            return None
        return self.rfile.read(length)

    # -- routing -------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, {"status": "ok"})
            return
        if self._throttled():
            return
        if path == "/stats":
            self._send_json(200, self.service.stats())
        elif path == "/jobs":
            self._send_json(200, {
                "jobs": [j.snapshot() for j in self.service.store.ordered()]
            })
        elif path.startswith("/jobs/") and path.endswith("/result"):
            self._get_result(path[len("/jobs/"):-len("/result")])
        elif path.startswith("/jobs/"):
            job = self.service.store.get(path[len("/jobs/"):])
            if job is None:
                self._error(404, "unknown job")
            else:
                self._send_json(200, job.snapshot())
        else:
            self._error(404, f"unknown endpoint {path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self._throttled():
            return
        path = self.path.rstrip("/")
        if path == "/jobs":
            self._submit()
        elif path.startswith("/jobs/") and path.endswith("/cancel"):
            job_id = path[len("/jobs/"):-len("/cancel")]
            try:
                job = self.service.queue.cancel(job_id)
            except KeyError:
                self._error(404, "unknown job")
                return
            self._send_json(200, job.snapshot())
        else:
            self._error(404, f"unknown endpoint {path!r}")

    # -- endpoint bodies -----------------------------------------------

    def _submit(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            req = build_request(json.loads(body.decode("utf-8") or "{}"))
        except (ValueError, UnicodeDecodeError) as exc:
            self._error(400, str(exc))
            return
        try:
            job, created = self.service.queue.submit(req)
        except QueueFull as exc:
            self._error(503, str(exc), {"Retry-After": "5"})
            return
        payload = job.snapshot()
        payload["created"] = created
        self._send_json(202 if created else 200, payload)

    def _get_result(self, job_id: str) -> None:
        job = self.service.store.get(job_id)
        if job is None:
            self._error(404, "unknown job")
        elif job.state != "done" or job.result_json is None:
            self._error(
                409,
                f"job is {job.state!r}"
                + (f": {job.error}" if job.error else "")
                + "; the result exists only once the job is 'done'",
            )
        else:
            # Served verbatim: these are the exact SweepResult.to_json()
            # bytes a direct sweep_load caller would archive.
            self._send_body(200, job.result_json.encode("utf-8"))


class ExperimentService:
    """The assembled sweep-farm service (HTTP + queue + cache + limits).

    ``port=0`` binds an ephemeral port (read it back from ``self.port``) —
    the in-process mode the differential tests and the ``service-vs-direct``
    oracle use.  ``start(runner=False)`` accepts and queues jobs without
    executing them (used to test the bounded-queue contract).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int | None = None,
                 memo_root: str = "benchmarks/output/memo",
                 job_log: str | None = None,
                 max_depth: int = 64,
                 rate_limit: float = 20.0, burst: int = 40,
                 quiet: bool = True):
        self.memo = SweepMemo(root=memo_root)
        self.store = JobStore.load(job_log) if job_log else JobStore()
        self.queue = JobQueue(self.store, self.memo, workers=workers,
                              max_depth=max_depth)
        self.limiter = RateLimiter(rate=rate_limit, burst=burst)
        self.quiet = quiet
        self.httpd = ThreadingHTTPServer((host, port), ServiceHandler)
        self.httpd.daemon_threads = True
        self.httpd.service = self  # type: ignore[attr-defined]
        self._http_thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self.httpd.server_address[0]
        return f"http://{host}:{self.port}"

    def stats(self) -> dict:
        return {
            "jobs": self.store.counts(),
            "queue_depth": self.queue.depth(),
            "max_depth": self.queue.max_depth,
            "workers": self.queue.workers,
            "jobs_deduped": self.queue.jobs_deduped,
            "throttled": self.limiter.throttled,
            "memo": {
                "root": self.memo.root,
                "hits": self.memo.hits,
                "misses": self.memo.misses,
                "writes": self.memo.writes,
                "collisions": self.memo.collisions,
            },
        }

    # -- lifecycle -----------------------------------------------------

    def start(self, runner: bool = True) -> "ExperimentService":
        """Serve HTTP on a background thread; ``runner`` starts the job
        runner too (disable to test queueing without execution)."""
        if runner:
            self.queue.start()
        if self._http_thread is None or not self._http_thread.is_alive():
            self._http_thread = threading.Thread(
                target=self.httpd.serve_forever,
                name="repro-service-http", daemon=True,
            )
            self._http_thread.start()
        return self

    def serve_forever(self) -> None:
        """Foreground mode for ``python -m repro serve`` (runner included;
        interrupt with SIGINT/SIGTERM)."""
        self.queue.start()
        self.httpd.serve_forever()  # pragma: no cover - blocks until shutdown

    def shutdown(self) -> None:
        """Stop accepting requests, let the in-flight job finish, close."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._http_thread is not None:
            self._http_thread.join(timeout=10)
            self._http_thread = None
        self.queue.stop()
