"""Per-client token-bucket rate limiting for the experiment service.

Each client (the ``X-Repro-Client`` header when present, else the socket
peer address) gets an independent bucket holding up to ``burst`` tokens,
refilled continuously at ``rate`` tokens/second.  A request costs one
token; an empty bucket yields the number of seconds until one accrues,
which the HTTP layer returns as a 429 with a ``Retry-After`` header.
``rate=0`` disables limiting entirely.

The clock is injectable so the contract is unit-testable without
sleeping::

    >>> from repro.service.ratelimit import RateLimiter
    >>> t = [0.0]
    >>> rl = RateLimiter(rate=1.0, burst=2, clock=lambda: t[0])
    >>> rl.check("alice"), rl.check("alice")   # burst of 2 granted
    (0.0, 0.0)
    >>> rl.check("alice") > 0                  # third is throttled
    True
    >>> rl.check("bob")                        # independent bucket
    0.0
    >>> t[0] = 1.0                             # one second: one token back
    >>> rl.check("alice")
    0.0
"""

from __future__ import annotations

import threading
import time
from typing import Callable


class TokenBucket:
    """One client's bucket: ``burst`` capacity, ``rate`` tokens/second."""

    def __init__(self, rate: float, burst: int,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise ValueError("TokenBucket rate must be positive")
        if burst < 1:
            raise ValueError("TokenBucket burst must be >= 1")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def try_acquire(self) -> float:
        """Take one token if available; returns 0.0 on success, else the
        seconds until the next token accrues (the Retry-After value)."""
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return 0.0
        return (1.0 - self._tokens) / self.rate


class RateLimiter:
    """Thread-safe registry of per-client :class:`TokenBucket` s.

    ``rate=0`` means unlimited — every :meth:`check` grants immediately,
    and no buckets are kept.
    """

    def __init__(self, rate: float = 20.0, burst: int = 40,
                 clock: Callable[[], float] = time.monotonic):
        if rate < 0:
            raise ValueError("rate must be >= 0 (0 = unlimited)")
        if rate > 0 and burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self.throttled = 0  # requests refused so far (service stat)

    def check(self, client: str) -> float:
        """0.0 when ``client`` may proceed, else seconds to wait."""
        if self.rate == 0:
            return 0.0
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    self.rate, self.burst, self._clock
                )
            wait = bucket.try_acquire()
            if wait > 0:
                self.throttled += 1
            return wait
