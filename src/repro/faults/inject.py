"""FaultInjector: apply a fault schedule to a live network mid-run.

The injector is a simulator *process* (registered via
``Simulator.add_process``) that walks a :class:`~repro.faults.model.FaultSchedule`
and, when an event's cycle arrives, mutates the network's shared
:class:`~repro.faults.model.FaultState`:

* **link** / **router** events add the affected directed ports to
  ``failed_ports`` (bumping the epoch), then make the change take effect
  *now* rather than at the next cold route computation:

  - every router's memoized candidate cache is dropped
    (``Network.invalidate_route_caches``) so stale routes through the dead
    link cannot be replayed;
  - committed-but-unstarted routes through a failed port are revoked
    (``Router.revoke_unstarted_routes``) and recomputed next cycle.  Routes
    whose wormhole already started are *not* revoked — the flits drain over
    the physically-present channel (fail-stop at routing granularity,
    lossless drain);
  - routers that themselves failed are skipped by the revocation pass:
    packets already routed inside a dead router are allowed to drain.

* **degrade** events set ``Channel.min_gap`` on the affected output
  channels, throttling them to one flit per ``factor`` cycles; connectivity
  and routing are unchanged.

Example::

    >>> from repro.topology.hyperx import HyperX
    >>> from repro.faults import FaultSet, FaultSchedule, DegradedTopology
    >>> topo = DegradedTopology(HyperX((3, 3), 1))
    >>> sched = FaultSchedule.from_faultset(FaultSet().fail_link(0, 0), cycle=10)
    >>> [e.cycle for e in sched.sorted_events()]
    [10]
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .model import FaultSchedule

if TYPE_CHECKING:  # pragma: no cover
    from ..network.network import Network


class FaultInjector:
    """Applies a :class:`FaultSchedule` to ``network`` as a simulator process.

    The network must have been built on a
    :class:`~repro.faults.degraded.DegradedTopology` (so it carries a
    ``fault_state``); construction raises otherwise.
    """

    #: Compatible with the SoA datapath (repro.network.soa): every mutation
    #: it makes — fault-state flips, route-cache invalidation,
    #: revoke_unstarted_routes, channel min_gap rewrites — targets state the
    #: fused kernels share with the object facade, so both engines observe
    #: an injected fault identically from the same cycle on.
    soa_safe = True
    #: Compatible with cycle skip-ahead (repro.network.skip): the schedule
    #: is sorted, so :meth:`next_wakeup` bounds the next mutation exactly.
    skip_safe = True

    def __init__(self, network: "Network", schedule: FaultSchedule):
        state = getattr(network, "fault_state", None)
        if state is None:
            raise ValueError(
                "FaultInjector needs a network built on a DegradedTopology "
                "(Network.fault_state is missing)"
            )
        self.network = network
        self.state = state
        self.events = schedule.sorted_events()
        self._next = 0

    @property
    def done(self) -> bool:
        """True once every scheduled event has been applied."""
        return self._next >= len(self.events)

    def next_wakeup(self, cycle: int) -> int | None:
        """Cycle of the next unapplied event; None once the schedule is done.

        May return a cycle below ``cycle`` if an event is overdue (the
        engine never skips an executed cycle's call, so this only happens
        when the injector is registered after its first event's cycle);
        the skip engine treats a stale bound as "run the next cycle", at
        which point :meth:`__call__` catches up exactly as per-cycle
        stepping would.
        """
        if self._next >= len(self.events):
            return None
        return self.events[self._next].cycle

    def __call__(self, cycle: int) -> None:
        if self._next >= len(self.events) or self.events[self._next].cycle > cycle:
            return
        state = self.state
        touched: set[tuple[int, int]] = set()
        while self._next < len(self.events) and self.events[self._next].cycle <= cycle:
            ev = self.events[self._next]
            self._next += 1
            if ev.kind == "link":
                touched |= state.fail_link(ev.router, ev.port)
            elif ev.kind == "router":
                touched |= state.fail_router(ev.router)
            elif ev.kind == "degrade":
                for (r, p), gap in state.degrade_link(
                    ev.router, ev.port, ev.factor
                ).items():
                    # None holes are the unowned routers of a partial
                    # (sharded) build: the shard owning r throttles its own
                    # half; a boundary export's min_gap binds push-side, so
                    # the local write alone is exact.
                    router = self.network.routers[r]
                    if router is not None:
                        router.out_channels[p].min_gap = gap
            state.events_applied += 1
        if touched:
            self.network.invalidate_route_caches()
            by_router: dict[int, set[int]] = {}
            for r, p in touched:
                # Don't revoke routes inside a freshly-dead router: packets
                # already inside it are allowed to drain to their outputs.
                if r not in state.failed_routers:
                    by_router.setdefault(r, set()).add(p)
            for r, ports in by_router.items():
                router = self.network.routers[r]
                if router is None:
                    continue  # unowned router of a partial (sharded) build
                state.revoked_routes += router.revoke_unstarted_routes(ports)
