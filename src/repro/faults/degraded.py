"""DegradedTopology: a fault-masking view over any concrete topology.

Rather than teaching the five topology classes about faults, the fault layer
wraps a base :class:`~repro.topology.base.Topology` so the *interface*
reflects the surviving graph:

* :meth:`DegradedTopology.peer` returns an empty
  :class:`~repro.topology.base.PortPeer` (``is_missing``) for failed ports,
  so the network builder skips the channel and ``router_channels()``
  enumerates only surviving links;
* :meth:`DegradedTopology.min_hops` is computed by BFS over the surviving
  graph (cached per source, invalidated on every
  :attr:`~repro.faults.model.FaultState.epoch` bump) and returns
  ``math.inf`` for partitioned pairs;
* :meth:`DegradedTopology.validate` checks the surviving graph's invariants
  — fault symmetry included — instead of the pristine ones;
* every other attribute (coordinate helpers, widths, port arithmetic …)
  delegates to the base topology, so HyperX-aware routing algorithms keep
  working against the wrapper.

Example::

    >>> from repro.topology.hyperx import HyperX
    >>> from repro.faults import FaultSet, DegradedTopology
    >>> base = HyperX((3, 3), 1)
    >>> topo = DegradedTopology(base, FaultSet().fail_link(0, 0))
    >>> topo.peer(0, 0).is_missing       # masked on the wrapper ...
    True
    >>> base.peer(0, 0).is_router        # ... while the base is untouched
    True
    >>> topo.min_hops(0, 1)              # reroute via a surviving path
    2
    >>> topo.validate()                  # surviving-graph invariants hold
"""

from __future__ import annotations

import math

from ..topology.base import PortPeer, RouterPort, Topology
from .model import FaultSet, FaultState

_MISSING = PortPeer()


class DegradedTopology(Topology):
    """A :class:`Topology` view with faulted ports masked out.

    Parameters
    ----------
    base:
        The pristine topology (any of the five concrete classes).
    faults:
        A :class:`FaultSet` (resolved here) or an already-resolved
        :class:`FaultState`; ``None`` starts with an empty, mutable fault
        state that a :class:`~repro.faults.inject.FaultInjector` can grow
        mid-run.
    """

    def __init__(self, base: Topology, faults: FaultSet | FaultState | None = None):
        if isinstance(base, DegradedTopology):
            raise TypeError("DegradedTopology cannot wrap another DegradedTopology")
        self.base = base
        #: the declarative FaultSet this wrapper was built from (an empty one
        #: when ``faults`` is None), or None when built directly on a live
        #: FaultState.  The parallel sweep engine reconstructs the topology
        #: in worker processes from this, so it is retained verbatim.
        self.faultset: FaultSet | None
        if faults is None:
            self.faultset = FaultSet()
            self.faults = FaultState(base)
        elif isinstance(faults, FaultSet):
            self.faultset = faults
            self.faults = faults.resolve(base)
        elif isinstance(faults, FaultState):
            self.faultset = None
            self.faults = faults
        else:
            raise TypeError(f"faults must be FaultSet/FaultState/None, got {faults!r}")
        #: epoch right after resolution; if the live state's epoch moves past
        #: this (mid-run injector mutations), ``faultset`` no longer
        #: describes the current graph.
        self.resolved_epoch = self.faults.epoch
        self.name = f"degraded-{base.name}"
        # min_hops BFS cache: source router -> distance list, valid for one epoch.
        self._hops_cache: dict[int, list[float]] = {}
        self._hops_epoch = -1

    # ------------------------------------------------------------------
    # Topology interface (explicit overrides: the base class's property
    # descriptors would otherwise shadow __getattr__ delegation).
    # ------------------------------------------------------------------

    @property
    def num_routers(self) -> int:
        return self.base.num_routers

    @property
    def num_terminals(self) -> int:
        return self.base.num_terminals

    def radix(self, router: int) -> int:
        return self.base.radix(router)

    def peer(self, router: int, port: int) -> PortPeer:
        if (router, port) in self.faults.failed_ports:
            return _MISSING
        return self.base.peer(router, port)

    def terminal_attachment(self, terminal: int) -> RouterPort:
        return self.base.terminal_attachment(terminal)

    def terminal_alive(self, terminal: int) -> bool:
        """False when the terminal's attachment port (or router) is failed."""
        att = self.base.terminal_attachment(terminal)
        return (att.router, att.port) not in self.faults.failed_ports

    def min_hops(self, src_router: int, dst_router: int) -> float:
        """Minimal hops over the *surviving* graph; ``math.inf`` when
        ``dst_router`` is unreachable from ``src_router``."""
        f = self.faults
        if not f.failed_ports:
            return self.base.min_hops(src_router, dst_router)
        if self._hops_epoch != f.epoch:
            self._hops_cache.clear()
            self._hops_epoch = f.epoch
        dist = self._hops_cache.get(src_router)
        if dist is None:
            dist = self._bfs(src_router)
            self._hops_cache[src_router] = dist
        return dist[dst_router]

    def _bfs(self, src: int) -> list[float]:
        dist: list[float] = [math.inf] * self.base.num_routers
        if src in self.faults.failed_routers:
            return dist
        dist[src] = 0
        frontier = [src]
        while frontier:
            nxt: list[int] = []
            for r in frontier:
                d = dist[r] + 1
                for port, peer in self.router_ports(r):
                    if peer.is_router:
                        nbr = peer.router_port.router
                        if d < dist[nbr]:
                            dist[nbr] = d
                            nxt.append(nbr)
            frontier = nxt
        return dist

    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check surviving-graph invariants; raises ``AssertionError``.

        * fault symmetry: a failed port's reverse direction is failed too;
        * every *surviving* router channel peers back symmetrically;
        * every *alive* terminal round-trips through its attachment.
        """
        base = self.base
        for r, p in self.faults.failed_ports:
            assert 0 <= r < base.num_routers and 0 <= p < base.radix(r), (
                f"failed port ({r}, {p}) out of range"
            )
            peer = base.peer(r, p)
            if peer.is_router:
                rp = peer.router_port
                assert (rp.router, rp.port) in self.faults.failed_ports, (
                    f"asymmetric fault: ({r}, {p}) failed but its peer "
                    f"({rp.router}, {rp.port}) is not"
                )
        for r in range(self.num_routers):
            for port, peer in self.router_ports(r):
                if peer.is_missing:
                    continue
                if peer.is_router:
                    rp = peer.router_port
                    back = self.peer(rp.router, rp.port)
                    assert back.is_router and back.router_port == RouterPort(r, port), (
                        f"surviving channel asymmetric at router {r} port {port}"
                    )
                else:
                    t = peer.terminal
                    assert base.terminal_attachment(t) == RouterPort(r, port), (
                        f"terminal {t} attachment mismatch"
                    )
        for t in range(self.num_terminals):
            if not self.terminal_alive(t):
                continue
            att = base.terminal_attachment(t)
            peer = self.peer(att.router, att.port)
            assert peer.is_terminal and peer.terminal == t, (
                f"alive terminal {t} not found at its attachment"
            )

    # ------------------------------------------------------------------

    def __getattr__(self, name: str):
        # Only called when normal lookup fails: delegate topology-specific
        # helpers (coords, dim_port, widths, ...) to the base topology.
        if name == "base":  # guard against recursion before __init__ ran
            raise AttributeError(name)
        return getattr(self.base, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DegradedTopology({self.base!r}, {self.faults.describe()})"
