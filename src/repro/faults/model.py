"""Fault model: declarative fault sets, resolved fault state, and schedules.

The fault layer separates *what* is broken from *when* it breaks and *how*
the rest of the system reacts:

* a :class:`FaultSet` is a declarative, topology-independent list of faults
  (failed links, failed routers, degraded-bandwidth links) that can be built
  by hand, loaded from a schedule file, or sampled with
  :func:`random_link_faults`;
* :meth:`FaultSet.resolve` expands it against a concrete topology into a
  :class:`FaultState` — the mutable runtime object the
  :class:`~repro.faults.degraded.DegradedTopology` wrapper and the routing
  layer consult.  Resolution expands every fault to *directed port* granularity
  and always keeps the set symmetric (both directions of a link fail
  together), so a single ``(router, port) in failed_ports`` lookup answers
  "may I route through this port?";
* a :class:`FaultSchedule` is a list of timestamped :class:`FaultEvent` s the
  :class:`~repro.faults.inject.FaultInjector` applies mid-run.

Semantics: **fail-stop at routing granularity with lossless drain**.  A fault
instantly masks the link for *new* routing decisions; flits of packets whose
transfer already started keep draining over the (physically still present)
channel.  This models the window between a link being administratively
drained and its traffic ceasing, and keeps the simulator's conservation
invariants intact.

Example::

    >>> from repro.topology.hyperx import HyperX
    >>> from repro.faults.model import FaultSet
    >>> topo = HyperX((3, 3), 1)
    >>> state = FaultSet().fail_link(0, 0).resolve(topo)
    >>> sorted(state.failed_ports)          # both directions of the link
    [(0, 0), (1, 0)]
    >>> state.active
    True
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from ..topology.base import Topology


@dataclass(frozen=True)
class LinkFault:
    """One failed router-to-router link, named by either endpoint port."""

    router: int
    port: int


@dataclass(frozen=True)
class RouterFault:
    """A failed router: every one of its links (and its terminals) goes down."""

    router: int


@dataclass(frozen=True)
class DegradedLink:
    """A link running at ``1/factor`` of its bandwidth (one flit per
    ``factor`` cycles instead of one per cycle), named by either endpoint."""

    router: int
    port: int
    factor: int


class FaultSet:
    """A declarative, topology-independent collection of faults.

    Builder methods return ``self`` so fault sets chain::

        FaultSet().fail_link(0, 0).fail_router(5).degrade_link(9, 2, factor=4)
    """

    def __init__(self, faults: Iterable[object] | None = None):
        self.faults: list[object] = list(faults or [])

    def fail_link(self, router: int, port: int) -> "FaultSet":
        self.faults.append(LinkFault(router, port))
        return self

    def fail_router(self, router: int) -> "FaultSet":
        self.faults.append(RouterFault(router))
        return self

    def degrade_link(self, router: int, port: int, factor: int) -> "FaultSet":
        if factor < 1:
            raise ValueError("bandwidth-degradation factor must be >= 1")
        self.faults.append(DegradedLink(router, port, int(factor)))
        return self

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def resolve(self, topology: "Topology") -> "FaultState":
        """Expand against ``topology`` into a runtime :class:`FaultState`."""
        state = FaultState(topology)
        for f in self.faults:
            if isinstance(f, LinkFault):
                state.fail_link(f.router, f.port)
            elif isinstance(f, RouterFault):
                state.fail_router(f.router)
            elif isinstance(f, DegradedLink):
                state.degrade_link(f.router, f.port, f.factor)
            else:
                raise TypeError(f"unknown fault {f!r}")
        return state


class FaultState:
    """Resolved, mutable fault state over one concrete topology.

    ``failed_ports`` holds *directed* ``(router, port)`` pairs and is always
    symmetric — :meth:`fail_link` inserts both directions, and
    :meth:`fail_router` expands to every port of the router plus every
    reverse direction pointing at it.  ``epoch`` increments on every
    connectivity-changing mutation so the
    :class:`~repro.faults.degraded.DegradedTopology` can invalidate its
    shortest-path caches.  The counters (``masked_candidates``,
    ``revoked_routes``, ``events_applied``) are the per-fault telemetry
    surfaced by :meth:`repro.network.telemetry.TelemetryProbe.fault_counters`.
    """

    def __init__(self, topology: "Topology"):
        self.topology = topology
        self.failed_ports: set[tuple[int, int]] = set()
        self.failed_routers: set[int] = set()
        #: directed (router, port) -> minimum cycles between flits
        self.degraded: dict[tuple[int, int], int] = {}
        self.epoch = 0
        self.num_failed_links = 0
        # telemetry counters (see repro.network.telemetry.fault_counters)
        self.masked_candidates = 0
        self.revoked_routes = 0
        self.events_applied = 0

    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when any fault is present."""
        return bool(self.failed_ports or self.failed_routers or self.degraded)

    def port_failed(self, router: int, port: int) -> bool:
        return (router, port) in self.failed_ports

    def _link_endpoints(self, router: int, port: int) -> tuple[tuple[int, int], tuple[int, int]]:
        peer = self.topology.peer(router, port)
        if not peer.is_router:
            raise ValueError(
                f"router {router} port {port} is not a router-to-router link"
            )
        rp = peer.router_port
        return (router, port), (rp.router, rp.port)

    # ------------------------------------------------------------------
    # Mutations (used by resolve() and, mid-run, by the FaultInjector)
    # ------------------------------------------------------------------

    def fail_link(self, router: int, port: int) -> set[tuple[int, int]]:
        """Fail both directions of a link; returns the directed ports added."""
        a, b = self._link_endpoints(router, port)
        added = {a, b} - self.failed_ports
        if added:
            self.failed_ports |= added
            self.num_failed_links += 1
            self.epoch += 1
        return added

    def fail_router(self, router: int) -> set[tuple[int, int]]:
        """Fail a router: every port of it, in both directions.

        Terminal-facing ports fail too, so the router's endpoints become
        unreachable (see ``DegradedTopology.terminal_alive``).
        """
        if router in self.failed_routers:
            return set()
        added: set[tuple[int, int]] = set()
        for port, peer in self.topology.router_ports(router):
            added.add((router, port))
            if peer.is_router:
                rp = peer.router_port
                added.add((rp.router, rp.port))
        added -= self.failed_ports
        self.failed_ports |= added
        self.failed_routers.add(router)
        self.epoch += 1
        return added

    def degrade_link(self, router: int, port: int, factor: int) -> dict[tuple[int, int], int]:
        """Degrade both directions of a link to ``1/factor`` bandwidth;
        returns the directed ``(router, port) -> min_gap`` entries set.
        Connectivity is unchanged, so the epoch is not bumped."""
        if factor < 1:
            raise ValueError("bandwidth-degradation factor must be >= 1")
        a, b = self._link_endpoints(router, port)
        entries = {a: int(factor), b: int(factor)}
        self.degraded.update(entries)
        return entries

    # ------------------------------------------------------------------

    def describe(self) -> dict[str, int]:
        """Summary counts (the static half of the fault telemetry)."""
        return {
            "failed_links": self.num_failed_links,
            "failed_routers": len(self.failed_routers),
            "degraded_links": len(self.degraded) // 2,
            "failed_ports": len(self.failed_ports),
        }


# ----------------------------------------------------------------------
# Scheduled faults
# ----------------------------------------------------------------------

_EVENT_KINDS = ("link", "router", "degrade")


@dataclass(frozen=True)
class FaultEvent:
    """One timestamped fault: a link/router failure or a link degradation."""

    cycle: int
    kind: str
    router: int
    port: int | None = None
    factor: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _EVENT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; use {_EVENT_KINDS}")
        if self.kind in ("link", "degrade") and self.port is None:
            raise ValueError(f"{self.kind!r} fault needs a port")
        if self.kind == "degrade" and (self.factor is None or self.factor < 1):
            raise ValueError("degrade fault needs factor >= 1")
        if self.cycle < 0:
            raise ValueError("fault cycle must be >= 0")


@dataclass
class FaultSchedule:
    """Timestamped fault events, applied mid-run by the FaultInjector."""

    events: list[FaultEvent] = field(default_factory=list)

    @classmethod
    def from_faultset(cls, faultset: FaultSet, cycle: int) -> "FaultSchedule":
        """Schedule every fault of ``faultset`` to fire at ``cycle``."""
        events = []
        for f in faultset:
            if isinstance(f, LinkFault):
                events.append(FaultEvent(cycle, "link", f.router, f.port))
            elif isinstance(f, RouterFault):
                events.append(FaultEvent(cycle, "router", f.router))
            elif isinstance(f, DegradedLink):
                events.append(
                    FaultEvent(cycle, "degrade", f.router, f.port, f.factor)
                )
            else:
                raise TypeError(f"unknown fault {f!r}")
        return cls(events)

    def sorted_events(self) -> list[FaultEvent]:
        return sorted(self.events, key=lambda e: e.cycle)

    def failed_router_ids(self) -> set[int]:
        return {e.router for e in self.events if e.kind == "router"}

    # -- JSON persistence (the CLI's ``--schedule`` file format) --------

    def to_json(self) -> str:
        return json.dumps(
            {
                "events": [
                    {
                        "cycle": e.cycle,
                        "kind": e.kind,
                        "router": e.router,
                        **({"port": e.port} if e.port is not None else {}),
                        **({"factor": e.factor} if e.factor is not None else {}),
                    }
                    for e in self.sorted_events()
                ]
            },
            indent=2,
        )

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FaultSchedule":
        with open(path) as f:
            data = json.load(f)
        events = []
        for i, e in enumerate(data["events"]):
            try:
                events.append(
                    FaultEvent(
                        cycle=int(e["cycle"]),
                        kind=e["kind"],
                        router=int(e["router"]),
                        port=None if e.get("port") is None else int(e["port"]),
                        factor=None if e.get("factor") is None else int(e["factor"]),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                # Schedule files are hand-written; point at the exact event.
                raise ValueError(
                    f"{path}: invalid fault event #{i}: {exc}"
                ) from exc
        return cls(events)


# ----------------------------------------------------------------------
# Random fault sampling
# ----------------------------------------------------------------------


def _router_links(topology: "Topology") -> list[tuple[int, int]]:
    """One (router, port) handle per undirected router-to-router link."""
    links = []
    for r in range(topology.num_routers):
        for port, peer in topology.router_ports(r):
            if peer.is_router and (
                peer.router_port.router > r
                or (peer.router_port.router == r and peer.router_port.port > port)
            ):
                links.append((r, port))
    return links


def _surviving_connected(topology: "Topology", state: FaultState) -> bool:
    """BFS connectivity of non-failed routers over surviving links."""
    alive = [
        r for r in range(topology.num_routers) if r not in state.failed_routers
    ]
    if not alive:
        return False
    seen = {alive[0]}
    frontier = [alive[0]]
    while frontier:
        r = frontier.pop()
        for port, peer in topology.router_ports(r):
            if not peer.is_router or (r, port) in state.failed_ports:
                continue
            nbr = peer.router_port.router
            if nbr not in seen:
                seen.add(nbr)
                frontier.append(nbr)
    return len(seen) == len(alive)


def random_faults(
    topology: "Topology",
    links: int = 0,
    routers: int = 0,
    seed: int = 0,
    require_connected: bool = True,
    max_attempts: int = 200,
) -> FaultSet:
    """Sample a random fault set, optionally preserving connectivity.

    Draws ``links`` distinct undirected link failures and ``routers``
    distinct router failures.  With ``require_connected`` (the default) the
    draw is rejected and retried until the surviving routers form one
    connected component — the precondition under which the adaptive
    algorithms must deliver 100% of traffic.
    """
    import numpy as np

    all_links = _router_links(topology)
    if links > len(all_links):
        raise ValueError(f"only {len(all_links)} links exist, cannot fail {links}")
    if routers >= topology.num_routers:
        raise ValueError("cannot fail every router")
    rng = np.random.default_rng(seed)
    for _ in range(max_attempts):
        fset = FaultSet()
        for r in sorted(
            int(x) for x in rng.choice(topology.num_routers, size=routers, replace=False)
        ):
            fset.fail_router(r)
        for i in sorted(
            int(x) for x in rng.choice(len(all_links), size=links, replace=False)
        ):
            fset.fail_link(*all_links[i])
        if not require_connected:
            return fset
        if _surviving_connected(topology, fset.resolve(topology)):
            return fset
    raise RuntimeError(
        f"no connectivity-preserving fault set found in {max_attempts} draws"
    )


def random_link_faults(
    topology: "Topology",
    k: int,
    seed: int = 0,
    require_connected: bool = True,
) -> FaultSet:
    """Sample ``k`` random failed links (connectivity-preserving by default)."""
    return random_faults(
        topology, links=k, seed=seed, require_connected=require_connected
    )
