"""Fault injection for degraded-topology routing experiments.

This package layers link/router failures and bandwidth degradation on top of
any :class:`~repro.topology.base.Topology` without modifying the topology
classes themselves:

* :mod:`repro.faults.model` — the declarative :class:`FaultSet`, the resolved
  runtime :class:`FaultState`, timestamped :class:`FaultSchedule` /
  :class:`FaultEvent`, and :func:`random_link_faults` /
  :func:`random_faults` samplers (connectivity-preserving by default);
* :mod:`repro.faults.degraded` — the :class:`DegradedTopology` wrapper whose
  ``peer`` / ``min_hops`` / ``validate`` reflect the surviving graph;
* :mod:`repro.faults.inject` — the :class:`FaultInjector` simulator process
  that applies scheduled faults mid-run (route-cache invalidation, unstarted-
  route revocation, channel throttling).

Routing algorithms see faults through their ``candidates()`` hook: the
HyperX algorithms mask failed output ports and fall back to deroutes or
monotone escape paths (see ``docs/FAULTS.md`` and docs/ALGORITHMS.md,
"Behaviour under faults").

Example::

    >>> from repro.topology.hyperx import HyperX
    >>> from repro.faults import DegradedTopology, random_link_faults
    >>> base = HyperX((4, 4), 2)
    >>> fset = random_link_faults(base, k=3, seed=7)
    >>> topo = DegradedTopology(base, fset)
    >>> topo.faults.describe()["failed_links"]
    3
    >>> topo.validate()
"""

from .degraded import DegradedTopology
from .inject import FaultInjector
from .model import (
    DegradedLink,
    FaultEvent,
    FaultSchedule,
    FaultSet,
    FaultState,
    LinkFault,
    RouterFault,
    random_faults,
    random_link_faults,
)

__all__ = [
    "DegradedLink",
    "DegradedTopology",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "FaultSet",
    "FaultState",
    "LinkFault",
    "RouterFault",
    "random_faults",
    "random_link_faults",
]
