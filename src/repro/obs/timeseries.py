"""Windowed time-series sampling of a live simulation.

The :class:`TimeSeriesSampler` registers as a simulator process and closes
a :class:`WindowSample` every ``window`` cycles: offered/accepted
throughput (flit deltas over the window), latency mean/p50/p99 of the
packets *delivered* in the window, per-dimension link utilization (HyperX
networks, via :class:`~repro.network.telemetry.TelemetryProbe`), and the
per-(router, VC) buffer-occupancy matrix snapshotted at the window edge —
the Fig 5-style signal that shows which VC classes adaptive routing
actually exercises over time.

Windows are half-open ``[start, end)`` and aligned to the attach cycle, so
attaching after warmup gives warmup-free windows.  :meth:`finalize` closes
the final partial window (its ``end - start`` may be shorter than
``window``); an empty window (no deliveries) reports ``nan`` latency.

Example::

    >>> import math
    >>> from repro.config import SimConfig
    >>> from repro.core.registry import make_algorithm
    >>> from repro.network.network import Network
    >>> from repro.network.simulator import Simulator
    >>> from repro.obs import TimeSeriesSampler
    >>> from repro.topology.hyperx import HyperX
    >>> topo = HyperX((2, 2), 1)
    >>> net = Network(topo, make_algorithm("DimWAR", topo), SimConfig())
    >>> sim = Simulator(net)
    >>> sampler = TimeSeriesSampler(sim, window=50).attach()
    >>> sim.run(100)
    >>> sampler.finalize(sim.cycle)
    >>> sampler.detach()
    >>> [s.end - s.start for s in sampler.samples]  # idle net, exact windows
    [50, 50]
    >>> math.isnan(sampler.samples[0].latency_mean)  # nothing delivered
    True
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..network.telemetry import TelemetryProbe
from ..topology.hyperx import HyperX

if TYPE_CHECKING:  # pragma: no cover
    from ..network.simulator import Simulator


def nearest_rank(values, q: float) -> float:
    """Nearest-rank percentile ``sorted(values)[ceil(q n) - 1]`` (clamped);
    the same estimator as :func:`repro.analysis.sweep.nearest_rank_p99`."""
    if not values:
        return math.nan
    idx = min(len(values) - 1, math.ceil(q * len(values)) - 1)
    return float(sorted(values)[idx])


@dataclass(frozen=True)
class WindowSample:
    """Aggregates of one measurement window ``[start, end)``."""

    start: int
    end: int
    offered_flits: int  # generated this window: injected + backlog growth
    injected_flits: int  # flits that entered terminal channels
    accepted_flits: int  # flits consumed at destination terminals
    packets_delivered: int
    latency_mean: float  # over packets delivered in the window (nan if none)
    latency_p50: float
    latency_p99: float
    #: occupancy[router][vc]: buffered input flits at the window edge
    occupancy: tuple[tuple[int, ...], ...]
    #: mean utilization per HyperX dimension over the window (None otherwise)
    dim_utilization: tuple[float, ...] | None

    @property
    def span(self) -> int:
        return self.end - self.start

    @property
    def router_occupancy(self) -> tuple[int, ...]:
        """Total buffered flits per router at the window edge."""
        return tuple(sum(row) for row in self.occupancy)

    @property
    def vc_occupancy(self) -> tuple[int, ...]:
        """Total buffered flits per VC id, summed over routers."""
        if not self.occupancy:
            return ()
        return tuple(
            sum(row[v] for row in self.occupancy)
            for v in range(len(self.occupancy[0]))
        )

    @property
    def accepted_rate(self) -> float:
        """Accepted flits per cycle (network-wide) over the window."""
        return self.accepted_flits / self.span if self.span else 0.0


class _SamplerProc:
    """The sampler's registered process: a tiny callable wrapper so the
    skip-ahead protocol attributes live on the process object itself (a
    bare bound method cannot carry them)."""

    __slots__ = ("_sampler",)

    #: Compatible with cycle skip-ahead (repro.network.skip): windows close
    #: on exact boundaries because next_wakeup names the boundary cycle, so
    #: the engine always lands on it.  Deliberately *not* soa_safe — a
    #: sampled run keeps taking the reference object path, as before.
    skip_safe = True

    def __init__(self, sampler: "TimeSeriesSampler"):
        self._sampler = sampler

    def __call__(self, cycle: int) -> None:
        self._sampler._on_cycle(cycle)

    def next_wakeup(self, cycle: int) -> int | None:
        """The next window boundary (start + window), always scheduled."""
        s = self._sampler
        return s._window_start + s.window


class TimeSeriesSampler:
    """Simulator process producing a :class:`WindowSample` per window."""

    def __init__(self, sim: "Simulator", window: int = 100):
        if window < 1:
            raise ValueError("window must be >= 1 cycle")
        self.sim = sim
        self.network = sim.network
        self.window = window
        self.samples: list[WindowSample] = []
        self._attached = False
        self._proc = _SamplerProc(self)  # bound once (identity-based removal)
        self._delivery_cb = self._on_delivery
        self._latencies: list[int] = []
        self._packets = 0
        self._probe = TelemetryProbe(self.network)
        hx = getattr(self.network.topology, "base", self.network.topology)
        self._has_dims = isinstance(hx, HyperX)
        self._window_start = 0
        self._base_injected = 0
        self._base_ejected = 0
        self._base_offered = 0

    @property
    def attached(self) -> bool:
        return self._attached

    # ------------------------------------------------------------------

    def attach(self) -> "TimeSeriesSampler":
        if self._attached:
            raise RuntimeError("sampler already attached")
        self.sim.add_process(self._proc)
        for t in self.network.terminals:
            t.delivery_listeners.append(self._delivery_cb)
        self._reset_window(self.sim.cycle)
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        self.sim.remove_process(self._proc)
        for t in self.network.terminals:
            if self._delivery_cb in t.delivery_listeners:
                t.delivery_listeners.remove(self._delivery_cb)
        self._attached = False

    def finalize(self, cycle: int) -> None:
        """Close the final (possibly partial) window ending at ``cycle``."""
        if cycle > self._window_start:
            self._close(cycle)

    # ------------------------------------------------------------------

    def _reset_window(self, cycle: int) -> None:
        net = self.network
        self._window_start = cycle
        self._base_injected = net.total_injected_flits()
        self._base_ejected = net.total_ejected_flits()
        self._base_offered = self._base_injected + net.total_backlog_flits()
        self._latencies.clear()
        self._packets = 0
        self._probe.start_window(cycle)

    def _on_cycle(self, cycle: int) -> None:
        # Boundaries are hit exactly under both stepping modes: per-cycle
        # runs call this every cycle, and the skip engine lands on (never
        # past) _SamplerProc.next_wakeup's boundary bound.
        if cycle - self._window_start >= self.window:
            self._close(cycle)

    def _on_delivery(self, packet, cycle: int) -> None:
        self._latencies.append(cycle - packet.create_cycle)
        self._packets += 1

    def _close(self, end: int) -> None:
        net = self.network
        injected_now = net.total_injected_flits()
        injected = injected_now - self._base_injected
        accepted = net.total_ejected_flits() - self._base_ejected
        offered = injected_now + net.total_backlog_flits() - self._base_offered
        lat = self._latencies
        occupancy = tuple(
            tuple(
                sum(iu.vcs[v].occupancy for iu in r.inputs)
                for v in range(r.num_vcs)
            )
            for r in net.routers
        )
        dims = None
        if self._has_dims:
            du = self._probe.dimension_utilization(end)
            dims = tuple(du[d] for d in sorted(du))
        self.samples.append(WindowSample(
            start=self._window_start,
            end=end,
            offered_flits=offered,
            injected_flits=injected,
            accepted_flits=accepted,
            packets_delivered=self._packets,
            latency_mean=(sum(lat) / len(lat)) if lat else math.nan,
            latency_p50=nearest_rank(lat, 0.50),
            latency_p99=nearest_rank(lat, 0.99),
            occupancy=occupancy,
            dim_utilization=dims,
        ))
        self._reset_window(end)

    # ------------------------------------------------------------------

    def format_table(self) -> str:
        """The series as an aligned text table (one line per window)."""
        lines = [
            f"{'window':>13}  {'offered':>8} {'accepted':>8} "
            f"{'pkts':>6} {'lat.mean':>9} {'lat.p99':>8} {'occ.max':>8}"
        ]
        for s in self.samples:
            occ_max = max(s.router_occupancy, default=0)
            lines.append(
                f"[{s.start:>5},{s.end:>5})  {s.offered_flits:>8} "
                f"{s.accepted_flits:>8} {s.packets_delivered:>6} "
                f"{s.latency_mean:>9.1f} {s.latency_p99:>8.1f} {occ_max:>8}"
            )
        return "\n".join(lines)
