"""The lifecycle tracer: attaches to a live simulator, records events.

The tracer observes through the simulator's existing hook seams and never
drives the simulation itself:

* ``Terminal.inject_listeners`` / ``delivery_listeners`` for packet
  inject/eject;
* ``Router.add_route_hook`` for route decisions — the router hands over
  the already-scored candidate list, so the tracer never re-runs
  ``candidates()`` or the weight computation (which would perturb fault
  counters and the tie-break jitter stream);
* ``Router.add_forward_hook`` for switch allocation;
* router-to-router data-channel ``_sink`` wrapping for link traversal
  (the wrapper delegates to the original sink first, then records).

Attach/detach is fully reversible: every callback is bound once in
``__init__`` and registered/unregistered by that identity, and wrapped
channel sinks are restored from the saved originals — attach → detach →
attach leaves zero residual hooks (the PR 3 bound-method pitfall).

Determinism: with the tracer attached the simulation is byte-identical to
an untraced run — ``repro.check.oracle.diff_trace_on_off`` replays sweeps
both ways and asserts identical JSON.

Example::

    >>> from repro.config import SimConfig
    >>> from repro.core.registry import make_algorithm
    >>> from repro.network.network import Network
    >>> from repro.network.simulator import Simulator
    >>> from repro.obs import Tracer, TraceOptions
    >>> from repro.topology.hyperx import HyperX
    >>> from repro.traffic.injection import SyntheticTraffic
    >>> from repro.traffic.patterns import pattern_by_name
    >>> topo = HyperX((2, 2), 1)
    >>> net = Network(topo, make_algorithm("DOR", topo), SimConfig())
    >>> sim = Simulator(net)
    >>> sim.processes.append(SyntheticTraffic(net, pattern_by_name("UR", topo), 0.2, seed=3))
    >>> tracer = Tracer(sim, TraceOptions(sample_every=2)).attach()
    >>> sim.run(200)
    >>> tracer.detach()
    >>> events = tracer.events()
    >>> events[0].type
    'inject'
    >>> sorted(set(e.type for e in events)) == sorted(
    ...     ["inject", "route", "vc_alloc", "sa", "link", "eject"])
    True
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .events import EventRing, TraceEvent, TraceOptions

if TYPE_CHECKING:  # pragma: no cover
    from ..network.simulator import Simulator


class Tracer:
    """Records lifecycle events for sampled packets of a live simulation."""

    def __init__(self, sim: "Simulator", options: TraceOptions | None = None):
        self.sim = sim
        self.network = sim.network
        self.options = options or TraceOptions()
        self.ring = EventRing(self.options.capacity)
        self._attached = False
        self._seq = 0  # packets seen at injection (sampling counter)
        self._next_tid = 0  # next trace-local id (doubles as sampled count)
        self._tids: dict[int, int] = {}  # live sampled packets: pid -> tid
        # pid_ids mode: events carry the global Packet.pid, so flits whose
        # inject happened in another shard's tracer are still attributable.
        self._pid_ids = self.options.pid_ids
        self._wrapped: list[tuple[object, object]] = []  # (channel, orig sink)
        # Bind every callback exactly once: registration and removal work by
        # identity, so a fresh bound method at detach time would not match.
        self._inject_cb = self._on_inject
        self._eject_cb = self._on_eject
        self._route_cb = self._on_route
        self._forward_cb = self._on_forward

    @property
    def attached(self) -> bool:
        return self._attached

    @property
    def packets_sampled(self) -> int:
        """Packets assigned a trace-local id so far."""
        return self._next_tid

    def events(self) -> list[TraceEvent]:
        return self.ring.events()

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(self) -> "Tracer":
        """Register every observation hook; chainable.

        Partial networks (the sharded engine's ``owned_routers=`` builds)
        have ``None`` holes for unowned terminals and routers — those are
        skipped — and their cross-shard links terminate in boundary
        channels that never appear in ``net.links``.  The *import* side of
        each data boundary is wrapped like any other link sink: its sink
        fires at exactly the cycle the unsharded channel's would, so the
        merged per-shard streams carry the same link events the unsharded
        tracer records.
        """
        if self._attached:
            raise RuntimeError("tracer already attached")
        net = self.network
        for t in net.terminals:
            if t is None:
                continue
            t.inject_listeners.append(self._inject_cb)
            t.delivery_listeners.append(self._eject_cb)
        for r in net.routers:
            if r is None:
                continue
            r.add_route_hook(self._route_cb)
            r.add_forward_hook(self._forward_cb)
        for rec in net.links:
            if rec.kind != "rr":
                continue
            ch = rec.data
            orig = ch._sink
            ch._sink = self._make_link_sink(rec, orig)
            self._wrapped.append((ch, orig))
        for key, ch in net.boundary_in.items():
            if key[0] != "d":
                continue
            src = (key[1], key[2])  # pushing (router, port) in the peer shard
            dst = net._boundary_in_dst[key]
            orig = ch._sink
            ch._sink = self._make_boundary_sink(src, dst, orig)
            self._wrapped.append((ch, orig))
        self._attached = True
        return self

    def detach(self) -> None:
        """Unregister every hook and restore wrapped channel sinks."""
        if not self._attached:
            return
        net = self.network
        for t in net.terminals:
            if t is None:
                continue
            if self._inject_cb in t.inject_listeners:
                t.inject_listeners.remove(self._inject_cb)
            if self._eject_cb in t.delivery_listeners:
                t.delivery_listeners.remove(self._eject_cb)
        for r in net.routers:
            if r is None:
                continue
            if self._route_cb in r._route_hooks:
                r.remove_route_hook(self._route_cb)
            if self._forward_cb in r._forward_hooks:
                r.remove_forward_hook(self._forward_cb)
        for ch, orig in self._wrapped:
            ch._sink = orig
        self._wrapped.clear()
        self._attached = False

    # ------------------------------------------------------------------
    # Callbacks (hot path when attached)
    # ------------------------------------------------------------------

    def _in_window(self, cycle: int) -> bool:
        o = self.options
        return cycle >= o.start and (o.end is None or cycle < o.end)

    def _on_inject(self, packet, cycle: int) -> None:
        seq = self._seq
        self._seq = seq + 1
        if seq % self.options.sample_every:
            return
        tid = self._next_tid
        self._next_tid = tid + 1
        if self._pid_ids:
            tid = packet.pid
        else:
            # Assign the id even outside the cycle window so ids stay
            # stable no matter where the window lies.
            self._tids[packet.pid] = tid
        if not self._in_window(cycle):
            return
        self.ring.append(TraceEvent(cycle, "inject", tid, packet.src_terminal, {
            "create": packet.create_cycle,
            "dst": packet.dst_terminal,
            "size": packet.size,
            "src": packet.src_terminal,
        }))

    def _tid_of(self, pid: int) -> int | None:
        """The event id for ``pid``: the pid itself in pid_ids mode (every
        packet is traced there), else the trace-local id if sampled."""
        return pid if self._pid_ids else self._tids.get(pid)

    def _on_route(self, cycle, router, port, vc, ctx, cand, out_vc, scored) -> None:
        tid = self._tid_of(ctx.packet.pid)
        if tid is None or not self._in_window(cycle):
            return
        weight = None
        cands = []
        for c, v, w in scored:
            cands.append([c.out_port, c.vc_class, c.hops, 1 if c.deroute else 0, w])
            if c is cand and v == out_vc:
                weight = w
        self.ring.append(TraceEvent(cycle, "route", tid, router.router_id, {
            "cands": cands,
            "deroute": 1 if cand.deroute else 0,
            "hops": cand.hops,
            "in_port": port,
            "in_vc": vc,
            "out_port": cand.out_port,
            "weight": weight,
        }))
        self.ring.append(TraceEvent(cycle, "vc_alloc", tid, router.router_id, {
            "out_port": cand.out_port,
            "out_vc": out_vc,
            "vc_class": cand.vc_class,
        }))

    def _on_forward(self, cycle, router, port, vc, out_port, out_vc, flit) -> None:
        tid = self._tid_of(flit.packet.pid)
        if tid is None or not self._in_window(cycle):
            return
        self.ring.append(TraceEvent(cycle, "sa", tid, router.router_id, {
            "flit": flit.index,
            "in_port": port,
            "in_vc": vc,
            "out_port": out_port,
            "out_vc": out_vc,
        }))

    def _make_link_sink(self, rec, orig):
        return self._make_boundary_sink(rec.src, rec.dst, orig)

    def _make_boundary_sink(self, src, dst, orig):
        tid_of = self._tid_of
        ring = self.ring
        sim = self.sim
        src_router, src_port = src
        dst_router, dst_port = dst
        in_window = self._in_window

        def sink(item):
            orig(item)
            vc, flit = item
            tid = tid_of(flit.packet.pid)
            if tid is not None:
                cycle = sim.cycle
                if in_window(cycle):
                    ring.append(TraceEvent(cycle, "link", tid, src_router, {
                        "dst": dst_router,
                        "dst_port": dst_port,
                        "flit": flit.index,
                        "src_port": src_port,
                        "vc": vc,
                    }))

        return sink

    def _on_eject(self, packet, cycle: int) -> None:
        if self._pid_ids:
            tid = packet.pid
        else:
            tid = self._tids.pop(packet.pid, None)  # prune: bounded live set
        if tid is None or not self._in_window(cycle):
            return
        self.ring.append(TraceEvent(cycle, "eject", tid, packet.dst_terminal, {
            "create": packet.create_cycle,
            "deroutes": packet.deroutes,
            "hops": packet.hops,
            "latency": cycle - packet.create_cycle,
            "size": packet.size,
        }))
