"""Trace event model: lifecycle events, the bounded ring buffer, options.

A traced packet produces a deterministic sequence of :class:`TraceEvent`
records as it moves through the network:

``inject``
    the packet's head flit enters the terminal channel (``where`` is the
    source terminal; ``data`` carries src/dst/size/create cycle);
``route``
    a router commits a routing decision for the packet's head flit
    (``where`` is the router; ``data`` carries the chosen output port,
    its weight, and every candidate considered as
    ``[out_port, vc_class, hops, deroute, weight]`` — weight ``None``
    when the candidate had no free credited VC);
``vc_alloc``
    the output virtual channel the decision claimed (same cycle as its
    ``route`` event);
``sa``
    switch allocation — one flit crossed the crossbar into the staged
    output queue;
``link``
    one flit was delivered at the downstream end of a router-to-router
    channel;
``eject``
    the tail flit was consumed at the destination terminal (``data``
    carries latency/hops/deroutes).

Packet ids in events are *trace-local* (0, 1, 2, … in injection order):
the simulator's global ``Packet.pid`` counter is process-wide and not
reset between runs, so pinned golden traces use the normalized id.

Events land in :class:`EventRing`, a bounded ring buffer: when full, the
oldest event is dropped (and counted) rather than growing without limit —
tracing a paper-scale run at full sampling stays memory-bounded.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

#: Event types in lifecycle order (used by well-formedness checks).
EVENT_TYPES = ("inject", "route", "vc_alloc", "sa", "link", "eject")


@dataclass(frozen=True)
class TraceOptions:
    """Configuration for :class:`~repro.obs.tracer.Tracer` (picklable).

    ``sample_every`` keeps one packet in every N injected (1 = all).
    ``start``/``end`` bound the cycle window in which events are recorded
    (half-open ``[start, end)``; ``end=None`` means no upper bound).
    ``capacity`` bounds the ring buffer.  ``window`` > 0 additionally
    attaches a :class:`~repro.obs.timeseries.TimeSeriesSampler` with that
    window size when threaded through ``measure_point``/``PointSpec``.
    ``out_dir``/``chrome`` control export when threaded through the
    sweep/experiment drivers: traces are written as JSONL (and optionally
    Chrome trace-event JSON) under ``out_dir`` with deterministic names.
    ``pid_ids`` stamps events with the simulator's global ``Packet.pid``
    instead of the trace-local injection-order id: the sharded engine's
    per-worker tracers never see another shard's injections, so only the
    globally aligned pid identifies one packet across shards.  Raw pids
    depend on where the process-wide counter happens to stand, so streams
    recorded this way are compared through the canonical export
    (:func:`~repro.obs.export.canonical_jsonl`), which renumbers them; it
    requires every packet traced, hence ``sample_every`` must be 1.
    """

    sample_every: int = 1
    start: int = 0
    end: int | None = None
    capacity: int = 1 << 16
    window: int = 0
    out_dir: str | None = None
    chrome: bool = False
    pid_ids: bool = False

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if self.pid_ids and self.sample_every != 1:
            raise ValueError("pid_ids requires sample_every == 1")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.end is not None and self.end <= self.start:
            raise ValueError("end must be > start")
        if self.window < 0:
            raise ValueError("window must be >= 0")


class TraceEvent:
    """One lifecycle event.  Lightweight: recorded on the simulator hot path."""

    __slots__ = ("cycle", "type", "pkt", "where", "data")

    def __init__(self, cycle: int, type: str, pkt: int, where: int, data: dict):
        self.cycle = cycle
        self.type = type
        self.pkt = pkt  # trace-local packet id (injection order)
        self.where = where  # router id, or terminal id for inject/eject
        self.data = data

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "data": self.data,
            "pkt": self.pkt,
            "type": self.type,
            "where": self.where,
        }

    def __eq__(self, other) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent(cycle={self.cycle}, type={self.type!r}, "
            f"pkt={self.pkt}, where={self.where}, data={self.data!r})"
        )


class EventRing:
    """Bounded event store: drops the *oldest* event when full."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buf: deque[TraceEvent] = deque(maxlen=capacity)
        self.recorded = 0  # events ever appended
        self.dropped = 0  # events evicted by capacity pressure

    def append(self, event: TraceEvent) -> None:
        if len(self._buf) == self.capacity:
            self.dropped += 1
        self._buf.append(event)
        self.recorded += 1

    def events(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._buf)

    def counts(self) -> dict[str, int]:
        """Retained event count per type (always includes every type)."""
        c = Counter(ev.type for ev in self._buf)
        return {t: c.get(t, 0) for t in EVENT_TYPES}

    def by_packet(self) -> dict[int, list[TraceEvent]]:
        """Retained events grouped by trace-local packet id, in order."""
        out: dict[int, list[TraceEvent]] = {}
        for ev in self._buf:
            out.setdefault(ev.pkt, []).append(ev)
        return out

    def clear(self) -> None:
        self._buf.clear()

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self):
        return iter(self._buf)
