"""Trace exporters: JSONL, Chrome trace-event JSON, ASCII heatmaps.

JSONL (one sorted-key compact JSON object per line) is the *canonical*
form — the golden-trace corpus pins these bytes, so the serialization is
deliberately minimal and deterministic: sorted keys, no whitespace, no
floats beyond the route weights the simulator itself computed.

The Chrome trace-event export produces a JSON object loadable by
``chrome://tracing`` and by Perfetto (https://ui.perfetto.dev): each
sampled packet becomes a complete ("X") slice on its own track spanning
inject → eject, its route/link events become instants, and time-series
windows become counter ("C") tracks.  Simulated cycles are mapped 1:1 to
trace microseconds.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Iterable, Sequence

from ..analysis.ascii_plot import ascii_heatmap
from .events import EVENT_TYPES, TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from .timeseries import WindowSample


# ----------------------------------------------------------------------
# JSONL (canonical, golden-pinned)
# ----------------------------------------------------------------------

def event_line(event: TraceEvent) -> str:
    """One event as a compact, key-sorted JSON line (no trailing newline)."""
    return json.dumps(
        event.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def events_jsonl(events: Iterable[TraceEvent]) -> str:
    """The whole stream as JSON lines; newline-terminated when non-empty."""
    lines = [event_line(ev) for ev in events]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(events: Iterable[TraceEvent], path: str) -> str:
    with open(path, "w") as f:
        f.write(events_jsonl(events))
    return path


def read_jsonl(path: str) -> list[TraceEvent]:
    """Parse a JSONL trace back into events (inverse of :func:`write_jsonl`)."""
    out = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            out.append(TraceEvent(d["cycle"], d["type"], d["pkt"], d["where"], d["data"]))
    return out


def canonical_jsonl(events: Iterable[TraceEvent], dropped: int = 0) -> str:
    """Order- and id-base-independent canonical JSONL of a complete stream.

    The plain :func:`events_jsonl` bytes depend on recording order and (in
    ``pid_ids`` mode) on where the process-wide packet-id counter happened
    to stand — both of which differ between an unsharded run and the merged
    per-shard streams of the same simulation.  This export removes exactly
    those two degrees of freedom and nothing else: packet ids are
    renumbered 0, 1, 2, … by ascending original id (pids are consecutive
    in injection order, so the rank *is* the injection order), and events
    are sorted by ``(packet rank, cycle, lifecycle stage, line bytes)``.
    Two runs of the same simulation canonicalize to identical bytes no
    matter how the work was sharded.

    Canonicalization is only sound on a *lossless* stream — a ring that
    dropped events loses them from one run's stream but maybe not the
    other's — so a non-zero ``dropped`` count raises.
    """
    events = list(events)
    if dropped:
        raise ValueError(
            f"cannot canonicalize a lossy trace: the ring dropped {dropped} "
            f"events; raise TraceOptions.capacity"
        )
    rank = {pid: i for i, pid in enumerate(sorted({ev.pkt for ev in events}))}
    stage = {t: i for i, t in enumerate(EVENT_TYPES)}
    keyed = []
    for ev in events:
        d = ev.to_dict()
        d["pkt"] = rank[ev.pkt]
        line = json.dumps(d, sort_keys=True, separators=(",", ":"),
                          allow_nan=False)
        keyed.append((d["pkt"], ev.cycle, stage.get(ev.type, len(stage)), line))
    keyed.sort()
    lines = [k[3] for k in keyed]
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Chrome trace-event format (perfetto-loadable)
# ----------------------------------------------------------------------

def chrome_trace(
    events: Iterable[TraceEvent],
    samples: "Sequence[WindowSample] | None" = None,
) -> dict:
    """Events (and optional time-series windows) as a trace-event object."""
    te: list[dict] = [
        {"args": {"name": "packets"}, "name": "process_name", "ph": "M", "pid": 1, "tid": 0},
    ]
    by_packet: dict[int, list[TraceEvent]] = {}
    for ev in events:
        by_packet.setdefault(ev.pkt, []).append(ev)
    for tid in sorted(by_packet):
        evs = by_packet[tid]
        first, last = evs[0], evs[-1]
        if first.type == "inject":
            te.append({
                "args": dict(first.data),
                "cat": "packet",
                "dur": max(1, last.cycle - first.cycle),
                "name": f"pkt {tid} ({first.data['src']}->{first.data['dst']})",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": first.cycle,
            })
        for ev in evs:
            if ev.type == "route":
                name = f"route @r{ev.where} -> p{ev.data['out_port']}"
            elif ev.type == "eject":
                name = f"eject @t{ev.where}"
            else:
                continue  # sa/link/vc_alloc stay JSONL-only (volume)
            te.append({
                "args": dict(ev.data),
                "cat": ev.type,
                "name": name,
                "ph": "i",
                "pid": 1,
                "s": "t",
                "tid": tid,
                "ts": ev.cycle,
            })
    if samples:
        te.append({
            "args": {"name": "timeseries"}, "name": "process_name",
            "ph": "M", "pid": 2, "tid": 0,
        })
        for s in samples:
            te.append({
                "args": {"accepted": s.accepted_flits, "offered": s.offered_flits},
                "name": "throughput (flits/window)",
                "ph": "C", "pid": 2, "ts": s.start,
            })
            te.append({
                "args": {"buffered": sum(s.router_occupancy)},
                "name": "buffered flits",
                "ph": "C", "pid": 2, "ts": s.end,
            })
    return {"displayTimeUnit": "ms", "traceEvents": te}


def write_chrome_trace(
    events: Iterable[TraceEvent],
    path: str,
    samples: "Sequence[WindowSample] | None" = None,
) -> str:
    with open(path, "w") as f:
        json.dump(chrome_trace(events, samples), f, sort_keys=True, indent=1)
        f.write("\n")
    return path


# ----------------------------------------------------------------------
# ASCII heatmaps (terminal diagnostics)
# ----------------------------------------------------------------------

def occupancy_heatmap(
    samples: "Sequence[WindowSample]", mode: str = "router"
) -> str:
    """Occupancy-over-time heatmap: one row per router (or per VC id),
    one column per time window."""
    if not samples:
        raise ValueError("no time-series windows to plot")
    if mode == "router":
        series = [s.router_occupancy for s in samples]
        labels = [f"r{i}" for i in range(len(series[0]))]
        title = "buffered flits per router (rows) over windows (cols)"
    elif mode == "vc":
        series = [s.vc_occupancy for s in samples]
        labels = [f"vc{i}" for i in range(len(series[0]))]
        title = "buffered flits per VC (rows) over windows (cols)"
    else:
        raise ValueError("mode must be 'router' or 'vc'")
    rows = [[col[i] for col in series] for i in range(len(series[0]))]
    span = f"cycles [{samples[0].start}, {samples[-1].end})"
    return ascii_heatmap(rows, row_labels=labels, title=title, x_label=span)


# ----------------------------------------------------------------------
# Driver-side export (measure_point / run_fault_transient plumbing)
# ----------------------------------------------------------------------

def write_point_trace(tracer, sampler, out_dir: str, stem: str) -> list[str]:
    """Write a point's trace artifacts under ``out_dir``; returns paths.

    Always writes ``<stem>.jsonl``; adds ``<stem>.chrome.json`` when the
    tracer's options ask for it.  ``stem`` must be deterministic so
    repeated runs overwrite rather than accumulate.
    """
    os.makedirs(out_dir, exist_ok=True)
    events = tracer.events()
    samples = sampler.samples if sampler is not None else None
    paths = [write_jsonl(events, os.path.join(out_dir, stem + ".jsonl"))]
    if tracer.options.chrome:
        paths.append(write_chrome_trace(
            events, os.path.join(out_dir, stem + ".chrome.json"), samples
        ))
    return paths
