"""Wall-clock phase profiling: where does `Simulator.run` time go?

:class:`PhaseProfiler` attributes host time to the simulator's phases —
link delivery, registered processes, terminal inject/eject, and within the
router step: route computation, VC allocation, and switch allocation /
output arbitration (the remainder of the router step is reported as
``router_other``: input bookkeeping and crossbar staging).

It works by (a) running its own copy of the two-phase cycle loop with
``perf_counter`` brackets around each phase, and (b) temporarily shadowing
each router's ``_compute_route`` / ``_allocate_vc`` / ``_step_outputs``
bound methods with timing wrappers.  The instrumentation itself costs real
time, so the absolute numbers are upper bounds — the *fractions* are the
useful output.  Detach restores every method, leaving the simulator
byte-identical in behaviour (timers never change results, only timing).

Example::

    >>> from repro.config import SimConfig
    >>> from repro.core.registry import make_algorithm
    >>> from repro.network.network import Network
    >>> from repro.network.simulator import Simulator
    >>> from repro.obs import PhaseProfiler
    >>> from repro.topology.hyperx import HyperX
    >>> from repro.traffic.injection import SyntheticTraffic
    >>> from repro.traffic.patterns import pattern_by_name
    >>> topo = HyperX((2, 2), 1)
    >>> net = Network(topo, make_algorithm("DimWAR", topo), SimConfig())
    >>> sim = Simulator(net)
    >>> sim.processes.append(SyntheticTraffic(net, pattern_by_name("UR", topo), 0.3, seed=1))
    >>> prof = PhaseProfiler(sim)
    >>> prof.run(300)
    >>> rep = prof.report()
    >>> sorted(rep) == sorted(PhaseProfiler.PHASES)
    True
    >>> rep["route"] >= 0.0 and abs(sum(rep.values()) - prof.total_s) < 1e-6
    True
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..network.simulator import Simulator

PHASES = ("link", "processes", "terminals", "route", "vc_alloc", "sa", "router_other")


class PhaseProfiler:
    """Phase-attributed wall-clock profiling of a simulator."""

    PHASES = PHASES

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.network = sim.network
        self.seconds = {p: 0.0 for p in PHASES}
        self.cycles_profiled = 0
        self._wrapped: list[tuple[object, str, object]] = []

    @property
    def total_s(self) -> float:
        return sum(self.seconds.values())

    # ------------------------------------------------------------------

    def _wrap_routers(self) -> None:
        sec = self.seconds
        for r in self.network.routers:
            for name, phase in (
                ("_compute_route", "route"),
                ("_allocate_vc", "vc_alloc"),
                ("_step_outputs", "sa"),
            ):
                # Remember whether the method was already shadowed on the
                # instance: unwrap must remove our shadow entirely (not
                # re-pin a bound method in the instance dict) so repeated
                # profiling leaves the router exactly as found.
                shadowed = name in r.__dict__
                orig = getattr(r, name)
                self._wrapped.append((r, name, orig if shadowed else None))
                setattr(r, name, _timed(orig, sec, phase))

    def _unwrap_routers(self) -> None:
        # Restore in reverse so stacked wraps (route calls vc_alloc) unwind.
        for obj, name, orig in reversed(self._wrapped):
            if orig is None:
                delattr(obj, name)
            else:
                setattr(obj, name, orig)
        self._wrapped.clear()

    # ------------------------------------------------------------------

    def run(self, cycles: int) -> None:
        """Advance the simulation ``cycles`` cycles, attributing host time.

        Behaviour-equivalent to :meth:`Simulator.run` — same two-phase
        order, same activity-set bookkeeping — with timers between phases.
        ``vc_alloc`` time is nested inside ``route`` at call time and
        subtracted out, so the reported phases are disjoint and sum to
        :attr:`total_s`.
        """
        sim = self.sim
        network = self.network
        self._wrap_routers()
        sec = self.seconds
        try:
            active_channels = network._active_channels
            active_terminals = network._active_terminals
            active_routers = network._active_routers
            processes = sim.processes
            cycle = sim.cycle
            end = cycle + cycles
            while cycle < end:
                t0 = perf_counter()
                if active_channels:
                    for ch in list(active_channels):
                        pipe = ch._pipe
                        while pipe and pipe[0][0] <= cycle:
                            ch._sink(pipe.popleft()[1])
                        if not pipe:
                            del active_channels[ch]
                t1 = perf_counter()
                sec["link"] += t1 - t0
                for proc in processes:
                    proc(cycle)
                t2 = perf_counter()
                sec["processes"] += t2 - t1
                if active_terminals:
                    for t in list(active_terminals):
                        t.step(cycle)
                        if t.idle:
                            active_terminals.pop(t, None)
                t3 = perf_counter()
                sec["terminals"] += t3 - t2
                r_route0 = sec["route"] + sec["vc_alloc"]
                r_sa0 = sec["sa"]
                if active_routers:
                    for r in list(active_routers):
                        r.step(cycle)
                        if r.idle:
                            active_routers.pop(r, None)
                t4 = perf_counter()
                inner = (sec["route"] + sec["vc_alloc"] - r_route0) + (sec["sa"] - r_sa0)
                sec["router_other"] += max(0.0, (t4 - t3) - inner)
                cycle += 1
                sim.cycle = cycle
                self.cycles_profiled += 1
        finally:
            self._unwrap_routers()

    # ------------------------------------------------------------------

    def report(self) -> dict[str, float]:
        """Seconds per phase (disjoint; sums to :attr:`total_s`)."""
        return dict(self.seconds)

    def format_report(self) -> str:
        total = self.total_s or 1.0
        lines = [
            f"{'phase':<14} {'seconds':>10} {'share':>7}",
        ]
        for p in PHASES:
            s = self.seconds[p]
            lines.append(f"{p:<14} {s:>10.4f} {s / total:>6.1%}")
        lines.append(
            f"{'total':<14} {self.total_s:>10.4f} over "
            f"{self.cycles_profiled} cycles"
        )
        return "\n".join(lines)


def _timed(fn, seconds: dict, phase: str):
    """Wrap ``fn`` so its wall-clock accumulates into ``seconds[phase]``.

    Nested timed calls double-count by construction; the profiler corrects
    the one nesting that exists (``vc_alloc`` inside ``route``) by keying
    both to the same bracket and subtracting at report time.
    """
    if phase == "route":
        # _compute_route calls _allocate_vc (itself timed): record the
        # *exclusive* time by subtracting the nested vc_alloc delta.
        def wrapper(*args, **kwargs):
            nested0 = seconds["vc_alloc"]
            t0 = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                dt = perf_counter() - t0
                seconds[phase] += dt - (seconds["vc_alloc"] - nested0)
    else:
        def wrapper(*args, **kwargs):
            t0 = perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                seconds[phase] += perf_counter() - t0
    return wrapper
