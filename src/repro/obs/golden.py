"""Canonical golden-trace runs: tiny pinned scenarios for regression tests.

A golden trace is the full JSONL event stream of a small, fully
deterministic simulation — 4×4 HyperX, one terminal per router, uniform
random traffic at a fixed seed, with injection stopped before the end so
most sampled packets complete their lifecycle.  The byte-exact streams
are pinned under ``tests/golden/`` and compared by
``tests/test_obs_golden.py``; regenerate after an *intentional* behaviour
change with::

    PYTHONPATH=src python -m pytest tests/test_obs_golden.py --update-golden

The fault-capable successor algorithms (FTHX, VCFree) pin the *same*
scenario on a statically degraded topology instead — two pinned link
faults — so their fault-masking candidate paths are byte-pinned too.

The same runs back the CLI (``python -m repro trace --golden DimWAR``,
``--golden FTHX``) and the CI trace smoke job.  Determinism rests on the simulator's seeded
RNG streams (NumPy ``default_rng`` bit streams are stable) and on the
tracer's trace-local packet ids (the global ``Packet.pid`` counter is
process-wide and deliberately not part of the stream).
"""

from __future__ import annotations

from ..config import default_config
from ..core.registry import make_algorithm
from ..network.network import Network
from ..network.simulator import Simulator
from ..traffic.injection import SyntheticTraffic
from ..traffic.patterns import pattern_by_name
from .events import TraceOptions
from .export import events_jsonl
from .tracer import Tracer

#: Algorithms with a pinned golden stream (tests/golden/trace_<name>.jsonl).
GOLDEN_ALGORITHMS = ("DOR", "DimWAR", "OmniWAR")

#: Fault-routing algorithms with a pinned *faulted* golden stream
#: (tests/golden/trace_fault_<name>.jsonl): the same scenario on a
#: statically degraded topology, so the byte-pin covers the fault-masking
#: candidate paths (escape subnetwork, up*/down* deroute filtering) that
#: the pristine corpus never exercises.
GOLDEN_FAULT_ALGORITHMS = ("FTHX", "VCFree")

#: The pinned scenario (do not change without regenerating the corpus).
GOLDEN_WIDTHS = (4, 4)
GOLDEN_TPR = 1
GOLDEN_RATE = 0.25
GOLDEN_SEED = 7
GOLDEN_INJECT_CYCLES = 160
GOLDEN_DRAIN_CYCLES = 80
GOLDEN_OPTIONS = TraceOptions(sample_every=4, capacity=1 << 16)

#: The faulted corpus' pinned fault sample (connectivity-preserving; the
#: seed is chosen so both algorithms deliver every sampled packet).
GOLDEN_FAULT_LINKS = 2
GOLDEN_FAULT_SEED = 1


def golden_filename(algorithm: str) -> str:
    if algorithm in GOLDEN_FAULT_ALGORITHMS:
        return f"trace_fault_{algorithm}.jsonl"
    return f"trace_{algorithm}.jsonl"


def golden_tracer(algorithm: str) -> Tracer:
    """Run the canonical scenario for ``algorithm``; returns the detached
    tracer holding the full event stream.

    ``GOLDEN_ALGORITHMS`` run on the pristine 4x4; the fault-capable
    ``GOLDEN_FAULT_ALGORITHMS`` run the same traffic on the statically
    degraded pinned topology.
    """
    from ..topology.hyperx import HyperX

    topo = HyperX(GOLDEN_WIDTHS, GOLDEN_TPR)
    if algorithm in GOLDEN_FAULT_ALGORITHMS:
        from ..faults.degraded import DegradedTopology
        from ..faults.model import random_link_faults

        fset = random_link_faults(
            topo, GOLDEN_FAULT_LINKS, seed=GOLDEN_FAULT_SEED
        )
        topo = DegradedTopology(topo, fset)
    elif algorithm not in GOLDEN_ALGORITHMS:
        raise ValueError(
            f"no golden scenario for {algorithm!r}; pick one of "
            f"{', '.join(GOLDEN_ALGORITHMS + GOLDEN_FAULT_ALGORITHMS)}"
        )
    net = Network(topo, make_algorithm(algorithm, topo), default_config())
    sim = Simulator(net)
    traffic = SyntheticTraffic(
        net, pattern_by_name("UR", topo), GOLDEN_RATE, seed=GOLDEN_SEED
    )
    sim.add_process(traffic)
    tracer = Tracer(sim, GOLDEN_OPTIONS).attach()
    sim.run(GOLDEN_INJECT_CYCLES)
    traffic.stop()
    sim.run(GOLDEN_DRAIN_CYCLES)
    tracer.detach()
    sim.remove_process(traffic)
    return tracer


def golden_jsonl(algorithm: str) -> str:
    """The canonical scenario's event stream as JSONL text (golden bytes)."""
    return events_jsonl(golden_tracer(algorithm).events())
