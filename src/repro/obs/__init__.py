"""Observability layer: lifecycle tracing, time series, phase profiling.

``repro.obs`` turns a running simulation into inspectable data without
perturbing it:

* :class:`~repro.obs.tracer.Tracer` — flit/packet lifecycle events
  (inject, route decision with candidate weights, VC alloc, switch alloc,
  link traversal, eject) into a bounded ring buffer, with per-packet 1/N
  and cycle-window sampling (:class:`~repro.obs.events.TraceOptions`);
* :class:`~repro.obs.timeseries.TimeSeriesSampler` — windowed
  offered/accepted throughput, latency percentiles, per-dimension link
  utilization, and per-(router, VC) occupancy;
* :mod:`~repro.obs.export` — JSONL (canonical, golden-pinned) and Chrome
  trace-event JSON (perfetto-loadable) exporters plus ASCII occupancy
  heatmaps;
* :class:`~repro.obs.profile.PhaseProfiler` — wall-clock attribution of
  ``Simulator.run`` to route / VC-alloc / SA / link phases;
* :mod:`~repro.obs.golden` — the pinned golden-trace scenarios behind
  ``tests/golden/`` and ``python -m repro trace --golden``.

Everything attaches through the established hook seams (router route and
forward hooks, terminal listeners, simulator processes, channel sinks) and
detaches without residue; with tracing detached the simulator runs at full
speed, and with it attached results are byte-identical to an untraced run
(enforced by ``repro.check.oracle.diff_trace_on_off``).

See docs/OBSERVABILITY.md for the event schema and workflow examples.
"""

from .events import EVENT_TYPES, EventRing, TraceEvent, TraceOptions
from .export import (
    canonical_jsonl,
    chrome_trace,
    event_line,
    events_jsonl,
    occupancy_heatmap,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_point_trace,
)
from .golden import GOLDEN_ALGORITHMS, golden_jsonl, golden_tracer
from .profile import PhaseProfiler
from .timeseries import TimeSeriesSampler, WindowSample, nearest_rank
from .tracer import Tracer

__all__ = [
    "EVENT_TYPES",
    "EventRing",
    "TraceEvent",
    "TraceOptions",
    "Tracer",
    "TimeSeriesSampler",
    "WindowSample",
    "PhaseProfiler",
    "GOLDEN_ALGORITHMS",
    "golden_tracer",
    "golden_jsonl",
    "canonical_jsonl",
    "chrome_trace",
    "event_line",
    "events_jsonl",
    "occupancy_heatmap",
    "read_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_point_trace",
    "nearest_rank",
]
