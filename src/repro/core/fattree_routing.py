"""Adaptive up/down routing for the fat tree (Figure 4 baseline).

The canonical fat-tree scheme: while the current switch does not cover the
destination terminal, go **up** — adaptively, choosing the least-congested
up-port (every up-port reaches a valid common ancestor, which is the fat
tree's path diversity); once the destination is covered, the **down** path is
forced (one digit per level).

Up/down routing is inherently deadlock free (the up-phase/down-phase channel
dependencies form a DAG through the tree levels), so a single resource class
suffices; the paper's 8 VCs all become head-of-line-blocking spares.
"""

from __future__ import annotations

from ..topology.fattree import FatTree
from .base import RouteCandidate, RouteContext, RoutingAlgorithm


class FatTreeAdaptive(RoutingAlgorithm):
    name = "FT-AD"
    num_classes = 1
    incremental = True
    dimension_ordered = False
    deadlock_handling = "restricted routes (up*/down*)"
    packet_contents = "none"

    def __init__(self, topology: FatTree):
        if not isinstance(topology, FatTree):
            raise TypeError("FatTreeAdaptive requires a FatTree topology")
        super().__init__(topology)
        self.ft: FatTree = topology

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        ft = self.ft
        rid = ctx.router.router_id
        dst = ctx.packet.dst_terminal
        level, _ = ft.level_word(rid)
        if ft.covers(rid, dst):
            # forced down path: `level` more hops to the leaf, then eject
            port = ft.down_port(ft.down_digit(rid, dst))
            return [RouteCandidate(out_port=port, vc_class=0, hops=max(1, level))]
        nca = ft.nca_level(ctx.packet.src_terminal, dst)
        nca = max(nca, level + 1)
        hops = (nca - level) + nca  # up to the NCA, then down to the leaf
        return [
            RouteCandidate(out_port=ft.up_port(rid, j), vc_class=0, hops=hops)
            for j in range(ft.k)
        ]


class FatTreeDeterministic(RoutingAlgorithm):
    """D-mod-k-style deterministic up/down routing (contrast baseline).

    The up-port at each level is the corresponding digit of the destination
    terminal, giving a fixed path per (src, dst) pair — the classic static
    fat-tree routing that load-balances uniform traffic but cannot adapt.
    """

    name = "FT-DET"
    num_classes = 1
    incremental = False
    dimension_ordered = False
    deadlock_handling = "restricted routes (up*/down*)"
    packet_contents = "none"

    def __init__(self, topology: FatTree):
        if not isinstance(topology, FatTree):
            raise TypeError("FatTreeDeterministic requires a FatTree topology")
        super().__init__(topology)
        self.ft: FatTree = topology

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        ft = self.ft
        rid = ctx.router.router_id
        dst = ctx.packet.dst_terminal
        level, _ = ft.level_word(rid)
        if ft.covers(rid, dst):
            port = ft.down_port(ft.down_digit(rid, dst))
            return [RouteCandidate(out_port=port, vc_class=0, hops=max(1, level))]
        nca = max(ft.nca_level(ctx.packet.src_terminal, dst), level + 1)
        hops = (nca - level) + nca
        # D-mod-k flavour: the up-port at level l is the destination's leaf
        # digit at position l, giving a fixed, dest-spread path per pair.
        # (A 1-level tree always covers, so this branch implies n >= 2.)
        digit = ft._digits(dst // ft._leaf_down, ft.n - 1)[min(level, ft.n - 2)]
        return [RouteCandidate(out_port=ft.up_port(rid, digit), vc_class=0, hops=hops)]
