"""Clos-AD / UGAL+ — UGAL optimized for flat fully connected dimensions
(Kim et al., Flattened Butterfly, ISCA '07).

Still *source-adaptive*, but with the paper's first two optimizations
(Section 4.1):

1. intermediate routers are restricted to the least-common-ancestor set —
   they may differ from the source only in dimensions that are *unaligned*
   with the destination, so a packet never routes away from an already
   aligned dimension;
2. the source router weighs **every** unaligned output port (not one random
   Valiant sample): the aligning port of each unaligned dimension as a
   minimal option, every other port of those dimensions as a +1-hop
   non-minimal option through the corresponding single-deviation
   intermediate.

The third optimization — the sequential allocator — is architecturally
infeasible in high-radix routers (Section 4.1) and, as in the paper's own
evaluation, is **not** modelled.

The figures of the paper label this algorithm ``UGAL+``.
"""

from __future__ import annotations

from .base import RouteCandidate, RouteContext
from .hyperx_base import HyperXRouting


class ClosAD(HyperXRouting):
    name = "UGAL+"
    num_classes = 2
    incremental = False
    dimension_ordered = True
    deadlock_handling = "restricted routes & resource classes"
    packet_contents = "int. addr."
    architecture_requirements = "seq. alloc. (omitted, as in the paper)"

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        state = ctx.packet.routing_state
        mode = state.get("closad_mode")
        if mode is None:
            return self._source_decision(ctx)
        here = self.here(ctx)
        dest = self.dest_coords(ctx.packet)
        if mode == "val":
            inter = state["closad_int"]
            if not state.get("closad_phase2") and here == inter:
                state["closad_phase2"] = True
            if not state.get("closad_phase2"):
                hop = self.dor_port(ctx.router.router_id, here, inter)
                assert hop is not None
                hops = self.hx.min_hops(
                    ctx.router.router_id, self.hx.router_id(inter)
                ) + self.hx.min_hops(
                    self.hx.router_id(inter), self.dest_router(ctx.packet)
                )
                return [RouteCandidate(out_port=hop[0], vc_class=0, hops=hops)]
        hop = self.dor_port(ctx.router.router_id, here, dest)
        assert hop is not None
        remaining = sum(1 for a, b in zip(here, dest) if a != b)
        return [RouteCandidate(out_port=hop[0], vc_class=1, hops=remaining)]

    def _source_decision(self, ctx: RouteContext) -> list[RouteCandidate]:
        here = self.here(ctx)
        dest = self.dest_coords(ctx.packet)
        rid = ctx.router.router_id
        remaining = sum(1 for a, b in zip(here, dest) if a != b)
        first = self.first_unaligned_dim(here, dest)
        cands: list[RouteCandidate] = []
        proposals: dict[int, tuple[int, ...]] = {}
        for d in range(self.hx.num_dims):
            if here[d] == dest[d]:
                continue  # aligned: LCA restriction forbids leaving it
            for c in range(self.hx.widths[d]):
                if c == here[d]:
                    continue
                port = self.hx.dim_port(rid, d, c)
                if d == first and c == dest[d]:
                    # The DOR-minimal path; class 1 keeps class-1 channels
                    # strictly dimension ordered (deadlock freedom).
                    cands.append(
                        RouteCandidate(out_port=port, vc_class=1, hops=remaining)
                    )
                    continue
                # Any other unaligned-dimension port routes via the single-
                # deviation intermediate on class 0.  Ports that align a later
                # dimension (c == dest[d], d != first) cost no extra hops;
                # true deroutes cost one.
                inter = list(here)
                inter[d] = c
                extra = 0 if c == dest[d] else 1
                cand = RouteCandidate(
                    out_port=port,
                    vc_class=0,
                    hops=remaining + extra,
                    deroute=extra == 1,
                )
                proposals[id(cand)] = tuple(inter)
                cands.append(cand)
        ctx.packet.routing_state["_closad_proposals"] = proposals
        return cands

    def commit(self, ctx: RouteContext, chosen: RouteCandidate) -> None:
        state = ctx.packet.routing_state
        if state.get("closad_mode") is not None:
            return
        proposals = state.pop("_closad_proposals", {})
        if chosen.vc_class == 1:
            state["closad_mode"] = "min"
        else:
            state["closad_mode"] = "val"
            state["closad_int"] = proposals[id(chosen)]
