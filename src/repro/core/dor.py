"""Dimension Order Routing (DOR) — Dally & Seitz's torus routing chip scheme.

Deterministic minimal routing: resolve dimensions in a fixed order, one
aligning hop per dimension.  On HyperX each dimension needs a single hop, and
the fixed dimension order makes the channel-dependency graph acyclic, so a
single resource class suffices (restricted routes).

DOR is the deterministic baseline of the paper's evaluation (Table 2); it
achieves full throughput only on perfectly load-balanced traffic and collapses
to ``1/(w*T)`` throughput on DCR (Figure 6f).
"""

from __future__ import annotations

from .base import RouteCandidate, RouteContext
from .hyperx_base import HyperXRouting


class DimensionOrderRouting(HyperXRouting):
    name = "DOR"
    num_classes = 1
    incremental = False
    dimension_ordered = True
    deadlock_handling = "restricted routes"
    packet_contents = "none"

    def cache_key(self, ctx: RouteContext, dest_router: int):
        # Candidates depend only on the (fixed) current router and the
        # destination coordinates.
        return (dest_router,)

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        here = self.here(ctx)
        dest = self.dest_coords(ctx.packet)
        hop = self.dor_port(ctx.router.router_id, here, dest)
        assert hop is not None, "router never routes packets already at destination"
        port, _ = hop
        remaining = sum(1 for a, b in zip(here, dest) if a != b)
        return [RouteCandidate(out_port=port, vc_class=0, hops=remaining)]
