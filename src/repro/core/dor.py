"""Dimension Order Routing (DOR) — Dally & Seitz's torus routing chip scheme.

Deterministic minimal routing: resolve dimensions in a fixed order, one
aligning hop per dimension.  On HyperX each dimension needs a single hop, and
the fixed dimension order makes the channel-dependency graph acyclic, so a
single resource class suffices (restricted routes).

DOR is the deterministic baseline of the paper's evaluation (Table 2); it
achieves full throughput only on perfectly load-balanced traffic and collapses
to ``1/(w*T)`` throughput on DCR (Figure 6f).

Behaviour under faults (constructed on a ``DegradedTopology``): DOR has no
adaptivity to absorb a dead link, so a second resource class is enabled and
used as a *fallback deroute* class — when the dimension-order hop is dead the
packet takes one lateral deroute (class 1) inside the current dimension, then
resumes forced-minimal routing.  If the forced minimal hop is dead *while
already on class 1*, the packet may only take monotone escape hops (lateral
moves to strictly higher coordinates, keeping the dependency graph acyclic —
see docs/FAULTS.md).  When no viable port survives the router raises
:class:`~repro.core.base.NoRouteError`: DOR reports unreachable pairs
explicitly rather than hanging.
"""

from __future__ import annotations

from .base import RouteCandidate, RouteContext
from .hyperx_base import HyperXRouting


class DimensionOrderRouting(HyperXRouting):
    name = "DOR"
    num_classes = 1
    incremental = False
    dimension_ordered = True
    deadlock_handling = "restricted routes"
    packet_contents = "none"
    fault_aware = True

    def __init__(self, topology):
        super().__init__(topology)
        if self.faults is not None:
            # Fallback deroutes around dead links need a second class.
            self.num_classes = 2
            self.deadlock_handling = "restricted routes & resource classes"

    def cache_key(self, ctx: RouteContext, dest_router: int):
        # Candidates depend only on the (fixed) current router and the
        # destination coordinates — plus, under faults, whether the packet
        # is on the minimal class (fallback deroutes permitted).
        if self.faults is None:
            return (dest_router,)
        on_min = ctx.from_terminal or ctx.input_vc_class == 0
        return (dest_router, on_min)

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        here = self.here(ctx)
        dest = self.dest_coords(ctx.packet)
        rid = ctx.router.router_id
        hop = self.dor_port(rid, here, dest)
        assert hop is not None, "router never routes packets already at destination"
        port, dim = hop
        remaining = sum(1 for a, b in zip(here, dest) if a != b)
        f = self.routing_faults(rid)
        if f is None:
            return [RouteCandidate(out_port=port, vc_class=0, hops=remaining)]
        if (rid, port) not in f.failed_ports:
            return [RouteCandidate(out_port=port, vc_class=0, hops=remaining)]
        f.masked_candidates += 1
        on_min = ctx.from_terminal or ctx.input_vc_class == 0
        if on_min:
            ports = self.viable_deroute_ports(rid, dim, here[dim], dest[dim])
        else:
            ports = self.escape_ports(rid, dim, here[dim], dest[dim])
        return [
            RouteCandidate(out_port=p, vc_class=1, hops=remaining + 1, deroute=True)
            for p in ports
        ]  # empty => the router raises NoRouteError (unreachable, reported)
