"""UGAL — Universal Global Adaptive Load-balancing (Singh, 2005).

The canonical *source-adaptive* algorithm: at the packet's **source router
only**, compare the minimal (DOR) path against one or more randomly chosen
Valiant paths, weighting each by ``local congestion of its first hop x total
path hop count``, and commit to the winner for the packet's whole lifetime.

Because only the source router's local state feeds the decision, UGAL is
blind to congestion deeper in the network — the deficiency the paper's
Figure 6d (URBy) and 6f (DCR) experiments expose, and the motivation for the
incremental DimWAR/OmniWAR.

Resource classes as for VAL: class 0 = toward the intermediate, class 1 =
toward the destination (minimal-mode packets start in class 1).

Behaviour under faults (constructed on a ``DegradedTopology``): the source
decision only offers paths whose *entire* DOR route (both halves, for
Valiant) survives the currently-known faults, drawing extra intermediate
candidates when needed.  That is the best a source-adaptive scheme can do —
and also its documented limitation: a link that dies *after* the packet
committed invalidates a pinned path mid-flight, the per-hop candidate
becomes empty, and the router raises
:class:`~repro.core.base.NoRouteError` for that packet (reported, never a
hang).  The incremental algorithms have no such window; see
docs/ALGORITHMS.md.
"""

from __future__ import annotations

import numpy as np

from .base import RouteCandidate, RouteContext
from .hyperx_base import HyperXRouting


class Ugal(HyperXRouting):
    name = "UGAL"
    num_classes = 2
    incremental = False
    dimension_ordered = True
    deadlock_handling = "restricted routes & resource classes"
    packet_contents = "int. addr."
    fault_aware = True

    def __init__(self, topology, seed: int = 11, val_candidates: int = 1):
        super().__init__(topology)
        if val_candidates < 1:
            raise ValueError("need at least one Valiant candidate")
        self.rng = np.random.default_rng(seed)
        self.val_candidates = val_candidates

    # ------------------------------------------------------------------

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        state = ctx.packet.routing_state
        mode = state.get("ugal_mode")
        if mode is None:
            return self._source_decision(ctx)
        here = self.here(ctx)
        dest = self.dest_coords(ctx.packet)
        if mode == "val":
            inter = state["ugal_int"]
            if not state.get("ugal_phase2") and here == inter:
                state["ugal_phase2"] = True
            if not state.get("ugal_phase2"):
                rid = ctx.router.router_id
                hop = self.dor_port(rid, here, inter)
                assert hop is not None
                f = self.routing_faults(rid)
                if f is not None and (rid, hop[0]) in f.failed_ports:
                    # Committed path died mid-flight: the source-adaptive
                    # limitation — report unreachable via NoRouteError.
                    return []
                hops = self.hx.min_hops(
                    ctx.router.router_id, self.hx.router_id(inter)
                ) + self.hx.min_hops(
                    self.hx.router_id(inter), self.dest_router(ctx.packet)
                )
                return [RouteCandidate(out_port=hop[0], vc_class=0, hops=hops)]
        rid = ctx.router.router_id
        hop = self.dor_port(rid, here, dest)
        assert hop is not None
        f = self.routing_faults(rid)
        if f is not None and (rid, hop[0]) in f.failed_ports:
            return []  # committed path died mid-flight (see module docstring)
        remaining = sum(1 for a, b in zip(here, dest) if a != b)
        return [RouteCandidate(out_port=hop[0], vc_class=1, hops=remaining)]

    def _source_decision(self, ctx: RouteContext) -> list[RouteCandidate]:
        """Offer the minimal path plus sampled Valiant paths; the router's
        weight comparison (congestion x hops, first-hop congestion only) *is*
        the UGAL decision, and :meth:`commit` pins the winner."""
        here = self.here(ctx)
        dest = self.dest_coords(ctx.packet)
        rid = ctx.router.router_id
        min_hop = self.dor_port(rid, here, dest)
        assert min_hop is not None
        remaining = sum(1 for a, b in zip(here, dest) if a != b)
        f = self.routing_faults(rid)
        masking = f is not None
        cands = []
        if not masking or self.dor_path_alive(rid, here, dest):
            cands.append(
                RouteCandidate(out_port=min_hop[0], vc_class=1, hops=remaining)
            )
        elif masking:
            f.masked_candidates += 1
        proposals: dict[int, tuple[int, ...]] = {}
        # Under faults, allow extra intermediate draws so a dead minimal
        # path still yields live Valiant alternatives.  The no-fault branch
        # keeps the RNG draw count identical to the pristine algorithm.
        draws = self.val_candidates if not masking else max(self.val_candidates, 32)
        wanted = self.val_candidates
        for _ in range(draws):
            if len(proposals) >= wanted:
                break
            irid = int(self.rng.integers(self.hx.num_routers))
            if irid == rid or irid == self.dest_router(ctx.packet):
                continue  # degenerate intermediate: identical to minimal
            inter = self.hx.coords(irid)
            if masking and not (
                self.dor_path_alive(rid, here, inter)
                and self.dor_path_alive(irid, inter, dest)
            ):
                f.masked_candidates += 1
                continue
            hop = self.dor_port(rid, here, inter)
            assert hop is not None
            hops = self.hx.min_hops(rid, irid) + self.hx.min_hops(
                irid, self.dest_router(ctx.packet)
            )
            cand = RouteCandidate(
                out_port=hop[0], vc_class=0, hops=hops, deroute=True
            )
            proposals[id(cand)] = inter
            cands.append(cand)
        ctx.packet.routing_state["_ugal_proposals"] = proposals
        return cands

    def commit(self, ctx: RouteContext, chosen: RouteCandidate) -> None:
        state = ctx.packet.routing_state
        if state.get("ugal_mode") is not None:
            return
        proposals = state.pop("_ugal_proposals", {})
        if chosen.vc_class == 1:
            state["ugal_mode"] = "min"
        else:
            state["ugal_mode"] = "val"
            state["ugal_int"] = proposals[id(chosen)]
