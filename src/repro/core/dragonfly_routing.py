"""Routing algorithms for the Dragonfly baseline (used by Figure 4).

* :class:`DragonflyMinimal` — the canonical local-global-local minimal route.
* :class:`DragonflyValiant` — Valiant over a random intermediate *group*.
* :class:`DragonflyUgal` — UGAL-L: at the source router, weigh the minimal
  path against one random Valiant path using first-hop congestion x hops.

Deadlock avoidance uses distance classes (VC = hop index).  A minimal path
has <= 3 hops and a Valiant path <= 6, so UGAL needs 6 classes; the paper's
8-VC routers leave 2 spares that the VC map spreads over the early classes.
This is more VCs than the hand-crafted 2/3-class Dragonfly schemes, but it is
simple, provably safe, and — per the paper's own methodology (footnote 4) —
every algorithm gets all 8 VCs anyway.
"""

from __future__ import annotations

import numpy as np

from ..topology.dragonfly import Dragonfly
from .base import RouteCandidate, RouteContext, RoutingAlgorithm


class _DragonflyBase(RoutingAlgorithm):
    # Every Dragonfly variant here uses strict distance classes
    # (VC = hop index), so the sanitizer may verify the rule.
    distance_classes = True

    def __init__(self, topology: Dragonfly):
        if not isinstance(topology, Dragonfly):
            raise TypeError(f"{type(self).__name__} requires a Dragonfly topology")
        super().__init__(topology)
        self.df: Dragonfly = topology

    def dest_router(self, packet) -> int:
        return packet.dst_terminal // self.df.p

    def _next_min_hop(self, router: int, dst_router: int) -> tuple[int, int]:
        """(port, remaining hops incl. this one) of the next minimal hop."""
        df = self.df
        gs, gd = df.group_of(router), df.group_of(dst_router)
        if gs == gd:
            return df.local_port(router, df.local_of(dst_router)), 1
        gw, k = df.gateway_router(gs, gd)
        if router == gw:
            port = df.global_port(router, k)
            gw_dst, _ = df.gateway_router(gd, gs)
            return port, 1 + (1 if gw_dst != dst_router else 0)
        return (
            df.local_port(router, df.local_of(gw)),
            df.min_hops(router, dst_router),
        )


class DragonflyMinimal(_DragonflyBase):
    """Minimal (l-g-l) routing; <= 3 hops, 3 distance classes."""

    name = "DF-MIN"
    num_classes = 3
    incremental = False
    deadlock_handling = "distance classes"

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        klass = 0 if ctx.from_terminal else ctx.input_vc_class + 1
        port, hops = self._next_min_hop(
            ctx.router.router_id, self.dest_router(ctx.packet)
        )
        return [RouteCandidate(out_port=port, vc_class=klass, hops=hops)]


class DragonflyValiant(_DragonflyBase):
    """Valiant over a random intermediate group; <= 6 hops, 6 classes."""

    name = "DF-VAL"
    num_classes = 6
    incremental = False
    deadlock_handling = "distance classes"
    packet_contents = "int. addr."

    def __init__(self, topology: Dragonfly, seed: int = 13):
        super().__init__(topology)
        self.rng = np.random.default_rng(seed)

    def _intermediate_router(self, ctx: RouteContext) -> int:
        state = ctx.packet.routing_state
        inter = state.get("df_int")
        if inter is None:
            df = self.df
            src_g = df.group_of(ctx.router.router_id)
            dst_g = df.group_of(self.dest_router(ctx.packet))
            choices = [g for g in range(df.g) if g not in (src_g, dst_g)]
            grp = int(choices[int(self.rng.integers(len(choices)))])
            inter = df.router_id(grp, int(self.rng.integers(df.a)))
            state["df_int"] = inter
        return inter

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        klass = 0 if ctx.from_terminal else ctx.input_vc_class + 1
        rid = ctx.router.router_id
        dst = self.dest_router(ctx.packet)
        state = ctx.packet.routing_state
        inter = self._intermediate_router(ctx)
        if not state.get("df_phase2"):
            df = self.df
            if rid == inter or df.group_of(rid) == df.group_of(inter):
                # reaching the intermediate group suffices (group-level Valiant)
                state["df_phase2"] = True
        if not state.get("df_phase2"):
            port, _ = self._next_min_hop(rid, inter)
            hops = self.df.min_hops(rid, inter) + self.df.min_hops(inter, dst)
            return [RouteCandidate(out_port=port, vc_class=klass, hops=max(1, hops))]
        port, hops = self._next_min_hop(rid, dst)
        return [RouteCandidate(out_port=port, vc_class=klass, hops=hops)]


class DragonflyUgal(_DragonflyBase):
    """UGAL-L: source decision between minimal and one Valiant candidate."""

    name = "DF-UGAL"
    num_classes = 6
    incremental = False
    deadlock_handling = "distance classes"
    packet_contents = "int. addr."

    def __init__(self, topology: Dragonfly, seed: int = 17):
        super().__init__(topology)
        self.rng = np.random.default_rng(seed)

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        klass = 0 if ctx.from_terminal else ctx.input_vc_class + 1
        rid = ctx.router.router_id
        dst = self.dest_router(ctx.packet)
        state = ctx.packet.routing_state
        mode = state.get("df_mode")
        if mode is None:
            return self._source_decision(ctx, rid, dst, klass)
        if mode == "val" and not state.get("df_phase2"):
            df = self.df
            inter = state["df_int"]
            if rid == inter or df.group_of(rid) == df.group_of(inter):
                state["df_phase2"] = True
            else:
                port, _ = self._next_min_hop(rid, inter)
                hops = df.min_hops(rid, inter) + df.min_hops(inter, dst)
                return [
                    RouteCandidate(out_port=port, vc_class=klass, hops=max(1, hops))
                ]
        port, hops = self._next_min_hop(rid, dst)
        return [RouteCandidate(out_port=port, vc_class=klass, hops=hops)]

    def _source_decision(self, ctx, rid, dst, klass) -> list[RouteCandidate]:
        df = self.df
        min_port, _ = self._next_min_hop(rid, dst)
        cands = [
            RouteCandidate(
                out_port=min_port, vc_class=klass, hops=df.min_hops(rid, dst)
            )
        ]
        src_g, dst_g = df.group_of(rid), df.group_of(dst)
        choices = [g for g in range(df.g) if g not in (src_g, dst_g)]
        proposals = {}
        if choices:
            grp = int(choices[int(self.rng.integers(len(choices)))])
            inter = df.router_id(grp, int(self.rng.integers(df.a)))
            port, _ = self._next_min_hop(rid, inter)
            hops = df.min_hops(rid, inter) + df.min_hops(inter, dst)
            cand = RouteCandidate(
                out_port=port, vc_class=klass, hops=max(1, hops), deroute=True
            )
            proposals[id(cand)] = inter
            cands.append(cand)
        ctx.packet.routing_state["_df_proposals"] = proposals
        return cands

    def commit(self, ctx: RouteContext, chosen: RouteCandidate) -> None:
        state = ctx.packet.routing_state
        if state.get("df_mode") is not None:
            return
        proposals = state.pop("_df_proposals", {})
        if chosen.deroute:
            state["df_mode"] = "val"
            state["df_int"] = proposals[id(chosen)]
        else:
            state["df_mode"] = "min"


class DragonflyPar(DragonflyUgal):
    """Progressive Adaptive Routing (Jiang/Kim/Dally, ISCA '09; Section 2.2).

    UGAL whose *minimal* decision stays revocable while the packet remains
    inside its source group: every source-group router re-evaluates minimal
    vs Valiant with its own local congestion, catching congestion the source
    router could not see.  Once the packet leaves the source group (or
    commits to Valiant) the decision is final.  The revisit can add local
    hops, so the worst path is l,l,g,l,l,g,l — 7 distance classes.
    """

    name = "DF-PAR"
    num_classes = 7

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        klass = 0 if ctx.from_terminal else ctx.input_vc_class + 1
        rid = ctx.router.router_id
        dst = self.dest_router(ctx.packet)
        state = ctx.packet.routing_state
        if ctx.from_terminal:
            state["df_src_group"] = self.df.group_of(rid)
        mode = state.get("df_mode")
        revocable = (
            mode == "min"
            and self.df.group_of(rid) == state.get("df_src_group")
            and self.df.group_of(rid) != self.df.group_of(dst)
        )
        if mode is None or revocable:
            return self._source_decision(ctx, rid, dst, klass)
        return super().candidates(ctx)

    def commit(self, ctx: RouteContext, chosen: RouteCandidate) -> None:
        state = ctx.packet.routing_state
        proposals = state.pop("_df_proposals", None)
        if proposals is None:
            return  # not a (re-)decision hop
        if chosen.deroute:
            state["df_mode"] = "val"
            state["df_int"] = proposals[id(chosen)]
        else:
            state["df_mode"] = "min"  # provisional while in the source group
