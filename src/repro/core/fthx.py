"""FTHX — fault-tolerant HyperX routing with an ordered escape subnetwork.

Implements the scheme of "Achieving High-Performance Fault-Tolerant
Routing in HyperX Interconnection Networks" (Camarero, Cano, Martínez,
Beivide — arXiv 2404.04315) in this simulator's terms: an OmniWAR-style
**adaptive layer** that absorbs faults by masking, stacked on a dedicated
two-class **escape subnetwork** that guarantees delivery when masking
exhausts the adaptive options.

Adaptive layer (classes ``0 .. N+M-1``): identical to OmniWAR — any
unaligned dimension, minimal or deroute, deroute budget ``M``, deadlock
freedom by distance classes (``VC_out = VC_in + 1``).  Dead minimal ports
are masked; deroutes are filtered to survivors with a live onward hop.

Escape subnetwork (classes ``E0 = N+M`` and ``E1 = N+M+1``): the
fault-aware DOR discipline.  ``E0`` carries forced dimension-order
aligning hops; when the forced hop is dead the packet takes one lateral
deroute on ``E1`` and, if the forced hop is dead *again* while already on
``E1``, monotone escape hops (strictly increasing coordinate) on ``E1``
until an aligning hop survives.

A packet enters the escape subnetwork exactly when its adaptive candidate
set is empty — every minimal port dead and no deroute budget or viable
deroute left — and **never returns**: the transition is one-way.  The
combined channel order is therefore acyclic end to end:

* adaptive classes strictly increase per hop (distance classes);
* every adaptive channel precedes every escape channel;
* within the escape subnetwork, rank dimension-major: ``E1`` channels of
  dimension ``d`` ordered by *target* coordinate (every continuation of
  an ``E1`` hop moves strictly up), then the ``E0`` aligning channel of
  ``d``, then dimension ``d+1`` — the PR 2 fault-DOR order.

:meth:`FTHX.channel_rank` states that order as a per-channel rank
certificate, verified edge-by-edge on the reachable dependency graph by
:func:`repro.core.deadlock.verify_rank_certificate`.

Class budget: ``N + M + 2`` resource classes.  With the default ``M = N``
that is 6 on a 2-D HyperX and exactly 8 (the evaluation's VC budget) on a
3-D one.  The escape classes are rarely-used insurance, so the VC
partition is weighted (:attr:`class_weights`): each escape class gets a
single VC and the adaptive classes share the spares
(:class:`repro.core.vcmap.VcMap`).

All routing state lives in the VC index; ``num_classes`` does not change
under a ``DegradedTopology`` (unlike DOR), so the pristine-vs-empty-faults
oracle applies and pristine behaviour is byte-identical to never having
wrapped the topology.
"""

from __future__ import annotations

from .base import RouteCandidate, RouteContext
from .hyperx_base import HyperXRouting


class FTHX(HyperXRouting):
    name = "FTHX"
    incremental = True
    dimension_ordered = False
    deadlock_handling = "distance classes + ordered escape subnetwork"
    packet_contents = "none"
    fault_aware = True
    #: the distance rule holds only in the adaptive layer; the combined
    #: discipline is stated by route_discipline_error / channel_rank.
    distance_classes = False

    def __init__(self, topology, deroutes: int | None = None):
        super().__init__(topology)
        n = topology.num_dims
        self.deroutes = n if deroutes is None else int(deroutes)
        if self.deroutes < 0:
            raise ValueError("deroute budget must be >= 0")
        self.adaptive_classes = n + self.deroutes
        self.escape_min = self.adaptive_classes  # E0: forced aligning hops
        self.escape_der = self.adaptive_classes + 1  # E1: deroute/escape hops
        self.num_classes = self.adaptive_classes + 2
        # Escape classes are insurance: one VC each, spares to the adaptive
        # layer (consumed by VcMap via the weighted partition).
        self.class_weights = tuple([2] * self.adaptive_classes + [1, 1])

    # ------------------------------------------------------------------

    def _state_class(self, ctx: RouteContext) -> int:
        """The resource class the packet routes *on* at this router."""
        if ctx.from_terminal:
            return 0
        if ctx.input_vc_class >= self.adaptive_classes:
            return ctx.input_vc_class  # escape classes do not advance
        return ctx.input_vc_class + 1  # distance rule in the adaptive layer

    def cache_key(self, ctx: RouteContext, dest_router: int):
        return (dest_router, self._state_class(ctx))

    def candidates(self, ctx: RouteContext) -> list[RouteCandidate]:
        klass = self._state_class(ctx)
        if klass >= self.adaptive_classes:
            return self._escape_candidates(
                ctx, on_min=klass == self.escape_min
            )

        hx = self.hx
        rid = ctx.router.router_id
        coords = hx.coords
        here = coords(rid)
        dest = coords(ctx.packet.dst_terminal // self._tpr)
        remaining = 0
        for a, b in zip(here, dest):
            if a != b:
                remaining += 1
        classes_left = self.adaptive_classes - klass
        assert remaining <= classes_left, (
            "distance-class invariant violated: not enough adaptive classes "
            "left to reach the destination minimally"
        )
        may_deroute = classes_left - remaining >= 1

        f = self.routing_faults(rid)
        min_tab = self._min_port_tab
        cands: list[RouteCandidate] = []
        append = cands.append
        if f is None:  # pristine fast path: pure table lookups
            deroute_hops = remaining + 1
            der_tab = self._deroute_tab
            for d in range(hx.num_dims):
                h = here[d]
                t = dest[d]
                if h == t:
                    continue
                append(RouteCandidate(min_tab[d][h][t], klass, remaining))
                if may_deroute:
                    for port in der_tab[d][h][t]:
                        append(RouteCandidate(port, klass, deroute_hops, True))
            return cands

        for d in range(hx.num_dims):
            if here[d] == dest[d]:
                continue
            min_port = min_tab[d][here[d]][dest[d]]
            if (rid, min_port) in f.failed_ports:
                f.masked_candidates += 1
            else:
                append(RouteCandidate(min_port, klass, remaining))
            if may_deroute:
                for port in self.viable_deroute_ports(rid, d, here[d], dest[d]):
                    append(RouteCandidate(port, klass, remaining + 1, True))
        if cands:
            return cands
        # Masking exhausted the adaptive layer: one-way drop into the
        # escape subnetwork, entering as a forced-minimal (on_min) packet.
        return self._escape_candidates(ctx, on_min=True)

    def _escape_candidates(
        self, ctx: RouteContext, on_min: bool
    ) -> list[RouteCandidate]:
        """Fault-aware DOR on the escape classes (the PR 2 discipline)."""
        here = self.here(ctx)
        dest = self.dest_coords(ctx.packet)
        rid = ctx.router.router_id
        hop = self.dor_port(rid, here, dest)
        assert hop is not None, "router never routes packets already at destination"
        port, dim = hop
        remaining = sum(1 for a, b in zip(here, dest) if a != b)
        f = self.routing_faults(rid)
        if f is None or (rid, port) not in f.failed_ports:
            return [RouteCandidate(port, self.escape_min, remaining)]
        f.masked_candidates += 1
        if on_min:
            ports = self.viable_deroute_ports(rid, dim, here[dim], dest[dim])
        else:
            ports = self.escape_ports(rid, dim, here[dim], dest[dim])
        return [
            RouteCandidate(p, self.escape_der, remaining + 1, True)
            for p in ports
        ]  # empty => NoRouteError (unreachable, reported — never a hang)

    # -- verification hooks --------------------------------------------

    def route_discipline_error(self, ctx: RouteContext, cand) -> str | None:
        """The sanitizer's model of the combined FTHX class discipline."""
        a_cls, e0, e1 = self.adaptive_classes, self.escape_min, self.escape_der
        out = cand.vc_class
        in_cls = None if ctx.from_terminal else ctx.input_vc_class
        if in_cls is None or in_cls < a_cls:
            expected = 0 if in_cls is None else in_cls + 1
            if out == expected or out == e0 or out == e1:
                # distance rule, or a one-way drop into the escape layer
                return None
            return (
                f"adaptive class must advance by one (expected {expected}) "
                f"or drop into the escape subnetwork (classes {e0}/{e1}), "
                f"but the candidate declared class {out}"
            )
        if out < a_cls:
            return (
                f"escape-to-adaptive transition: arrived on escape class "
                f"{in_cls} but departs on adaptive class {out} — the escape "
                f"subnetwork is one-way"
            )
        if out == e1 and in_cls == e1:
            # monotone escape: the lateral hop must strictly increase the
            # coordinate in its dimension
            d = self._port_dim_tab[cand.out_port]
            h = self.here(ctx)[d]
            idx = cand.out_port - self.hx._dim_offset[d]
            c = idx if idx < h else idx + 1
            if c <= h:
                return (
                    f"escape hop to coordinate {c} does not increase the "
                    f"coordinate (here {h}) in dimension {d}: the E1 order "
                    f"requires strictly monotone escapes"
                )
        return None

    def channel_rank(self, router: int, port: int, klass: int):
        """Acyclicity certificate for the combined channel order.

        Adaptive channels rank by distance class; escape channels rank
        dimension-major, ``E1`` channels by *target* coordinate (every
        continuation of an ``E1`` hop leaves its target strictly upward)
        below the dimension's ``E0`` aligning channel.
        """
        if klass < self.adaptive_classes:
            return (0, 0, 0, klass)
        d = self._port_dim_tab[port]
        if klass == self.escape_der:
            a = self.hx.coords(router)[d]
            idx = port - self.hx._dim_offset[d]
            target = idx if idx < a else idx + 1
            return (1, d, 0, target)
        return (1, d, 1, 0)  # E0
